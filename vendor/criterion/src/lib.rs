//! Offline vendored stub of the [`criterion`](https://crates.io/crates/criterion)
//! benchmark API, covering the subset this workspace's five `[[bench]]`
//! targets use: [`Criterion`], benchmark groups, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`BatchSize`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! The build container has no network access to crates.io, so the workspace
//! wires `criterion = { path = "vendor/criterion" }`. Unlike upstream
//! criterion there is no statistical engine: each benchmark runs a short
//! warm-up plus a fixed number of timed samples and prints `mean` / `min`
//! wall-clock per iteration. That is enough for `cargo bench` to produce
//! useful relative numbers, and for `cargo bench --no-run` (the CI gate)
//! to type-check every bench target against the real criterion call shapes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. The stub runs one routine call
/// per setup call regardless of the variant; the variants exist so call
/// sites match upstream criterion exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (setup dominates).
    LargeInput,
    /// One setup per routine invocation.
    PerIteration,
}

/// Identifier of a single benchmark inside a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark named `function_name` with parameter `parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = function_name.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }

    /// A benchmark identified only by its parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing driver handed to every benchmark closure.
pub struct Bencher {
    samples: u64,
    /// Mean and minimum wall-clock time per iteration of the last run.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    fn new(samples: u64) -> Self {
        Bencher {
            samples,
            result: None,
        }
    }

    /// Times `routine` over a warm-up call plus `samples` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.result = Some((total / self.samples as u32, min));
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.result = Some((total / self.samples as u32, min));
    }

    /// Like [`Bencher::iter_batched`] but the routine borrows the input.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, |mut input| routine(&mut input), size);
    }
}

/// A named collection of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = (n as u64).max(1);
        self
    }

    /// Ignored by the stub; kept so upstream call sites compile.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Runs `routine` as a benchmark named `id` within this group.
    pub fn bench_function<R>(&mut self, id: impl Into<BenchmarkId>, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.samples);
        routine(&mut bencher);
        self.criterion
            .report(&format!("{}/{}", self.name, id.id), bencher.result);
        self
    }

    /// Runs `routine` with a borrowed input, mirroring
    /// `BenchmarkGroup::bench_with_input`.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.samples);
        routine(&mut bencher, input);
        self.criterion
            .report(&format!("{}/{}", self.name, id.id), bencher.result);
        self
    }

    /// Finishes the group (prints nothing extra in the stub).
    pub fn finish(self) {}
}

/// The benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    default_samples: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.default_samples;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<R>(&mut self, id: impl Into<BenchmarkId>, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.default_samples);
        routine(&mut bencher);
        self.report(&id.id.clone(), bencher.result);
        self
    }

    fn report(&mut self, id: &str, result: Option<(Duration, Duration)>) {
        match result {
            Some((mean, min)) => {
                println!("{id:<60} mean {mean:>12.3?}   min {min:>12.3?}");
            }
            None => println!("{id:<60} (no measurement)"),
        }
    }
}

/// Declares a function that runs the listed benchmark targets, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`,
/// mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_records_a_result() {
        let mut b = Bencher::new(3);
        b.iter(|| 1 + 1);
        assert!(b.result.is_some());
    }

    #[test]
    fn bencher_iter_batched_records_a_result() {
        let mut b = Bencher::new(3);
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput);
        assert!(b.result.is_some());
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut runs = 0u32;
        group.bench_function("f", |b| {
            b.iter(|| 2 * 2);
            runs += 1;
        });
        group.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| {
            b.iter(|| x * x);
            runs += 1;
        });
        group.finish();
        assert_eq!(runs, 2);
    }
}
