//! Offline vendored stub of the [`rand`](https://crates.io/crates/rand)
//! crate, covering exactly the API subset this workspace uses:
//!
//! * [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen_range`] over half-open and inclusive integer ranges,
//! * [`Rng::gen_bool`].
//!
//! The build container has no network access to crates.io, so the workspace
//! wires `rand = { path = "vendor/rand" }` instead of the registry crate.
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed on every platform, which is exactly what the test suite
//! and benchmark harness need. It is **not** the same stream as upstream
//! `StdRng` (ChaCha12), and makes no cryptographic claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random number generator seedable from a small integer, mirroring
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-width byte array in upstream `rand`).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed, expanding it with SplitMix64
    /// exactly like upstream `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, byte) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = byte;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that a uniform value can be drawn from, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Wrapping: for signed types the offset may exceed the
                // positive half of the domain; two's-complement wrap-around
                // still lands inside [start, end).
                self.start.wrapping_add(uniform_below(rng, span) as $ty)
            }
        }

        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: every word is a valid sample.
                    return start.wrapping_add(rng.next_u64() as $ty);
                }
                start.wrapping_add(uniform_below(rng, span) as $ty)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i32, i64, isize);

/// Uniform integer in `[0, span)` via Lemire's widening-multiply method
/// with rejection, so there is no modulo bias.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let wide = (rng.next_u64() as u128) * (span as u128);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: xoshiro256++.
    ///
    /// Same seed ⇒ same stream, on every platform — the property the
    /// workspace's reproducible generators rely on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10..20u32);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(1..=3u32);
            assert!((1..=3).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_range_full_signed_domain() {
        let mut rng = StdRng::seed_from_u64(11);
        let (mut neg, mut pos) = (false, false);
        for _ in 0..1000 {
            let x = rng.gen_range(i32::MIN..=i32::MAX);
            neg |= x < 0;
            pos |= x > 0;
            let y = rng.gen_range(i64::MIN..0);
            assert!(y < 0);
        }
        assert!(neg && pos, "full-domain sampling must cover both signs");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u32> = (0..16).map(|_| a.gen_range(0..u32::MAX)).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.gen_range(0..u32::MAX)).collect();
        assert_ne!(va, vb);
    }
}
