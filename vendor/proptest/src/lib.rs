//! Offline vendored stub of the [`proptest`](https://crates.io/crates/proptest)
//! property-testing API, covering the subset this workspace's integration
//! tests use:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//! * integer range strategies (`0..n`, `2..=max`), tuple strategies,
//! * [`collection::vec`] with exact, half-open, or inclusive size ranges,
//! * [`bool::ANY`],
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_assert_ne!`] macros, and
//! * [`test_runner::ProptestConfig`] honouring the `PROPTEST_CASES`
//!   environment variable.
//!
//! The build container has no network access to crates.io, so the workspace
//! wires `proptest = { path = "vendor/proptest" }`. Design differences from
//! upstream, chosen deliberately:
//!
//! * **Deterministic by construction.** Case `i` of every test draws from a
//!   fixed SplitMix64 stream seeded by `i`, so `cargo test` is byte-for-byte
//!   reproducible with no persistence files. Consequently there is no
//!   `proptest-regressions/` directory to manage (the repo still gitignores
//!   it, so a future upgrade to real proptest cannot accidentally commit
//!   failure seeds without a decision).
//! * **No shrinking.** A failing case panics immediately with the case
//!   number; rerunning reproduces it exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of type `Value`, mirroring
    /// `proptest::strategy::Strategy` (minus shrinking).
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Builds a second strategy from each generated value and draws
        /// from it — the standard way to make sizes and contents covary.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields clones of one value, mirroring
    /// `proptest::strategy::Just`.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    // Wrapping: for signed types the offset may exceed the
                    // positive half of the domain; the wrap-around still
                    // lands inside [start, end).
                    self.start.wrapping_add(rng.below(span) as $ty)
                }
            }

            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        return start.wrapping_add(rng.next_u64() as $ty);
                    }
                    start.wrapping_add(rng.below(span) as $ty)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod collection {
    //! Strategies for collections, mirroring `proptest::collection`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A size specification for [`vec`]: an exact length, `lo..hi`, or
    /// `lo..=hi`, mirroring `proptest::collection::SizeRange`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Strategies for `bool`, mirroring `proptest::bool`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `true` and `false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical instance of [`Any`].
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod test_runner {
    //! Configuration and the deterministic RNG driving each test case.

    /// Runner configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// The case count actually used: `PROPTEST_CASES` (if set and
        /// parseable) overrides the in-source value, exactly like upstream
        /// proptest, so CI can dial effort up or down without edits.
        pub fn resolved_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES") {
                Ok(v) => v
                    .trim()
                    .parse()
                    .map(|n: u32| n.max(1))
                    .unwrap_or(self.cases),
                Err(_) => self.cases,
            }
        }
    }

    /// Deterministic per-case RNG, backed by the vendored `rand` stub
    /// (upstream proptest likewise builds on `rand`), so the uniform
    /// sampling logic lives in exactly one place.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        /// The fixed generator for case number `case` of a property —
        /// deterministic across runs and platforms.
        pub fn for_case(case: u64) -> Self {
            use rand::SeedableRng;
            // XOR with a fixed tag so case 0 does not collide with other
            // seed-0 streams in the workspace.
            TestRng {
                inner: rand::rngs::StdRng::seed_from_u64(case ^ 0x51AF_9E3C_0DD5_A1B7),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            rand::RngCore::next_u64(&mut self.inner)
        }

        /// Uniform value in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            rand::Rng::gen_range(&mut self.inner, 0..span)
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop` module alias used as `prop::collection::vec(..)` etc.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Declares deterministic property tests, mirroring `proptest::proptest!`.
///
/// Each `fn name(pat in strategy, ...) { body }` item becomes a `#[test]`
/// (the attribute is written by the caller, as with upstream proptest) that
/// runs the body once per case with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let cases = config.resolved_cases();
            for case in 0..u64::from(cases) {
                let mut rng = $crate::test_runner::TestRng::for_case(case);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let run = || -> ::core::result::Result<(), ::std::string::String> {
                    $body
                    Ok(())
                };
                if let Err(message) = run() {
                    panic!("property failed at case {case}: {message}");
                }
            }
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

/// `assert!` for property bodies, mirroring `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// `assert_eq!` for property bodies, mirroring `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` for property bodies, mirroring `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)*)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..1000 {
            let x = (3..14usize).generate(&mut rng);
            assert!((3..14).contains(&x));
            let y = (1u32..=3).generate(&mut rng);
            assert!((1..=3).contains(&y));
        }
    }

    #[test]
    fn vec_respects_size_specs() {
        let mut rng = TestRng::for_case(1);
        for _ in 0..200 {
            assert_eq!(
                prop::collection::vec(0..5usize, 7).generate(&mut rng).len(),
                7
            );
            let v = prop::collection::vec(0..5usize, 1..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            let w = prop::collection::vec(0..5usize, 2..=3).generate(&mut rng);
            assert!((2..=3).contains(&w.len()));
        }
    }

    #[test]
    fn combinators_compose() {
        let strat = (1..5usize)
            .prop_flat_map(|n| prop::collection::vec(0..10usize, n).prop_map(move |v| (n, v)));
        let mut rng = TestRng::for_case(2);
        for _ in 0..200 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn wide_signed_ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case(4);
        for _ in 0..1000 {
            let x = (i32::MIN..=i32::MAX).generate(&mut rng);
            let _ = x; // any value is in bounds; must not overflow-panic
            let y = (i64::MIN..0).generate(&mut rng);
            assert!(y < 0);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let strat = prop::collection::vec((0..100usize, prop::bool::ANY), 0..20);
        let a = strat.generate(&mut TestRng::for_case(9));
        let b = strat.generate(&mut TestRng::for_case(9));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_runnable_tests(x in 0..50usize, flip in prop::bool::ANY) {
            prop_assert!(x < 50);
            prop_assert_eq!(flip, flip);
            prop_assert_ne!(x, x + 1);
        }

        #[test]
        fn tuple_patterns_bind((a, b) in (0..10usize, 0..10usize)) {
            prop_assert!(a < 10 && b < 10);
        }
    }
}
