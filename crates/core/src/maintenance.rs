//! Incremental maintenance façade (Section 5).
//!
//! [`MaintainedReachability`] and [`MaintainedPattern`] own the data graph
//! together with its compression and keep the two in sync under edge
//! updates: `R(G ⊕ ΔG) = Gr ⊕ ΔGr`, computed by `incRCM` / `incPCM` without
//! recompression.

use qpgc_graph::update::PartitionDelta;
use qpgc_graph::{LabeledGraph, NodeId, UpdateBatch};
use qpgc_pattern::compress::PatternCompression;
use qpgc_pattern::incremental::{IncPatternStats, IncrementalPattern, StablePatternQuotient};
use qpgc_pattern::pattern::{MatchRelation, Pattern};
use qpgc_reach::compress::ReachCompression;
use qpgc_reach::equivalence::ReachPartition;
use qpgc_reach::incremental::{IncStats, IncrementalReach, StableQuotient};

use crate::queries::ReachQuery;

/// A data graph plus its incrementally-maintained reachability-preserving
/// compression.
#[derive(Clone, Debug)]
pub struct MaintainedReachability {
    graph: LabeledGraph,
    inc: IncrementalReach,
    threads: usize,
}

impl MaintainedReachability {
    /// Compresses `g` and takes ownership of it for future maintenance.
    pub fn new(g: LabeledGraph) -> Self {
        Self::new_with_threads(g, 1)
    }

    /// [`MaintainedReachability::new`] with an explicit worker count for
    /// the compression kernels (`0` = available parallelism), remembered
    /// for every later recompute — including the from-scratch recompression
    /// on the failure-recovery path. Parallel and sequential kernels
    /// produce bit-identical partitions, so stable-id determinism (and with
    /// it every differential guarantee) is unaffected by the knob.
    pub fn new_with_threads(g: LabeledGraph, threads: usize) -> Self {
        let inc = IncrementalReach::new_with_threads(&g, threads);
        MaintainedReachability {
            graph: g,
            inc,
            threads,
        }
    }

    /// The current data graph `G`.
    pub fn graph(&self) -> &LabeledGraph {
        &self.graph
    }

    /// Number of hypernodes in the maintained compression.
    pub fn class_count(&self) -> usize {
        self.inc.class_count()
    }

    /// Applies `ΔG`, updating both the graph and its compression.
    pub fn apply(&mut self, batch: &UpdateBatch) -> IncStats {
        self.inc.apply(&mut self.graph, batch)
    }

    /// [`MaintainedReachability::apply`] that also exports the structured
    /// [`PartitionDelta`] — the input of delta-patched snapshot
    /// construction in serving layers.
    pub fn apply_with_delta(&mut self, batch: &UpdateBatch) -> (IncStats, PartitionDelta) {
        self.inc.apply_with_delta(&mut self.graph, batch)
    }

    /// Answers a reachability query through the compressed form.
    pub fn answer(&self, query: &ReachQuery) -> bool {
        self.inc.query(query.from, query.to)
    }

    /// Materializes the current compression (a transitively reduced `Gr`
    /// plus node ↔ hypernode indexes).
    pub fn compression(&self) -> ReachCompression {
        self.inc.to_compression()
    }

    /// Exports the current partition (node → hypernode index, member lists,
    /// cyclic flags) with dense class ids, *without* materializing `Gr`.
    /// This is the snapshot-export hook for serving layers that build their
    /// own read-optimized quotient representation — pair it with
    /// [`MaintainedReachability::graph`] to materialize class edges.
    pub fn partition(&self) -> ReachPartition {
        self.inc.partition()
    }

    /// Exports the current state under **stable** class ids (node → class
    /// index, cyclic/liveness flags, unreduced inter-class edges). Stable
    /// ids survive across updates for untouched classes, which is what lets
    /// snapshot layers patch their per-class structures from a
    /// [`PartitionDelta`] instead of rebuilding them; see
    /// [`StableQuotient`].
    pub fn stable_quotient(&self) -> StableQuotient {
        self.inc.stable_quotient()
    }

    /// Restores the maintained state after a *failed* (panicked or aborted)
    /// application of the normalized batch `norm` — the panic-isolation
    /// half of a fault-tolerant store.
    ///
    /// The incremental algorithm mutates the data graph at one point
    /// (`norm.apply_to`, all-or-mostly-nothing) before touching the
    /// partition state, but a panic can in principle interrupt anywhere, so
    /// recovery checks each normalized update individually: a normalized
    /// update by construction *changes* the edge set, so the edge's current
    /// presence tells exactly whether that update took effect, and only
    /// effective updates are inverted. The partition state is then rebuilt
    /// by recompressing the restored graph — a from-scratch cost paid only
    /// on the failure path.
    ///
    /// Recompression assigns **fresh stable ids**; callers that patched
    /// derived structures keyed by the old ids (served snapshots) must
    /// rebuild those structures from scratch on the next publication
    /// instead of patching.
    pub fn recover_from_failed(&mut self, norm: &UpdateBatch) {
        undo_effective(&mut self.graph, norm);
        self.inc = IncrementalReach::new_with_threads(&self.graph, self.threads);
    }
}

/// Reverts the updates of a *normalized* batch that actually took effect:
/// a normalized insert's edge is present iff the insert ran, and a
/// normalized delete's edge is absent iff the delete ran (normalization
/// guarantees one net update per edge, so the per-edge check is exact).
fn undo_effective(g: &mut LabeledGraph, norm: &UpdateBatch) {
    for u in norm.updates().iter().rev() {
        let (a, b) = u.edge();
        if u.is_insert() {
            if g.has_edge(a, b) {
                g.remove_edge(a, b);
            }
        } else if !g.has_edge(a, b) {
            g.add_edge(a, b);
        }
    }
}

/// A data graph plus its incrementally-maintained pattern-preserving
/// compression.
#[derive(Clone, Debug)]
pub struct MaintainedPattern {
    graph: LabeledGraph,
    inc: IncrementalPattern,
    threads: usize,
}

impl MaintainedPattern {
    /// Compresses `g` and takes ownership of it for future maintenance.
    pub fn new(g: LabeledGraph) -> Self {
        Self::new_with_threads(g, 1)
    }

    /// [`MaintainedPattern::new`] with an explicit worker count for the
    /// refinement kernel (`0` = available parallelism) — the bisimulation
    /// mirror of [`MaintainedReachability::new_with_threads`], with the
    /// same bit-identical-partition guarantee.
    pub fn new_with_threads(g: LabeledGraph, threads: usize) -> Self {
        let inc = IncrementalPattern::new_with_threads(&g, threads);
        MaintainedPattern {
            graph: g,
            inc,
            threads,
        }
    }

    /// The current data graph `G`.
    pub fn graph(&self) -> &LabeledGraph {
        &self.graph
    }

    /// Number of hypernodes in the maintained compression.
    pub fn class_count(&self) -> usize {
        self.inc.class_count()
    }

    /// Applies `ΔG`, updating both the graph and its compression.
    pub fn apply(&mut self, batch: &UpdateBatch) -> IncPatternStats {
        self.inc.apply(&mut self.graph, batch)
    }

    /// [`MaintainedPattern::apply`] that also exports the structured
    /// [`PartitionDelta`] of the bisimulation partition.
    pub fn apply_with_delta(&mut self, batch: &UpdateBatch) -> (IncPatternStats, PartitionDelta) {
        self.inc.apply_with_delta(&mut self.graph, batch)
    }

    /// The hypernode of `Gr` that currently contains `v`.
    pub fn class_of(&self, v: NodeId) -> u32 {
        self.inc.class_of(v)
    }

    /// Answers a pattern query by evaluating it on the maintained compressed
    /// graph and expanding hypernodes (the paper's Fig. 12(h) strategy:
    /// `incPCM` + `Match` on `Gr`).
    pub fn answer(&self, query: &Pattern) -> Option<MatchRelation> {
        let compression = self.inc.to_compression();
        let on_gr = qpgc_pattern::bounded::bounded_match(&compression.graph, query)?;
        Some(compression.post_process(&on_gr))
    }

    /// Materializes the current compression.
    pub fn compression(&self) -> PatternCompression {
        self.inc.to_compression()
    }

    /// Exports the current state under **stable** class ids (node → class
    /// index, labels, liveness, member lists, maintained quotient edges).
    /// Stable ids survive across updates for untouched classes, which is
    /// what lets snapshot layers patch a served
    /// [`PatternView`](qpgc_pattern::view::PatternView) from a
    /// [`PartitionDelta`] instead of re-materializing the compression; see
    /// [`StablePatternQuotient`].
    pub fn stable_quotient(&self) -> StablePatternQuotient {
        self.inc.stable_quotient()
    }

    /// [`MaintainedPattern::stable_quotient`] with member lists left empty —
    /// what snapshot layers feed to `PatternView::apply_delta`, which takes
    /// churned members from the [`PartitionDelta`] and carries the rest over
    /// from the previous view, so the full per-class member clone would be
    /// pure waste on the patch path.
    pub fn stable_quotient_without_members(&self) -> StablePatternQuotient {
        self.inc.stable_quotient_without_members()
    }

    /// Restores the maintained state after a failed application of the
    /// normalized batch `norm` — the bisimulation-side mirror of
    /// [`MaintainedReachability::recover_from_failed`], with the same
    /// fresh-stable-ids caveat.
    pub fn recover_from_failed(&mut self, norm: &UpdateBatch) {
        undo_effective(&mut self.graph, norm);
        self.inc = IncrementalPattern::new_with_threads(&self.graph, self.threads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpgc_pattern::bounded::bounded_match;

    fn sample() -> LabeledGraph {
        let mut g = LabeledGraph::new();
        let a = g.add_node_with_label("A");
        let b1 = g.add_node_with_label("B");
        let b2 = g.add_node_with_label("B");
        let c = g.add_node_with_label("C");
        g.add_edge(a, b1);
        g.add_edge(a, b2);
        g.add_edge(b1, c);
        g.add_edge(b2, c);
        g
    }

    #[test]
    fn maintained_reachability_tracks_updates() {
        let g = sample();
        let mut m = MaintainedReachability::new(g);
        assert_eq!(m.class_count(), 3);
        assert!(m.answer(&ReachQuery::new(NodeId(0), NodeId(3))));

        let mut batch = UpdateBatch::new();
        batch.delete(NodeId(1), NodeId(3));
        m.apply(&batch);
        assert!(!m.answer(&ReachQuery::new(NodeId(1), NodeId(3))));
        assert!(m.answer(&ReachQuery::new(NodeId(2), NodeId(3))));
        // The maintained compression agrees with recompressing from scratch.
        let scratch = qpgc_reach::compress::compress_r(m.graph());
        assert_eq!(
            m.compression().partition.canonical(),
            scratch.partition.canonical()
        );
        // The snapshot-export partition is the materialized one.
        assert_eq!(m.partition().class_of, m.compression().partition.class_of);
    }

    #[test]
    fn maintained_pattern_tracks_updates() {
        let g = sample();
        let mut m = MaintainedPattern::new(g);
        let mut q = Pattern::new();
        let a = q.add_node("A");
        let b = q.add_node("B");
        let c = q.add_node("C");
        q.add_edge(a, b, 1);
        q.add_edge(b, c, 1);
        assert!(m.answer(&q).is_some());

        let mut batch = UpdateBatch::new();
        batch.delete(NodeId(1), NodeId(3));
        batch.delete(NodeId(2), NodeId(3));
        m.apply(&batch);
        assert!(m.answer(&q).is_none());
        assert!(bounded_match(m.graph(), &q).is_none());

        let scratch = qpgc_pattern::compress::compress_b(m.graph());
        assert_eq!(
            m.compression().partition.canonical(),
            scratch.partition.canonical()
        );
    }

    #[test]
    fn maintained_pattern_answers_match_direct_evaluation() {
        let g = sample();
        let mut m = MaintainedPattern::new(g);
        let mut batch = UpdateBatch::new();
        batch.insert(NodeId(3), NodeId(0));
        m.apply(&batch);

        let mut q = Pattern::new();
        let a = q.add_node("A");
        let c = q.add_node("C");
        q.add_edge(c, a, 1);
        let via_compression = m.answer(&q).unwrap();
        let direct = bounded_match(m.graph(), &q).unwrap();
        assert_eq!(via_compression.canonical(), direct.canonical());
    }
}
