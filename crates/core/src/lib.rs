//! # qpgc — Query Preserving Graph Compression
//!
//! A Rust implementation of *"Query Preserving Graph Compression"* (Wenfei
//! Fan, Jianzhong Li, Xin Wang, Yinghui Wu — SIGMOD 2012).
//!
//! The idea: instead of lowering the complexity of graph queries, shrink
//! their *input*. For a class `Q` of queries, a query preserving compression
//! is a triple `<R, F, P>` where `R` maps a data graph `G` to a smaller
//! graph `Gr`, `F` rewrites queries, and `P` post-processes answers, such
//! that for every query `Q ∈ Q`:
//!
//! ```text
//! Q(G) = P( F(Q)(Gr) )
//! ```
//!
//! and — crucially — any existing evaluation algorithm for `Q` runs on `Gr`
//! unchanged. This crate packages the two instantiations developed in the
//! paper:
//!
//! * **Reachability preserving compression** ([`ReachabilityScheme`],
//!   Section 3): `R` groups nodes with identical ancestors and descendants
//!   and keeps a transitively-reduced quotient; real-life graphs shrink by
//!   ~95 %. `F` is a constant-time node-to-hypernode lookup; no `P` needed.
//! * **Pattern preserving compression** ([`PatternScheme`], Section 4): `R`
//!   is the bisimulation quotient; graphs shrink by ~57 %. `F` is the
//!   identity and `P` expands hypernodes in the match relation.
//!
//! Both schemes support **incremental maintenance** (Section 5) through
//! [`maintenance::MaintainedReachability`] and
//! [`maintenance::MaintainedPattern`]: apply edge insertions/deletions to
//! the original graph and the compressed form follows, without
//! recompression and without touching the unaffected part of `G`.
//!
//! ## Quick start
//!
//! ```
//! use qpgc::prelude::*;
//!
//! // Build a small recommendation network.
//! let mut g = LabeledGraph::new();
//! let bsa1 = g.add_node_with_label("BSA");
//! let bsa2 = g.add_node_with_label("BSA");
//! let fa = g.add_node_with_label("FA");
//! let c = g.add_node_with_label("C");
//! g.add_edge(bsa1, fa);
//! g.add_edge(bsa2, fa);
//! g.add_edge(fa, c);
//!
//! // Reachability: compress once, answer any reachability query on Gr.
//! let reach = ReachabilityScheme::compress(&g);
//! assert!(reach.answer(&ReachQuery::new(bsa1, c)));
//! assert!(!reach.answer(&ReachQuery::new(c, bsa1)));
//!
//! // Patterns: compress once, evaluate patterns on Gr, expand with P.
//! let pat = PatternScheme::compress(&g);
//! let mut q = Pattern::new();
//! let qb = q.add_node("BSA");
//! let qc = q.add_node("C");
//! q.add_edge(qb, qc, 2);
//! let answer = pat.answer(&q).expect("pattern matches");
//! assert_eq!(answer.matches_of(qb).len(), 2); // both BSAs
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod maintenance;
pub mod queries;
pub mod scheme;
pub mod sharding;

pub use queries::ReachQuery;
pub use scheme::{PatternScheme, QueryPreservingCompression, ReachabilityScheme};

// Re-export the building blocks so downstream users need only one crate.
pub use qpgc_graph as graph;
pub use qpgc_pattern as pattern_engine;
pub use qpgc_reach as reach_engine;

/// Convenient glob import for examples and applications.
pub mod prelude {
    pub use crate::maintenance::{MaintainedPattern, MaintainedReachability};
    pub use crate::queries::ReachQuery;
    pub use crate::scheme::{PatternScheme, QueryPreservingCompression, ReachabilityScheme};
    pub use qpgc_graph::{GraphStats, LabeledGraph, NodeId, Update, UpdateBatch};
    pub use qpgc_pattern::pattern::{EdgeBound, MatchRelation, Pattern};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn doc_example_compiles_and_runs() {
        let mut g = LabeledGraph::new();
        let a = g.add_node_with_label("A");
        let b = g.add_node_with_label("B");
        g.add_edge(a, b);
        let reach = ReachabilityScheme::compress(&g);
        assert!(reach.answer(&ReachQuery::new(a, b)));
        let pat = PatternScheme::compress(&g);
        let mut q = Pattern::new();
        let qa = q.add_node("A");
        let qb = q.add_node("B");
        q.add_edge(qa, qb, 1);
        assert!(pat.answer(&q).is_some());
    }
}
