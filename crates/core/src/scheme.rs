//! The `<R, F, P>` abstraction (Section 2.2, Fig. 3) and its two
//! instantiations.

use qpgc_graph::{LabeledGraph, NodeId};
use qpgc_pattern::compress::{compress_b, PatternCompression};
use qpgc_pattern::pattern::{MatchRelation, Pattern};
use qpgc_reach::compress::{compress_r, ReachCompression};

use crate::queries::ReachQuery;

/// A query preserving compression `<R, F, P>` for a class of queries.
///
/// * `compress` is the compression function `R`;
/// * `rewrite` is the query rewriting function `F`;
/// * `answer` evaluates the rewritten query on the compressed graph and
///   applies the post-processing function `P`, so that
///   `answer(q) == q`'s answer on the original graph.
///
/// The compressed graph is an ordinary [`LabeledGraph`]: any algorithm that
/// evaluates the query class on original graphs runs on it unchanged (the
/// paper's "no decompression" property).
pub trait QueryPreservingCompression: Sized {
    /// The query class `Q` this compression preserves.
    type Query;
    /// The rewritten-query type produced by `F` (usually the same as
    /// `Query`).
    type Rewritten;
    /// The answer type of the query class.
    type Answer;

    /// The compression function `R`.
    fn compress(g: &LabeledGraph) -> Self;

    /// The compressed graph `Gr = R(G)`.
    fn compressed_graph(&self) -> &LabeledGraph;

    /// The query rewriting function `F`.
    fn rewrite(&self, query: &Self::Query) -> Self::Rewritten;

    /// Evaluates `query` against the compressed graph (running `F`, an
    /// ordinary evaluation algorithm on `Gr`, and `P`).
    fn answer(&self, query: &Self::Query) -> Self::Answer;

    /// The compression ratio `|Gr| / |G|` against a given original graph.
    fn ratio(&self, original: &LabeledGraph) -> f64 {
        qpgc_graph::stats::compression_ratio(original, self.compressed_graph())
    }
}

/// Reachability preserving compression (Section 3): wraps
/// [`qpgc_reach::compress::ReachCompression`] behind the `<R, F, P>` trait.
#[derive(Clone, Debug)]
pub struct ReachabilityScheme {
    inner: ReachCompression,
}

impl ReachabilityScheme {
    /// Access to the underlying compression (partition, members, …).
    pub fn inner(&self) -> &ReachCompression {
        &self.inner
    }
}

impl QueryPreservingCompression for ReachabilityScheme {
    type Query = ReachQuery;
    /// `F(QR(v, w)) = QR(R(v), R(w))` — a pair of hypernodes of `Gr`.
    type Rewritten = (NodeId, NodeId);
    type Answer = bool;

    fn compress(g: &LabeledGraph) -> Self {
        ReachabilityScheme {
            inner: compress_r(g),
        }
    }

    fn compressed_graph(&self) -> &LabeledGraph {
        &self.inner.graph
    }

    fn rewrite(&self, query: &ReachQuery) -> (NodeId, NodeId) {
        self.inner.rewrite(query.from, query.to)
    }

    fn answer(&self, query: &ReachQuery) -> bool {
        self.inner.query(query.from, query.to)
    }
}

/// Graph pattern preserving compression (Section 4): wraps
/// [`qpgc_pattern::compress::PatternCompression`] behind the `<R, F, P>`
/// trait.
#[derive(Clone, Debug)]
pub struct PatternScheme {
    inner: PatternCompression,
}

impl PatternScheme {
    /// Access to the underlying compression (partition, members, …).
    pub fn inner(&self) -> &PatternCompression {
        &self.inner
    }

    /// The post-processing function `P` by itself: expands an answer
    /// computed on `Gr` to an answer on `G`. Exposed so callers that run
    /// their own evaluation algorithm on the compressed graph can still
    /// recover original-graph answers.
    pub fn post_process(&self, on_compressed: &MatchRelation) -> MatchRelation {
        self.inner.post_process(on_compressed)
    }
}

impl QueryPreservingCompression for PatternScheme {
    type Query = Pattern;
    /// `F` is the identity mapping (Theorem 4).
    type Rewritten = Pattern;
    type Answer = Option<MatchRelation>;

    fn compress(g: &LabeledGraph) -> Self {
        PatternScheme {
            inner: compress_b(g),
        }
    }

    fn compressed_graph(&self) -> &LabeledGraph {
        &self.inner.graph
    }

    fn rewrite(&self, query: &Pattern) -> Pattern {
        query.clone()
    }

    fn answer(&self, query: &Pattern) -> Option<MatchRelation> {
        let on_gr = qpgc_pattern::bounded::bounded_match(&self.inner.graph, query)?;
        Some(self.inner.post_process(&on_gr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpgc_pattern::bounded::bounded_match;

    fn sample() -> (LabeledGraph, Vec<NodeId>) {
        let mut g = LabeledGraph::new();
        let ids = vec![
            g.add_node_with_label("A"),
            g.add_node_with_label("B"),
            g.add_node_with_label("B"),
            g.add_node_with_label("C"),
        ];
        g.add_edge(ids[0], ids[1]);
        g.add_edge(ids[0], ids[2]);
        g.add_edge(ids[1], ids[3]);
        g.add_edge(ids[2], ids[3]);
        (g, ids)
    }

    #[test]
    fn reachability_scheme_preserves_queries() {
        let (g, ids) = sample();
        let scheme = ReachabilityScheme::compress(&g);
        for &u in &ids {
            for &v in &ids {
                let q = ReachQuery::new(u, v);
                assert_eq!(scheme.answer(&q), q.evaluate(&g), "query {q:?}");
            }
        }
        assert!(scheme.ratio(&g) <= 1.0);
        assert!(scheme.compressed_graph().node_count() < g.node_count());
        // F maps the two B nodes to the same hypernode.
        let (r1, _) = scheme.rewrite(&ReachQuery::new(ids[1], ids[3]));
        let (r2, _) = scheme.rewrite(&ReachQuery::new(ids[2], ids[3]));
        assert_eq!(r1, r2);
    }

    #[test]
    fn pattern_scheme_preserves_queries() {
        let (g, _) = sample();
        let scheme = PatternScheme::compress(&g);
        let mut q = Pattern::new();
        let a = q.add_node("A");
        let b = q.add_node("B");
        let c = q.add_node("C");
        q.add_edge(a, b, 1);
        q.add_edge(b, c, 1);
        let direct = bounded_match(&g, &q).unwrap();
        let via_scheme = scheme.answer(&q).unwrap();
        assert_eq!(direct.canonical(), via_scheme.canonical());
        assert_eq!(scheme.rewrite(&q), q);
        assert!(scheme.ratio(&g) <= 1.0);
    }

    #[test]
    fn pattern_scheme_boolean_negative() {
        let (g, _) = sample();
        let scheme = PatternScheme::compress(&g);
        let mut q = Pattern::new();
        let c = q.add_node("C");
        let a = q.add_node("A");
        q.add_edge(c, a, 1);
        assert!(scheme.answer(&q).is_none());
        assert!(bounded_match(&g, &q).is_none());
    }

    #[test]
    fn manual_post_processing_path() {
        let (g, _) = sample();
        let scheme = PatternScheme::compress(&g);
        let mut q = Pattern::new();
        let a = q.add_node("A");
        let b = q.add_node("B");
        q.add_edge(a, b, 1);
        // Run "any algorithm" on the compressed graph ourselves, then apply P.
        let on_gr = bounded_match(scheme.compressed_graph(), &q).unwrap();
        let expanded = scheme.post_process(&on_gr);
        let direct = bounded_match(&g, &q).unwrap();
        assert_eq!(expanded.canonical(), direct.canonical());
    }
}
