//! Query types shared by the compression schemes.

use qpgc_graph::{LabeledGraph, NodeId};

/// A reachability query `QR(from, to)`: "can `from` reach `to`?" (Section
/// 2.1). Evaluation on the original graph uses BFS; evaluation through a
/// compression rewrites the endpoints to hypernodes first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ReachQuery {
    /// Source node (in the graph the query is *posed* against).
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
}

impl ReachQuery {
    /// Creates the query `QR(from, to)`.
    pub fn new(from: NodeId, to: NodeId) -> Self {
        ReachQuery { from, to }
    }

    /// Evaluates the query directly on a graph with BFS (the baseline the
    /// paper compares compressed evaluation against).
    pub fn evaluate(&self, g: &LabeledGraph) -> bool {
        qpgc_graph::traversal::bfs_reachable(g, self.from, self.to)
    }

    /// Evaluates the query directly on a graph with bidirectional BFS.
    pub fn evaluate_bidirectional(&self, g: &LabeledGraph) -> bool {
        qpgc_graph::traversal::bidirectional_reachable(g, self.from, self.to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_matches_both_algorithms() {
        let mut g = LabeledGraph::new();
        let a = g.add_node_with_label("A");
        let b = g.add_node_with_label("B");
        let c = g.add_node_with_label("C");
        g.add_edge(a, b);
        g.add_edge(b, c);
        let q = ReachQuery::new(a, c);
        assert!(q.evaluate(&g));
        assert!(q.evaluate_bidirectional(&g));
        let back = ReachQuery::new(c, a);
        assert!(!back.evaluate(&g));
        assert!(!back.evaluate_bidirectional(&g));
    }
}
