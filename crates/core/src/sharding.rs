//! Batch slicing by node partition — the update-side half of sharded
//! serving.
//!
//! A [`NodePartition`] assigns every node to one shard; an update whose
//! edge stays within a shard belongs to that shard's writer, while an
//! update crossing shards touches no shard subgraph and is routed to the
//! router's boundary graph instead. [`slice_batch`] performs that split
//! once, up front, so the per-shard writers can run concurrently on
//! disjoint slices with no coordination.

use qpgc_graph::{NodePartition, UpdateBatch};

/// One [`UpdateBatch`] split by a [`NodePartition`]: the intra-shard slice
/// per shard (application order preserved within each slice) plus the
/// cross-shard remainder destined for the boundary graph.
#[derive(Clone, Debug)]
pub struct SlicedBatch {
    /// `per_shard[s]` — the updates whose edges live entirely in shard `s`.
    /// Always `partition.shards()` entries; untouched shards get an empty
    /// batch (their writers still republish, which is what keeps every
    /// shard's version aligned with the router watermark).
    pub per_shard: Vec<UpdateBatch>,
    /// Updates whose edges cross shards, in application order — boundary
    /// graph currency, never applied to any shard subgraph.
    pub cross: UpdateBatch,
}

impl SlicedBatch {
    /// Total number of updates across all slices (`|ΔG|`).
    pub fn len(&self) -> usize {
        self.cross.len() + self.per_shard.iter().map(UpdateBatch::len).sum::<usize>()
    }

    /// `true` when every slice is empty.
    pub fn is_empty(&self) -> bool {
        self.cross.is_empty() && self.per_shard.iter().all(UpdateBatch::is_empty)
    }
}

/// Splits `batch` into per-shard intra slices and the cross-shard
/// remainder under `part`. Every update lands in exactly one slice, and
/// relative order is preserved within each slice — which is all the
/// incremental maintainers need, since updates in different slices touch
/// disjoint edge sets by construction.
pub fn slice_batch(batch: &UpdateBatch, part: &NodePartition) -> SlicedBatch {
    let mut per_shard = vec![UpdateBatch::new(); part.shards()];
    let mut cross = UpdateBatch::new();
    for u in batch.updates() {
        let (a, b) = u.edge();
        let sa = part.shard_of(a);
        let target = if sa == part.shard_of(b) {
            &mut per_shard[sa]
        } else {
            &mut cross
        };
        if u.is_insert() {
            target.insert(a, b);
        } else {
            target.delete(a, b);
        }
    }
    SlicedBatch { per_shard, cross }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpgc_graph::NodeId;

    #[test]
    fn every_update_lands_in_exactly_one_slice() {
        let part = NodePartition::new(3);
        let mut batch = UpdateBatch::new();
        for i in 0..40u32 {
            let u = NodeId(i);
            let v = NodeId((i * 7 + 3) % 40);
            if i % 2 == 0 {
                batch.insert(u, v);
            } else {
                batch.delete(u, v);
            }
        }
        let sliced = slice_batch(&batch, &part);
        assert_eq!(sliced.per_shard.len(), 3);
        assert_eq!(sliced.len(), batch.len());
        for (s, slice) in sliced.per_shard.iter().enumerate() {
            for u in slice.updates() {
                let (a, b) = u.edge();
                assert_eq!(part.shard_of(a), s);
                assert_eq!(part.shard_of(b), s);
            }
        }
        for u in sliced.cross.updates() {
            let (a, b) = u.edge();
            assert!(part.is_boundary(a, b));
        }
    }

    #[test]
    fn one_shard_slicing_is_the_identity() {
        let part = NodePartition::new(1);
        let mut batch = UpdateBatch::new();
        batch
            .insert(NodeId(0), NodeId(9))
            .delete(NodeId(4), NodeId(2));
        let sliced = slice_batch(&batch, &part);
        assert!(sliced.cross.is_empty());
        assert_eq!(sliced.per_shard[0], batch);
        assert!(!sliced.is_empty());
        assert!(slice_batch(&UpdateBatch::new(), &part).is_empty());
    }

    #[test]
    fn kind_and_order_survive_slicing() {
        let part = NodePartition::new(4);
        // Find two nodes sharing a shard and two crossing, then interleave.
        let mut same = None;
        let mut diff = None;
        for v in 1..200u32 {
            if part.shard_of(NodeId(0)) == part.shard_of(NodeId(v)) {
                same.get_or_insert(v);
            } else {
                diff.get_or_insert(v);
            }
        }
        let (same, diff) = (same.unwrap(), diff.unwrap());
        let mut batch = UpdateBatch::new();
        batch
            .insert(NodeId(0), NodeId(same))
            .insert(NodeId(0), NodeId(diff))
            .delete(NodeId(0), NodeId(same));
        let sliced = slice_batch(&batch, &part);
        let home = part.shard_of(NodeId(0));
        let slice = &sliced.per_shard[home];
        assert_eq!(slice.len(), 2);
        assert!(slice.updates()[0].is_insert());
        assert!(!slice.updates()[1].is_insert());
        assert_eq!(sliced.cross.len(), 1);
        assert!(sliced.cross.updates()[0].is_insert());
    }
}
