//! Batch slicing by node partition — the update-side half of sharded
//! serving.
//!
//! A [`NodePartition`] assigns every node to one shard; an update whose
//! edge stays within a shard belongs to that shard's writer, while an
//! update crossing shards touches no shard subgraph and is routed to the
//! router's boundary graph instead. [`slice_batch`] performs that split
//! once, up front, so the per-shard writers can run concurrently on
//! disjoint slices with no coordination.

use qpgc_graph::{NodePartition, UpdateBatch};

/// One [`UpdateBatch`] split by a [`NodePartition`]: the intra-shard slice
/// per shard (application order preserved within each slice) plus the
/// cross-shard remainder destined for the boundary graph.
#[derive(Clone, Debug)]
pub struct SlicedBatch {
    /// `per_shard[s]` — the updates whose edges live entirely in shard `s`.
    /// Always `partition.shards()` entries; untouched shards get an empty
    /// batch (their writers still republish, which is what keeps every
    /// shard's version aligned with the router watermark).
    pub per_shard: Vec<UpdateBatch>,
    /// Updates whose edges cross shards, in application order — boundary
    /// graph currency, never applied to any shard subgraph.
    pub cross: UpdateBatch,
}

impl SlicedBatch {
    /// Total number of updates across all slices (`|ΔG|`).
    pub fn len(&self) -> usize {
        self.cross.len() + self.per_shard.iter().map(UpdateBatch::len).sum::<usize>()
    }

    /// `true` when every slice is empty.
    pub fn is_empty(&self) -> bool {
        self.cross.is_empty() && self.per_shard.iter().all(UpdateBatch::is_empty)
    }
}

/// Splits `batch` into per-shard intra slices and the cross-shard
/// remainder under `part`. Every update lands in exactly one slice, and
/// relative order is preserved within each slice — which is all the
/// incremental maintainers need, since updates in different slices touch
/// disjoint edge sets by construction.
pub fn slice_batch(batch: &UpdateBatch, part: &NodePartition) -> SlicedBatch {
    let mut per_shard = vec![UpdateBatch::new(); part.shards()];
    let mut cross = UpdateBatch::new();
    for u in batch.updates() {
        let (a, b) = u.edge();
        let sa = part.shard_of(a);
        let target = if sa == part.shard_of(b) {
            &mut per_shard[sa]
        } else {
            &mut cross
        };
        if u.is_insert() {
            target.insert(a, b);
        } else {
            target.delete(a, b);
        }
    }
    SlicedBatch { per_shard, cross }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpgc_graph::NodeId;

    #[test]
    fn every_update_lands_in_exactly_one_slice() {
        let part = NodePartition::new(3);
        let mut batch = UpdateBatch::new();
        for i in 0..40u32 {
            let u = NodeId(i);
            let v = NodeId((i * 7 + 3) % 40);
            if i % 2 == 0 {
                batch.insert(u, v);
            } else {
                batch.delete(u, v);
            }
        }
        let sliced = slice_batch(&batch, &part);
        assert_eq!(sliced.per_shard.len(), 3);
        assert_eq!(sliced.len(), batch.len());
        for (s, slice) in sliced.per_shard.iter().enumerate() {
            for u in slice.updates() {
                let (a, b) = u.edge();
                assert_eq!(part.shard_of(a), s);
                assert_eq!(part.shard_of(b), s);
            }
        }
        for u in sliced.cross.updates() {
            let (a, b) = u.edge();
            assert!(part.is_boundary(a, b));
        }
    }

    #[test]
    fn one_shard_slicing_is_the_identity() {
        let part = NodePartition::new(1);
        let mut batch = UpdateBatch::new();
        batch
            .insert(NodeId(0), NodeId(9))
            .delete(NodeId(4), NodeId(2));
        let sliced = slice_batch(&batch, &part);
        assert!(sliced.cross.is_empty());
        assert_eq!(sliced.per_shard[0], batch);
        assert!(!sliced.is_empty());
        assert!(slice_batch(&UpdateBatch::new(), &part).is_empty());
    }

    /// Collects every update of `sliced` back into `(is_insert, edge)`
    /// tuples, shard slices first (in shard order) then the cross slice.
    fn reassemble(sliced: &SlicedBatch) -> Vec<(bool, (NodeId, NodeId))> {
        sliced
            .per_shard
            .iter()
            .chain(std::iter::once(&sliced.cross))
            .flat_map(|slice| slice.updates().iter().map(|u| (u.is_insert(), u.edge())))
            .collect()
    }

    #[test]
    fn empty_batch_slices_to_all_empty_slices() {
        let part = NodePartition::new(4);
        let sliced = slice_batch(&UpdateBatch::new(), &part);
        assert_eq!(sliced.per_shard.len(), 4);
        assert!(sliced.is_empty());
        assert_eq!(sliced.len(), 0);
        assert!(sliced.cross.is_empty());
        assert!(sliced.per_shard.iter().all(UpdateBatch::is_empty));
    }

    #[test]
    fn duplicate_edges_slice_to_the_same_slice_with_multiplicity() {
        let part = NodePartition::new(3);
        let (u, v) = (NodeId(0), NodeId(1));
        let mut batch = UpdateBatch::new();
        batch.insert(u, v).insert(u, v).insert(u, v);
        let sliced = slice_batch(&batch, &part);
        assert_eq!(sliced.len(), 3, "duplicates are not collapsed");
        let mut expected: Vec<(bool, (NodeId, NodeId))> = Vec::new();
        for up in batch.updates() {
            expected.push((up.is_insert(), up.edge()));
        }
        // All three copies land in one slice (same endpoints ⇒ same route).
        let nonempty: Vec<&UpdateBatch> = sliced
            .per_shard
            .iter()
            .chain(std::iter::once(&sliced.cross))
            .filter(|s| !s.is_empty())
            .collect();
        assert_eq!(nonempty.len(), 1);
        assert_eq!(reassemble(&sliced), expected);
    }

    #[test]
    fn self_loops_are_always_intra_shard() {
        let part = NodePartition::new(5);
        let mut batch = UpdateBatch::new();
        for i in 0..20u32 {
            batch.insert(NodeId(i), NodeId(i));
        }
        let sliced = slice_batch(&batch, &part);
        assert!(sliced.cross.is_empty(), "a self-loop cannot cross shards");
        assert_eq!(sliced.len(), batch.len());
        for (s, slice) in sliced.per_shard.iter().enumerate() {
            for up in slice.updates() {
                let (a, b) = up.edge();
                assert_eq!(a, b);
                assert_eq!(part.shard_of(a), s);
            }
        }
    }

    #[test]
    fn all_cross_batch_leaves_every_shard_slice_empty() {
        let part = NodePartition::new(2);
        // Pick endpoint pairs on opposite shards only.
        let mut batch = UpdateBatch::new();
        let mut want = 0;
        for u in 0..40u32 {
            for v in 0..40u32 {
                if part.shard_of(NodeId(u)) != part.shard_of(NodeId(v)) && want < 12 {
                    if want % 2 == 0 {
                        batch.insert(NodeId(u), NodeId(v));
                    } else {
                        batch.delete(NodeId(u), NodeId(v));
                    }
                    want += 1;
                }
            }
        }
        assert_eq!(batch.len(), 12);
        let sliced = slice_batch(&batch, &part);
        assert!(sliced.per_shard.iter().all(UpdateBatch::is_empty));
        assert_eq!(sliced.cross.len(), 12);
        assert_eq!(sliced.cross, batch);
    }

    /// Slice ∪ cross reconstructs the batch exactly: every update appears
    /// in exactly one slice with its kind intact, and a per-slice stable
    /// merge (slices preserve relative order) recovers the original
    /// sequence.
    #[test]
    fn slices_and_cross_reconstruct_the_batch_exactly() {
        let part = NodePartition::new(3);
        let mut batch = UpdateBatch::new();
        for i in 0..60u32 {
            let u = NodeId(i % 17);
            let v = NodeId((i * 13 + 5) % 23);
            if i % 3 == 0 {
                batch.delete(u, v);
            } else {
                batch.insert(u, v);
            }
        }
        let sliced = slice_batch(&batch, &part);
        assert_eq!(sliced.len(), batch.len());
        // Multiset equality: same (kind, edge) tuples, same multiplicities.
        let mut original: Vec<(bool, (NodeId, NodeId))> = batch
            .updates()
            .iter()
            .map(|u| (u.is_insert(), u.edge()))
            .collect();
        let mut rebuilt = reassemble(&sliced);
        original.sort();
        rebuilt.sort();
        assert_eq!(original, rebuilt);
        // Order: replaying the batch and consuming each update from the
        // front of its own slice must drain every slice exactly.
        let mut cursors = vec![0usize; part.shards() + 1];
        for up in batch.updates() {
            let (a, b) = up.edge();
            let sa = part.shard_of(a);
            let (slice, cursor) = if sa == part.shard_of(b) {
                (&sliced.per_shard[sa], &mut cursors[sa])
            } else {
                (&sliced.cross, &mut cursors[part.shards()])
            };
            let got = &slice.updates()[*cursor];
            assert_eq!(got.edge(), up.edge());
            assert_eq!(got.is_insert(), up.is_insert());
            *cursor += 1;
        }
        for (s, slice) in sliced.per_shard.iter().enumerate() {
            assert_eq!(cursors[s], slice.len(), "shard {s} fully consumed");
        }
        assert_eq!(cursors[part.shards()], sliced.cross.len());
    }

    #[test]
    fn kind_and_order_survive_slicing() {
        let part = NodePartition::new(4);
        // Find two nodes sharing a shard and two crossing, then interleave.
        let mut same = None;
        let mut diff = None;
        for v in 1..200u32 {
            if part.shard_of(NodeId(0)) == part.shard_of(NodeId(v)) {
                same.get_or_insert(v);
            } else {
                diff.get_or_insert(v);
            }
        }
        let (same, diff) = (same.unwrap(), diff.unwrap());
        let mut batch = UpdateBatch::new();
        batch
            .insert(NodeId(0), NodeId(same))
            .insert(NodeId(0), NodeId(diff))
            .delete(NodeId(0), NodeId(same));
        let sliced = slice_batch(&batch, &part);
        let home = part.shard_of(NodeId(0));
        let slice = &sliced.per_shard[home];
        assert_eq!(slice.len(), 2);
        assert!(slice.updates()[0].is_insert());
        assert!(!slice.updates()[1].is_insert());
        assert_eq!(sliced.cross.len(), 1);
        assert!(sliced.cross.updates()[0].is_insert());
    }
}
