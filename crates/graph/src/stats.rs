//! Graph statistics used when reporting the paper's measurements.
//!
//! The compression ratios of Tables 1 and 2 are ratios of the `|G| = |V| +
//! |E|` size measure; the memory comparison of Fig. 12(d) uses byte
//! footprints; the dataset descriptions quote label-alphabet sizes and
//! degree skew. [`GraphStats`] gathers all of these in one pass.

use crate::graph::LabeledGraph;

/// Summary statistics of a labeled graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of nodes `|V|`.
    pub nodes: usize,
    /// Number of edges `|E|`.
    pub edges: usize,
    /// The paper's size measure `|G| = |V| + |E|`.
    pub size: usize,
    /// Number of distinct labels in use.
    pub labels: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Average out-degree (`|E| / |V|`, 0 for the empty graph).
    pub avg_degree: f64,
    /// Number of nodes with no outgoing edge.
    pub sinks: usize,
    /// Number of nodes with no incoming edge.
    pub sources: usize,
    /// Approximate heap footprint of the adjacency representation in bytes.
    pub heap_bytes: usize,
}

impl GraphStats {
    /// Computes statistics for `g`.
    pub fn of(g: &LabeledGraph) -> Self {
        let nodes = g.node_count();
        let edges = g.edge_count();
        let mut max_out = 0;
        let mut max_in = 0;
        let mut sinks = 0;
        let mut sources = 0;
        for v in g.nodes() {
            let od = g.out_degree(v);
            let id = g.in_degree(v);
            max_out = max_out.max(od);
            max_in = max_in.max(id);
            if od == 0 {
                sinks += 1;
            }
            if id == 0 {
                sources += 1;
            }
        }
        GraphStats {
            nodes,
            edges,
            size: nodes + edges,
            labels: g.label_alphabet_size(),
            max_out_degree: max_out,
            max_in_degree: max_in,
            avg_degree: if nodes == 0 {
                0.0
            } else {
                edges as f64 / nodes as f64
            },
            sinks,
            sources,
            heap_bytes: g.heap_bytes(),
        }
    }
}

/// The compression ratio `|Gr| / |G|` of the paper (Exp-1), as a fraction in
/// `[0, 1]`. Returns 0 when the original graph is empty.
pub fn compression_ratio(original: &LabeledGraph, compressed: &LabeledGraph) -> f64 {
    let g = original.size();
    if g == 0 {
        return 0.0;
    }
    compressed.size() as f64 / g as f64
}

/// Formats a ratio as the percentage string used in the paper's tables
/// (e.g. `0.0597` → `"5.97%"`).
pub fn ratio_percent(ratio: f64) -> String {
    format!("{:.2}%", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_small_graph() {
        let mut g = LabeledGraph::new();
        let a = g.add_node_with_label("A");
        let b = g.add_node_with_label("B");
        let c = g.add_node_with_label("B");
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, c);
        let s = GraphStats::of(&g);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 3);
        assert_eq!(s.size, 6);
        assert_eq!(s.labels, 2);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.max_in_degree, 2);
        assert_eq!(s.sinks, 1);
        assert_eq!(s.sources, 1);
        assert!((s.avg_degree - 1.0).abs() < 1e-9);
        assert!(s.heap_bytes > 0);
    }

    #[test]
    fn stats_of_empty_graph() {
        let g = LabeledGraph::new();
        let s = GraphStats::of(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.size, 0);
        assert_eq!(s.avg_degree, 0.0);
    }

    #[test]
    fn ratio_and_formatting() {
        let mut g = LabeledGraph::new();
        for _ in 0..8 {
            g.add_node_with_label("X");
        }
        for i in 0..7u32 {
            g.add_edge(crate::NodeId(i), crate::NodeId(i + 1));
        }
        let mut small = LabeledGraph::new();
        small.add_node_with_label("X");
        small.add_node_with_label("X");
        small.add_edge(crate::NodeId(0), crate::NodeId(1));
        let r = compression_ratio(&g, &small);
        assert!((r - 3.0 / 15.0).abs() < 1e-9);
        assert_eq!(ratio_percent(0.0597), "5.97%");
        assert_eq!(compression_ratio(&LabeledGraph::new(), &small), 0.0);
    }
}
