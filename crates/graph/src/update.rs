//! Edge update representation (`ΔG` in the paper).
//!
//! Section 5 studies batch updates: a list of edge insertions and deletions
//! applied to the data graph. [`UpdateBatch`] is that list; it also knows how
//! to apply itself to a [`LabeledGraph`] and how to *normalize* itself
//! (dropping updates that are no-ops against a given graph, and cancelling
//! an insertion immediately followed by a deletion of the same edge), which
//! keeps the incremental algorithms' affected areas honest.

use crate::graph::LabeledGraph;
use crate::ids::NodeId;

/// A single edge update.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Update {
    /// Insert the edge `(from, to)`.
    Insert(NodeId, NodeId),
    /// Delete the edge `(from, to)`.
    Delete(NodeId, NodeId),
}

impl Update {
    /// The edge affected by this update.
    pub fn edge(&self) -> (NodeId, NodeId) {
        match *self {
            Update::Insert(u, v) | Update::Delete(u, v) => (u, v),
        }
    }

    /// `true` for insertions.
    pub fn is_insert(&self) -> bool {
        matches!(self, Update::Insert(_, _))
    }
}

/// A plain list of edges, as returned by [`UpdateBatch::split`].
pub type EdgeList = Vec<(NodeId, NodeId)>;

/// An ordered list of edge updates (`ΔG`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UpdateBatch {
    updates: Vec<Update>,
}

impl UpdateBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a batch from a list of updates.
    pub fn from_updates(updates: Vec<Update>) -> Self {
        UpdateBatch { updates }
    }

    /// Appends an insertion.
    pub fn insert(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.updates.push(Update::Insert(u, v));
        self
    }

    /// Appends a deletion.
    pub fn delete(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.updates.push(Update::Delete(u, v));
        self
    }

    /// The updates, in application order.
    pub fn updates(&self) -> &[Update] {
        &self.updates
    }

    /// Number of updates (`|ΔG|`).
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// `true` when the batch contains no update.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Applies the batch to `g` in order (`G ⊕ ΔG`). Inserting an existing
    /// edge or deleting a missing edge is a silent no-op, mirroring the
    /// paper's set semantics for `E`.
    pub fn apply_to(&self, g: &mut LabeledGraph) {
        for u in &self.updates {
            match *u {
                Update::Insert(a, b) => {
                    g.add_edge(a, b);
                }
                Update::Delete(a, b) => {
                    g.remove_edge(a, b);
                }
            }
        }
    }

    /// Returns a normalized copy of the batch with respect to the *current*
    /// graph `g`:
    ///
    /// * insertions of edges already in `g` are dropped;
    /// * deletions of edges not in `g` are dropped;
    /// * for each edge, only the *net effect* of the batch is kept (an
    ///   insert followed by a delete of the same edge cancels out, and vice
    ///   versa).
    ///
    /// The result applied to `g` yields the same graph as the original
    /// batch, but every remaining update really changes the edge set.
    pub fn normalized(&self, g: &LabeledGraph) -> UpdateBatch {
        use std::collections::HashMap;
        // Net desired state per touched edge: true = present, false = absent.
        let mut desired: HashMap<(NodeId, NodeId), bool> = HashMap::new();
        let mut order: Vec<(NodeId, NodeId)> = Vec::new();
        for u in &self.updates {
            let e = u.edge();
            if !desired.contains_key(&e) {
                order.push(e);
            }
            desired.insert(e, u.is_insert());
        }
        let mut out = UpdateBatch::new();
        for e in order {
            let want = desired[&e];
            let have = g.has_edge(e.0, e.1);
            if want && !have {
                out.insert(e.0, e.1);
            } else if !want && have {
                out.delete(e.0, e.1);
            }
        }
        out
    }

    /// Splits the batch into (insertions, deletions) preserving order within
    /// each kind.
    pub fn split(&self) -> (EdgeList, EdgeList) {
        let mut ins = Vec::new();
        let mut del = Vec::new();
        for u in &self.updates {
            match *u {
                Update::Insert(a, b) => ins.push((a, b)),
                Update::Delete(a, b) => del.push((a, b)),
            }
        }
        (ins, del)
    }
}

impl FromIterator<Update> for UpdateBatch {
    fn from_iter<T: IntoIterator<Item = Update>>(iter: T) -> Self {
        UpdateBatch {
            updates: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> (LabeledGraph, Vec<NodeId>) {
        let mut g = LabeledGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node_with_label("X")).collect();
        g.add_edge(n[0], n[1]);
        g.add_edge(n[1], n[2]);
        (g, n)
    }

    #[test]
    fn apply_inserts_and_deletes() {
        let (mut g, n) = sample_graph();
        let mut b = UpdateBatch::new();
        b.insert(n[2], n[3]).delete(n[0], n[1]);
        assert_eq!(b.len(), 2);
        b.apply_to(&mut g);
        assert!(g.has_edge(n[2], n[3]));
        assert!(!g.has_edge(n[0], n[1]));
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn apply_is_idempotent_on_noops() {
        let (mut g, n) = sample_graph();
        let mut b = UpdateBatch::new();
        b.insert(n[0], n[1]); // already present
        b.delete(n[3], n[0]); // not present
        b.apply_to(&mut g);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn normalized_drops_noops_and_cancels() {
        let (g, n) = sample_graph();
        let mut b = UpdateBatch::new();
        b.insert(n[0], n[1]); // already present → dropped
        b.delete(n[3], n[2]); // absent → dropped
        b.insert(n[2], n[3]); // net: insert then delete → cancelled
        b.delete(n[2], n[3]);
        b.delete(n[1], n[2]); // real deletion kept
        b.insert(n[0], n[2]); // real insertion kept
        let norm = b.normalized(&g);
        assert_eq!(norm.len(), 2);
        assert_eq!(
            norm.updates(),
            &[Update::Delete(n[1], n[2]), Update::Insert(n[0], n[2])]
        );

        // Same end state either way.
        let mut g1 = g.clone();
        b.apply_to(&mut g1);
        let mut g2 = g.clone();
        norm.apply_to(&mut g2);
        let mut e1: Vec<_> = g1.edges().collect();
        let mut e2: Vec<_> = g2.edges().collect();
        e1.sort();
        e2.sort();
        assert_eq!(e1, e2);
    }

    #[test]
    fn net_effect_keeps_last_write() {
        let (g, n) = sample_graph();
        let mut b = UpdateBatch::new();
        // delete then re-insert an existing edge: net effect is "present",
        // edge already present → nothing to do.
        b.delete(n[0], n[1]);
        b.insert(n[0], n[1]);
        let norm = b.normalized(&g);
        assert!(norm.is_empty());
    }

    #[test]
    fn split_by_kind() {
        let (_, n) = sample_graph();
        let mut b = UpdateBatch::new();
        b.insert(n[0], n[2]).delete(n[1], n[2]).insert(n[3], n[0]);
        let (ins, del) = b.split();
        assert_eq!(ins, vec![(n[0], n[2]), (n[3], n[0])]);
        assert_eq!(del, vec![(n[1], n[2])]);
    }

    #[test]
    fn from_iterator() {
        let b: UpdateBatch = vec![Update::Insert(NodeId(0), NodeId(1))]
            .into_iter()
            .collect();
        assert_eq!(b.len(), 1);
        assert!(b.updates()[0].is_insert());
        assert_eq!(b.updates()[0].edge(), (NodeId(0), NodeId(1)));
    }
}
