//! Edge update representation (`ΔG` in the paper).
//!
//! Section 5 studies batch updates: a list of edge insertions and deletions
//! applied to the data graph. [`UpdateBatch`] is that list; it also knows how
//! to apply itself to a [`LabeledGraph`] and how to *normalize* itself
//! (dropping updates that are no-ops against a given graph, and cancelling
//! an insertion immediately followed by a deletion of the same edge), which
//! keeps the incremental algorithms' affected areas honest.

use std::collections::HashMap;
use std::fmt;

use crate::graph::LabeledGraph;
use crate::ids::NodeId;

/// A single edge update.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Update {
    /// Insert the edge `(from, to)`.
    Insert(NodeId, NodeId),
    /// Delete the edge `(from, to)`.
    Delete(NodeId, NodeId),
}

impl Update {
    /// The edge affected by this update.
    pub fn edge(&self) -> (NodeId, NodeId) {
        match *self {
            Update::Insert(u, v) | Update::Delete(u, v) => (u, v),
        }
    }

    /// `true` for insertions.
    pub fn is_insert(&self) -> bool {
        matches!(self, Update::Insert(_, _))
    }
}

/// A plain list of edges, as returned by [`UpdateBatch::split`].
pub type EdgeList = Vec<(NodeId, NodeId)>;

/// An ordered list of edge updates (`ΔG`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UpdateBatch {
    updates: Vec<Update>,
}

impl UpdateBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a batch from a list of updates.
    pub fn from_updates(updates: Vec<Update>) -> Self {
        UpdateBatch { updates }
    }

    /// Appends an insertion.
    pub fn insert(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.updates.push(Update::Insert(u, v));
        self
    }

    /// Appends a deletion.
    pub fn delete(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.updates.push(Update::Delete(u, v));
        self
    }

    /// The updates, in application order.
    pub fn updates(&self) -> &[Update] {
        &self.updates
    }

    /// Number of updates (`|ΔG|`).
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// `true` when the batch contains no update.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Applies the batch to `g` in order (`G ⊕ ΔG`). Inserting an existing
    /// edge or deleting a missing edge is a silent no-op, mirroring the
    /// paper's set semantics for `E`.
    pub fn apply_to(&self, g: &mut LabeledGraph) {
        for u in &self.updates {
            match *u {
                Update::Insert(a, b) => {
                    g.add_edge(a, b);
                }
                Update::Delete(a, b) => {
                    g.remove_edge(a, b);
                }
            }
        }
    }

    /// Returns a normalized copy of the batch with respect to the *current*
    /// graph `g`:
    ///
    /// * insertions of edges already in `g` are dropped;
    /// * deletions of edges not in `g` are dropped;
    /// * for each edge, only the *net effect* of the batch is kept (an
    ///   insert followed by a delete of the same edge cancels out, and vice
    ///   versa).
    ///
    /// The result applied to `g` yields the same graph as the original
    /// batch, but every remaining update really changes the edge set.
    pub fn normalized(&self, g: &LabeledGraph) -> UpdateBatch {
        // Net desired state per touched edge: true = present, false = absent.
        let mut desired: HashMap<(NodeId, NodeId), bool> = HashMap::new();
        let mut order: Vec<(NodeId, NodeId)> = Vec::new();
        for u in &self.updates {
            let e = u.edge();
            if !desired.contains_key(&e) {
                order.push(e);
            }
            desired.insert(e, u.is_insert());
        }
        let mut out = UpdateBatch::new();
        for e in order {
            let want = desired[&e];
            let have = g.has_edge(e.0, e.1);
            if want && !have {
                out.insert(e.0, e.1);
            } else if !want && have {
                out.delete(e.0, e.1);
            }
        }
        out
    }

    /// Splits the batch into (insertions, deletions) preserving order within
    /// each kind.
    pub fn split(&self) -> (EdgeList, EdgeList) {
        let mut ins = Vec::new();
        let mut del = Vec::new();
        for u in &self.updates {
            match *u {
                Update::Insert(a, b) => ins.push((a, b)),
                Update::Delete(a, b) => del.push((a, b)),
            }
        }
        (ins, del)
    }
}

/// Why an [`UpdateBatch`] was rejected by [`UpdateBatch::validate`].
///
/// Validation runs *before* any state is touched, so a rejected batch
/// leaves graph, maintainers, and served snapshots exactly as they were.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchError {
    /// An update referenced a node id outside the store's node space.
    /// Updates only rewire edges; the node set is fixed at construction.
    NodeOutOfBounds {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the store's graph.
        node_count: usize,
    },
    /// The same edge appears with *both* an insertion and a deletion in
    /// one batch. The net effect would silently depend on update order —
    /// almost always a producer bug — so stores reject the batch instead
    /// of guessing.
    ConflictingUpdates {
        /// Source of the contested edge.
        from: NodeId,
        /// Target of the contested edge.
        to: NodeId,
    },
    /// An insertion endpoint carries no label, on a store whose query
    /// class needs labels (pattern/bisimulation serving). Reachability
    /// ignores labels; bisimulation quotients are label-keyed, so an
    /// unlabeled endpoint can never participate in a match and the insert
    /// is rejected as meaningless.
    UnlabeledEndpoint {
        /// The label-less node.
        node: NodeId,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::NodeOutOfBounds { node, node_count } => write!(
                f,
                "update references node {node}, out of bounds for a store with {node_count} nodes"
            ),
            BatchError::ConflictingUpdates { from, to } => write!(
                f,
                "batch both inserts and deletes the edge ({from}, {to}); \
                 resolve the conflict before applying"
            ),
            BatchError::UnlabeledEndpoint { node } => write!(
                f,
                "insertion endpoint {node} has no label, but the store serves label-keyed queries"
            ),
        }
    }
}

impl std::error::Error for BatchError {}

impl UpdateBatch {
    /// Validates the batch against a store over `node_count` nodes:
    ///
    /// * every referenced node id must lie in `0..node_count` (updates
    ///   rewire edges; they never grow the node set);
    /// * no edge may appear with both an insertion and a deletion — the
    ///   net effect would depend silently on update order.
    ///
    /// Returns the first violation in update order. `Ok(())` guarantees
    /// the batch is safe to hand to the incremental maintainers.
    pub fn validate(&self, node_count: usize) -> Result<(), BatchError> {
        let mut kinds: HashMap<(NodeId, NodeId), bool> = HashMap::with_capacity(self.len());
        for u in &self.updates {
            let (a, b) = u.edge();
            for node in [a, b] {
                if node.index() >= node_count {
                    return Err(BatchError::NodeOutOfBounds { node, node_count });
                }
            }
            if *kinds.entry((a, b)).or_insert(u.is_insert()) != u.is_insert() {
                return Err(BatchError::ConflictingUpdates { from: a, to: b });
            }
        }
        Ok(())
    }

    /// Validates that every *insertion* endpoint carries a non-empty label
    /// in `g` — the extra check label-keyed (pattern-serving) stores run on
    /// top of [`UpdateBatch::validate`]. Deletions pass: removing an edge
    /// from an unlabeled node cannot corrupt a bisimulation quotient.
    pub fn validate_labels(&self, g: &LabeledGraph) -> Result<(), BatchError> {
        for u in &self.updates {
            if !u.is_insert() {
                continue;
            }
            let (a, b) = u.edge();
            for node in [a, b] {
                if g.label_name(node).is_none_or(str::is_empty) {
                    return Err(BatchError::UnlabeledEndpoint { node });
                }
            }
        }
        Ok(())
    }
}

impl FromIterator<Update> for UpdateBatch {
    fn from_iter<T: IntoIterator<Item = Update>>(iter: T) -> Self {
        UpdateBatch {
            updates: iter.into_iter().collect(),
        }
    }
}

/// An exact edge diff between two graph states: the row-level currency of
/// [`CsrGraph::patch`](crate::csr::CsrGraph::patch).
///
/// Both lists are sorted by `(source, target)` and deduplicated, and they
/// are disjoint; `added` edges are expected absent from the base graph and
/// `removed` edges present (the patch checks this in debug builds). Built
/// from an [`UpdateBatch`] with [`UpdateBatch::edge_delta`], or assembled
/// directly by snapshot-diff code that already knows the exact row changes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeDelta {
    added: Vec<(NodeId, NodeId)>,
    removed: Vec<(NodeId, NodeId)>,
}

impl EdgeDelta {
    /// Creates a delta from raw lists (sorted, deduplicated; edges appearing
    /// in both lists cancel out).
    pub fn new(mut added: Vec<(NodeId, NodeId)>, mut removed: Vec<(NodeId, NodeId)>) -> Self {
        added.sort_unstable();
        added.dedup();
        removed.sort_unstable();
        removed.dedup();
        let in_removed: std::collections::HashSet<(NodeId, NodeId)> =
            removed.iter().copied().collect();
        let in_added: std::collections::HashSet<(NodeId, NodeId)> = added.iter().copied().collect();
        added.retain(|e| !in_removed.contains(e));
        removed.retain(|e| !in_added.contains(e));
        EdgeDelta { added, removed }
    }

    /// Edges to insert, sorted by `(source, target)`.
    pub fn added(&self) -> &[(NodeId, NodeId)] {
        &self.added
    }

    /// Edges to delete, sorted by `(source, target)`.
    pub fn removed(&self) -> &[(NodeId, NodeId)] {
        &self.removed
    }

    /// `true` when the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

impl UpdateBatch {
    /// The exact edge diff this batch induces on `g` — the normalized batch
    /// ([`UpdateBatch::normalized`]) split into added/removed lists, ready
    /// for [`CsrGraph::patch`](crate::csr::CsrGraph::patch).
    pub fn edge_delta(&self, g: &LabeledGraph) -> EdgeDelta {
        let (ins, del) = self.normalized(g).split();
        EdgeDelta::new(ins, del)
    }
}

/// One equivalence class born in an incremental maintenance step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassBirth {
    /// The stable class id assigned to the new class (retired ids are
    /// recycled, so a birth may reuse an id that the same delta removed).
    pub id: u32,
    /// Member nodes, ascending.
    pub members: Vec<NodeId>,
    /// Whether the members reach themselves via non-empty paths. Only
    /// meaningful for reachability partitions; pattern (bisimulation)
    /// partitions leave it `false`.
    pub cyclic: bool,
    /// The retired class ids the members came from, ascending and
    /// deduplicated — the provenance that classifies the step as a split
    /// (one origin feeding several births) or a merge (several origins
    /// feeding one birth).
    pub origins: Vec<u32>,
}

/// The structured difference between two partition states (`ΔP`): which
/// classes died and which were born in one incremental maintenance step.
///
/// Exported by the incremental algorithms (`incRCM`, `incPCM`) alongside
/// their scalar statistics, and consumed by snapshot layers that patch
/// derived structures (quotient CSR, node → class index, landmark labels)
/// instead of rebuilding them. Class ids are the maintainer's *stable* ids:
/// ids absent from both lists kept their membership bit-for-bit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PartitionDelta {
    /// Class ids retired by the step, ascending.
    pub removed: Vec<u32>,
    /// Classes created by the step, in creation order.
    pub added: Vec<ClassBirth>,
    /// Size of the stable id space after the step (`max id + 1` over live
    /// and recycled ids); derived snapshot structures size their rows by it.
    pub id_space: usize,
}

impl PartitionDelta {
    /// `true` when the step changed no class.
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty() && self.added.is_empty()
    }

    /// Classes churned (died + born) by the step.
    pub fn churned(&self) -> usize {
        self.removed.len() + self.added.len()
    }

    /// Number of retired classes whose members were scattered across more
    /// than one birth (splits).
    pub fn split_count(&self) -> usize {
        let mut seen: HashMap<u32, usize> = HashMap::new();
        for birth in &self.added {
            for &o in &birth.origins {
                *seen.entry(o).or_insert(0) += 1;
            }
        }
        seen.values().filter(|&&n| n > 1).count()
    }

    /// Number of births that absorbed members from more than one retired
    /// class (merges).
    pub fn merge_count(&self) -> usize {
        self.added.iter().filter(|b| b.origins.len() > 1).count()
    }

    /// The added class ids, ascending.
    pub fn added_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.added.iter().map(|b| b.id).collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> (LabeledGraph, Vec<NodeId>) {
        let mut g = LabeledGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node_with_label("X")).collect();
        g.add_edge(n[0], n[1]);
        g.add_edge(n[1], n[2]);
        (g, n)
    }

    #[test]
    fn apply_inserts_and_deletes() {
        let (mut g, n) = sample_graph();
        let mut b = UpdateBatch::new();
        b.insert(n[2], n[3]).delete(n[0], n[1]);
        assert_eq!(b.len(), 2);
        b.apply_to(&mut g);
        assert!(g.has_edge(n[2], n[3]));
        assert!(!g.has_edge(n[0], n[1]));
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn apply_is_idempotent_on_noops() {
        let (mut g, n) = sample_graph();
        let mut b = UpdateBatch::new();
        b.insert(n[0], n[1]); // already present
        b.delete(n[3], n[0]); // not present
        b.apply_to(&mut g);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn normalized_drops_noops_and_cancels() {
        let (g, n) = sample_graph();
        let mut b = UpdateBatch::new();
        b.insert(n[0], n[1]); // already present → dropped
        b.delete(n[3], n[2]); // absent → dropped
        b.insert(n[2], n[3]); // net: insert then delete → cancelled
        b.delete(n[2], n[3]);
        b.delete(n[1], n[2]); // real deletion kept
        b.insert(n[0], n[2]); // real insertion kept
        let norm = b.normalized(&g);
        assert_eq!(norm.len(), 2);
        assert_eq!(
            norm.updates(),
            &[Update::Delete(n[1], n[2]), Update::Insert(n[0], n[2])]
        );

        // Same end state either way.
        let mut g1 = g.clone();
        b.apply_to(&mut g1);
        let mut g2 = g.clone();
        norm.apply_to(&mut g2);
        let mut e1: Vec<_> = g1.edges().collect();
        let mut e2: Vec<_> = g2.edges().collect();
        e1.sort();
        e2.sort();
        assert_eq!(e1, e2);
    }

    #[test]
    fn net_effect_keeps_last_write() {
        let (g, n) = sample_graph();
        let mut b = UpdateBatch::new();
        // delete then re-insert an existing edge: net effect is "present",
        // edge already present → nothing to do.
        b.delete(n[0], n[1]);
        b.insert(n[0], n[1]);
        let norm = b.normalized(&g);
        assert!(norm.is_empty());
    }

    #[test]
    fn split_by_kind() {
        let (_, n) = sample_graph();
        let mut b = UpdateBatch::new();
        b.insert(n[0], n[2]).delete(n[1], n[2]).insert(n[3], n[0]);
        let (ins, del) = b.split();
        assert_eq!(ins, vec![(n[0], n[2]), (n[3], n[0])]);
        assert_eq!(del, vec![(n[1], n[2])]);
    }

    #[test]
    fn edge_delta_from_batch_is_exact() {
        let (g, n) = sample_graph(); // edges 0->1, 1->2
        let mut b = UpdateBatch::new();
        b.insert(n[0], n[1]); // already present → dropped
        b.insert(n[2], n[3]);
        b.delete(n[1], n[2]);
        b.delete(n[3], n[0]); // absent → dropped
        let d = b.edge_delta(&g);
        assert_eq!(d.added(), &[(n[2], n[3])]);
        assert_eq!(d.removed(), &[(n[1], n[2])]);
        assert!(!d.is_empty());
        assert!(UpdateBatch::new().edge_delta(&g).is_empty());
    }

    #[test]
    fn edge_delta_cancels_overlap() {
        let e = (NodeId(0), NodeId(1));
        let d = EdgeDelta::new(vec![e, e], vec![e]);
        assert!(d.is_empty());
    }

    #[test]
    fn partition_delta_classifies_splits_and_merges() {
        let delta = PartitionDelta {
            removed: vec![2, 5, 7],
            added: vec![
                ClassBirth {
                    id: 2,
                    members: vec![NodeId(0)],
                    cyclic: false,
                    origins: vec![2],
                },
                ClassBirth {
                    id: 8,
                    members: vec![NodeId(1), NodeId(3)],
                    cyclic: true,
                    origins: vec![2, 5],
                },
                ClassBirth {
                    id: 5,
                    members: vec![NodeId(4)],
                    cyclic: false,
                    origins: vec![7],
                },
            ],
            id_space: 9,
        };
        assert!(!delta.is_empty());
        assert_eq!(delta.churned(), 6);
        assert_eq!(delta.split_count(), 1); // origin 2 feeds two births
        assert_eq!(delta.merge_count(), 1); // birth 8 absorbs two origins
        assert_eq!(delta.added_ids(), vec![2, 5, 8]);
        assert!(PartitionDelta::default().is_empty());
    }

    #[test]
    fn validate_catches_out_of_range_ids() {
        let mut b = UpdateBatch::new();
        b.insert(NodeId(1), NodeId(7));
        assert_eq!(
            b.validate(4),
            Err(BatchError::NodeOutOfBounds {
                node: NodeId(7),
                node_count: 4
            })
        );
        assert_eq!(b.validate(8), Ok(()));
        assert_eq!(UpdateBatch::new().validate(0), Ok(()));
    }

    #[test]
    fn validate_rejects_conflicting_updates_but_not_duplicates() {
        let mut b = UpdateBatch::new();
        b.insert(NodeId(0), NodeId(1));
        b.insert(NodeId(0), NodeId(1)); // duplicate of the same kind: fine
        b.delete(NodeId(1), NodeId(2));
        assert_eq!(b.validate(3), Ok(()));
        b.delete(NodeId(0), NodeId(1)); // now contradicts the insert
        assert_eq!(
            b.validate(3),
            Err(BatchError::ConflictingUpdates {
                from: NodeId(0),
                to: NodeId(1)
            })
        );
    }

    #[test]
    fn validate_labels_rejects_unlabeled_insert_endpoints_only() {
        let mut g = LabeledGraph::new();
        let a = g.add_node_with_label("A");
        let bare = g.add_node_with_label("");
        let mut ins = UpdateBatch::new();
        ins.insert(a, bare);
        assert_eq!(
            ins.validate_labels(&g),
            Err(BatchError::UnlabeledEndpoint { node: bare })
        );
        let mut del = UpdateBatch::new();
        del.delete(a, bare);
        assert_eq!(del.validate_labels(&g), Ok(()));
    }

    #[test]
    fn batch_error_display() {
        let e = BatchError::NodeOutOfBounds {
            node: NodeId(9),
            node_count: 3,
        };
        assert!(e.to_string().contains("out of bounds"));
        let c = BatchError::ConflictingUpdates {
            from: NodeId(0),
            to: NodeId(1),
        };
        assert!(c.to_string().contains("inserts and deletes"));
        let u = BatchError::UnlabeledEndpoint { node: NodeId(2) };
        assert!(u.to_string().contains("no label"));
    }

    #[test]
    fn from_iterator() {
        let b: UpdateBatch = vec![Update::Insert(NodeId(0), NodeId(1))]
            .into_iter()
            .collect();
        assert_eq!(b.len(), 1);
        assert!(b.updates()[0].is_insert());
        assert_eq!(b.updates()[0].edge(), (NodeId(0), NodeId(1)));
    }
}
