//! Immutable compressed-sparse-row snapshot of a [`LabeledGraph`].
//!
//! The batch algorithms (`compressR`, `compressB`, the reachability-set
//! sweep) are read-only over the graph; the CSR layout keeps each node's
//! adjacency contiguous, which is measurably faster than the `Vec<Vec<_>>`
//! layout once graphs stop fitting in L2. Incremental algorithms keep using
//! the mutable [`LabeledGraph`] directly.

use crate::graph::LabeledGraph;
use crate::ids::{Label, NodeId};

/// A read-only CSR view with both forward and reverse adjacency.
#[derive(Clone, Debug)]
pub struct CsrGraph {
    labels: Vec<Label>,
    out_offsets: Vec<u32>,
    out_targets: Vec<NodeId>,
    in_offsets: Vec<u32>,
    in_targets: Vec<NodeId>,
}

impl CsrGraph {
    /// Builds a CSR snapshot of `g`.
    pub fn from_graph(g: &LabeledGraph) -> Self {
        let n = g.node_count();
        let m = g.edge_count();
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut out_targets = Vec::with_capacity(m);
        let mut in_offsets = Vec::with_capacity(n + 1);
        let mut in_targets = Vec::with_capacity(m);

        out_offsets.push(0);
        for v in g.nodes() {
            out_targets.extend_from_slice(g.out_neighbors(v));
            out_offsets.push(out_targets.len() as u32);
        }
        in_offsets.push(0);
        for v in g.nodes() {
            in_targets.extend_from_slice(g.in_neighbors(v));
            in_offsets.push(in_targets.len() as u32);
        }

        CsrGraph {
            labels: g.labels().to_vec(),
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Label of node `v`.
    #[inline]
    pub fn label(&self, v: NodeId) -> Label {
        self.labels[v.index()]
    }

    /// Out-neighbours of `v`.
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        &self.out_targets[self.out_offsets[i] as usize..self.out_offsets[i + 1] as usize]
    }

    /// In-neighbours of `v`.
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        &self.in_targets[self.in_offsets[i] as usize..self.in_offsets[i + 1] as usize]
    }

    /// Iterator over node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.labels.capacity() * std::mem::size_of::<Label>()
            + (self.out_offsets.capacity() + self.in_offsets.capacity())
                * std::mem::size_of::<u32>()
            + (self.out_targets.capacity() + self.in_targets.capacity())
                * std::mem::size_of::<NodeId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (LabeledGraph, Vec<NodeId>) {
        let mut g = LabeledGraph::new();
        let a = g.add_node_with_label("A");
        let b = g.add_node_with_label("B");
        let c = g.add_node_with_label("C");
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, c);
        g.add_edge(c, a);
        (g, vec![a, b, c])
    }

    #[test]
    fn csr_matches_adjacency() {
        let (g, n) = sample();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.node_count(), 3);
        assert_eq!(csr.edge_count(), 4);
        assert_eq!(csr.out_neighbors(n[0]), g.out_neighbors(n[0]));
        assert_eq!(csr.in_neighbors(n[2]), g.in_neighbors(n[2]));
        assert_eq!(csr.label(n[1]), g.label(n[1]));
        assert_eq!(csr.nodes().count(), 3);
    }

    #[test]
    fn empty_graph() {
        let g = LabeledGraph::new();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.edge_count(), 0);
    }

    #[test]
    fn isolated_nodes_have_empty_slices() {
        let mut g = LabeledGraph::new();
        let a = g.add_node_with_label("A");
        let _b = g.add_node_with_label("B");
        let csr = CsrGraph::from_graph(&g);
        assert!(csr.out_neighbors(a).is_empty());
        assert!(csr.in_neighbors(a).is_empty());
        assert!(csr.heap_bytes() > 0);
    }
}
