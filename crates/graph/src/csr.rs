//! Immutable compressed-sparse-row snapshot of a labeled graph.
//!
//! ## When to freeze, when to stay mutable
//!
//! Every batch algorithm in the system — reachability equivalence,
//! bisimulation quotienting, simulation matching, the reachability-set
//! sweeps — is a read-only whole-graph pass. For those, freeze once with
//! [`LabeledGraph::freeze`] (or build directly with
//! [`CsrGraph::from_edges`]) and run on the snapshot: adjacency lives in two
//! contiguous offset/target arrays per direction, so the sweeps are linear
//! cache-friendly scans, and the per-node `Vec` headers of the mutable
//! representation disappear (≈3× less heap on sparse graphs — compare
//! [`CsrGraph::heap_bytes`] with [`LabeledGraph::heap_bytes`]).
//!
//! Keep using the mutable [`LabeledGraph`] for anything that edits edges —
//! the incremental maintenance algorithms, the evolution experiments, the
//! builders. A `CsrGraph` is never mutated; re-freeze after a batch of
//! updates if the batch algorithms need to run again.
//!
//! Adjacency in a `CsrGraph` is always **sorted** (by node id, per source
//! for out-edges and per target for in-edges), which makes edge lookups a
//! binary search and edge iteration deterministic regardless of insertion
//! order.
//!
//! [`LabeledGraph::freeze`]: crate::graph::LabeledGraph::freeze
//! [`LabeledGraph::heap_bytes`]: crate::graph::LabeledGraph::heap_bytes

use crate::graph::LabeledGraph;
use crate::ids::{Label, LabelInterner, NodeId};
use crate::view::GraphView;

/// A read-only CSR snapshot with both forward and reverse adjacency, node
/// labels, and the label interner of the graph it was built from.
#[derive(Clone, Debug)]
pub struct CsrGraph {
    labels: Vec<Label>,
    out_offsets: Vec<u32>,
    out_targets: Vec<NodeId>,
    in_offsets: Vec<u32>,
    in_targets: Vec<NodeId>,
    interner: LabelInterner,
}

/// Builds CSR offset/target arrays (both directions) from an edge list that
/// is already grouped by ascending source and deduplicated. Shared by the
/// graph-level builders here and the condensation/DAG builders in
/// [`crate::scc`] and [`crate::reach_sets`], so the count → prefix-sum →
/// scatter pattern lives in one place.
pub(crate) fn csr_from_grouped(
    n: usize,
    list: &[(u32, u32)],
) -> (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>) {
    let m = list.len();
    let mut out_offsets = vec![0u32; n + 1];
    let mut in_offsets = vec![0u32; n + 1];
    for &(u, v) in list {
        out_offsets[u as usize + 1] += 1;
        in_offsets[v as usize + 1] += 1;
    }
    for i in 0..n {
        out_offsets[i + 1] += out_offsets[i];
        in_offsets[i + 1] += in_offsets[i];
    }
    // Grouped by source: the forward targets are just the second column,
    // and a counting pass scatters the reverse direction (each in-list ends
    // up sorted by source because sources arrive in ascending order).
    let out_targets: Vec<u32> = list.iter().map(|&(_, v)| v).collect();
    let mut cursor: Vec<u32> = in_offsets[..n].to_vec();
    let mut in_targets = vec![0u32; m];
    for &(u, v) in list {
        let c = &mut cursor[v as usize];
        in_targets[*c as usize] = u;
        *c += 1;
    }
    (out_offsets, out_targets, in_offsets, in_targets)
}

/// Rewrites one adjacency direction under a sorted, deduplicated row diff.
///
/// `adds` / `dels` are `(row, target)` pairs sorted ascending; rows not
/// mentioned by either list are copied span-wise (one `extend_from_slice`
/// per maximal untouched run, offsets shifted by the running edge-count
/// delta). Touched rows are rebuilt by a three-way sorted merge of the old
/// row, its additions, and its removals. In debug builds every removal must
/// hit an existing target and every addition must be new.
fn patch_direction(
    old_offsets: &[u32],
    old_targets: &[NodeId],
    n_new: usize,
    adds: &[(u32, u32)],
    dels: &[(u32, u32)],
) -> (Vec<u32>, Vec<NodeId>) {
    let n_old = old_offsets.len() - 1;
    let m_new = old_targets.len() + adds.len() - dels.len();
    let mut offsets: Vec<u32> = Vec::with_capacity(n_new + 1);
    let mut targets: Vec<NodeId> = Vec::with_capacity(m_new);
    offsets.push(0);

    let mut ai = 0usize;
    let mut di = 0usize;
    let mut row = 0usize;
    while row < n_new {
        let next_touched = match (adds.get(ai), dels.get(di)) {
            (Some(&(ra, _)), Some(&(rd, _))) => ra.min(rd) as usize,
            (Some(&(ra, _)), None) => ra as usize,
            (None, Some(&(rd, _))) => rd as usize,
            (None, None) => n_new,
        };
        if row < next_touched {
            // Untouched run [row, next_touched): one flat copy, shifted offsets.
            let hi = next_touched.min(n_new);
            let span_lo = old_offsets[row.min(n_old)] as usize;
            let span_hi = old_offsets[hi.min(n_old)] as usize;
            let shift = targets.len() as i64 - span_lo as i64;
            targets.extend_from_slice(&old_targets[span_lo..span_hi]);
            for r in row..hi {
                let end = old_offsets[(r + 1).min(n_old)] as i64;
                offsets.push((end + shift) as u32);
            }
            row = hi;
            continue;
        }
        // Touched row: merge old row minus removals with additions.
        let old_row: &[NodeId] = if row < n_old {
            &old_targets[old_offsets[row] as usize..old_offsets[row + 1] as usize]
        } else {
            &[]
        };
        let a_lo = ai;
        while ai < adds.len() && adds[ai].0 as usize == row {
            ai += 1;
        }
        let d_lo = di;
        while di < dels.len() && dels[di].0 as usize == row {
            di += 1;
        }
        let row_adds = &adds[a_lo..ai];
        let row_dels = &dels[d_lo..di];
        let mut oi = 0usize;
        let mut aj = 0usize;
        let mut dj = 0usize;
        while oi < old_row.len() || aj < row_adds.len() {
            let next_old = old_row.get(oi).map(|t| t.0);
            let next_add = row_adds.get(aj).map(|&(_, t)| t);
            match (next_old, next_add) {
                (Some(o), a) if a.is_none() || o < a.unwrap() => {
                    oi += 1;
                    if dj < row_dels.len() && row_dels[dj].1 == o {
                        dj += 1; // removed
                    } else {
                        targets.push(NodeId(o));
                    }
                }
                (o, Some(a)) => {
                    debug_assert!(o != Some(a), "added edge already present: ({row}, {a})");
                    aj += 1;
                    targets.push(NodeId(a));
                }
                _ => unreachable!(),
            }
        }
        debug_assert_eq!(
            dj,
            row_dels.len(),
            "removed edge missing from row {row}: {row_dels:?}"
        );
        offsets.push(targets.len() as u32);
        row += 1;
    }
    debug_assert_eq!(targets.len(), m_new);
    (offsets, targets)
}

impl CsrGraph {
    /// Builds a CSR snapshot of `g`. Equivalent to
    /// [`LabeledGraph::freeze`](crate::graph::LabeledGraph::freeze).
    ///
    /// `LabeledGraph` adjacency is already deduplicated and grouped per
    /// node, so only each (typically short) out-list needs sorting — no
    /// global `O(m log m)` edge-list sort and no 8-byte-per-edge temporary.
    pub fn from_graph(g: &LabeledGraph) -> Self {
        let n = g.node_count();
        let m = g.edge_count();
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut out_targets: Vec<NodeId> = Vec::with_capacity(m);
        let mut in_offsets = vec![0u32; n + 1];
        out_offsets.push(0);
        for v in g.nodes() {
            let start = out_targets.len();
            out_targets.extend_from_slice(g.out_neighbors(v));
            out_targets[start..].sort_unstable();
            out_offsets.push(out_targets.len() as u32);
            for &w in g.out_neighbors(v) {
                in_offsets[w.index() + 1] += 1;
            }
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor: Vec<u32> = in_offsets[..n].to_vec();
        let mut in_targets = vec![NodeId(0); m];
        for u in g.nodes() {
            // Iterate the sorted forward lists so each in-list comes out
            // sorted by source.
            let lo = out_offsets[u.index()] as usize;
            let hi = out_offsets[u.index() + 1] as usize;
            for &v in &out_targets[lo..hi] {
                let c = &mut cursor[v.index()];
                in_targets[*c as usize] = u;
                *c += 1;
            }
        }
        CsrGraph {
            labels: g.labels().to_vec(),
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
            interner: g.interner().clone(),
        }
    }

    /// Builds a CSR graph over `labels.len()` nodes directly from an edge
    /// list, sorting and deduplicating in `O(m log m)` — the bulk-load path
    /// that avoids the per-insert duplicate scan of
    /// [`LabeledGraph::add_edge`](crate::graph::LabeledGraph::add_edge).
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is out of bounds.
    pub fn from_edges(
        labels: Vec<Label>,
        interner: LabelInterner,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Self {
        let n = labels.len();
        let mut list: Vec<(NodeId, NodeId)> = edges.into_iter().collect();
        for &(u, v) in &list {
            assert!(u.index() < n, "source {u} out of bounds");
            assert!(v.index() < n, "target {v} out of bounds");
        }
        list.sort_unstable();
        list.dedup();
        let m = list.len();

        let mut out_offsets = vec![0u32; n + 1];
        let mut in_offsets = vec![0u32; n + 1];
        for &(u, v) in &list {
            out_offsets[u.index() + 1] += 1;
            in_offsets[v.index() + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
            in_offsets[i + 1] += in_offsets[i];
        }
        // The list is sorted by (source, target): the forward targets are
        // just the second column, and a counting pass scatters the reverse
        // direction with each in-list already sorted by source.
        let out_targets: Vec<NodeId> = list.iter().map(|&(_, v)| v).collect();
        let mut cursor: Vec<u32> = in_offsets[..n].to_vec();
        let mut in_targets = vec![NodeId(0); m];
        for &(u, v) in &list {
            let c = &mut cursor[v.index()];
            in_targets[*c as usize] = u;
            *c += 1;
        }

        CsrGraph {
            labels,
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
            interner,
        }
    }

    /// Builds a new snapshot equal to `self` with `added` edges inserted and
    /// `removed` edges deleted, rewriting **only the rows whose adjacency
    /// changed**: maximal runs of untouched rows are copied as single
    /// contiguous spans (one `memcpy` per run, offsets shifted by a running
    /// delta), so the cost is `O(touched-row degree + n)` plus the flat span
    /// copies — never a per-row merge over the whole graph. This is the
    /// substrate of delta-patched snapshot construction in the serving
    /// layer: the quotient CSR of version `k+1` is born from version `k`
    /// plus the row diff induced by a [`PartitionDelta`].
    ///
    /// Semantics are exact-diff: every `added` edge must be absent from
    /// `self` and every `removed` edge present (checked in debug builds;
    /// duplicates within each list are tolerated). Edges may reference the
    /// appended rows.
    ///
    /// [`PartitionDelta`]: crate::update::PartitionDelta
    pub fn patch(&self, added: &[(NodeId, NodeId)], removed: &[(NodeId, NodeId)]) -> CsrGraph {
        self.patch_with(added, removed, &[])
    }

    /// [`CsrGraph::patch`] that also appends `appended_labels.len()` fresh
    /// (initially isolated) nodes after the existing rows — the growth path
    /// for quotient snapshots whose class id space expanded.
    pub fn patch_with(
        &self,
        added: &[(NodeId, NodeId)],
        removed: &[(NodeId, NodeId)],
        appended_labels: &[Label],
    ) -> CsrGraph {
        let n_new = self.node_count() + appended_labels.len();
        let mut fwd_add: Vec<(u32, u32)> = added.iter().map(|&(u, v)| (u.0, v.0)).collect();
        let mut fwd_del: Vec<(u32, u32)> = removed.iter().map(|&(u, v)| (u.0, v.0)).collect();
        let mut bwd_add: Vec<(u32, u32)> = added.iter().map(|&(u, v)| (v.0, u.0)).collect();
        let mut bwd_del: Vec<(u32, u32)> = removed.iter().map(|&(u, v)| (v.0, u.0)).collect();
        for list in [&mut fwd_add, &mut fwd_del, &mut bwd_add, &mut bwd_del] {
            list.sort_unstable();
            list.dedup();
            for &(u, v) in list.iter() {
                assert!(
                    (u as usize) < n_new && (v as usize) < n_new,
                    "edge ({u}, {v}) out of bounds"
                );
            }
        }

        let (out_offsets, out_targets) = patch_direction(
            &self.out_offsets,
            &self.out_targets,
            n_new,
            &fwd_add,
            &fwd_del,
        );
        let (in_offsets, in_targets) = patch_direction(
            &self.in_offsets,
            &self.in_targets,
            n_new,
            &bwd_add,
            &bwd_del,
        );

        let mut labels = Vec::with_capacity(n_new);
        labels.extend_from_slice(&self.labels);
        labels.extend_from_slice(appended_labels);

        CsrGraph {
            labels,
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
            interner: self.interner.clone(),
        }
    }

    /// [`CsrGraph::patch_with`] that additionally rewrites the labels of
    /// existing rows. Needed by quotient snapshots whose row ids are
    /// *recycled* (a retired class id reborn as a different class carries a
    /// different label): [`CsrGraph::patch_with`] alone carries every
    /// existing row's label over verbatim. `relabels` is applied in order,
    /// so a later entry for the same row wins.
    ///
    /// # Panics
    ///
    /// Panics when a relabelled row is out of bounds.
    pub fn patch_relabeled(
        &self,
        added: &[(NodeId, NodeId)],
        removed: &[(NodeId, NodeId)],
        appended_labels: &[Label],
        relabels: &[(NodeId, Label)],
    ) -> CsrGraph {
        let mut out = self.patch_with(added, removed, appended_labels);
        for &(v, l) in relabels {
            out.labels[v.index()] = l;
        }
        out
    }

    /// Thaws the snapshot back into a mutable [`LabeledGraph`] (same nodes,
    /// labels, interner, and edge set).
    pub fn to_graph(&self) -> LabeledGraph {
        let mut g = LabeledGraph::from_labels(self.labels.clone(), self.interner.clone());
        g.extend_edges(self.edges());
        g
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Label of node `v`.
    #[inline]
    pub fn label(&self, v: NodeId) -> Label {
        self.labels[v.index()]
    }

    /// Label name of `v`, if its label was interned by name.
    pub fn label_name(&self, v: NodeId) -> Option<&str> {
        self.interner.name(self.labels[v.index()])
    }

    /// The label interner shared with the originating graph.
    pub fn interner(&self) -> &LabelInterner {
        &self.interner
    }

    /// All node labels, indexed by node id.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Out-neighbours of `v`, sorted ascending.
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        &self.out_targets[self.out_offsets[i] as usize..self.out_offsets[i + 1] as usize]
    }

    /// In-neighbours of `v`, sorted ascending.
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        &self.in_targets[self.in_offsets[i] as usize..self.in_offsets[i + 1] as usize]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_neighbors(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_neighbors(v).len()
    }

    /// `true` if the edge `(u, v)` is present (binary search — adjacency is
    /// sorted).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u.index() < self.node_count() && self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Iterator over all edges as `(source, target)` pairs, sorted.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(|u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Approximate heap footprint in bytes (labels + both adjacency
    /// directions; the interner is excluded, matching what
    /// [`LabeledGraph::heap_bytes`](crate::graph::LabeledGraph::heap_bytes)
    /// counts).
    pub fn heap_bytes(&self) -> usize {
        self.labels.capacity() * std::mem::size_of::<Label>()
            + (self.out_offsets.capacity() + self.in_offsets.capacity())
                * std::mem::size_of::<u32>()
            + (self.out_targets.capacity() + self.in_targets.capacity())
                * std::mem::size_of::<NodeId>()
    }
}

impl GraphView for CsrGraph {
    fn node_count(&self) -> usize {
        CsrGraph::node_count(self)
    }

    fn edge_count(&self) -> usize {
        CsrGraph::edge_count(self)
    }

    fn label(&self, v: NodeId) -> Label {
        CsrGraph::label(self, v)
    }

    fn label_name(&self, v: NodeId) -> Option<&str> {
        CsrGraph::label_name(self, v)
    }

    fn lookup_label(&self, name: &str) -> Option<Label> {
        self.interner.get(name)
    }

    fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        CsrGraph::out_neighbors(self, v)
    }

    fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        CsrGraph::in_neighbors(self, v)
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        CsrGraph::has_edge(self, u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (LabeledGraph, Vec<NodeId>) {
        let mut g = LabeledGraph::new();
        let a = g.add_node_with_label("A");
        let b = g.add_node_with_label("B");
        let c = g.add_node_with_label("C");
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, c);
        g.add_edge(c, a);
        (g, vec![a, b, c])
    }

    fn sorted(xs: &[NodeId]) -> Vec<NodeId> {
        let mut v = xs.to_vec();
        v.sort_unstable();
        v
    }

    #[test]
    fn csr_matches_adjacency() {
        let (g, n) = sample();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.node_count(), 3);
        assert_eq!(csr.edge_count(), 4);
        assert_eq!(csr.out_neighbors(n[0]), sorted(g.out_neighbors(n[0])));
        assert_eq!(csr.in_neighbors(n[2]), sorted(g.in_neighbors(n[2])));
        assert_eq!(csr.label(n[1]), g.label(n[1]));
        assert_eq!(csr.label_name(n[1]), Some("B"));
        assert_eq!(csr.nodes().count(), 3);
        assert_eq!(csr.out_degree(n[0]), 2);
        assert_eq!(csr.in_degree(n[2]), 2);
    }

    #[test]
    fn from_edges_sorts_and_dedups() {
        let mut interner = LabelInterner::new();
        let l = interner.intern("X");
        let edges = vec![
            (NodeId(2), NodeId(0)),
            (NodeId(0), NodeId(1)),
            (NodeId(0), NodeId(1)), // duplicate
            (NodeId(0), NodeId(2)),
        ];
        let csr = CsrGraph::from_edges(vec![l; 3], interner, edges);
        assert_eq!(csr.edge_count(), 3);
        assert_eq!(csr.out_neighbors(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert!(csr.has_edge(NodeId(2), NodeId(0)));
        assert!(!csr.has_edge(NodeId(1), NodeId(0)));
        let edges: Vec<_> = csr.edges().collect();
        assert_eq!(
            edges,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(2)),
                (NodeId(2), NodeId(0)),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_edges_rejects_out_of_bounds() {
        let mut interner = LabelInterner::new();
        let l = interner.intern("X");
        CsrGraph::from_edges(vec![l; 2], interner, vec![(NodeId(0), NodeId(5))]);
    }

    #[test]
    fn to_graph_roundtrips() {
        let (g, _) = sample();
        let csr = CsrGraph::from_graph(&g);
        let back = csr.to_graph();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        for v in g.nodes() {
            assert_eq!(back.label_name(v), g.label_name(v));
            assert_eq!(sorted(back.out_neighbors(v)), sorted(g.out_neighbors(v)));
            assert_eq!(sorted(back.in_neighbors(v)), sorted(g.in_neighbors(v)));
        }
    }

    #[test]
    fn empty_graph() {
        let g = LabeledGraph::new();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.edge_count(), 0);
        assert_eq!(csr.edges().count(), 0);
    }

    #[test]
    fn isolated_nodes_have_empty_slices() {
        let mut g = LabeledGraph::new();
        let a = g.add_node_with_label("A");
        let _b = g.add_node_with_label("B");
        let csr = CsrGraph::from_graph(&g);
        assert!(csr.out_neighbors(a).is_empty());
        assert!(csr.in_neighbors(a).is_empty());
        assert!(csr.heap_bytes() > 0);
    }

    #[test]
    fn patch_rewrites_only_changed_rows() {
        let (g, n) = sample(); // a->b, a->c, b->c, c->a
        let csr = CsrGraph::from_graph(&g);
        let patched = csr.patch(&[(n[1], n[0])], &[(n[0], n[2])]);
        assert_eq!(patched.node_count(), 3);
        assert_eq!(patched.edge_count(), 4);
        assert!(patched.has_edge(n[1], n[0]));
        assert!(!patched.has_edge(n[0], n[2]));
        assert!(patched.has_edge(n[0], n[1])); // untouched part of row 0 intact
        assert_eq!(patched.in_neighbors(n[0]), &[n[1], n[2]]);
        assert_eq!(patched.label_name(n[1]), Some("B"));
    }

    #[test]
    fn patch_with_appends_isolated_nodes() {
        let (g, n) = sample();
        let csr = CsrGraph::from_graph(&g);
        let l = csr.label(n[0]);
        let patched = csr.patch_with(&[(NodeId(4), n[0])], &[], &[l, l]);
        assert_eq!(patched.node_count(), 5);
        assert_eq!(patched.edge_count(), 5);
        assert!(patched.out_neighbors(NodeId(3)).is_empty());
        assert_eq!(patched.out_neighbors(NodeId(4)), &[n[0]]);
        assert_eq!(patched.in_neighbors(n[0]), &[n[2], NodeId(4)]);
    }

    #[test]
    fn patch_relabeled_rewrites_row_labels() {
        let (g, n) = sample(); // labels A, B, C
        let csr = CsrGraph::from_graph(&g);
        let a = csr.label(n[0]);
        let c = csr.label(n[2]);
        let patched = csr.patch_relabeled(&[], &[(n[0], n[2])], &[c], &[(n[1], a), (n[1], c)]);
        assert_eq!(patched.node_count(), 4);
        // Later relabel entry for the same row wins.
        assert_eq!(patched.label(n[1]), c);
        assert_eq!(patched.label_name(n[1]), Some("C"));
        // Untouched rows keep their labels; appended row got the given one.
        assert_eq!(patched.label_name(n[0]), Some("A"));
        assert_eq!(patched.label_name(NodeId(3)), Some("C"));
        assert!(!patched.has_edge(n[0], n[2]));
    }

    #[test]
    fn patch_empty_diff_is_identity() {
        let (g, _) = sample();
        let csr = CsrGraph::from_graph(&g);
        let patched = csr.patch(&[], &[]);
        assert_eq!(
            patched.edges().collect::<Vec<_>>(),
            csr.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn patch_matches_from_edges_on_random_diffs() {
        // Differential: patching must equal rebuilding from the new edge set.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..40 {
            let n = 2 + (next() % 24) as usize;
            let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
            for _ in 0..(next() % (3 * n as u64)) {
                edges.push((
                    NodeId((next() % n as u64) as u32),
                    NodeId((next() % n as u64) as u32),
                ));
            }
            edges.sort_unstable();
            edges.dedup();
            let mut interner = LabelInterner::new();
            let l = interner.intern("X");
            let csr = CsrGraph::from_edges(vec![l; n], interner.clone(), edges.clone());

            // Random exact diff: remove some present edges, add some absent.
            let mut removed: Vec<(NodeId, NodeId)> = Vec::new();
            let mut kept: Vec<(NodeId, NodeId)> = Vec::new();
            for &e in &edges {
                if next() % 3 == 0 {
                    removed.push(e);
                } else {
                    kept.push(e);
                }
            }
            let mut added: Vec<(NodeId, NodeId)> = Vec::new();
            for _ in 0..(next() % 10) {
                let e = (
                    NodeId((next() % n as u64) as u32),
                    NodeId((next() % n as u64) as u32),
                );
                if !edges.contains(&e) && !added.contains(&e) {
                    added.push(e);
                }
            }
            let mut expected = kept;
            expected.extend_from_slice(&added);
            expected.sort_unstable();
            let rebuilt = CsrGraph::from_edges(vec![l; n], interner, expected.clone());
            let patched = csr.patch(&added, &removed);
            assert_eq!(
                patched.edges().collect::<Vec<_>>(),
                rebuilt.edges().collect::<Vec<_>>(),
                "case {case} forward diverged"
            );
            for v in patched.nodes() {
                assert_eq!(
                    patched.in_neighbors(v),
                    rebuilt.in_neighbors(v),
                    "case {case} reverse row {v} diverged"
                );
            }
        }
    }

    #[test]
    fn heap_bytes_smaller_than_labeled_on_sparse_graphs() {
        let mut g = LabeledGraph::new();
        let n: Vec<_> = (0..1000).map(|_| g.add_node_with_label("X")).collect();
        for i in 0..999 {
            g.add_edge(n[i], n[i + 1]);
        }
        let csr = g.freeze();
        assert!(
            csr.heap_bytes() < g.heap_bytes(),
            "csr {} vs labeled {}",
            csr.heap_bytes(),
            g.heap_bytes()
        );
    }
}
