//! Error types shared by the graph substrate.

use std::fmt;

use crate::ids::NodeId;

/// Errors produced by graph construction, mutation, and I/O.
#[derive(Debug)]
pub enum GraphError {
    /// A node id referenced an index outside the graph.
    NodeOutOfBounds {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes currently in the graph.
        node_count: usize,
    },
    /// An operation required a DAG but the graph contained a cycle.
    NotADag,
    /// A parse error while reading the text edge-list format.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, node_count } => write!(
                f,
                "node {node} is out of bounds for a graph with {node_count} nodes"
            ),
            GraphError::NotADag => write!(f, "operation requires an acyclic graph"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

/// Convenience result alias for graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::NodeOutOfBounds {
            node: NodeId(9),
            node_count: 3,
        };
        assert!(e.to_string().contains("out of bounds"));
        assert!(GraphError::NotADag.to_string().contains("acyclic"));
        let p = GraphError::Parse {
            line: 4,
            message: "bad edge".into(),
        };
        assert!(p.to_string().contains("line 4"));
        let io = GraphError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
    }

    #[test]
    fn io_error_has_source() {
        use std::error::Error;
        let io = GraphError::from(std::io::Error::other("x"));
        assert!(io.source().is_some());
        assert!(GraphError::NotADag.source().is_none());
    }
}
