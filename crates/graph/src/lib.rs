//! # qpgc-graph
//!
//! Labeled directed graph substrate for the *query preserving graph
//! compression* system (Fan, Li, Wang, Wu — SIGMOD 2012).
//!
//! This crate provides everything the compression schemes in `qpgc-reach`
//! and `qpgc-pattern` need from a graph library, built from scratch:
//!
//! * [`LabeledGraph`] — a mutable labeled directed graph `G = (V, E, L)` with
//!   interned node labels, forward and reverse adjacency, and edge-level
//!   updates (the unit of change in the paper's incremental maintenance).
//! * [`CsrGraph`] — an immutable compressed-sparse-row snapshot for
//!   cache-friendly read-mostly algorithms, built by [`LabeledGraph::freeze`]
//!   or bulk-loaded with [`CsrGraph::from_edges`] (see the [`csr`] module
//!   docs for when to freeze versus when to stay mutable).
//! * [`view::GraphView`] — the read-only trait both representations
//!   implement; every batch algorithm below is generic over it.
//! * [`traversal`] — BFS, DFS, bidirectional BFS and bounded-depth BFS, the
//!   reachability-query evaluation algorithms used in the paper's Exp-2.
//! * [`scc`] — Tarjan strongly connected components and the condensation
//!   graph `Gscc` (Section 3.2 optimization, Section 5 rank machinery).
//! * [`partition`] — deterministic hash partitioning of the node space
//!   across store shards, with boundary-edge extraction (the substrate of
//!   the sharded serving router in `qpgc_serve`).
//! * [`rank`] — topological ranks `r(v)` (Lemma 7) and bisimulation ranks
//!   `rb(v)` with the well-founded / non-well-founded split (Lemma 9).
//! * [`reach_sets`] — chunked bit-set ancestor/descendant computation over a
//!   DAG, the workhorse behind the reachability equivalence relation.
//! * [`transitive`] — transitive closure queries and the unique transitive
//!   reduction of a DAG.
//! * [`io`] — a plain-text edge-list format with labels, for persisting the
//!   synthetic datasets used by the benchmark harness.
//! * [`stats`] — size and topology statistics (`|G| = |V| + |E|`, degree and
//!   label histograms) used when reporting compression ratios.
//!
//! ## Quick example
//!
//! ```
//! use qpgc_graph::{LabeledGraph, traversal};
//!
//! let mut g = LabeledGraph::new();
//! let a = g.add_node_with_label("A");
//! let b = g.add_node_with_label("B");
//! let c = g.add_node_with_label("C");
//! g.add_edge(a, b);
//! g.add_edge(b, c);
//!
//! assert!(traversal::reachable(&g, a, c));
//! assert!(!traversal::reachable(&g, c, a));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod codec;
pub mod csr;
pub mod error;
pub mod graph;
pub mod ids;
pub mod io;
pub mod partition;
pub mod rank;
pub mod reach_sets;
pub mod scc;
pub mod stats;
pub mod succinct;
pub mod transitive;
pub mod traversal;
pub mod update;
pub mod view;

pub use bitset::FixedBitSet;
pub use csr::CsrGraph;
pub use error::GraphError;
pub use graph::LabeledGraph;
pub use ids::{Label, NodeId};
pub use partition::NodePartition;
pub use scc::Condensation;
pub use stats::GraphStats;
pub use succinct::{CompressedCsr, EliasFano};
pub use update::{BatchError, ClassBirth, EdgeDelta, PartitionDelta, Update, UpdateBatch};
pub use view::GraphView;
