//! Succinct gap/ζ-coded CSR backend with lazy per-row decode.
//!
//! [`CompressedCsr`] stores the forward adjacency of a [`CsrGraph`] the way
//! the WebGraph family does: each row's sorted targets become a first
//! target δ-coded as a signed offset from the source, followed by strictly
//! positive gaps in the ζ_k code (k chosen per graph by an exact bit-count
//! sweep), with Elias–Fano coded row offsets so any row is decodable in
//! isolation. Decoding is **lazy**: [`CompressedCsr::neighbors`] walks the
//! bit stream one target at a time, and `has_edge` early-exits the scan as
//! soon as the decoded targets pass the probe — a point query never
//! inflates a whole row, let alone the graph.
//!
//! Heavy hub rows defeat gap codes (their gaps are small but there are tens
//! of thousands of them, and linear `has_edge` scans would be unbounded),
//! so rows with degree ≥ [`HUB_DEGREE`] are held out into a raw sorted
//! exception list: slice iteration for `neighbors`, binary search for
//! `has_edge`.
//!
//! The backend is **read-only and forward-only** by design. The
//! slice-returning [`crate::GraphView`] contract (`out_neighbors(&self) ->
//! &[NodeId]`) cannot be met by a lazy decoder without caching, so
//! consumers dispatch over an explicit plain/succinct backend enum (see
//! `qpgc_serve`); anything that needs reverse edges, labels-by-slice or
//! in-place patching decodes back to a [`CsrGraph`] with
//! [`CompressedCsr::to_csr`] first.

use crate::codec::{unzigzag, zeta_len, zigzag, BitReader, BitWriter};
use crate::csr::CsrGraph;
use crate::ids::{Label, LabelInterner, NodeId};

/// Rows with at least this many targets bypass the bit stream into the raw
/// exception list. 128 keeps coded `has_edge` scans bounded by a couple of
/// cache lines of decode work while exempting only the extreme tail of a
/// power-law degree distribution.
pub const HUB_DEGREE: usize = 128;

/// Every `SELECT_SAMPLE`-th one in the Elias–Fano upper-bits vector gets
/// its position sampled, bounding a `get` to one sampled jump plus at most
/// `SELECT_SAMPLE` popcounted bits. 8 keeps the in-word skip loop short
/// enough for point queries while costing only 4 bits/entry of samples.
const SELECT_SAMPLE: usize = 8;

/// Mask with the `n` lowest bits set (`n ≤ 64`).
#[inline]
fn mask(n: usize) -> u64 {
    if n >= 64 {
        !0
    } else {
        (1u64 << n) - 1
    }
}

#[inline]
fn get_bits_lsb(words: &[u64], pos: usize, width: usize) -> u64 {
    let word_idx = pos / 64;
    let off = pos % 64;
    let mut v = words[word_idx] >> off;
    if off + width > 64 {
        v |= words[word_idx + 1] << (64 - off);
    }
    v & mask(width)
}

/// Elias–Fano encoding of a monotone non-decreasing sequence: each value
/// splits into `l` low bits stored verbatim and high bits unary-coded into
/// a bit vector, for `n(2 + ⌈log₂(u/n)⌉)` bits total — within half a bit
/// per element of the information-theoretic optimum.
#[derive(Clone, Debug)]
pub struct EliasFano {
    n: usize,
    l: u32,
    low: Vec<u64>,
    high: Vec<u64>,
    /// Bit position in `high` of every [`SELECT_SAMPLE`]-th one.
    samples: Vec<u32>,
}

impl EliasFano {
    /// Encodes `values`, which must be monotone non-decreasing.
    pub fn new(values: &[u64]) -> Self {
        let n = values.len();
        if n == 0 {
            return Self {
                n: 0,
                l: 0,
                low: Vec::new(),
                high: Vec::new(),
                samples: Vec::new(),
            };
        }
        let u = values[n - 1] + 1;
        let l = if u > n as u64 {
            (u / n as u64).ilog2()
        } else {
            0
        };
        let mut low = vec![0u64; (n * l as usize).div_ceil(64) + 1];
        let high_bits = (u >> l) as usize + n + 1;
        let mut high = vec![0u64; high_bits.div_ceil(64)];
        let mut samples = Vec::with_capacity(n / SELECT_SAMPLE + 1);
        let mut prev = 0u64;
        for (i, &v) in values.iter().enumerate() {
            debug_assert!(v >= prev, "EliasFano input must be monotone");
            prev = v;
            if l > 0 {
                let pos = i * l as usize;
                low[pos / 64] |= (v & mask(l as usize)) << (pos % 64);
                if pos % 64 + l as usize > 64 {
                    low[pos / 64 + 1] |= (v & mask(l as usize)) >> (64 - pos % 64);
                }
            }
            let bit = (v >> l) as usize + i;
            high[bit / 64] |= 1u64 << (bit % 64);
            if i % SELECT_SAMPLE == 0 {
                debug_assert!(bit <= u32::MAX as usize);
                samples.push(bit as u32);
            }
        }
        Self {
            n,
            l,
            low,
            high,
            samples,
        }
    }

    /// Number of encoded values.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Returns the `i`-th value.
    ///
    /// # Panics
    ///
    /// Panics (or returns garbage in release builds) if `i ≥ len()`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.n);
        let l = self.l as usize;
        let low = if l == 0 {
            0
        } else {
            get_bits_lsb(&self.low, i * l, l)
        };
        // select₁(i) on the high bits: jump to the nearest sample at or
        // below i, then popcount forward.
        let j = i / SELECT_SAMPLE;
        let mut pos = self.samples[j] as usize;
        let mut remaining = i - j * SELECT_SAMPLE;
        if remaining > 0 {
            pos += 1;
            let mut word_idx = pos / 64;
            let mut word = self.high[word_idx] & (!0u64 << (pos % 64));
            loop {
                let ones = word.count_ones() as usize;
                if ones >= remaining {
                    let mut w = word;
                    for _ in 1..remaining {
                        w &= w - 1;
                    }
                    pos = word_idx * 64 + w.trailing_zeros() as usize;
                    break;
                }
                remaining -= ones;
                word_idx += 1;
                word = self.high[word_idx];
            }
        }
        (((pos - i) as u64) << self.l) | low
    }

    /// Heap footprint in bytes (samples included).
    pub fn heap_bytes(&self) -> usize {
        self.low.capacity() * 8 + self.high.capacity() * 8 + self.samples.capacity() * 4
    }

    /// Number of low bits per element (serialization accessor).
    pub fn low_bit_width(&self) -> u32 {
        self.l
    }

    /// Packed low-bits words (serialization accessor).
    pub fn low_words(&self) -> &[u64] {
        &self.low
    }

    /// Upper-bits unary vector words (serialization accessor).
    pub fn high_words(&self) -> &[u64] {
        &self.high
    }

    /// Rebuilds an encoding from its serialized parts, re-deriving the
    /// select samples. Fails if `high` does not contain exactly `n` ones —
    /// the cheap structural check a caller's CRC framing cannot subsume.
    pub fn from_parts(n: usize, l: u32, low: Vec<u64>, high: Vec<u64>) -> Result<Self, String> {
        if l >= 64 {
            return Err(format!("EliasFano low-bit width {l} out of range"));
        }
        if low.len() < (n * l as usize).div_ceil(64) + usize::from(n > 0 && l > 0) {
            return Err("EliasFano low-bits vector too short".into());
        }
        let ones: usize = high.iter().map(|w| w.count_ones() as usize).sum();
        if ones != n {
            return Err(format!(
                "EliasFano high-bits vector has {ones} ones, expected {n}"
            ));
        }
        let mut samples = Vec::with_capacity(n / SELECT_SAMPLE + 1);
        let mut seen = 0usize;
        'scan: for (wi, &w) in high.iter().enumerate() {
            let mut w = w;
            while w != 0 {
                if seen.is_multiple_of(SELECT_SAMPLE) {
                    let bit = wi * 64 + w.trailing_zeros() as usize;
                    if bit > u32::MAX as usize {
                        return Err("EliasFano high-bits vector too long".into());
                    }
                    samples.push(bit as u32);
                }
                seen += 1;
                if seen == n {
                    break 'scan;
                }
                w &= w - 1;
            }
        }
        Ok(Self {
            n,
            l,
            low,
            high,
            samples,
        })
    }
}

/// Node-label storage of a [`CompressedCsr`]: quotient graphs are uniformly
/// labeled (every hypernode carries the paper's `σ`), and storing that one
/// label beats a 4-bytes-per-node vector by the whole vector.
#[derive(Clone, Debug)]
enum LabelStore {
    /// Every node carries the same label.
    Uniform(Label),
    /// Per-node labels, indexed by node id.
    PerNode(Vec<Label>),
}

/// WebGraph-style succinct CSR: gap/ζ-coded forward adjacency with
/// Elias–Fano row offsets, lazy per-row decode, and a raw exception list
/// for hub rows. See the [module docs](self) for the encoding.
#[derive(Clone, Debug)]
pub struct CompressedCsr {
    n: usize,
    m: usize,
    k: u32,
    data: Vec<u64>,
    data_bits: usize,
    /// Bit offset of each coded row (`n` entries; hub rows span zero bits).
    offsets: EliasFano,
    /// Sorted ids of the held-out hub rows.
    hub_rows: Vec<u32>,
    /// Derived bitset over node ids: bit `v` set iff `v` is a hub row.
    /// Not persisted — rebuilt from `hub_rows` by every constructor. Makes
    /// the common non-hub check in point queries a single bit test instead
    /// of a binary search.
    hub_mask: Vec<u64>,
    /// Prefix offsets into `hub_targets`, one per hub row plus the end.
    hub_offsets: Vec<u32>,
    /// Concatenated raw sorted targets of the hub rows.
    hub_targets: Vec<NodeId>,
    labels: LabelStore,
    interner: LabelInterner,
}

impl CompressedCsr {
    /// Packs `csr`'s forward adjacency. The ζ parameter `k` is chosen by an
    /// exact bit-count sweep over `k ∈ 1..=4` on the actual gap stream.
    pub fn from_csr(csr: &CsrGraph) -> Self {
        let n = csr.node_count();
        let labels = csr.labels();
        let label_store = match labels.first() {
            Some(&first) if labels.iter().all(|&l| l == first) => LabelStore::Uniform(first),
            _ => LabelStore::PerNode(labels.to_vec()),
        };

        // Exact coded size per candidate k, over the gaps that will
        // actually be ζ-coded (non-hub rows, second target onward).
        let mut k_cost = [0usize; 4];
        for v in 0..n {
            let row = csr.out_neighbors(NodeId(v as u32));
            if row.len() >= HUB_DEGREE {
                continue;
            }
            for w in row.windows(2) {
                let gap = (w[1].0 - w[0].0) as u64;
                for (ki, cost) in k_cost.iter_mut().enumerate() {
                    *cost += zeta_len(gap, ki as u32 + 1);
                }
            }
        }
        let k = k_cost
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| **c)
            .map(|(ki, _)| ki as u32 + 1)
            .unwrap_or(2);

        let mut w = BitWriter::new();
        let mut row_offsets = Vec::with_capacity(n);
        let mut hub_rows = Vec::new();
        let mut hub_offsets = vec![0u32];
        let mut hub_targets = Vec::new();
        let mut m = 0usize;
        for v in 0..n {
            let row = csr.out_neighbors(NodeId(v as u32));
            m += row.len();
            row_offsets.push(w.bit_len() as u64);
            if row.len() >= HUB_DEGREE {
                hub_rows.push(v as u32);
                hub_targets.extend_from_slice(row);
                hub_offsets.push(hub_targets.len() as u32);
                continue;
            }
            w.write_gamma(row.len() as u64 + 1);
            if let Some(&first) = row.first() {
                w.write_delta(zigzag(first.0 as i64 - v as i64) + 1);
                for pair in row.windows(2) {
                    w.write_zeta((pair[1].0 - pair[0].0) as u64, k);
                }
            }
        }
        let (data, data_bits) = w.finish();
        let hub_mask = build_hub_mask(n, &hub_rows);
        Self {
            n,
            m,
            k,
            data,
            data_bits,
            offsets: EliasFano::new(&row_offsets),
            hub_rows,
            hub_mask,
            hub_offsets,
            hub_targets,
            labels: label_store,
            interner: csr.interner().clone(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// The chosen ζ parameter.
    pub fn zeta_k(&self) -> u32 {
        self.k
    }

    /// Index of `v` in the hub exception list, if it is a hub row. The
    /// bitmask settles the common non-hub case in one bit test; the binary
    /// search only runs to rank an actual hub.
    #[inline]
    fn hub_index(&self, v: u32) -> Option<usize> {
        if self.hub_mask[v as usize / 64] & (1u64 << (v % 64)) == 0 {
            return None;
        }
        self.hub_rows.binary_search(&v).ok()
    }

    #[inline]
    fn hub_slice(&self, hub: usize) -> &[NodeId] {
        &self.hub_targets[self.hub_offsets[hub] as usize..self.hub_offsets[hub + 1] as usize]
    }

    /// Out-degree of `v`. Hub rows answer from the exception list; coded
    /// rows decode only the γ-coded degree at the row start.
    pub fn degree(&self, v: NodeId) -> usize {
        assert!(v.index() < self.n, "node {v} out of bounds");
        if let Some(h) = self.hub_index(v.0) {
            return self.hub_slice(h).len();
        }
        let mut r = BitReader::at(&self.data, self.offsets.get(v.index()) as usize);
        (r.read_gamma() - 1) as usize
    }

    /// Lazy iterator over `v`'s out-neighbors in ascending id order.
    pub fn neighbors(&self, v: NodeId) -> Neighbors<'_> {
        assert!(v.index() < self.n, "node {v} out of bounds");
        if let Some(h) = self.hub_index(v.0) {
            return Neighbors::Hub(self.hub_slice(h).iter());
        }
        let mut reader = BitReader::at(&self.data, self.offsets.get(v.index()) as usize);
        let left = (reader.read_gamma() - 1) as u32;
        Neighbors::Coded {
            reader,
            k: self.k,
            left,
            v: v.0,
            prev: 0,
            first: true,
        }
    }

    /// `true` when the edge `u → w` exists. Hub rows binary-search the raw
    /// exception slice; coded rows decode-and-scan with an early exit as
    /// soon as the ascending targets pass `w`.
    pub fn has_edge(&self, u: NodeId, w: NodeId) -> bool {
        assert!(u.index() < self.n, "node {u} out of bounds");
        if let Some(h) = self.hub_index(u.0) {
            return self.hub_slice(h).binary_search(&w).is_ok();
        }
        for t in self.neighbors(u) {
            if t.0 >= w.0 {
                return t.0 == w.0;
            }
        }
        false
    }

    /// Label of node `v`.
    pub fn label_of(&self, v: NodeId) -> Label {
        assert!(v.index() < self.n, "node {v} out of bounds");
        match &self.labels {
            LabelStore::Uniform(l) => *l,
            LabelStore::PerNode(ls) => ls[v.index()],
        }
    }

    /// The label interner shared with the originating graph.
    pub fn interner(&self) -> &LabelInterner {
        &self.interner
    }

    /// Decodes back to a plain [`CsrGraph`] — labels, interner, and edge
    /// set all round-trip exactly, so `to_csr(from_csr(g)) == g` up to
    /// capacity. The escape hatch for consumers that need reverse
    /// adjacency, slices, or [`CsrGraph::patch`].
    pub fn to_csr(&self) -> CsrGraph {
        let labels = match &self.labels {
            LabelStore::Uniform(l) => vec![*l; self.n],
            LabelStore::PerNode(ls) => ls.clone(),
        };
        let mut edges = Vec::with_capacity(self.m);
        for v in 0..self.n {
            let v = NodeId(v as u32);
            for t in self.neighbors(v) {
                edges.push((v, t));
            }
        }
        CsrGraph::from_edges(labels, self.interner.clone(), edges)
    }

    /// Heap footprint in bytes. Like [`CsrGraph::heap_bytes`], the interner
    /// is excluded — it is shared with the originating graph.
    pub fn heap_bytes(&self) -> usize {
        self.data.capacity() * 8
            + self.offsets.heap_bytes()
            + self.hub_rows.capacity() * 4
            + self.hub_mask.capacity() * 8
            + self.hub_offsets.capacity() * 4
            + self.hub_targets.capacity() * 4
            + match &self.labels {
                LabelStore::Uniform(_) => 0,
                LabelStore::PerNode(ls) => ls.capacity() * 4,
            }
    }

    /// Mean coded bits per edge (hub rows count their raw 32 bits).
    pub fn bits_per_edge(&self) -> f64 {
        if self.m == 0 {
            return 0.0;
        }
        (self.data_bits + self.hub_targets.len() * 32) as f64 / self.m as f64
    }

    /// Serialized parts in a stable order, for the on-disk snapshot layout
    /// (see `qpgc_serve`'s persistence module). Word vectors are exposed
    /// as-is so writers can emit them without re-encoding.
    pub fn parts(&self) -> SuccinctParts<'_> {
        SuccinctParts {
            n: self.n,
            m: self.m,
            k: self.k,
            data_bits: self.data_bits,
            data: &self.data,
            offsets: &self.offsets,
            hub_rows: &self.hub_rows,
            hub_offsets: &self.hub_offsets,
            hub_targets: &self.hub_targets,
            uniform_label: match &self.labels {
                LabelStore::Uniform(l) => Some(*l),
                LabelStore::PerNode(_) => None,
            },
            per_node_labels: match &self.labels {
                LabelStore::Uniform(_) => &[],
                LabelStore::PerNode(ls) => ls,
            },
            interner: &self.interner,
        }
    }

    /// Rebuilds a graph from deserialized parts, validating the structural
    /// invariants a CRC cannot (counts, monotonicity, prefix shape).
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        n: usize,
        m: usize,
        k: u32,
        data_bits: usize,
        data: Vec<u64>,
        offsets: EliasFano,
        hub_rows: Vec<u32>,
        hub_offsets: Vec<u32>,
        hub_targets: Vec<NodeId>,
        labels: Option<Vec<Label>>,
        uniform_label: Label,
        interner: LabelInterner,
    ) -> Result<Self, String> {
        if !(1..=16).contains(&k) {
            return Err(format!("zeta parameter {k} out of range"));
        }
        if data.len() < data_bits.div_ceil(64) {
            return Err("coded stream shorter than its bit length".into());
        }
        if offsets.len() != n {
            return Err(format!(
                "row-offset count {} does not match node count {n}",
                offsets.len()
            ));
        }
        if hub_offsets.len() != hub_rows.len() + 1
            || hub_offsets.first().is_some_and(|&f| f != 0)
            || hub_offsets
                .last()
                .is_some_and(|&l| l as usize != hub_targets.len())
            || hub_offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err("hub offset table malformed".into());
        }
        if hub_rows.windows(2).any(|w| w[0] >= w[1])
            || hub_rows.last().is_some_and(|&r| r as usize >= n)
        {
            return Err("hub row ids not sorted or out of bounds".into());
        }
        if let Some(ls) = &labels {
            if ls.len() != n {
                return Err(format!("label count {} does not match {n} nodes", ls.len()));
            }
        }
        let labels = match labels {
            Some(ls) => LabelStore::PerNode(ls),
            None => LabelStore::Uniform(uniform_label),
        };
        let hub_mask = build_hub_mask(n, &hub_rows);
        Ok(Self {
            n,
            m,
            k,
            data,
            data_bits,
            offsets,
            hub_rows,
            hub_mask,
            hub_offsets,
            hub_targets,
            labels,
            interner,
        })
    }
}

/// Bitset over node ids with the hub rows' bits set.
fn build_hub_mask(n: usize, hub_rows: &[u32]) -> Vec<u64> {
    let mut mask = vec![0u64; n.div_ceil(64)];
    for &v in hub_rows {
        mask[v as usize / 64] |= 1u64 << (v % 64);
    }
    mask
}

/// Borrowed serialization view of a [`CompressedCsr`], produced by
/// [`CompressedCsr::parts`].
#[derive(Clone, Copy, Debug)]
pub struct SuccinctParts<'a> {
    /// Node count.
    pub n: usize,
    /// Edge count.
    pub m: usize,
    /// ζ parameter.
    pub k: u32,
    /// Valid bits in `data`.
    pub data_bits: usize,
    /// Coded adjacency stream.
    pub data: &'a [u64],
    /// Elias–Fano row offsets.
    pub offsets: &'a EliasFano,
    /// Sorted hub row ids.
    pub hub_rows: &'a [u32],
    /// Hub prefix offsets.
    pub hub_offsets: &'a [u32],
    /// Raw hub targets.
    pub hub_targets: &'a [NodeId],
    /// The single label when uniformly labeled.
    pub uniform_label: Option<Label>,
    /// Per-node labels when not uniform (empty otherwise).
    pub per_node_labels: &'a [Label],
    /// Label interner.
    pub interner: &'a LabelInterner,
}

/// Lazy neighbor iterator of [`CompressedCsr::neighbors`]: either a raw
/// slice walk (hub rows) or an in-place bit-stream decode (coded rows).
#[derive(Clone, Debug)]
pub enum Neighbors<'a> {
    /// Hub row: iterate the raw exception slice.
    Hub(std::slice::Iter<'a, NodeId>),
    /// Coded row: decode targets one at a time.
    Coded {
        /// Cursor into the coded stream, positioned after the degree.
        reader: BitReader<'a>,
        /// ζ parameter of the stream.
        k: u32,
        /// Targets left to decode.
        left: u32,
        /// Source node id (reference point of the first target).
        v: u32,
        /// Previously decoded target.
        prev: u32,
        /// `true` until the first target has been decoded.
        first: bool,
    },
}

impl Iterator for Neighbors<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        match self {
            Neighbors::Hub(it) => it.next().copied(),
            Neighbors::Coded {
                reader,
                k,
                left,
                v,
                prev,
                first,
            } => {
                if *left == 0 {
                    return None;
                }
                *left -= 1;
                let t = if *first {
                    *first = false;
                    let z = reader.read_delta() - 1;
                    (*v as i64 + unzigzag(z)) as u32
                } else {
                    *prev + reader.read_zeta(*k) as u32
                };
                *prev = t;
                Some(NodeId(t))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            Neighbors::Hub(it) => it.size_hint(),
            Neighbors::Coded { left, .. } => (*left as usize, Some(*left as usize)),
        }
    }
}

impl ExactSizeIterator for Neighbors<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    fn random_csr(n: usize, m: usize, seed: u64) -> CsrGraph {
        let mut interner = LabelInterner::new();
        let labels: Vec<Label> = (0..n)
            .map(|i| {
                let name = ["A", "B", "C"][i % 3];
                interner.intern(name)
            })
            .collect();
        let mut s = seed;
        let mut edges = Vec::with_capacity(m);
        for _ in 0..m {
            let u = NodeId((lcg(&mut s) % n as u64) as u32);
            let v = NodeId((lcg(&mut s) % n as u64) as u32);
            edges.push((u, v));
        }
        CsrGraph::from_edges(labels, interner, edges)
    }

    #[test]
    fn elias_fano_roundtrip() {
        let mut s = 0x5eedu64;
        let mut values = Vec::new();
        let mut acc = 0u64;
        for _ in 0..10_000 {
            acc += lcg(&mut s) % 97;
            values.push(acc);
        }
        let ef = EliasFano::new(&values);
        assert_eq!(ef.len(), values.len());
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(ef.get(i), v, "index {i}");
        }
    }

    #[test]
    fn elias_fano_dense_and_degenerate() {
        for values in [
            vec![],
            vec![0],
            vec![0, 0, 0, 0],
            (0..1000u64).collect::<Vec<_>>(),
            vec![7; 500],
            vec![0, u32::MAX as u64],
        ] {
            let ef = EliasFano::new(&values);
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(ef.get(i), v, "{values:?} index {i}");
            }
        }
    }

    #[test]
    fn elias_fano_parts_roundtrip() {
        let values: Vec<u64> = (0..5000u64).map(|i| i * 7 + (i % 7)).collect();
        let ef = EliasFano::new(&values);
        let rebuilt = EliasFano::from_parts(
            ef.len(),
            ef.low_bit_width(),
            ef.low_words().to_vec(),
            ef.high_words().to_vec(),
        )
        .expect("valid parts");
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(rebuilt.get(i), v);
        }
        // A corrupted high vector fails closed.
        let mut bad = ef.high_words().to_vec();
        bad[0] ^= 1 << 13;
        assert!(
            EliasFano::from_parts(ef.len(), ef.low_bit_width(), ef.low_words().to_vec(), bad)
                .is_err()
        );
    }

    #[test]
    fn compressed_matches_plain_on_random_graphs() {
        for (n, m, seed) in [(50usize, 200usize, 1u64), (500, 3000, 2), (2000, 9000, 3)] {
            let csr = random_csr(n, m, seed);
            let packed = CompressedCsr::from_csr(&csr);
            assert_eq!(packed.node_count(), csr.node_count());
            assert_eq!(packed.edge_count(), csr.edge_count());
            for v in 0..n {
                let v = NodeId(v as u32);
                let plain = csr.out_neighbors(v);
                let decoded: Vec<NodeId> = packed.neighbors(v).collect();
                assert_eq!(decoded, plain, "row {v} (n={n} m={m})");
                assert_eq!(packed.degree(v), plain.len());
                assert_eq!(packed.label_of(v), csr.labels()[v.index()]);
            }
            let mut s = seed ^ 0xabcd;
            for _ in 0..2000 {
                let u = NodeId((lcg(&mut s) % n as u64) as u32);
                let w = NodeId((lcg(&mut s) % n as u64) as u32);
                assert_eq!(packed.has_edge(u, w), csr.has_edge(u, w), "({u}, {w})");
            }
        }
    }

    #[test]
    fn hub_rows_take_the_exception_path() {
        // One node pointing at 4·HUB_DEGREE targets plus a sparse tail.
        let n = HUB_DEGREE * 8;
        let mut interner = LabelInterner::new();
        let l = interner.intern("X");
        let mut edges: Vec<(NodeId, NodeId)> = (1..=HUB_DEGREE * 4)
            .map(|t| (NodeId(0), NodeId(t as u32)))
            .collect();
        edges.push((NodeId(5), NodeId(9)));
        edges.push((NodeId(5), NodeId(2)));
        let csr = CsrGraph::from_edges(vec![l; n], interner, edges);
        let packed = CompressedCsr::from_csr(&csr);
        assert!(matches!(packed.neighbors(NodeId(0)), Neighbors::Hub(_)));
        assert!(matches!(
            packed.neighbors(NodeId(5)),
            Neighbors::Coded { .. }
        ));
        let hub: Vec<NodeId> = packed.neighbors(NodeId(0)).collect();
        assert_eq!(hub, csr.out_neighbors(NodeId(0)));
        assert_eq!(packed.degree(NodeId(0)), HUB_DEGREE * 4);
        assert!(packed.has_edge(NodeId(0), NodeId(7)));
        assert!(!packed.has_edge(NodeId(0), NodeId(0)));
        assert!(packed.has_edge(NodeId(5), NodeId(2)));
        assert!(!packed.has_edge(NodeId(5), NodeId(3)));
    }

    #[test]
    fn to_csr_roundtrips_exactly() {
        let csr = random_csr(800, 4000, 9);
        let packed = CompressedCsr::from_csr(&csr);
        let back = packed.to_csr();
        assert_eq!(back.node_count(), csr.node_count());
        assert_eq!(back.edge_count(), csr.edge_count());
        assert_eq!(back.labels(), csr.labels());
        for v in 0..csr.node_count() {
            let v = NodeId(v as u32);
            assert_eq!(back.out_neighbors(v), csr.out_neighbors(v));
            assert_eq!(back.in_neighbors(v), csr.in_neighbors(v));
        }
    }

    #[test]
    fn uniform_labels_are_stored_once() {
        let mut interner = LabelInterner::new();
        let l = interner.intern("σ");
        let edges: Vec<(NodeId, NodeId)> =
            (0..999u32).map(|i| (NodeId(i), NodeId(i + 1))).collect();
        let csr = CsrGraph::from_edges(vec![l; 1000], interner, edges);
        let packed = CompressedCsr::from_csr(&csr);
        assert!(packed.parts().uniform_label.is_some());
        // A chain has gap-1 edges everywhere: the coded form must be far
        // below the plain form's 12n + 8m bytes.
        assert!(
            packed.heap_bytes() * 2 < csr.heap_bytes(),
            "succinct {} vs plain {}",
            packed.heap_bytes(),
            csr.heap_bytes()
        );
        assert_eq!(packed.label_of(NodeId(123)), l);
    }

    #[test]
    fn from_parts_rejects_malformed_structures() {
        let csr = random_csr(100, 400, 4);
        let packed = CompressedCsr::from_csr(&csr);
        let p = packed.parts();
        // Baseline: faithful parts reconstruct.
        let ok = CompressedCsr::from_parts(
            p.n,
            p.m,
            p.k,
            p.data_bits,
            p.data.to_vec(),
            EliasFano::from_parts(
                p.offsets.len(),
                p.offsets.low_bit_width(),
                p.offsets.low_words().to_vec(),
                p.offsets.high_words().to_vec(),
            )
            .unwrap(),
            p.hub_rows.to_vec(),
            p.hub_offsets.to_vec(),
            p.hub_targets.to_vec(),
            (!p.per_node_labels.is_empty()).then(|| p.per_node_labels.to_vec()),
            p.uniform_label.unwrap_or(Label(0)),
            p.interner.clone(),
        )
        .expect("faithful parts");
        assert_eq!(ok.edge_count(), packed.edge_count());
        // Truncated stream fails closed.
        assert!(CompressedCsr::from_parts(
            p.n,
            p.m,
            p.k,
            p.data_bits,
            p.data[..p.data.len().saturating_sub(1)].to_vec(),
            EliasFano::from_parts(
                p.offsets.len(),
                p.offsets.low_bit_width(),
                p.offsets.low_words().to_vec(),
                p.offsets.high_words().to_vec(),
            )
            .unwrap(),
            p.hub_rows.to_vec(),
            p.hub_offsets.to_vec(),
            p.hub_targets.to_vec(),
            (!p.per_node_labels.is_empty()).then(|| p.per_node_labels.to_vec()),
            p.uniform_label.unwrap_or(Label(0)),
            p.interner.clone(),
        )
        .is_err());
        // Bad zeta parameter fails closed.
        assert!(CompressedCsr::from_parts(
            p.n,
            p.m,
            0,
            p.data_bits,
            p.data.to_vec(),
            EliasFano::from_parts(
                p.offsets.len(),
                p.offsets.low_bit_width(),
                p.offsets.low_words().to_vec(),
                p.offsets.high_words().to_vec(),
            )
            .unwrap(),
            p.hub_rows.to_vec(),
            p.hub_offsets.to_vec(),
            p.hub_targets.to_vec(),
            None,
            Label(0),
            p.interner.clone(),
        )
        .is_err());
    }
}
