//! Strongly connected components and the condensation graph `Gscc`.
//!
//! The paper uses the SCC graph in two places: as a pre-pass that shrinks
//! the input of `compressR` without losing reachability (Section 3.2,
//! "Optimizations", and the `RCscc` column of Table 1), and as the basis of
//! the topological / bisimulation rank functions that drive the incremental
//! algorithms (Section 5). We implement Tarjan's algorithm iteratively so
//! deep graphs cannot overflow the call stack.

use crate::graph::LabeledGraph;
use crate::ids::NodeId;

/// The result of an SCC decomposition: a mapping from nodes to component
/// ids plus the condensation DAG.
#[derive(Clone, Debug)]
pub struct Condensation {
    /// `component[v]` is the SCC id of node `v`. Component ids are dense,
    /// `0..component_count`, and are numbered in *reverse topological
    /// order of completion* (Tarjan property: every edge of the condensation
    /// goes from a higher id to a lower id... see [`Condensation::is_topological`]).
    component: Vec<u32>,
    /// Members of each component.
    members: Vec<Vec<NodeId>>,
    /// Out-adjacency of the condensation DAG (no duplicate edges, no self
    /// loops).
    scc_out: Vec<Vec<u32>>,
    /// In-adjacency of the condensation DAG.
    scc_in: Vec<Vec<u32>>,
    /// Number of edges in the condensation DAG.
    scc_edges: usize,
}

impl Condensation {
    /// Computes the SCC decomposition of `g` with an iterative Tarjan.
    pub fn of(g: &LabeledGraph) -> Self {
        let n = g.node_count();
        let mut index = vec![u32::MAX; n];
        let mut lowlink = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut component = vec![u32::MAX; n];
        let mut stack: Vec<NodeId> = Vec::new();
        let mut next_index = 0u32;
        let mut comp_count = 0u32;

        // Explicit DFS state: (node, next child position).
        let mut call_stack: Vec<(NodeId, usize)> = Vec::new();

        for root in g.nodes() {
            if index[root.index()] != u32::MAX {
                continue;
            }
            call_stack.push((root, 0));
            index[root.index()] = next_index;
            lowlink[root.index()] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root.index()] = true;

            while let Some(&mut (v, ref mut child_pos)) = call_stack.last_mut() {
                let children = g.out_neighbors(v);
                if *child_pos < children.len() {
                    let w = children[*child_pos];
                    *child_pos += 1;
                    if index[w.index()] == u32::MAX {
                        // Tree edge: descend.
                        index[w.index()] = next_index;
                        lowlink[w.index()] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w.index()] = true;
                        call_stack.push((w, 0));
                    } else if on_stack[w.index()] {
                        lowlink[v.index()] = lowlink[v.index()].min(index[w.index()]);
                    }
                } else {
                    // Done with v: pop and propagate lowlink to parent.
                    call_stack.pop();
                    if let Some(&(parent, _)) = call_stack.last() {
                        lowlink[parent.index()] = lowlink[parent.index()].min(lowlink[v.index()]);
                    }
                    if lowlink[v.index()] == index[v.index()] {
                        // v is the root of an SCC.
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w.index()] = false;
                            component[w.index()] = comp_count;
                            if w == v {
                                break;
                            }
                        }
                        comp_count += 1;
                    }
                }
            }
        }

        // Build the condensation adjacency (deduplicated).
        let c = comp_count as usize;
        let mut members = vec![Vec::new(); c];
        for v in g.nodes() {
            members[component[v.index()] as usize].push(v);
        }
        let mut scc_out = vec![Vec::new(); c];
        let mut scc_in = vec![Vec::new(); c];
        let mut seen = vec![u32::MAX; c];
        let mut scc_edges = 0usize;
        for (cu, member_list) in members.iter().enumerate() {
            for &u in member_list {
                for &w in g.out_neighbors(u) {
                    let cw = component[w.index()] as usize;
                    if cw != cu && seen[cw] != cu as u32 {
                        seen[cw] = cu as u32;
                        scc_out[cu].push(cw as u32);
                        scc_in[cw].push(cu as u32);
                        scc_edges += 1;
                    }
                }
            }
        }

        Condensation {
            component,
            members,
            scc_out,
            scc_in,
            scc_edges,
        }
    }

    /// Number of strongly connected components.
    pub fn component_count(&self) -> usize {
        self.members.len()
    }

    /// Number of edges of the condensation DAG.
    pub fn edge_count(&self) -> usize {
        self.scc_edges
    }

    /// The paper's `|Gscc|` size measure: components plus condensation edges.
    pub fn size(&self) -> usize {
        self.component_count() + self.edge_count()
    }

    /// SCC id of node `v`.
    #[inline]
    pub fn component_of(&self, v: NodeId) -> u32 {
        self.component[v.index()]
    }

    /// Members of component `c`.
    pub fn members(&self, c: u32) -> &[NodeId] {
        &self.members[c as usize]
    }

    /// Out-neighbours of component `c` in the condensation DAG.
    pub fn scc_out(&self, c: u32) -> &[u32] {
        &self.scc_out[c as usize]
    }

    /// In-neighbours of component `c` in the condensation DAG.
    pub fn scc_in(&self, c: u32) -> &[u32] {
        &self.scc_in[c as usize]
    }

    /// `true` when component `c` contains a cycle (more than one member, or
    /// a single member with a self loop in `g`).
    pub fn is_cyclic(&self, c: u32, g: &LabeledGraph) -> bool {
        let m = self.members(c);
        m.len() > 1 || (m.len() == 1 && g.has_edge(m[0], m[0]))
    }

    /// Returns the component ids in topological order (sources first).
    ///
    /// Tarjan emits components in reverse topological order, so ids
    /// `comp_count-1, …, 0` are already a topological order of the
    /// condensation; this helper materializes it for callers that iterate.
    pub fn topological_order(&self) -> Vec<u32> {
        (0..self.component_count() as u32).rev().collect()
    }

    /// Checks the Tarjan numbering invariant used by `topological_order`:
    /// every condensation edge goes from a higher component id to a lower
    /// one.
    pub fn is_topological(&self) -> bool {
        self.scc_out
            .iter()
            .enumerate()
            .all(|(cu, outs)| outs.iter().all(|&cw| (cw as usize) < cu))
    }

    /// Builds the condensation as a standalone [`LabeledGraph`] whose node
    /// `i` is component `i`; all nodes share one label. This is the graph
    /// `Gscc` that the AHO baseline and the `RCscc` measurements operate on.
    pub fn to_graph(&self) -> LabeledGraph {
        let mut g = LabeledGraph::with_capacity(self.component_count());
        for _ in 0..self.component_count() {
            g.add_node_with_label("scc");
        }
        for (cu, outs) in self.scc_out.iter().enumerate() {
            for &cw in outs {
                g.add_edge(NodeId::new(cu), NodeId::new(cw as usize));
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 3-cycles connected by a bridge, plus a tail node.
    ///   c0: {0,1,2}  c1: {3,4,5}   2 -> 3,  5 -> 6
    fn two_cycles() -> (LabeledGraph, Vec<NodeId>) {
        let mut g = LabeledGraph::new();
        let n: Vec<_> = (0..7).map(|_| g.add_node_with_label("X")).collect();
        g.add_edge(n[0], n[1]);
        g.add_edge(n[1], n[2]);
        g.add_edge(n[2], n[0]);
        g.add_edge(n[3], n[4]);
        g.add_edge(n[4], n[5]);
        g.add_edge(n[5], n[3]);
        g.add_edge(n[2], n[3]);
        g.add_edge(n[5], n[6]);
        (g, n)
    }

    #[test]
    fn finds_components() {
        let (g, n) = two_cycles();
        let c = Condensation::of(&g);
        assert_eq!(c.component_count(), 3);
        assert_eq!(c.component_of(n[0]), c.component_of(n[1]));
        assert_eq!(c.component_of(n[0]), c.component_of(n[2]));
        assert_eq!(c.component_of(n[3]), c.component_of(n[5]));
        assert_ne!(c.component_of(n[0]), c.component_of(n[3]));
        assert_ne!(c.component_of(n[3]), c.component_of(n[6]));
        assert_eq!(c.edge_count(), 2);
        assert_eq!(c.size(), 5);
    }

    #[test]
    fn condensation_is_topologically_numbered() {
        let (g, _) = two_cycles();
        let c = Condensation::of(&g);
        assert!(c.is_topological());
        let order = c.topological_order();
        assert_eq!(order.len(), 3);
        // Sources first: the component of node 0 must appear before that of node 6.
    }

    #[test]
    fn acyclic_graph_has_singleton_components() {
        let mut g = LabeledGraph::new();
        let n: Vec<_> = (0..5).map(|_| g.add_node_with_label("X")).collect();
        for i in 0..4 {
            g.add_edge(n[i], n[i + 1]);
        }
        let c = Condensation::of(&g);
        assert_eq!(c.component_count(), 5);
        assert!(c.is_topological());
        for comp in 0..5u32 {
            assert_eq!(c.members(comp).len(), 1);
            assert!(!c.is_cyclic(comp, &g));
        }
    }

    #[test]
    fn self_loop_is_cyclic_singleton() {
        let mut g = LabeledGraph::new();
        let a = g.add_node_with_label("A");
        let b = g.add_node_with_label("B");
        g.add_edge(a, a);
        g.add_edge(a, b);
        let c = Condensation::of(&g);
        assert_eq!(c.component_count(), 2);
        assert!(c.is_cyclic(c.component_of(a), &g));
        assert!(!c.is_cyclic(c.component_of(b), &g));
    }

    #[test]
    fn single_big_cycle() {
        let mut g = LabeledGraph::new();
        let n: Vec<_> = (0..100).map(|_| g.add_node_with_label("X")).collect();
        for i in 0..100 {
            g.add_edge(n[i], n[(i + 1) % 100]);
        }
        let c = Condensation::of(&g);
        assert_eq!(c.component_count(), 1);
        assert_eq!(c.members(0).len(), 100);
        assert_eq!(c.edge_count(), 0);
    }

    #[test]
    fn to_graph_matches_condensation() {
        let (g, _) = two_cycles();
        let c = Condensation::of(&g);
        let gc = c.to_graph();
        assert_eq!(gc.node_count(), c.component_count());
        assert_eq!(gc.edge_count(), c.edge_count());
    }

    #[test]
    fn empty_graph() {
        let g = LabeledGraph::new();
        let c = Condensation::of(&g);
        assert_eq!(c.component_count(), 0);
        assert_eq!(c.edge_count(), 0);
        assert!(c.is_topological());
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        // 200k-node path exercises the iterative DFS.
        let mut g = LabeledGraph::with_capacity(200_000);
        let n: Vec<_> = (0..200_000).map(|_| g.add_node_with_label("X")).collect();
        for i in 0..n.len() - 1 {
            g.add_edge(n[i], n[i + 1]);
        }
        let c = Condensation::of(&g);
        assert_eq!(c.component_count(), 200_000);
    }

    #[test]
    fn condensation_edges_are_deduplicated() {
        let mut g = LabeledGraph::new();
        let a = g.add_node_with_label("A");
        let b = g.add_node_with_label("B");
        let c1 = g.add_node_with_label("C");
        let c2 = g.add_node_with_label("C");
        // SCC {c1, c2}; two parallel edges from a's SCC and b's SCC into it.
        g.add_edge(c1, c2);
        g.add_edge(c2, c1);
        g.add_edge(a, c1);
        g.add_edge(a, c2);
        g.add_edge(b, c1);
        let c = Condensation::of(&g);
        assert_eq!(c.component_count(), 3);
        // a -> {c1,c2} must appear once despite two underlying edges.
        assert_eq!(c.edge_count(), 2);
    }
}
