//! Strongly connected components and the condensation graph `Gscc`.
//!
//! The paper uses the SCC graph in two places: as a pre-pass that shrinks
//! the input of `compressR` without losing reachability (Section 3.2,
//! "Optimizations", and the `RCscc` column of Table 1), and as the basis of
//! the topological / bisimulation rank functions that drive the incremental
//! algorithms (Section 5). We implement Tarjan's algorithm iteratively so
//! deep graphs cannot overflow the call stack.

use crate::csr::csr_from_grouped;
use crate::graph::LabeledGraph;
use crate::ids::NodeId;
use crate::view::GraphView;

/// The result of an SCC decomposition: a mapping from nodes to component
/// ids plus the condensation DAG.
///
/// Members and condensation adjacency are stored in compressed sparse row
/// form (one contiguous array plus offsets per direction) — no per-component
/// `Vec` allocations, and the slices the accessors return are contiguous.
#[derive(Clone, Debug)]
pub struct Condensation {
    /// `component[v]` is the SCC id of node `v`. Component ids are dense,
    /// `0..component_count`, and are numbered in *reverse topological
    /// order of completion* (Tarjan property: every edge of the condensation
    /// goes from a higher id to a lower id... see [`Condensation::is_topological`]).
    component: Vec<u32>,
    /// CSR offsets into `member_list`, one range per component.
    member_offsets: Vec<u32>,
    /// Members of every component, grouped by component id.
    member_list: Vec<NodeId>,
    /// CSR out-adjacency of the condensation DAG (no duplicate edges, no
    /// self loops).
    out_offsets: Vec<u32>,
    out_targets: Vec<u32>,
    /// CSR in-adjacency of the condensation DAG.
    in_offsets: Vec<u32>,
    in_targets: Vec<u32>,
}

impl Condensation {
    /// Computes the SCC decomposition of `g` with an iterative Tarjan.
    ///
    /// Accepts any [`GraphView`] — the mutable graph or a frozen
    /// [`crate::CsrGraph`] snapshot (the CSR layout makes the DFS scans
    /// cache-friendly on large graphs).
    pub fn of<G: GraphView>(g: &G) -> Self {
        let n = g.node_count();
        let mut index = vec![u32::MAX; n];
        let mut lowlink = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut component = vec![u32::MAX; n];
        let mut stack: Vec<NodeId> = Vec::new();
        let mut next_index = 0u32;
        let mut comp_count = 0u32;

        // Explicit DFS state: (node, neighbor slice, next child position).
        // Caching the slice in the frame avoids re-fetching adjacency (two
        // offset loads + a slice construction) once per edge.
        let mut call_stack: Vec<(NodeId, &[NodeId], usize)> = Vec::new();

        for root in g.nodes() {
            if index[root.index()] != u32::MAX {
                continue;
            }
            call_stack.push((root, g.out_neighbors(root), 0));
            index[root.index()] = next_index;
            lowlink[root.index()] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root.index()] = true;

            while let Some(&mut (v, children, ref mut child_pos)) = call_stack.last_mut() {
                if *child_pos < children.len() {
                    let w = children[*child_pos];
                    *child_pos += 1;
                    if index[w.index()] == u32::MAX {
                        // Tree edge: descend.
                        index[w.index()] = next_index;
                        lowlink[w.index()] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w.index()] = true;
                        call_stack.push((w, g.out_neighbors(w), 0));
                    } else if on_stack[w.index()] {
                        lowlink[v.index()] = lowlink[v.index()].min(index[w.index()]);
                    }
                } else {
                    // Done with v: pop and propagate lowlink to parent.
                    call_stack.pop();
                    if let Some(&(parent, _, _)) = call_stack.last() {
                        lowlink[parent.index()] = lowlink[parent.index()].min(lowlink[v.index()]);
                    }
                    if lowlink[v.index()] == index[v.index()] {
                        // v is the root of an SCC.
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w.index()] = false;
                            component[w.index()] = comp_count;
                            if w == v {
                                break;
                            }
                        }
                        comp_count += 1;
                    }
                }
            }
        }

        // Members in CSR form: counting sort by component id.
        let c = comp_count as usize;
        let mut member_offsets = vec![0u32; c + 1];
        for v in g.nodes() {
            member_offsets[component[v.index()] as usize + 1] += 1;
        }
        for i in 0..c {
            member_offsets[i + 1] += member_offsets[i];
        }
        let mut cursor: Vec<u32> = member_offsets[..c].to_vec();
        let mut member_list = vec![NodeId(0); n];
        for v in g.nodes() {
            let cu = component[v.index()] as usize;
            member_list[cursor[cu] as usize] = v;
            cursor[cu] += 1;
        }

        // Condensation adjacency, deduplicated with a per-source marker and
        // collected grouped by source (member_list is grouped by component),
        // then scattered into CSR form for both directions.
        let mut seen = vec![u32::MAX; c];
        let mut cross: Vec<(u32, u32)> = Vec::new();
        for cu in 0..c {
            let lo = member_offsets[cu] as usize;
            let hi = member_offsets[cu + 1] as usize;
            for &u in &member_list[lo..hi] {
                for &w in g.out_neighbors(u) {
                    let cw = component[w.index()] as usize;
                    if cw != cu && seen[cw] != cu as u32 {
                        seen[cw] = cu as u32;
                        cross.push((cu as u32, cw as u32));
                    }
                }
            }
        }
        // `cross` is grouped by ascending source and deduplicated, exactly
        // what the shared CSR builder expects.
        let (out_offsets, out_targets, in_offsets, in_targets) = csr_from_grouped(c, &cross);

        Condensation {
            component,
            member_offsets,
            member_list,
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
        }
    }

    /// Number of strongly connected components.
    pub fn component_count(&self) -> usize {
        self.member_offsets.len() - 1
    }

    /// Number of edges of the condensation DAG.
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// The paper's `|Gscc|` size measure: components plus condensation edges.
    pub fn size(&self) -> usize {
        self.component_count() + self.edge_count()
    }

    /// SCC id of node `v`.
    #[inline]
    pub fn component_of(&self, v: NodeId) -> u32 {
        self.component[v.index()]
    }

    /// Members of component `c`.
    pub fn members(&self, c: u32) -> &[NodeId] {
        let i = c as usize;
        &self.member_list[self.member_offsets[i] as usize..self.member_offsets[i + 1] as usize]
    }

    /// Out-neighbours of component `c` in the condensation DAG.
    pub fn scc_out(&self, c: u32) -> &[u32] {
        let i = c as usize;
        &self.out_targets[self.out_offsets[i] as usize..self.out_offsets[i + 1] as usize]
    }

    /// In-neighbours of component `c` in the condensation DAG.
    pub fn scc_in(&self, c: u32) -> &[u32] {
        let i = c as usize;
        &self.in_targets[self.in_offsets[i] as usize..self.in_offsets[i + 1] as usize]
    }

    /// `true` when component `c` contains a cycle (more than one member, or
    /// a single member with a self loop in `g`).
    pub fn is_cyclic<G: GraphView>(&self, c: u32, g: &G) -> bool {
        let m = self.members(c);
        m.len() > 1 || (m.len() == 1 && g.has_edge(m[0], m[0]))
    }

    /// Cyclicity of every component in one sequential sweep over the nodes
    /// (cheaper than `component_count` individual [`Condensation::is_cyclic`]
    /// probes when all flags are needed, as the rank and reachability
    /// equivalence computations do).
    pub fn cyclic_flags<G: GraphView>(&self, g: &G) -> Vec<bool> {
        let c = self.component_count();
        let mut cyclic: Vec<bool> = (0..c as u32).map(|cu| self.members(cu).len() > 1).collect();
        for v in g.nodes() {
            if g.out_neighbors(v).contains(&v) {
                cyclic[self.component_of(v) as usize] = true;
            }
        }
        cyclic
    }

    /// Returns the component ids in topological order (sources first).
    ///
    /// Tarjan emits components in reverse topological order, so ids
    /// `comp_count-1, …, 0` are already a topological order of the
    /// condensation; this helper materializes it for callers that iterate.
    pub fn topological_order(&self) -> Vec<u32> {
        (0..self.component_count() as u32).rev().collect()
    }

    /// Checks the Tarjan numbering invariant used by `topological_order`:
    /// every condensation edge goes from a higher component id to a lower
    /// one.
    pub fn is_topological(&self) -> bool {
        (0..self.component_count())
            .all(|cu| self.scc_out(cu as u32).iter().all(|&cw| (cw as usize) < cu))
    }

    /// Builds the condensation as a standalone [`LabeledGraph`] whose node
    /// `i` is component `i`; all nodes share one label. This is the graph
    /// `Gscc` that the AHO baseline and the `RCscc` measurements operate on.
    pub fn to_graph(&self) -> LabeledGraph {
        let c = self.component_count();
        let mut g = LabeledGraph::with_capacity(c);
        for _ in 0..c {
            g.add_node_with_label("scc");
        }
        let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(self.edge_count());
        for cu in 0..c {
            for &cw in self.scc_out(cu as u32) {
                edges.push((NodeId::new(cu), NodeId::new(cw as usize)));
            }
        }
        g.extend_edges(edges);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 3-cycles connected by a bridge, plus a tail node.
    ///   c0: {0,1,2}  c1: {3,4,5}   2 -> 3,  5 -> 6
    fn two_cycles() -> (LabeledGraph, Vec<NodeId>) {
        let mut g = LabeledGraph::new();
        let n: Vec<_> = (0..7).map(|_| g.add_node_with_label("X")).collect();
        g.add_edge(n[0], n[1]);
        g.add_edge(n[1], n[2]);
        g.add_edge(n[2], n[0]);
        g.add_edge(n[3], n[4]);
        g.add_edge(n[4], n[5]);
        g.add_edge(n[5], n[3]);
        g.add_edge(n[2], n[3]);
        g.add_edge(n[5], n[6]);
        (g, n)
    }

    #[test]
    fn finds_components() {
        let (g, n) = two_cycles();
        let c = Condensation::of(&g);
        assert_eq!(c.component_count(), 3);
        assert_eq!(c.component_of(n[0]), c.component_of(n[1]));
        assert_eq!(c.component_of(n[0]), c.component_of(n[2]));
        assert_eq!(c.component_of(n[3]), c.component_of(n[5]));
        assert_ne!(c.component_of(n[0]), c.component_of(n[3]));
        assert_ne!(c.component_of(n[3]), c.component_of(n[6]));
        assert_eq!(c.edge_count(), 2);
        assert_eq!(c.size(), 5);
    }

    #[test]
    fn condensation_is_topologically_numbered() {
        let (g, _) = two_cycles();
        let c = Condensation::of(&g);
        assert!(c.is_topological());
        let order = c.topological_order();
        assert_eq!(order.len(), 3);
        // Sources first: the component of node 0 must appear before that of node 6.
    }

    #[test]
    fn acyclic_graph_has_singleton_components() {
        let mut g = LabeledGraph::new();
        let n: Vec<_> = (0..5).map(|_| g.add_node_with_label("X")).collect();
        for i in 0..4 {
            g.add_edge(n[i], n[i + 1]);
        }
        let c = Condensation::of(&g);
        assert_eq!(c.component_count(), 5);
        assert!(c.is_topological());
        for comp in 0..5u32 {
            assert_eq!(c.members(comp).len(), 1);
            assert!(!c.is_cyclic(comp, &g));
        }
    }

    #[test]
    fn self_loop_is_cyclic_singleton() {
        let mut g = LabeledGraph::new();
        let a = g.add_node_with_label("A");
        let b = g.add_node_with_label("B");
        g.add_edge(a, a);
        g.add_edge(a, b);
        let c = Condensation::of(&g);
        assert_eq!(c.component_count(), 2);
        assert!(c.is_cyclic(c.component_of(a), &g));
        assert!(!c.is_cyclic(c.component_of(b), &g));
    }

    #[test]
    fn single_big_cycle() {
        let mut g = LabeledGraph::new();
        let n: Vec<_> = (0..100).map(|_| g.add_node_with_label("X")).collect();
        for i in 0..100 {
            g.add_edge(n[i], n[(i + 1) % 100]);
        }
        let c = Condensation::of(&g);
        assert_eq!(c.component_count(), 1);
        assert_eq!(c.members(0).len(), 100);
        assert_eq!(c.edge_count(), 0);
    }

    #[test]
    fn to_graph_matches_condensation() {
        let (g, _) = two_cycles();
        let c = Condensation::of(&g);
        let gc = c.to_graph();
        assert_eq!(gc.node_count(), c.component_count());
        assert_eq!(gc.edge_count(), c.edge_count());
    }

    #[test]
    fn empty_graph() {
        let g = LabeledGraph::new();
        let c = Condensation::of(&g);
        assert_eq!(c.component_count(), 0);
        assert_eq!(c.edge_count(), 0);
        assert!(c.is_topological());
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        // 200k-node path exercises the iterative DFS.
        let mut g = LabeledGraph::with_capacity(200_000);
        let n: Vec<_> = (0..200_000).map(|_| g.add_node_with_label("X")).collect();
        for i in 0..n.len() - 1 {
            g.add_edge(n[i], n[i + 1]);
        }
        let c = Condensation::of(&g);
        assert_eq!(c.component_count(), 200_000);
    }

    #[test]
    fn condensation_edges_are_deduplicated() {
        let mut g = LabeledGraph::new();
        let a = g.add_node_with_label("A");
        let b = g.add_node_with_label("B");
        let c1 = g.add_node_with_label("C");
        let c2 = g.add_node_with_label("C");
        // SCC {c1, c2}; two parallel edges from a's SCC and b's SCC into it.
        g.add_edge(c1, c2);
        g.add_edge(c2, c1);
        g.add_edge(a, c1);
        g.add_edge(a, c2);
        g.add_edge(b, c1);
        let c = Condensation::of(&g);
        assert_eq!(c.component_count(), 3);
        // a -> {c1,c2} must appear once despite two underlying edges.
        assert_eq!(c.edge_count(), 2);
    }
}
