//! Bit-level universal codes for the succinct CSR backend.
//!
//! Implements the instantaneous codes the WebGraph family builds its
//! gap-compressed adjacency on: unary, Elias γ and δ, and the ζ_k codes of
//! Boldi–Vigna (the right family for the power-law gap distributions of the
//! Table-1 shapes), plus a byte-oriented vbyte fallback for values too large
//! or too flat for the universal codes to win. [`BitWriter`] packs an
//! MSB-first bitstream into `u64` words; [`BitReader`] decodes it lazily so
//! a query touching one adjacency row never inflates any other row.
//!
//! All universal codes here encode **positive** integers (`x ≥ 1`); callers
//! shift by one when zero is possible. Signed values go through the
//! [`zigzag`] / [`unzigzag`] mapping first.

/// Mask with the `n` lowest bits set (`n ≤ 64`).
#[inline]
fn mask(n: usize) -> u64 {
    if n >= 64 {
        !0
    } else {
        (1u64 << n) - 1
    }
}

/// Maps a signed value onto the non-negative integers with small absolute
/// values staying small: `0, -1, 1, -2, 2, … → 0, 1, 2, 3, 4, …`.
#[inline]
pub fn zigzag(x: i64) -> u64 {
    ((x << 1) ^ (x >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Exact bit length of `x ≥ 1` under the γ code.
#[inline]
pub fn gamma_len(x: u64) -> usize {
    debug_assert!(x >= 1);
    let n = 63 - x.leading_zeros() as usize;
    2 * n + 1
}

/// Exact bit length of `x ≥ 1` under the ζ_k code.
#[inline]
pub fn zeta_len(x: u64, k: u32) -> usize {
    debug_assert!(x >= 1 && k >= 1);
    let h = (63 - x.leading_zeros()) / k;
    let m = (1u64 << ((h + 1) * k)) - (1u64 << (h * k));
    let b = (64 - (m - 1).leading_zeros()).max(1) as usize;
    let threshold = (1u64 << b) - m;
    let v = x - (1u64 << (h * k));
    h as usize + 1 + if v < threshold { b - 1 } else { b }
}

/// Append-only MSB-first bit stream packed into `u64` words.
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    words: Vec<u64>,
    len: usize,
}

impl BitWriter {
    /// Creates an empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    #[inline]
    pub fn bit_len(&self) -> usize {
        self.len
    }

    /// Appends the `width` low bits of `value`, most significant first.
    #[inline]
    pub fn write_bits(&mut self, value: u64, width: usize) {
        debug_assert!(width <= 64);
        debug_assert!(width == 64 || value <= mask(width), "value overflows width");
        let mut remaining = width;
        while remaining > 0 {
            let bit_idx = self.len % 64;
            if bit_idx == 0 {
                self.words.push(0);
            }
            let free = 64 - bit_idx;
            let take = free.min(remaining);
            let chunk = (value >> (remaining - take)) & mask(take);
            let word = self.words.last_mut().expect("word pushed above");
            *word |= chunk << (free - take);
            self.len += take;
            remaining -= take;
        }
    }

    /// Appends `n` in unary: `n` zeros followed by a one.
    #[inline]
    pub fn write_unary(&mut self, n: u64) {
        let mut left = n;
        while left >= 64 {
            self.write_bits(0, 64);
            left -= 64;
        }
        self.write_bits(1, left as usize + 1);
    }

    /// Appends `x ≥ 1` in Elias γ: unary `⌊log₂ x⌋` then the low bits.
    #[inline]
    pub fn write_gamma(&mut self, x: u64) {
        debug_assert!(x >= 1);
        let n = 63 - x.leading_zeros() as usize;
        self.write_unary(n as u64);
        self.write_bits(x & mask(n), n);
    }

    /// Appends `x ≥ 1` in Elias δ: γ(`⌊log₂ x⌋ + 1`) then the low bits.
    #[inline]
    pub fn write_delta(&mut self, x: u64) {
        debug_assert!(x >= 1);
        let n = 63 - x.leading_zeros() as usize;
        self.write_gamma(n as u64 + 1);
        self.write_bits(x & mask(n), n);
    }

    /// Appends `v ∈ [0, m)` in the minimal binary (truncated) code: values
    /// below `2^b − m` take `b − 1` bits, the rest take `b`, where
    /// `b = ⌈log₂ m⌉`.
    #[inline]
    pub fn write_minimal_binary(&mut self, v: u64, m: u64) {
        debug_assert!(m >= 1 && v < m);
        if m == 1 {
            return;
        }
        let b = (64 - (m - 1).leading_zeros()).max(1) as usize;
        let threshold = (1u64 << b) - m;
        if v < threshold {
            self.write_bits(v, b - 1);
        } else {
            self.write_bits(v + threshold, b);
        }
    }

    /// Appends `x ≥ 1` in the ζ_k code of Boldi–Vigna: unary bucket `h`
    /// with `2^{hk} ≤ x < 2^{(h+1)k}`, then `x − 2^{hk}` minimally binary
    /// in the bucket interval.
    #[inline]
    pub fn write_zeta(&mut self, x: u64, k: u32) {
        debug_assert!(x >= 1 && k >= 1);
        let h = (63 - x.leading_zeros()) / k;
        self.write_unary(h as u64);
        let low = 1u64 << (h * k);
        let m = (1u64 << ((h + 1) * k)) - low;
        self.write_minimal_binary(x - low, m);
    }

    /// Appends `x` as a vbyte varint: 7 payload bits per group, high bit
    /// set on every group but the last. The fallback code for values whose
    /// distribution the universal codes model badly.
    pub fn write_vbyte(&mut self, mut x: u64) {
        loop {
            let group = x & 0x7f;
            x >>= 7;
            if x == 0 {
                self.write_bits(group, 8);
                return;
            }
            self.write_bits(0x80 | group, 8);
        }
    }

    /// Consumes the writer, returning the packed words and the bit length.
    pub fn finish(self) -> (Vec<u64>, usize) {
        (self.words, self.len)
    }
}

/// Cursor decoding a [`BitWriter`] stream, cheap to construct per row.
///
/// Buffers the current word left-aligned so the hot decode loops (one ζ
/// read per neighbor gap) touch memory once per 64 bits instead of once
/// per symbol. Bits of `buf` beyond `avail` are always zero — `read_unary`
/// exploits this to find the terminating one with a single `leading_zeros`.
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    words: &'a [u64],
    /// Unconsumed bits of the current word, left-aligned (MSB-first).
    buf: u64,
    /// Number of valid bits at the top of `buf`; the rest are zero.
    avail: usize,
    /// Index of the next word to refill from.
    next: usize,
}

impl<'a> BitReader<'a> {
    /// Opens a reader over `words` positioned at bit `pos`.
    #[inline]
    pub fn at(words: &'a [u64], pos: usize) -> Self {
        let word_idx = pos / 64;
        let skip = pos % 64;
        if word_idx < words.len() {
            Self {
                words,
                buf: words[word_idx] << skip,
                avail: 64 - skip,
                next: word_idx + 1,
            }
        } else {
            // Degenerate cursor at (or past) the end: any read panics on
            // the refill, matching the unbuffered reader's behavior.
            Self {
                words,
                buf: 0,
                avail: skip,
                next: word_idx,
            }
        }
    }

    /// Current bit position.
    #[inline]
    pub fn position(&self) -> usize {
        self.next * 64 - self.avail
    }

    #[inline]
    fn refill(&mut self) {
        self.buf = self.words[self.next];
        self.avail = 64;
        self.next += 1;
    }

    /// Reads `width` bits, most significant first.
    #[inline]
    pub fn read_bits(&mut self, width: usize) -> u64 {
        debug_assert!(width <= 64);
        if width == 0 {
            return 0;
        }
        if width <= self.avail {
            let out = self.buf >> (64 - width);
            self.buf = if width == 64 { 0 } else { self.buf << width };
            self.avail -= width;
            return out;
        }
        let have = self.avail;
        let out = if have == 0 {
            0
        } else {
            self.buf >> (64 - have)
        };
        let rest = width - have;
        self.refill();
        let low = self.buf >> (64 - rest);
        self.buf = if rest == 64 { 0 } else { self.buf << rest };
        self.avail -= rest;
        (out << rest) | low
    }

    /// Reads a unary value: the number of zeros before the next one.
    #[inline]
    pub fn read_unary(&mut self) -> u64 {
        let mut n = 0u64;
        // buf ≠ 0 implies the leading one sits within `avail` (the tail
        // bits are zero), so the skip count needs no bounds check.
        while self.buf == 0 {
            n += self.avail as u64;
            self.refill();
        }
        let lz = self.buf.leading_zeros() as usize;
        let take = lz + 1;
        self.buf = if take == 64 { 0 } else { self.buf << take };
        self.avail -= take;
        n + lz as u64
    }

    /// Reads an Elias γ value.
    #[inline]
    pub fn read_gamma(&mut self) -> u64 {
        let n = self.read_unary() as usize;
        (1u64 << n) | self.read_bits(n)
    }

    /// Reads an Elias δ value.
    #[inline]
    pub fn read_delta(&mut self) -> u64 {
        let n = (self.read_gamma() - 1) as usize;
        (1u64 << n) | self.read_bits(n)
    }

    /// Reads a minimal binary value in `[0, m)`.
    #[inline]
    pub fn read_minimal_binary(&mut self, m: u64) -> u64 {
        debug_assert!(m >= 1);
        if m == 1 {
            return 0;
        }
        let b = (64 - (m - 1).leading_zeros()).max(1) as usize;
        let threshold = (1u64 << b) - m;
        let hi = self.read_bits(b - 1);
        if hi < threshold {
            hi
        } else {
            ((hi << 1) | self.read_bits(1)) - threshold
        }
    }

    /// Reads a ζ_k value.
    #[inline]
    pub fn read_zeta(&mut self, k: u32) -> u64 {
        let h = self.read_unary() as u32;
        let low = 1u64 << (h * k);
        let m = (1u64 << ((h + 1) * k)) - low;
        low + self.read_minimal_binary(m)
    }

    /// Reads a vbyte varint.
    pub fn read_vbyte(&mut self) -> u64 {
        let mut out = 0u64;
        let mut shift = 0u32;
        loop {
            let group = self.read_bits(8);
            out |= (group & 0x7f) << shift;
            if group & 0x80 == 0 {
                return out;
            }
            shift += 7;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_roundtrip() {
        for x in [-1_000_000i64, -3, -1, 0, 1, 2, 7, 1_000_000] {
            assert_eq!(unzigzag(zigzag(x)), x);
        }
        // Small absolute values stay small.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
    }

    #[test]
    // The literal below groups bits per γ code, not per nibble.
    #[allow(clippy::unusual_byte_groupings)]
    fn gamma_known_vectors() {
        // γ(1) = "1", γ(2) = "010", γ(3) = "011", γ(4) = "00100".
        let mut w = BitWriter::new();
        for x in 1..=4u64 {
            w.write_gamma(x);
        }
        let (words, len) = w.finish();
        assert_eq!(len, 1 + 3 + 3 + 5);
        let mut r = BitReader::at(&words, 0);
        assert_eq!(r.read_bits(len), 0b1_010_011_00100);
    }

    #[test]
    fn unary_across_word_boundaries() {
        let mut w = BitWriter::new();
        for n in [0u64, 63, 64, 65, 130, 1] {
            w.write_unary(n);
        }
        let (words, _) = w.finish();
        let mut r = BitReader::at(&words, 0);
        for n in [0u64, 63, 64, 65, 130, 1] {
            assert_eq!(r.read_unary(), n);
        }
    }

    #[test]
    fn all_codes_roundtrip() {
        let values: Vec<u64> = (1..=200)
            .chain([1 << 10, (1 << 16) - 1, 1 << 16, (1 << 31) + 7, 1 << 40])
            .collect();
        for k in 1..=5u32 {
            let mut w = BitWriter::new();
            for &x in &values {
                w.write_gamma(x);
                w.write_delta(x);
                w.write_zeta(x, k);
                w.write_vbyte(x);
            }
            let (words, _) = w.finish();
            let mut r = BitReader::at(&words, 0);
            for &x in &values {
                assert_eq!(r.read_gamma(), x, "gamma {x}");
                assert_eq!(r.read_delta(), x, "delta {x}");
                assert_eq!(r.read_zeta(k), x, "zeta_{k} {x}");
                assert_eq!(r.read_vbyte(), x, "vbyte {x}");
            }
        }
    }

    #[test]
    fn length_helpers_are_exact() {
        for x in (1..300u64).chain([1 << 12, 1 << 20, (1 << 30) + 3]) {
            let mut w = BitWriter::new();
            w.write_gamma(x);
            assert_eq!(w.bit_len(), gamma_len(x), "gamma_len {x}");
            for k in 1..=4 {
                let mut w = BitWriter::new();
                w.write_zeta(x, k);
                assert_eq!(w.bit_len(), zeta_len(x, k), "zeta_len {x} k={k}");
            }
        }
    }

    #[test]
    fn minimal_binary_roundtrip_all_intervals() {
        for m in 1..=70u64 {
            let mut w = BitWriter::new();
            for v in 0..m {
                w.write_minimal_binary(v, m);
            }
            let (words, _) = w.finish();
            let mut r = BitReader::at(&words, 0);
            for v in 0..m {
                assert_eq!(r.read_minimal_binary(m), v, "m={m} v={v}");
            }
        }
    }

    #[test]
    fn mixed_stream_with_positions() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        let mark = w.bit_len();
        w.write_zeta(97, 3);
        w.write_delta(1234);
        let (words, _) = w.finish();
        let mut r = BitReader::at(&words, mark);
        assert_eq!(r.read_zeta(3), 97);
        assert_eq!(r.read_delta(), 1234);
        let mut r = BitReader::at(&words, 0);
        assert_eq!(r.read_bits(4), 0b1011);
    }
}
