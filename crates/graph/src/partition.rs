//! Hash partitioning of the node space across store shards.
//!
//! Sharded serving (the `ShardedStore` router in `qpgc_serve`) splits the
//! data graph into `N` slices so that `N` writers can maintain their slice
//! of each update batch concurrently. The split is by *node ownership*: a
//! deterministic hash assigns every node to exactly one shard, an edge
//! whose endpoints share a shard is **intra-shard** (it lives in that
//! shard's subgraph), and an edge crossing shards is a **boundary edge** —
//! it belongs to no shard and is routed to the router's boundary graph
//! instead.
//!
//! The partitioner is a pure function of the node id and the shard count,
//! so every layer (graph splitting here, batch slicing in `qpgc`, routing
//! and boundary maintenance in `qpgc_serve`) derives the same ownership
//! without sharing state.

use crate::graph::LabeledGraph;
use crate::ids::NodeId;
use crate::view::GraphView;

/// A deterministic hash partition of the node id space into `N` shards.
///
/// Ownership is `shard_of(v) = (fibonacci_hash(v) mod N)`: stable across
/// runs, independent of graph contents, and uniform enough that random node
/// sets spread evenly. `N = 1` degenerates to "everything in shard 0"
/// (useful as the differential-test control: a 1-shard router must behave
/// exactly like a single store with an empty boundary graph).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodePartition {
    shards: usize,
}

impl NodePartition {
    /// Creates a partition into `shards` shards (`0` is clamped to `1`).
    pub fn new(shards: usize) -> Self {
        NodePartition {
            shards: shards.max(1),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning node `v`, in `0..shards()`.
    #[inline]
    pub fn shard_of(&self, v: NodeId) -> usize {
        // Fibonacci hashing: multiply by 2^64/φ and keep the high bits,
        // which decorrelates the dense sequential node ids the generators
        // produce before the modulo folds them onto the shard range.
        let h = (v.0 as u64 ^ 0x5851_f42d).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) % self.shards as u64) as usize
    }

    /// `true` when the edge `(u, v)` crosses shards (a boundary edge).
    #[inline]
    pub fn is_boundary(&self, u: NodeId, v: NodeId) -> bool {
        self.shard_of(u) != self.shard_of(v)
    }
}

/// The boundary edges of `g` under `part`: every edge whose endpoints live
/// in different shards, in `g`'s edge iteration order.
pub fn boundary_edges<G: GraphView>(g: &G, part: &NodePartition) -> Vec<(NodeId, NodeId)> {
    g.edges().filter(|&(u, v)| part.is_boundary(u, v)).collect()
}

/// Splits `g` into per-shard subgraphs plus the boundary edge list.
///
/// Every shard subgraph carries the **full node set** of `g` (same ids,
/// same labels — nodes not owned by the shard are simply isolated there),
/// so shard-local queries speak global node ids with no translation layer.
/// Intra-shard edges land in their owner's subgraph; boundary edges belong
/// to no subgraph and are returned separately.
pub fn split_graph(
    g: &LabeledGraph,
    part: &NodePartition,
) -> (Vec<LabeledGraph>, Vec<(NodeId, NodeId)>) {
    let mut shards: Vec<LabeledGraph> = (0..part.shards())
        .map(|_| {
            let mut s = LabeledGraph::new();
            for v in g.nodes() {
                s.add_node_with_label(g.label_name(v).unwrap_or(""));
            }
            s
        })
        .collect();
    let mut boundary = Vec::new();
    for (u, v) in g.edges() {
        let su = part.shard_of(u);
        if su == part.shard_of(v) {
            shards[su].add_edge(u, v);
        } else {
            boundary.push((u, v));
        }
    }
    (shards, boundary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_graph(n: usize) -> LabeledGraph {
        let mut g = LabeledGraph::new();
        for _ in 0..n {
            g.add_node_with_label("X");
        }
        for i in 0..n - 1 {
            g.add_edge(NodeId(i as u32), NodeId(i as u32 + 1));
        }
        g
    }

    #[test]
    fn ownership_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 3, 4, 7] {
            let p = NodePartition::new(shards);
            for v in 0..500u32 {
                let s = p.shard_of(NodeId(v));
                assert!(s < shards);
                assert_eq!(s, p.shard_of(NodeId(v)), "unstable ownership");
            }
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let p = NodePartition::new(1);
        for v in 0..100u32 {
            assert_eq!(p.shard_of(NodeId(v)), 0);
        }
        assert!(!p.is_boundary(NodeId(3), NodeId(97)));
        // Zero shards is clamped rather than a divide-by-zero.
        assert_eq!(NodePartition::new(0).shards(), 1);
    }

    #[test]
    fn hash_spreads_dense_ids() {
        let p = NodePartition::new(4);
        let mut counts = [0usize; 4];
        for v in 0..4000u32 {
            counts[p.shard_of(NodeId(v))] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (500..1500).contains(&c),
                "shard {s} owns {c} of 4000 dense ids — not a usable spread"
            );
        }
    }

    #[test]
    fn split_partitions_every_edge_exactly_once() {
        let g = line_graph(40);
        let p = NodePartition::new(3);
        let (shards, boundary) = split_graph(&g, &p);
        assert_eq!(shards.len(), 3);
        let intra: usize = shards.iter().map(|s| s.edge_count()).sum();
        assert_eq!(intra + boundary.len(), g.edge_count());
        assert_eq!(boundary, boundary_edges(&g, &p));
        for (s, sub) in shards.iter().enumerate() {
            // Full node set, same labels, only owned intra edges.
            assert_eq!(sub.node_count(), g.node_count());
            for (u, v) in sub.edges() {
                assert_eq!(p.shard_of(u), s);
                assert_eq!(p.shard_of(v), s);
            }
            for v in g.nodes() {
                assert_eq!(sub.label_name(v), g.label_name(v));
            }
        }
        for &(u, v) in &boundary {
            assert!(p.is_boundary(u, v));
        }
    }

    #[test]
    fn one_shard_split_is_the_whole_graph() {
        let g = line_graph(12);
        let (shards, boundary) = split_graph(&g, &NodePartition::new(1));
        assert_eq!(shards.len(), 1);
        assert!(boundary.is_empty());
        assert_eq!(shards[0].edge_count(), g.edge_count());
    }
}
