//! [`GraphView`] — the read-only interface shared by [`LabeledGraph`] and
//! [`CsrGraph`].
//!
//! Every batch algorithm in the workspace (SCC condensation, BFS variants,
//! rank functions, signature refinement, simulation pruning) only *reads*
//! adjacency and labels. Abstracting that surface into a trait lets each
//! algorithm run unchanged on the mutable `Vec<Vec<_>>` graph and on the
//! frozen CSR snapshot — callers pick the representation (freeze once for a
//! read-mostly sweep, stay mutable for incremental maintenance) without the
//! algorithms caring.
//!
//! [`LabeledGraph`]: crate::graph::LabeledGraph
//! [`CsrGraph`]: crate::csr::CsrGraph

use std::collections::HashMap;
use std::ops::Range;

use crate::ids::{Label, NodeId};

/// Iterator over the dense node ids `0..node_count` of a graph view.
#[derive(Clone, Debug)]
pub struct NodeIds(Range<u32>);

impl Iterator for NodeIds {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        self.0.next().map(NodeId)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl ExactSizeIterator for NodeIds {}

/// Read-only access to a labeled directed graph with dense node ids.
///
/// Implemented by the mutable [`crate::LabeledGraph`] and the immutable
/// [`crate::CsrGraph`]; algorithms generic over `GraphView` accept either.
pub trait GraphView {
    /// Number of nodes `|V|`.
    fn node_count(&self) -> usize;

    /// Number of edges `|E|`.
    fn edge_count(&self) -> usize;

    /// Label of node `v`.
    fn label(&self, v: NodeId) -> Label;

    /// Label name of `v`, if its label was interned by name.
    fn label_name(&self, v: NodeId) -> Option<&str>;

    /// Looks an interned label up by name (`None` if the name never occurs).
    fn lookup_label(&self, name: &str) -> Option<Label>;

    /// Out-neighbours (children) of `v`.
    fn out_neighbors(&self, v: NodeId) -> &[NodeId];

    /// In-neighbours (parents) of `v`.
    fn in_neighbors(&self, v: NodeId) -> &[NodeId];

    /// `true` if the edge `(u, v)` is present.
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u.index() < self.node_count() && self.out_neighbors(u).contains(&v)
    }

    /// Out-degree of `v`.
    #[inline]
    fn out_degree(&self, v: NodeId) -> usize {
        self.out_neighbors(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    fn in_degree(&self, v: NodeId) -> usize {
        self.in_neighbors(v).len()
    }

    /// The paper's size measure `|G| = |V| + |E|`.
    fn size(&self) -> usize {
        self.node_count() + self.edge_count()
    }

    /// Iterator over all node ids.
    fn nodes(&self) -> NodeIds {
        NodeIds(0..self.node_count() as u32)
    }

    /// Iterator over all edges as `(source, target)` pairs, grouped by
    /// source in node-id order (within a row, the order follows
    /// [`GraphView::out_neighbors`] — sorted on CSR snapshots, insertion
    /// order on the mutable graph). The generic substrate of row-diff code
    /// that compares two views edge by edge.
    fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_
    where
        Self: Sized,
    {
        self.nodes()
            .flat_map(|u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Builds the label → nodes index used to seed simulation and
    /// bisimulation partitions.
    fn nodes_by_label(&self) -> HashMap<Label, Vec<NodeId>> {
        let mut map: HashMap<Label, Vec<NodeId>> = HashMap::new();
        for v in self.nodes() {
            map.entry(self.label(v)).or_default().push(v);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;
    use crate::graph::LabeledGraph;

    fn sample() -> LabeledGraph {
        let mut g = LabeledGraph::new();
        let a = g.add_node_with_label("A");
        let b = g.add_node_with_label("B");
        let c = g.add_node_with_label("B");
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, c);
        g
    }

    fn exercise<G: GraphView>(g: &G) {
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.size(), 6);
        assert_eq!(g.nodes().count(), 3);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(2)), 2);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(!g.has_edge(NodeId(2), NodeId(0)));
        assert!(!g.has_edge(NodeId(9), NodeId(0)));
        assert_eq!(g.label(NodeId(1)), g.label(NodeId(2)));
        assert_eq!(g.label_name(NodeId(0)), Some("A"));
        assert_eq!(g.lookup_label("B"), Some(g.label(NodeId(1))));
        assert_eq!(g.lookup_label("Z"), None);
        let by_label = g.nodes_by_label();
        assert_eq!(by_label.len(), 2);
        assert_eq!(by_label[&g.label(NodeId(1))].len(), 2);
    }

    #[test]
    fn labeled_and_csr_agree_on_the_view() {
        let g = sample();
        exercise(&g);
        exercise(&CsrGraph::from_graph(&g));
    }

    #[test]
    fn default_edges_iterator_covers_both_views() {
        let g = sample();
        let csr = CsrGraph::from_graph(&g);
        let mut from_labeled: Vec<_> = GraphView::edges(&g).collect();
        from_labeled.sort_unstable();
        let from_csr: Vec<_> = GraphView::edges(&csr).collect();
        assert_eq!(from_labeled, from_csr);
        assert_eq!(from_csr.len(), 3);
    }

    #[test]
    fn node_ids_iterator_is_exact_size() {
        let g = sample();
        let it = GraphView::nodes(&g);
        assert_eq!(it.len(), 3);
        assert_eq!(
            it.collect::<Vec<_>>(),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
    }
}
