//! Rank functions over graphs (Section 5 of the paper).
//!
//! Two ranks are defined:
//!
//! * The **topological rank** `r(v)` (Section 5.1): `r(v) = 0` if `v` has no
//!   child, nodes in the same SCC share a rank, and otherwise
//!   `r(v) = max(r(child)) + 1`. Lemma 7 states that reachability-equivalent
//!   nodes have equal topological rank — the incremental reachability
//!   algorithm uses this to split classes cheaply.
//!
//! * The **bisimulation rank** `rb(v)` (Section 5.2, following
//!   Dovier–Piazza–Policriti): `rb(v) = 0` for leaves, `rb(v) = −∞` for
//!   nodes whose SCC has no outgoing condensation edge but which still have
//!   children (i.e. nodes that can only reach cycles), and otherwise the
//!   maximum over children of `rb(c)+1` for well-founded children and
//!   `rb(c)` for non-well-founded children. Lemma 9 states bisimilar nodes
//!   have equal `rb`, which both the rank-stratified bisimulation refinement
//!   and `incPCM` rely on.
//!
//! The **well-founded set** `WF` is the set of nodes that cannot reach any
//! cycle; `NWF = V \ WF`.

use crate::scc::Condensation;
use crate::view::GraphView;

/// A bisimulation rank value: either −∞ or a finite non-negative integer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum BisimRank {
    /// The paper's `−∞` rank: the node has children but its SCC cannot reach
    /// any node outside cyclic components — i.e. it only "sees" cycles.
    NegInfinity,
    /// A finite rank.
    Finite(u32),
}

impl BisimRank {
    /// `rank + 1`, where `−∞ + 1 = −∞`.
    pub fn succ(self) -> BisimRank {
        match self {
            BisimRank::NegInfinity => BisimRank::NegInfinity,
            BisimRank::Finite(k) => BisimRank::Finite(k + 1),
        }
    }
}

/// Topological ranks of all nodes, plus the condensation used to compute
/// them.
#[derive(Clone, Debug)]
pub struct TopoRanks {
    /// `rank[v]` is `r(v)`.
    pub rank: Vec<u32>,
    /// Largest rank present (0 for an empty graph).
    pub max_rank: u32,
}

/// Computes the topological rank `r(v)` of every node of `g`.
pub fn topological_ranks<G: GraphView>(g: &G, cond: &Condensation) -> TopoRanks {
    let c = cond.component_count();
    // Process components in topological order of the condensation *reversed*
    // (sinks first), accumulating max(child rank) + 1.
    let mut comp_rank = vec![0u32; c];
    // Tarjan numbering: edges go from higher ids to lower ids, so iterating
    // ids in increasing order visits children before parents.
    for cu in 0..c as u32 {
        let mut r = 0u32;
        let mut has_child = false;
        for &cw in cond.scc_out(cu) {
            has_child = true;
            r = r.max(comp_rank[cw as usize] + 1);
        }
        comp_rank[cu as usize] = if has_child { r } else { 0 };
    }
    let mut rank = vec![0u32; g.node_count()];
    let mut max_rank = 0;
    for v in g.nodes() {
        let r = comp_rank[cond.component_of(v) as usize];
        rank[v.index()] = r;
        max_rank = max_rank.max(r);
    }
    TopoRanks { rank, max_rank }
}

/// Bisimulation ranks of all nodes plus the WF/NWF split.
#[derive(Clone, Debug)]
pub struct BisimRanks {
    /// `rank[v]` is `rb(v)`.
    pub rank: Vec<BisimRank>,
    /// `well_founded[v]` is `true` iff `v` cannot reach any cycle.
    pub well_founded: Vec<bool>,
    /// Largest finite rank present.
    pub max_finite_rank: u32,
}

impl BisimRanks {
    /// Returns the distinct ranks present, sorted ascending with
    /// `NegInfinity` first — the processing order of the rank-stratified
    /// bisimulation algorithms.
    pub fn distinct_ranks(&self) -> Vec<BisimRank> {
        let mut ranks: Vec<BisimRank> = Vec::new();
        let mut seen_neg = false;
        let mut seen_finite = vec![false; self.max_finite_rank as usize + 1];
        for &r in &self.rank {
            match r {
                BisimRank::NegInfinity => seen_neg = true,
                BisimRank::Finite(k) => seen_finite[k as usize] = true,
            }
        }
        if seen_neg {
            ranks.push(BisimRank::NegInfinity);
        }
        for (k, &s) in seen_finite.iter().enumerate() {
            if s {
                ranks.push(BisimRank::Finite(k as u32));
            }
        }
        ranks
    }
}

/// Computes `rb(v)` and the WF/NWF split for every node of `g`.
pub fn bisim_ranks<G: GraphView>(g: &G, cond: &Condensation) -> BisimRanks {
    let c = cond.component_count();
    let n = g.node_count();

    // A component is "cyclic" if it contains a cycle; a component "has
    // children" if any member has an out-edge. Both are computed in
    // sequential sweeps (per-component member probes are cache-hostile).
    let cyclic = cond.cyclic_flags(g);
    let mut comp_has_children = vec![false; c];
    for v in g.nodes() {
        if g.out_degree(v) > 0 {
            comp_has_children[cond.component_of(v) as usize] = true;
        }
    }

    // WF: nodes that cannot reach any cycle. Compute per component, children
    // first (increasing Tarjan id).
    let mut comp_wf = vec![true; c];
    for cu in 0..c {
        if cyclic[cu] {
            comp_wf[cu] = false;
            continue;
        }
        for &cw in cond.scc_out(cu as u32) {
            if !comp_wf[cw as usize] {
                comp_wf[cu] = false;
                break;
            }
        }
    }

    // Ranks per component, children first.
    let mut comp_rank = vec![BisimRank::Finite(0); c];
    for cu in 0..c {
        let outs = cond.scc_out(cu as u32);
        if !comp_has_children[cu] {
            // True leaf (also acyclic by construction).
            comp_rank[cu] = BisimRank::Finite(0);
            continue;
        }
        if outs.is_empty() {
            // Has children in G (possibly inside its own cyclic SCC) but its
            // SCC has no outgoing condensation edge: rank −∞.
            comp_rank[cu] = BisimRank::NegInfinity;
            continue;
        }
        let mut best = BisimRank::NegInfinity;
        for &cw in outs {
            let contrib = if comp_wf[cw as usize] {
                comp_rank[cw as usize].succ()
            } else {
                comp_rank[cw as usize]
            };
            if contrib > best {
                best = contrib;
            }
        }
        // A cyclic component that only reaches −∞ components stays −∞; a
        // cyclic component that reaches a finite-rank component takes that
        // finite value (DPP rank definition).
        comp_rank[cu] = best;
    }

    let mut rank = vec![BisimRank::Finite(0); n];
    let mut well_founded = vec![false; n];
    let mut max_finite_rank = 0;
    for v in g.nodes() {
        let cu = cond.component_of(v) as usize;
        rank[v.index()] = comp_rank[cu];
        well_founded[v.index()] = comp_wf[cu];
        if let BisimRank::Finite(k) = comp_rank[cu] {
            max_finite_rank = max_finite_rank.max(k);
        }
    }
    BisimRanks {
        rank,
        well_founded,
        max_finite_rank,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LabeledGraph;

    fn ranks_of(g: &LabeledGraph) -> (TopoRanks, BisimRanks) {
        let cond = Condensation::of(g);
        (topological_ranks(g, &cond), bisim_ranks(g, &cond))
    }

    #[test]
    fn path_graph_ranks() {
        // 0 -> 1 -> 2 -> 3
        let mut g = LabeledGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node_with_label("X")).collect();
        for i in 0..3 {
            g.add_edge(n[i], n[i + 1]);
        }
        let (t, b) = ranks_of(&g);
        assert_eq!(t.rank, vec![3, 2, 1, 0]);
        assert_eq!(t.max_rank, 3);
        assert_eq!(
            b.rank,
            vec![
                BisimRank::Finite(3),
                BisimRank::Finite(2),
                BisimRank::Finite(1),
                BisimRank::Finite(0)
            ]
        );
        assert!(b.well_founded.iter().all(|&w| w));
        assert_eq!(b.max_finite_rank, 3);
    }

    #[test]
    fn scc_members_share_topological_rank() {
        // cycle {0,1,2} -> 3
        let mut g = LabeledGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node_with_label("X")).collect();
        g.add_edge(n[0], n[1]);
        g.add_edge(n[1], n[2]);
        g.add_edge(n[2], n[0]);
        g.add_edge(n[2], n[3]);
        let (t, _) = ranks_of(&g);
        assert_eq!(t.rank[n[0].index()], t.rank[n[1].index()]);
        assert_eq!(t.rank[n[0].index()], t.rank[n[2].index()]);
        assert_eq!(t.rank[n[3].index()], 0);
        assert_eq!(t.rank[n[0].index()], 1);
    }

    #[test]
    fn pure_cycle_has_neg_infinity_rank() {
        // 0 <-> 1, both only see the cycle.
        let mut g = LabeledGraph::new();
        let n: Vec<_> = (0..2).map(|_| g.add_node_with_label("X")).collect();
        g.add_edge(n[0], n[1]);
        g.add_edge(n[1], n[0]);
        let (_, b) = ranks_of(&g);
        assert_eq!(b.rank[0], BisimRank::NegInfinity);
        assert_eq!(b.rank[1], BisimRank::NegInfinity);
        assert!(!b.well_founded[0]);
    }

    #[test]
    fn node_above_cycle_and_leaf() {
        // 2 -> {0 <-> 1},  2 -> 3 (leaf)
        let mut g = LabeledGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node_with_label("X")).collect();
        g.add_edge(n[0], n[1]);
        g.add_edge(n[1], n[0]);
        g.add_edge(n[2], n[0]);
        g.add_edge(n[2], n[3]);
        let (_, b) = ranks_of(&g);
        // Node 2 reaches a leaf (finite rank 0, WF) and a cycle (−∞, NWF):
        // rb(2) = max(0 + 1, −∞) = 1.
        assert_eq!(b.rank[n[2].index()], BisimRank::Finite(1));
        assert!(!b.well_founded[n[2].index()]);
        assert!(b.well_founded[n[3].index()]);
        assert_eq!(b.rank[n[3].index()], BisimRank::Finite(0));
    }

    #[test]
    fn self_loop_is_neg_infinity() {
        let mut g = LabeledGraph::new();
        let a = g.add_node_with_label("A");
        g.add_edge(a, a);
        let (_, b) = ranks_of(&g);
        assert_eq!(b.rank[a.index()], BisimRank::NegInfinity);
        assert!(!b.well_founded[a.index()]);
    }

    #[test]
    fn isolated_node_rank_zero() {
        let mut g = LabeledGraph::new();
        let a = g.add_node_with_label("A");
        let (t, b) = ranks_of(&g);
        assert_eq!(t.rank[a.index()], 0);
        assert_eq!(b.rank[a.index()], BisimRank::Finite(0));
        assert!(b.well_founded[a.index()]);
    }

    #[test]
    fn bisim_rank_ordering() {
        assert!(BisimRank::NegInfinity < BisimRank::Finite(0));
        assert!(BisimRank::Finite(0) < BisimRank::Finite(5));
        assert_eq!(BisimRank::NegInfinity.succ(), BisimRank::NegInfinity);
        assert_eq!(BisimRank::Finite(2).succ(), BisimRank::Finite(3));
    }

    #[test]
    fn distinct_ranks_sorted() {
        let mut g = LabeledGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node_with_label("X")).collect();
        g.add_edge(n[0], n[1]); // rank 1 -> rank 0
        g.add_edge(n[2], n[3]);
        g.add_edge(n[3], n[2]); // −∞ cycle
        let cond = Condensation::of(&g);
        let b = bisim_ranks(&g, &cond);
        let ranks = b.distinct_ranks();
        assert_eq!(
            ranks,
            vec![
                BisimRank::NegInfinity,
                BisimRank::Finite(0),
                BisimRank::Finite(1)
            ]
        );
    }

    #[test]
    fn lemma7_style_sanity_on_diamond() {
        // Diamond: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3. Nodes 1 and 2 are
        // reachability equivalent and must have equal topological rank.
        let mut g = LabeledGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node_with_label("X")).collect();
        g.add_edge(n[0], n[1]);
        g.add_edge(n[0], n[2]);
        g.add_edge(n[1], n[3]);
        g.add_edge(n[2], n[3]);
        let (t, b) = ranks_of(&g);
        assert_eq!(t.rank[n[1].index()], t.rank[n[2].index()]);
        assert_eq!(b.rank[n[1].index()], b.rank[n[2].index()]);
    }
}
