//! Transitive closure queries and the unique transitive reduction of a DAG.
//!
//! `compressR` (Section 3.2, lines 6–8 of Fig. 5) avoids inserting edges
//! between equivalence classes that are already implied by other edges; on
//! the quotient DAG this is exactly the transitive reduction, which for DAGs
//! is unique (Aho, Garey & Ullman 1972). The same routine, applied to the
//! SCC condensation, is the core of the paper's `AHO` baseline.

use crate::bitset::FixedBitSet;
use crate::error::Result;
use crate::graph::LabeledGraph;
use crate::ids::NodeId;
use crate::reach_sets::{DagReach, DEFAULT_CHUNK};
use crate::view::GraphView;

/// Computes the unique transitive reduction of a DAG, returned as the list
/// of retained edges.
///
/// An edge `(u, v)` is removed iff there is another path from `u` to `v` of
/// length ≥ 2. The computation sweeps descendant bit sets in chunks so the
/// memory stays `O(n · chunk / 8)`.
///
/// Returns an error if the input is not acyclic.
pub fn transitive_reduction<G: GraphView>(g: &G) -> Result<Vec<(NodeId, NodeId)>> {
    transitive_reduction_with_chunk(g, DEFAULT_CHUNK)
}

/// [`transitive_reduction`] with an explicit chunk width (exposed for tests
/// and for the ablation benchmark).
pub fn transitive_reduction_with_chunk<G: GraphView>(
    g: &G,
    chunk: usize,
) -> Result<Vec<(NodeId, NodeId)>> {
    let dag = DagReach::from_dag_graph(g)?;
    Ok(transitive_reduction_dag(&dag, chunk))
}

/// Transitive reduction directly on an already-built [`DagReach`] — the
/// entry point `compressR` uses to reduce its quotient edge list without
/// materializing an intermediate `LabeledGraph` first.
pub fn transitive_reduction_dag(dag: &DagReach, chunk: usize) -> Vec<(NodeId, NodeId)> {
    let n = dag.node_count();
    let mut keep: Vec<(NodeId, NodeId)> = Vec::new();

    for cols in dag.chunks(chunk) {
        let desc = dag.descendants_chunk(cols.clone());
        for u in 0..n as u32 {
            for &v in dag.out(u) {
                let vi = v as usize;
                if vi < cols.start || vi >= cols.end {
                    continue; // edge target handled by another chunk
                }
                // (u, v) is redundant iff some *other* child w of u reaches v.
                let redundant = dag
                    .out(u)
                    .iter()
                    .any(|&w| w != v && desc[w as usize].contains(vi - cols.start));
                if !redundant {
                    keep.push((NodeId(u), NodeId(v)));
                }
            }
        }
    }
    keep
}

/// Builds a new graph containing the same nodes (and labels) as `g` but only
/// the transitively-reduced edge set.
pub fn transitive_reduction_graph<G: GraphView>(g: &G) -> Result<LabeledGraph> {
    let kept = transitive_reduction(g)?;
    let mut out = LabeledGraph::with_capacity(g.node_count());
    for v in g.nodes() {
        out.add_node(g.label(v));
    }
    out.extend_edges(kept);
    Ok(out)
}

/// Full transitive closure of a DAG as per-node descendant bit sets
/// (proper descendants, i.e. via non-empty paths). Convenience wrapper used
/// by tests and by the 2-hop index verification; quadratic memory, so only
/// for modest graphs.
pub fn transitive_closure<G: GraphView>(g: &G) -> Result<Vec<FixedBitSet>> {
    let dag = DagReach::from_dag_graph(g)?;
    Ok(dag.full_descendants())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;

    fn graph_from_edges(n: usize, edges: &[(u32, u32)]) -> LabeledGraph {
        let mut g = LabeledGraph::new();
        for _ in 0..n {
            g.add_node_with_label("X");
        }
        for &(u, v) in edges {
            g.add_edge(NodeId(u), NodeId(v));
        }
        g
    }

    #[test]
    fn removes_shortcut_edges() {
        // 0 -> 1 -> 2 plus shortcut 0 -> 2.
        let g = graph_from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let kept = transitive_reduction(&g).unwrap();
        assert_eq!(kept.len(), 2);
        assert!(!kept.contains(&(NodeId(0), NodeId(2))));
    }

    #[test]
    fn keeps_diamond_edges() {
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let kept = transitive_reduction(&g).unwrap();
        assert_eq!(kept.len(), 4);
    }

    #[test]
    fn reduction_preserves_reachability() {
        // A random-ish DAG; reduction must preserve the reachability relation.
        let edges = [
            (0, 1),
            (0, 2),
            (0, 5),
            (1, 3),
            (2, 3),
            (2, 4),
            (3, 5),
            (4, 5),
            (1, 5),
            (0, 3),
        ];
        let g = graph_from_edges(6, &edges);
        let r = transitive_reduction_graph(&g).unwrap();
        assert!(r.edge_count() < g.edge_count());
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(
                    traversal::reachable(&g, u, v),
                    traversal::reachable(&r, u, v),
                    "reachability changed for {u}->{v}"
                );
            }
        }
    }

    #[test]
    fn chunked_reduction_matches_unchunked() {
        let edges = [
            (0, 1),
            (0, 2),
            (0, 5),
            (1, 3),
            (2, 3),
            (2, 4),
            (3, 5),
            (4, 5),
            (1, 5),
            (0, 3),
            (6, 0),
            (6, 5),
            (7, 6),
            (7, 1),
        ];
        let g = graph_from_edges(8, &edges);
        let mut full = transitive_reduction_with_chunk(&g, 1024).unwrap();
        let mut tiny = transitive_reduction_with_chunk(&g, 2).unwrap();
        full.sort();
        tiny.sort();
        assert_eq!(full, tiny);
    }

    #[test]
    fn cyclic_graph_is_rejected() {
        let g = graph_from_edges(2, &[(0, 1), (1, 0)]);
        assert!(transitive_reduction(&g).is_err());
        assert!(transitive_closure(&g).is_err());
    }

    #[test]
    fn closure_matches_traversal() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (3, 2), (0, 4)]);
        let tc = transitive_closure(&g).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                let expected = u != v && traversal::reachable(&g, u, v);
                assert_eq!(tc[u.index()].contains(v.index()), expected);
            }
        }
    }

    #[test]
    fn empty_and_edgeless() {
        let g = LabeledGraph::new();
        assert!(transitive_reduction(&g).unwrap().is_empty());
        let g = graph_from_edges(3, &[]);
        assert!(transitive_reduction(&g).unwrap().is_empty());
    }

    #[test]
    fn long_chain_is_untouched() {
        let edges: Vec<(u32, u32)> = (0..99).map(|i| (i, i + 1)).collect();
        let g = graph_from_edges(100, &edges);
        assert_eq!(transitive_reduction(&g).unwrap().len(), 99);
    }
}
