//! Strongly typed identifiers for graph elements.
//!
//! Nodes are dense `u32` indices into the graph's internal vectors; labels
//! are interned `u32` ids managed by [`LabelInterner`]. Keeping both at 32
//! bits halves the memory footprint of adjacency lists compared to `usize`
//! on 64-bit hosts, which matters for the multi-million-edge graphs the
//! paper targets.

use std::fmt;

/// Identifier of a node in a [`crate::LabeledGraph`].
///
/// Node ids are dense: a graph with `n` nodes uses exactly the ids
/// `0..n`. This invariant is relied upon throughout the workspace (bit sets,
/// partition vectors, rank vectors are all indexed by `NodeId`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as a `usize`, suitable for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32` (graphs are limited to
    /// `u32::MAX` nodes).
    #[inline]
    pub fn new(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize, "node index overflows u32");
        NodeId(index as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

/// Interned node label.
///
/// The paper's label function `L : V → Σ` maps nodes to labels drawn from a
/// finite alphabet; we intern the alphabet so label comparisons (the hot
/// operation inside bisimulation refinement and simulation) are integer
/// comparisons.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub u32);

impl Label {
    /// Returns the label id as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for Label {
    fn from(v: u32) -> Self {
        Label(v)
    }
}

/// Bidirectional mapping between human-readable label names and interned
/// [`Label`] ids.
#[derive(Clone, Debug, Default)]
pub struct LabelInterner {
    names: Vec<String>,
    by_name: std::collections::HashMap<String, Label>,
}

impl LabelInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its label id. Idempotent.
    pub fn intern(&mut self, name: &str) -> Label {
        if let Some(&l) = self.by_name.get(name) {
            return l;
        }
        let l = Label(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), l);
        l
    }

    /// Looks up a label by name without interning it.
    pub fn get(&self, name: &str) -> Option<Label> {
        self.by_name.get(name).copied()
    }

    /// Returns the name of an interned label, if it exists.
    pub fn name(&self, label: Label) -> Option<&str> {
        self.names.get(label.index()).map(String::as_str)
    }

    /// Number of distinct labels interned so far (`|Σ|` in use).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when no label has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::new(42);
        assert_eq!(n.index(), 42);
        assert_eq!(u32::from(n), 42);
        assert_eq!(NodeId::from(42u32), n);
        assert_eq!(format!("{n:?}"), "n42");
        assert_eq!(format!("{n}"), "42");
    }

    #[test]
    fn label_roundtrip() {
        let l = Label(7);
        assert_eq!(l.index(), 7);
        assert_eq!(Label::from(7u32), l);
        assert_eq!(format!("{l:?}"), "L7");
    }

    #[test]
    fn interner_is_idempotent() {
        let mut i = LabelInterner::new();
        let a = i.intern("BSA");
        let b = i.intern("MSA");
        let a2 = i.intern("BSA");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.name(a), Some("BSA"));
        assert_eq!(i.name(b), Some("MSA"));
        assert_eq!(i.get("MSA"), Some(b));
        assert_eq!(i.get("FA"), None);
        assert_eq!(i.len(), 2);
        assert!(!i.is_empty());
    }

    #[test]
    fn interner_empty() {
        let i = LabelInterner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
        assert_eq!(i.name(Label(0)), None);
    }

    #[test]
    fn node_id_ordering() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(3), NodeId(3));
    }
}
