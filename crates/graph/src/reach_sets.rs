//! Ancestor / descendant set computation over DAGs.
//!
//! The reachability equivalence relation of Section 3 groups nodes with
//! identical *proper* (non-empty-path) ancestor and descendant sets. Those
//! sets are computed here over a DAG — in practice the SCC condensation of
//! the data graph — as packed bit sets, in column *chunks* so that memory
//! stays bounded (`O(n · chunk / 8)` bytes) no matter how large the DAG is.
//! The same machinery drives the transitive reduction used by `compressR`
//! and the AHO baseline.

use std::ops::Range;

use crate::bitset::FixedBitSet;
use crate::csr::csr_from_grouped;
use crate::error::{GraphError, Result};
use crate::scc::Condensation;
use crate::view::GraphView;

/// Default number of bit-set columns processed per chunk.
pub const DEFAULT_CHUNK: usize = 4096;

/// A DAG prepared for reachability-set sweeps, stored in compressed sparse
/// row form (contiguous offset/target arrays in both directions) plus a
/// topological order — the chunked closure sweeps below are linear scans
/// over these slices.
#[derive(Clone, Debug)]
pub struct DagReach {
    out_offsets: Vec<u32>,
    out_targets: Vec<u32>,
    in_offsets: Vec<u32>,
    in_targets: Vec<u32>,
    /// Node indices in topological order (sources first).
    topo: Vec<u32>,
}

impl DagReach {
    /// Builds a `DagReach` from an explicit edge list over `n` nodes; the
    /// list is sorted and deduplicated, so duplicate edges are harmless.
    ///
    /// Returns [`GraphError::NotADag`] if the edges contain a cycle
    /// (self-loops included).
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Result<Self> {
        let mut list: Vec<(u32, u32)> = edges.into_iter().collect();
        list.sort_unstable();
        list.dedup();
        let (out_offsets, out_targets, in_offsets, in_targets) = csr_from_grouped(n, &list);
        let mut dag = DagReach {
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
            topo: Vec::new(),
        };
        dag.topo = kahn_topological_order(&dag)?;
        Ok(dag)
    }

    /// Builds a `DagReach` over the condensation DAG of a graph. Component
    /// `i` of the condensation becomes node `i`.
    pub fn from_condensation(cond: &Condensation) -> Self {
        let n = cond.component_count();
        let mut list: Vec<(u32, u32)> = Vec::with_capacity(cond.edge_count());
        for cu in 0..n as u32 {
            for &cw in cond.scc_out(cu) {
                list.push((cu, cw));
            }
        }
        list.sort_unstable();
        let (out_offsets, out_targets, in_offsets, in_targets) = csr_from_grouped(n, &list);
        // Tarjan ids are a reverse topological order; sources have the
        // highest ids.
        let topo: Vec<u32> = (0..n as u32).rev().collect();
        DagReach {
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
            topo,
        }
    }

    /// Builds a `DagReach` from a graph (any [`GraphView`]) that is assumed
    /// acyclic.
    ///
    /// Returns [`GraphError::NotADag`] if the graph has a cycle.
    pub fn from_dag_graph<G: GraphView>(g: &G) -> Result<Self> {
        let mut list: Vec<(u32, u32)> = Vec::with_capacity(g.edge_count());
        for u in g.nodes() {
            for &v in g.out_neighbors(u) {
                list.push((u.0, v.0));
            }
        }
        Self::from_edges(g.node_count(), list)
    }

    /// Number of nodes of the DAG.
    pub fn node_count(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Out-neighbours of `v` (sorted ascending).
    pub fn out(&self, v: u32) -> &[u32] {
        let i = v as usize;
        &self.out_targets[self.out_offsets[i] as usize..self.out_offsets[i + 1] as usize]
    }

    /// In-neighbours of `v` (sorted ascending).
    pub fn inn(&self, v: u32) -> &[u32] {
        let i = v as usize;
        &self.in_targets[self.in_offsets[i] as usize..self.in_offsets[i + 1] as usize]
    }

    /// The column ranges of a chunked sweep with the given chunk width.
    pub fn chunks(&self, chunk: usize) -> Vec<Range<usize>> {
        let n = self.node_count();
        let chunk = chunk.max(1);
        let mut ranges = Vec::new();
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            ranges.push(start..end);
            start = end;
        }
        ranges
    }

    /// Computes, for every node `v`, the set of *column* nodes
    /// (`cols.start ..cols.end`) that are proper descendants of `v`
    /// (reachable via a non-empty path). Bit `j` of the result for `v`
    /// corresponds to node `cols.start + j`.
    pub fn descendants_chunk(&self, cols: Range<usize>) -> Vec<FixedBitSet> {
        self.closure_chunk(cols, Direction::Forward)
    }

    /// Computes, for every node `v`, the set of column nodes that are proper
    /// ancestors of `v`.
    pub fn ancestors_chunk(&self, cols: Range<usize>) -> Vec<FixedBitSet> {
        self.closure_chunk(cols, Direction::Backward)
    }

    /// Like [`DagReach::descendants_chunk`] but over an arbitrary set of
    /// column nodes: bit `j` of the result for `v` corresponds to
    /// `columns[j]`. This is the substrate of sampling estimators (e.g. the
    /// 2-hop landmark-coverage estimator), which sweep a small random subset
    /// of columns instead of every one.
    pub fn descendants_for_columns(&self, columns: &[u32]) -> Vec<FixedBitSet> {
        self.closure_columns(columns, Direction::Forward)
    }

    /// Like [`DagReach::ancestors_chunk`] but over an arbitrary set of
    /// column nodes (see [`DagReach::descendants_for_columns`]).
    pub fn ancestors_for_columns(&self, columns: &[u32]) -> Vec<FixedBitSet> {
        self.closure_columns(columns, Direction::Backward)
    }

    /// Full proper-descendant sets (one chunk covering every column). Only
    /// suitable for small DAGs; the chunked API should be preferred.
    pub fn full_descendants(&self) -> Vec<FixedBitSet> {
        self.descendants_chunk(0..self.node_count())
    }

    /// Full proper-ancestor sets.
    pub fn full_ancestors(&self) -> Vec<FixedBitSet> {
        self.ancestors_chunk(0..self.node_count())
    }

    fn closure_chunk(&self, cols: Range<usize>, dir: Direction) -> Vec<FixedBitSet> {
        let n = self.node_count();
        let width = cols.len();
        let mut sets = vec![FixedBitSet::with_capacity(width); n];
        // Forward closure: process nodes children-first (reverse topological
        // order); backward closure: parents-first (topological order).
        let order: Box<dyn Iterator<Item = u32> + '_> = match dir {
            Direction::Forward => Box::new(self.topo.iter().rev().copied()),
            Direction::Backward => Box::new(self.topo.iter().copied()),
        };
        for v in order {
            // Split borrows: take v's set out, fold neighbours in, put back.
            let mut acc = std::mem::replace(&mut sets[v as usize], FixedBitSet::with_capacity(0));
            let neighbors = match dir {
                Direction::Forward => self.out(v),
                Direction::Backward => self.inn(v),
            };
            for &w in neighbors {
                acc.union_with(&sets[w as usize]);
                let wi = w as usize;
                if wi >= cols.start && wi < cols.end {
                    acc.insert(wi - cols.start);
                }
            }
            sets[v as usize] = acc;
        }
        sets
    }

    fn closure_columns(&self, columns: &[u32], dir: Direction) -> Vec<FixedBitSet> {
        let n = self.node_count();
        let width = columns.len();
        // Column membership lookup: `pos[c]` is the bit index of node `c`,
        // or `u32::MAX` when `c` is not a column.
        let mut pos = vec![u32::MAX; n];
        for (j, &c) in columns.iter().enumerate() {
            pos[c as usize] = j as u32;
        }
        let mut sets = vec![FixedBitSet::with_capacity(width); n];
        let order: Box<dyn Iterator<Item = u32> + '_> = match dir {
            Direction::Forward => Box::new(self.topo.iter().rev().copied()),
            Direction::Backward => Box::new(self.topo.iter().copied()),
        };
        for v in order {
            let mut acc = std::mem::replace(&mut sets[v as usize], FixedBitSet::with_capacity(0));
            let neighbors = match dir {
                Direction::Forward => self.out(v),
                Direction::Backward => self.inn(v),
            };
            for &w in neighbors {
                acc.union_with(&sets[w as usize]);
                let p = pos[w as usize];
                if p != u32::MAX {
                    acc.insert(p as usize);
                }
            }
            sets[v as usize] = acc;
        }
        sets
    }

    /// Answers "does `u` reach `v` via a non-empty path" by a bounded DFS on
    /// the DAG (used by tests and by the transitive-reduction fallback).
    pub fn reaches(&self, u: u32, v: u32) -> bool {
        let mut visited = vec![false; self.node_count()];
        let mut stack: Vec<u32> = self.out(u).to_vec();
        while let Some(x) = stack.pop() {
            if x == v {
                return true;
            }
            if !visited[x as usize] {
                visited[x as usize] = true;
                stack.extend_from_slice(self.out(x));
            }
        }
        false
    }
}

#[derive(Clone, Copy)]
enum Direction {
    Forward,
    Backward,
}

/// Kahn topological sort over the CSR arrays; fails with
/// [`GraphError::NotADag`] on cycles.
fn kahn_topological_order(dag: &DagReach) -> Result<Vec<u32>> {
    let n = dag.node_count();
    let mut indeg: Vec<usize> = (0..n as u32).map(|v| dag.inn(v).len()).collect();
    let mut queue: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        order.push(v);
        for &w in dag.out(v) {
            indeg[w as usize] -= 1;
            if indeg[w as usize] == 0 {
                queue.push(w);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        Err(GraphError::NotADag)
    }
}

/// Node-level proper ancestor/descendant sets of an arbitrary (possibly
/// cyclic) graph, computed through its condensation.
///
/// This is a convenience for tests and small graphs: it returns, for every
/// node, bit sets over *node* ids (not SCC ids). `descendants[v]` contains
/// `w` iff there is a non-empty path from `v` to `w`.
pub fn node_closures<G: GraphView>(g: &G) -> (Vec<FixedBitSet>, Vec<FixedBitSet>) {
    let n = g.node_count();
    let cond = Condensation::of(g);
    let dag = DagReach::from_condensation(&cond);
    let scc_desc = dag.full_descendants();
    let scc_anc = dag.full_ancestors();

    let mut desc = vec![FixedBitSet::with_capacity(n); n];
    let mut anc = vec![FixedBitSet::with_capacity(n); n];
    for v in g.nodes() {
        let c = cond.component_of(v);
        let cyclic = cond.is_cyclic(c, g);
        // Descendants: members of every SCC-descendant, plus own SCC members
        // when the SCC is cyclic.
        for cd in scc_desc[c as usize].ones() {
            for &w in cond.members(cd as u32) {
                desc[v.index()].insert(w.index());
            }
        }
        for ca in scc_anc[c as usize].ones() {
            for &w in cond.members(ca as u32) {
                anc[v.index()].insert(w.index());
            }
        }
        if cyclic {
            for &w in cond.members(c) {
                desc[v.index()].insert(w.index());
                anc[v.index()].insert(w.index());
            }
        }
    }
    (desc, anc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LabeledGraph;
    use crate::traversal;

    fn diamond_dag() -> DagReach {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        DagReach::from_edges(4, vec![(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn full_descendants_diamond() {
        let d = diamond_dag();
        let desc = d.full_descendants();
        assert_eq!(desc[0].ones().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(desc[1].ones().collect::<Vec<_>>(), vec![3]);
        assert_eq!(desc[3].ones().count(), 0);
        let anc = d.full_ancestors();
        assert_eq!(anc[3].ones().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(anc[0].ones().count(), 0);
    }

    #[test]
    fn chunked_equals_full() {
        let d = diamond_dag();
        let full = d.full_descendants();
        for chunk in d.chunks(2) {
            let part = d.descendants_chunk(chunk.clone());
            for v in 0..4usize {
                for j in 0..chunk.len() {
                    assert_eq!(
                        part[v].contains(j),
                        full[v].contains(chunk.start + j),
                        "mismatch v={v} col={}",
                        chunk.start + j
                    );
                }
            }
        }
    }

    #[test]
    fn column_subset_matches_full_closure() {
        let d = diamond_dag();
        let full_desc = d.full_descendants();
        let full_anc = d.full_ancestors();
        for columns in [vec![0u32, 3], vec![1], vec![2, 3], vec![]] {
            let part_d = d.descendants_for_columns(&columns);
            let part_a = d.ancestors_for_columns(&columns);
            for v in 0..4usize {
                for (j, &c) in columns.iter().enumerate() {
                    assert_eq!(
                        part_d[v].contains(j),
                        full_desc[v].contains(c as usize),
                        "desc mismatch v={v} col={c}"
                    );
                    assert_eq!(
                        part_a[v].contains(j),
                        full_anc[v].contains(c as usize),
                        "anc mismatch v={v} col={c}"
                    );
                }
            }
        }
    }

    #[test]
    fn cycle_is_rejected() {
        let err = DagReach::from_edges(2, vec![(0, 1), (1, 0)]);
        assert!(matches!(err, Err(GraphError::NotADag)));
        let err = DagReach::from_edges(1, vec![(0, 0)]);
        assert!(matches!(err, Err(GraphError::NotADag)));
    }

    #[test]
    fn from_condensation_reaches() {
        // cycle {0,1} -> 2 -> 3
        let mut g = LabeledGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node_with_label("X")).collect();
        g.add_edge(n[0], n[1]);
        g.add_edge(n[1], n[0]);
        g.add_edge(n[1], n[2]);
        g.add_edge(n[2], n[3]);
        let cond = Condensation::of(&g);
        let dag = DagReach::from_condensation(&cond);
        assert_eq!(dag.node_count(), 3);
        let c01 = cond.component_of(n[0]);
        let c3 = cond.component_of(n[3]);
        assert!(dag.reaches(c01, c3));
        assert!(!dag.reaches(c3, c01));
    }

    #[test]
    fn node_closures_match_traversal() {
        let mut g = LabeledGraph::new();
        let n: Vec<_> = (0..6).map(|_| g.add_node_with_label("X")).collect();
        g.add_edge(n[0], n[1]);
        g.add_edge(n[1], n[2]);
        g.add_edge(n[2], n[0]); // cycle 0-1-2
        g.add_edge(n[2], n[3]);
        g.add_edge(n[4], n[3]);
        // n[5] isolated
        let (desc, anc) = node_closures(&g);
        for &u in &n {
            let via_bfs: Vec<usize> = traversal::descendants(&g, u)
                .into_iter()
                .map(|x| x.index())
                .collect();
            let mut via_sets: Vec<usize> = desc[u.index()].ones().collect();
            via_sets.sort();
            let mut expected = via_bfs.clone();
            expected.sort();
            assert_eq!(via_sets, expected, "descendants of {u}");

            let via_bfs_a: Vec<usize> = traversal::ancestors(&g, u)
                .into_iter()
                .map(|x| x.index())
                .collect();
            let mut via_sets_a: Vec<usize> = anc[u.index()].ones().collect();
            via_sets_a.sort();
            let mut expected_a = via_bfs_a.clone();
            expected_a.sort();
            assert_eq!(via_sets_a, expected_a, "ancestors of {u}");
        }
    }

    #[test]
    fn chunks_cover_everything() {
        let d = DagReach::from_edges(10, vec![(0, 1)]).unwrap();
        let chunks = d.chunks(3);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[0], 0..3);
        assert_eq!(chunks[3], 9..10);
        assert!(d.chunks(100).len() == 1);
        assert!(DagReach::from_edges(0, vec![])
            .unwrap()
            .chunks(5)
            .is_empty());
    }

    #[test]
    fn dag_from_graph() {
        let mut g = LabeledGraph::new();
        let a = g.add_node_with_label("A");
        let b = g.add_node_with_label("B");
        g.add_edge(a, b);
        assert!(DagReach::from_dag_graph(&g).is_ok());
        g.add_edge(b, a);
        assert!(DagReach::from_dag_graph(&g).is_err());
    }

    #[test]
    fn empty_dag() {
        let d = DagReach::from_edges(0, vec![]).unwrap();
        assert_eq!(d.node_count(), 0);
        assert!(d.full_descendants().is_empty());
    }
}
