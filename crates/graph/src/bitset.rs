//! A small fixed-capacity bit set.
//!
//! The reachability equivalence relation of Section 3 is computed by
//! comparing ancestor and descendant *sets*; representing those sets as
//! packed `u64` words makes the union-and-compare loops branch-free and is
//! what keeps `compressR` practical on graphs with tens of thousands of
//! SCCs. We implement the bit set ourselves rather than pulling in an
//! external crate so that the whole workspace builds from the approved
//! offline dependency list.

use std::fmt;

/// A fixed-capacity set of `usize` values in `0..len`, stored as packed
/// 64-bit words.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct FixedBitSet {
    blocks: Vec<u64>,
    len: usize,
}

const BITS: usize = 64;

impl FixedBitSet {
    /// Creates a set able to hold values in `0..len`, initially empty.
    pub fn with_capacity(len: usize) -> Self {
        FixedBitSet {
            blocks: vec![0; len.div_ceil(BITS)],
            len,
        }
    }

    /// Capacity of the set (the exclusive upper bound on storable values).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the set has zero capacity.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `bit` into the set.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= self.len()`.
    #[inline]
    pub fn insert(&mut self, bit: usize) {
        assert!(bit < self.len, "bit {bit} out of bounds ({})", self.len);
        self.blocks[bit / BITS] |= 1u64 << (bit % BITS);
    }

    /// Removes `bit` from the set.
    #[inline]
    pub fn remove(&mut self, bit: usize) {
        assert!(bit < self.len, "bit {bit} out of bounds ({})", self.len);
        self.blocks[bit / BITS] &= !(1u64 << (bit % BITS));
    }

    /// Tests whether `bit` is in the set. Out-of-range bits are reported as
    /// absent.
    #[inline]
    pub fn contains(&self, bit: usize) -> bool {
        if bit >= self.len {
            return false;
        }
        self.blocks[bit / BITS] & (1u64 << (bit % BITS)) != 0
    }

    /// Removes all elements, keeping the capacity.
    pub fn clear(&mut self) {
        self.blocks.iter_mut().for_each(|b| *b = 0);
    }

    /// Number of elements currently in the set.
    pub fn count_ones(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// In-place union: `self ← self ∪ other`.
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different capacities.
    pub fn union_with(&mut self, other: &FixedBitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= *b;
        }
    }

    /// In-place intersection: `self ← self ∩ other`.
    pub fn intersect_with(&mut self, other: &FixedBitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= *b;
        }
    }

    /// `true` if the two sets share no element.
    pub fn is_disjoint(&self, other: &FixedBitSet) -> bool {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & b == 0)
    }

    /// `true` if every element of `self` is also in `other`.
    pub fn is_subset(&self, other: &FixedBitSet) -> bool {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the elements of the set in increasing order.
    pub fn ones(&self) -> Ones<'_> {
        Ones {
            set: self,
            block_idx: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// Raw access to the packed words (used for hashing partitions cheaply).
    pub fn as_blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// Approximate heap footprint in bytes (used in the memory-cost
    /// experiment of Fig. 12(d)).
    pub fn heap_bytes(&self) -> usize {
        self.blocks.capacity() * std::mem::size_of::<u64>()
    }
}

impl fmt::Debug for FixedBitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.ones()).finish()
    }
}

/// Iterator over the set bits of a [`FixedBitSet`].
pub struct Ones<'a> {
    set: &'a FixedBitSet,
    block_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let tz = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.block_idx * BITS + tz);
            }
            self.block_idx += 1;
            if self.block_idx >= self.set.blocks.len() {
                return None;
            }
            self.current = self.set.blocks[self.block_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = FixedBitSet::with_capacity(130);
        assert_eq!(s.len(), 130);
        assert!(!s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0));
        assert!(s.contains(63));
        assert!(s.contains(64));
        assert!(s.contains(129));
        assert!(!s.contains(1));
        assert!(!s.contains(500));
        assert_eq!(s.count_ones(), 4);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count_ones(), 3);
        s.clear();
        assert_eq!(s.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn insert_out_of_bounds_panics() {
        let mut s = FixedBitSet::with_capacity(10);
        s.insert(10);
    }

    #[test]
    fn union_intersect_subset() {
        let mut a = FixedBitSet::with_capacity(100);
        let mut b = FixedBitSet::with_capacity(100);
        a.insert(1);
        a.insert(70);
        b.insert(70);
        b.insert(99);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.ones().collect::<Vec<_>>(), vec![1, 70, 99]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.ones().collect::<Vec<_>>(), vec![70]);
        assert!(i.is_subset(&a));
        assert!(i.is_subset(&b));
        assert!(!a.is_subset(&b));
        assert!(!a.is_disjoint(&b));
        let mut c = FixedBitSet::with_capacity(100);
        c.insert(5);
        assert!(c.is_disjoint(&a));
    }

    #[test]
    fn ones_iterates_in_order() {
        let mut s = FixedBitSet::with_capacity(300);
        for i in [7usize, 64, 65, 128, 255, 299] {
            s.insert(i);
        }
        assert_eq!(s.ones().collect::<Vec<_>>(), vec![7, 64, 65, 128, 255, 299]);
    }

    #[test]
    fn empty_set() {
        let s = FixedBitSet::with_capacity(0);
        assert!(s.is_empty());
        assert_eq!(s.ones().count(), 0);
        assert_eq!(s.count_ones(), 0);
        assert!(!s.contains(0));
    }

    #[test]
    fn equality_and_hash_are_structural() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut a = FixedBitSet::with_capacity(128);
        let mut b = FixedBitSet::with_capacity(128);
        a.insert(3);
        a.insert(100);
        b.insert(100);
        b.insert(3);
        assert_eq!(a, b);
        let hash = |s: &FixedBitSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn heap_bytes_reflects_capacity() {
        let s = FixedBitSet::with_capacity(1024);
        assert!(s.heap_bytes() >= 1024 / 8);
    }
}
