//! The mutable labeled directed graph `G = (V, E, L)`.
//!
//! This is the paper's data-graph model (Section 2.1): a finite node set,
//! a set of directed edges, and a total labelling function over a finite
//! alphabet Σ. Both forward and reverse adjacency are maintained because
//! every algorithm in the system needs one or the other (ancestor sets,
//! reverse BFS for bounded simulation, parent lookups during incremental
//! maintenance).

use std::collections::HashMap;

use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};
use crate::ids::{Label, LabelInterner, NodeId};
use crate::view::GraphView;

/// A mutable labeled directed graph.
///
/// * Nodes are dense [`NodeId`]s `0..node_count()`.
/// * Each node carries exactly one interned [`Label`].
/// * Edges are unweighted, directed, and unique (the edge set is a set, as
///   in the paper; inserting a duplicate edge is a no-op).
/// * Self-loops are allowed (`E ⊆ V × V`).
#[derive(Clone, Debug, Default)]
pub struct LabeledGraph {
    labels: Vec<Label>,
    out: Vec<Vec<NodeId>>,
    inn: Vec<Vec<NodeId>>,
    edge_count: usize,
    interner: LabelInterner,
}

impl LabeledGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with room for `nodes` nodes.
    pub fn with_capacity(nodes: usize) -> Self {
        LabeledGraph {
            labels: Vec::with_capacity(nodes),
            out: Vec::with_capacity(nodes),
            inn: Vec::with_capacity(nodes),
            edge_count: 0,
            interner: LabelInterner::new(),
        }
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The paper's size measure `|G| = |V| + |E|`.
    #[inline]
    pub fn size(&self) -> usize {
        self.node_count() + self.edge_count()
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Builds an edgeless graph from a label vector and the interner the
    /// labels were interned by (used when thawing a CSR snapshot).
    pub(crate) fn from_labels(labels: Vec<Label>, interner: LabelInterner) -> Self {
        let n = labels.len();
        LabeledGraph {
            labels,
            out: vec![Vec::new(); n],
            inn: vec![Vec::new(); n],
            edge_count: 0,
            interner,
        }
    }

    /// Adds a node with an already-interned label and returns its id.
    pub fn add_node(&mut self, label: Label) -> NodeId {
        let id = NodeId::new(self.labels.len());
        self.labels.push(label);
        self.out.push(Vec::new());
        self.inn.push(Vec::new());
        id
    }

    /// Adds a node labelled `name`, interning the name if necessary.
    pub fn add_node_with_label(&mut self, name: &str) -> NodeId {
        let label = self.interner.intern(name);
        self.add_node(label)
    }

    /// Interns a label name without adding a node.
    pub fn intern_label(&mut self, name: &str) -> Label {
        self.interner.intern(name)
    }

    /// Returns the label of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn label(&self, v: NodeId) -> Label {
        self.labels[v.index()]
    }

    /// Returns the label name of `v`, if its label was interned by name.
    pub fn label_name(&self, v: NodeId) -> Option<&str> {
        self.interner.name(self.labels[v.index()])
    }

    /// Overwrites the label of `v`.
    pub fn set_label(&mut self, v: NodeId, label: Label) {
        self.labels[v.index()] = label;
    }

    /// Access to the label interner (shared with compressed graphs so hyper
    /// nodes keep the original label names).
    pub fn interner(&self) -> &LabelInterner {
        &self.interner
    }

    /// Returns the number of distinct label values in use (`|L|` of the
    /// experiment tables).
    pub fn label_alphabet_size(&self) -> usize {
        let mut seen: Vec<bool> = Vec::new();
        for &l in &self.labels {
            if l.index() >= seen.len() {
                seen.resize(l.index() + 1, false);
            }
            seen[l.index()] = true;
        }
        seen.iter().filter(|&&b| b).count()
    }

    /// Checks that `v` refers to an existing node.
    pub fn check_node(&self, v: NodeId) -> Result<()> {
        if v.index() < self.node_count() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfBounds {
                node: v,
                node_count: self.node_count(),
            })
        }
    }

    /// Adds the directed edge `(u, v)`.
    ///
    /// Returns `true` if the edge was inserted, `false` if it was already
    /// present.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of bounds.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        assert!(u.index() < self.node_count(), "source {u} out of bounds");
        assert!(v.index() < self.node_count(), "target {v} out of bounds");
        if self.out[u.index()].contains(&v) {
            return false;
        }
        self.out[u.index()].push(v);
        self.inn[v.index()].push(u);
        self.edge_count += 1;
        true
    }

    /// Bulk edge insertion: adds every edge of `edges` (duplicates — within
    /// the batch or against edges already present — are dropped) and returns
    /// the number of edges actually inserted.
    ///
    /// Unlike repeated [`LabeledGraph::add_edge`] calls, which pay an
    /// `O(deg)` duplicate scan per insert, this sorts and deduplicates the
    /// union of old and new edges in `O((m + k) log (m + k))` — the right
    /// path for loaders and generators. Afterwards every adjacency list is
    /// sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is out of bounds.
    pub fn extend_edges(&mut self, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> usize {
        let mut all: Vec<(NodeId, NodeId)> = edges.into_iter().collect();
        for &(u, v) in &all {
            assert!(u.index() < self.node_count(), "source {u} out of bounds");
            assert!(v.index() < self.node_count(), "target {v} out of bounds");
        }
        if all.is_empty() {
            return 0;
        }
        let before = self.edge_count;
        for (u, outs) in self.out.iter().enumerate() {
            all.extend(outs.iter().map(|&v| (NodeId::new(u), v)));
        }
        all.sort_unstable();
        all.dedup();
        for list in &mut self.out {
            list.clear();
        }
        for list in &mut self.inn {
            list.clear();
        }
        for &(u, v) in &all {
            self.out[u.index()].push(v);
            self.inn[v.index()].push(u);
        }
        self.edge_count = all.len();
        self.edge_count - before
    }

    /// Freezes the graph into an immutable [`CsrGraph`] snapshot for the
    /// read-only batch algorithms. See the [`crate::csr`] module docs for
    /// when to freeze versus when to keep mutating.
    pub fn freeze(&self) -> CsrGraph {
        CsrGraph::from_graph(self)
    }

    /// Removes the directed edge `(u, v)`.
    ///
    /// Returns `true` if the edge existed.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u.index() >= self.node_count() || v.index() >= self.node_count() {
            return false;
        }
        let out = &mut self.out[u.index()];
        if let Some(pos) = out.iter().position(|&w| w == v) {
            out.swap_remove(pos);
            let inn = &mut self.inn[v.index()];
            let ipos = inn
                .iter()
                .position(|&w| w == u)
                .expect("in-adjacency out of sync with out-adjacency");
            inn.swap_remove(ipos);
            self.edge_count -= 1;
            true
        } else {
            false
        }
    }

    /// `true` if the edge `(u, v)` is present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u.index() < self.node_count() && self.out[u.index()].contains(&v)
    }

    /// Out-neighbours (children) of `u`.
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.out[u.index()]
    }

    /// In-neighbours (parents) of `u`.
    #[inline]
    pub fn in_neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.inn[u.index()]
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out[u.index()].len()
    }

    /// In-degree of `u`.
    #[inline]
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.inn[u.index()].len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Iterator over all edges as `(source, target)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.out
            .iter()
            .enumerate()
            .flat_map(|(u, targets)| targets.iter().map(move |&v| (NodeId::new(u), v)))
    }

    /// Iterator over all node labels, indexed by node id.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Builds the label → nodes index used to seed simulation and
    /// bisimulation partitions.
    pub fn nodes_by_label(&self) -> HashMap<Label, Vec<NodeId>> {
        let mut map: HashMap<Label, Vec<NodeId>> = HashMap::new();
        for v in self.nodes() {
            map.entry(self.label(v)).or_default().push(v);
        }
        map
    }

    /// Approximate heap footprint in bytes, counting adjacency and labels.
    /// Used for the memory-cost comparison of Fig. 12(d).
    pub fn heap_bytes(&self) -> usize {
        let node_id = std::mem::size_of::<NodeId>();
        let adj: usize = self
            .out
            .iter()
            .chain(self.inn.iter())
            .map(|v| v.capacity() * node_id + std::mem::size_of::<Vec<NodeId>>())
            .sum();
        adj + self.labels.capacity() * std::mem::size_of::<Label>()
    }

    /// Returns a graph with every edge reversed (labels preserved). Several
    /// algorithms (ancestor sets, reverse bounded BFS) are expressed as the
    /// forward algorithm on the reverse graph.
    pub fn reversed(&self) -> LabeledGraph {
        let mut g = LabeledGraph {
            labels: self.labels.clone(),
            out: self.inn.clone(),
            inn: self.out.clone(),
            edge_count: self.edge_count,
            interner: self.interner.clone(),
        };
        // Preserve the dense-id invariant; nothing else to fix up.
        g.edge_count = self.edge_count;
        g
    }
}

impl GraphView for LabeledGraph {
    fn node_count(&self) -> usize {
        LabeledGraph::node_count(self)
    }

    fn edge_count(&self) -> usize {
        LabeledGraph::edge_count(self)
    }

    fn label(&self, v: NodeId) -> Label {
        LabeledGraph::label(self, v)
    }

    fn label_name(&self, v: NodeId) -> Option<&str> {
        LabeledGraph::label_name(self, v)
    }

    fn lookup_label(&self, name: &str) -> Option<Label> {
        self.interner.get(name)
    }

    fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        LabeledGraph::out_neighbors(self, v)
    }

    fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        LabeledGraph::in_neighbors(self, v)
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        LabeledGraph::has_edge(self, u, v)
    }
}

/// Convenience builder for constructing small graphs in tests and examples
/// by label name.
#[derive(Default)]
pub struct GraphBuilder {
    graph: LabeledGraph,
    named: HashMap<String, NodeId>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or returns the existing) node with unique name `name` and label
    /// `label`.
    pub fn node(&mut self, name: &str, label: &str) -> NodeId {
        if let Some(&id) = self.named.get(name) {
            return id;
        }
        let id = self.graph.add_node_with_label(label);
        self.named.insert(name.to_owned(), id);
        id
    }

    /// Adds an edge between two named nodes (both must already exist).
    ///
    /// # Panics
    ///
    /// Panics if either name is unknown.
    pub fn edge(&mut self, from: &str, to: &str) -> &mut Self {
        let u = *self.named.get(from).expect("unknown source node name");
        let v = *self.named.get(to).expect("unknown target node name");
        self.graph.add_edge(u, v);
        self
    }

    /// Looks up a node id by name.
    pub fn id(&self, name: &str) -> Option<NodeId> {
        self.named.get(name).copied()
    }

    /// Finishes building, returning the graph and the name → id map.
    pub fn build(self) -> (LabeledGraph, HashMap<String, NodeId>) {
        (self.graph, self.named)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (LabeledGraph, Vec<NodeId>) {
        let mut g = LabeledGraph::new();
        let a = g.add_node_with_label("A");
        let b = g.add_node_with_label("B");
        let c = g.add_node_with_label("B");
        let d = g.add_node_with_label("C");
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        (g, vec![a, b, c, d])
    }

    #[test]
    fn counts_and_size() {
        let (g, _) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.size(), 8);
        assert!(!g.is_empty());
        assert_eq!(g.label_alphabet_size(), 3);
    }

    #[test]
    fn duplicate_edge_is_noop() {
        let (mut g, n) = diamond();
        assert!(!g.add_edge(n[0], n[1]));
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn self_loop_allowed() {
        let (mut g, n) = diamond();
        assert!(g.add_edge(n[3], n[3]));
        assert!(g.has_edge(n[3], n[3]));
        assert_eq!(g.out_degree(n[3]), 1);
        assert_eq!(g.in_degree(n[3]), 3);
    }

    #[test]
    fn remove_edge_updates_both_directions() {
        let (mut g, n) = diamond();
        assert!(g.remove_edge(n[0], n[1]));
        assert!(!g.has_edge(n[0], n[1]));
        assert_eq!(g.edge_count(), 3);
        assert!(!g.out_neighbors(n[0]).contains(&n[1]));
        assert!(!g.in_neighbors(n[1]).contains(&n[0]));
        // Removing again is a no-op.
        assert!(!g.remove_edge(n[0], n[1]));
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn remove_edge_out_of_bounds_is_false() {
        let (mut g, _) = diamond();
        assert!(!g.remove_edge(NodeId(99), NodeId(0)));
    }

    #[test]
    fn adjacency_is_consistent() {
        let (g, n) = diamond();
        assert_eq!(g.out_neighbors(n[0]), &[n[1], n[2]]);
        assert_eq!(g.in_neighbors(n[3]), &[n[1], n[2]]);
        assert_eq!(g.out_degree(n[0]), 2);
        assert_eq!(g.in_degree(n[0]), 0);
    }

    #[test]
    fn labels_and_names() {
        let (g, n) = diamond();
        assert_eq!(g.label(n[1]), g.label(n[2]));
        assert_ne!(g.label(n[0]), g.label(n[1]));
        assert_eq!(g.label_name(n[0]), Some("A"));
        assert_eq!(g.label_name(n[3]), Some("C"));
    }

    #[test]
    fn set_label() {
        let (mut g, n) = diamond();
        let new = g.intern_label("Z");
        g.set_label(n[0], new);
        assert_eq!(g.label_name(n[0]), Some("Z"));
    }

    #[test]
    fn edges_iterator_yields_all_edges() {
        let (g, _) = diamond();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort();
        assert_eq!(edges.len(), 4);
        assert_eq!(edges, {
            let mut e = vec![
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(2)),
                (NodeId(1), NodeId(3)),
                (NodeId(2), NodeId(3)),
            ];
            e.sort();
            e
        });
    }

    #[test]
    fn nodes_by_label_groups_correctly() {
        let (g, n) = diamond();
        let by_label = g.nodes_by_label();
        assert_eq!(by_label.len(), 3);
        let b_nodes = &by_label[&g.label(n[1])];
        assert_eq!(b_nodes.len(), 2);
    }

    #[test]
    fn reversed_swaps_adjacency() {
        let (g, n) = diamond();
        let r = g.reversed();
        assert_eq!(r.edge_count(), g.edge_count());
        assert!(r.has_edge(n[1], n[0]));
        assert!(r.has_edge(n[3], n[2]));
        assert!(!r.has_edge(n[0], n[1]));
        assert_eq!(r.label(n[0]), g.label(n[0]));
    }

    #[test]
    fn check_node_bounds() {
        let (g, _) = diamond();
        assert!(g.check_node(NodeId(3)).is_ok());
        assert!(g.check_node(NodeId(4)).is_err());
    }

    #[test]
    fn builder_by_name() {
        let mut b = GraphBuilder::new();
        b.node("x", "A");
        b.node("y", "B");
        b.node("x", "A"); // duplicate name returns existing node
        b.edge("x", "y");
        let (g, names) = b.build();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(names["x"], names["y"]));
    }

    #[test]
    fn heap_bytes_nonzero() {
        let (g, _) = diamond();
        assert!(g.heap_bytes() > 0);
    }

    #[test]
    fn extend_edges_dedups_against_batch_and_existing() {
        let (mut g, n) = diamond();
        let inserted = g.extend_edges(vec![
            (n[0], n[1]), // already present
            (n[3], n[0]), // new
            (n[3], n[0]), // duplicate inside the batch
            (n[1], n[2]), // new
        ]);
        assert_eq!(inserted, 2);
        assert_eq!(g.edge_count(), 6);
        assert!(g.has_edge(n[3], n[0]));
        assert!(g.has_edge(n[1], n[2]));
        // Adjacency is sorted after a bulk insert.
        assert_eq!(g.out_neighbors(n[0]), &[n[1], n[2]]);
        assert_eq!(g.in_neighbors(n[0]), &[n[3]]);
        // Empty batch is a no-op.
        assert_eq!(g.extend_edges(std::iter::empty()), 0);
        assert_eq!(g.edge_count(), 6);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn extend_edges_rejects_out_of_bounds() {
        let (mut g, n) = diamond();
        g.extend_edges(vec![(n[0], NodeId(99))]);
    }

    #[test]
    fn freeze_matches_graph() {
        let (g, n) = diamond();
        let csr = g.freeze();
        assert_eq!(csr.node_count(), g.node_count());
        assert_eq!(csr.edge_count(), g.edge_count());
        assert_eq!(csr.label(n[1]), g.label(n[1]));
    }

    #[test]
    fn with_capacity_starts_empty() {
        let g = LabeledGraph::with_capacity(100);
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}
