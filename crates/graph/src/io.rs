//! Plain-text serialization of labeled graphs.
//!
//! The benchmark harness writes the synthetic datasets it generates so runs
//! are reproducible and inspectable. The format is line-oriented:
//!
//! ```text
//! # comments start with '#'
//! n <node-count>
//! v <node-id> <label-name>
//! e <from-id> <to-id>
//! ```
//!
//! Node lines are optional for unlabeled graphs (absent nodes get the label
//! `"_"`); edge lines may reference any id below the declared node count.

use std::io::{BufRead, BufReader, Read, Write};

use crate::error::{GraphError, Result};
use crate::graph::LabeledGraph;
use crate::ids::NodeId;

/// Writes `g` in the text format to `w`.
pub fn write_graph<W: Write>(g: &LabeledGraph, mut w: W) -> Result<()> {
    writeln!(
        w,
        "# qpgc graph: {} nodes, {} edges",
        g.node_count(),
        g.edge_count()
    )?;
    writeln!(w, "n {}", g.node_count())?;
    for v in g.nodes() {
        let name = g.label_name(v).unwrap_or("_");
        writeln!(w, "v {} {}", v.0, name)?;
    }
    for (u, v) in g.edges() {
        writeln!(w, "e {} {}", u.0, v.0)?;
    }
    Ok(())
}

/// Reads a graph in the text format from `r`.
pub fn read_graph<R: Read>(r: R) -> Result<LabeledGraph> {
    let reader = BufReader::new(r);
    let mut g = LabeledGraph::new();
    let mut declared: Option<usize> = None;
    let mut labels: Vec<Option<String>> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();

    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().expect("non-empty line has a first token");
        let parse_err = |msg: &str| GraphError::Parse {
            line: line_no,
            message: msg.to_string(),
        };
        match tag {
            "n" => {
                let count: usize = parts
                    .next()
                    .ok_or_else(|| parse_err("missing node count"))?
                    .parse()
                    .map_err(|_| parse_err("invalid node count"))?;
                declared = Some(count);
                labels.resize(count, None);
            }
            "v" => {
                let id: usize = parts
                    .next()
                    .ok_or_else(|| parse_err("missing node id"))?
                    .parse()
                    .map_err(|_| parse_err("invalid node id"))?;
                let name = parts.next().ok_or_else(|| parse_err("missing label"))?;
                if id >= labels.len() {
                    labels.resize(id + 1, None);
                }
                labels[id] = Some(name.to_string());
            }
            "e" => {
                let u: u32 = parts
                    .next()
                    .ok_or_else(|| parse_err("missing edge source"))?
                    .parse()
                    .map_err(|_| parse_err("invalid edge source"))?;
                let v: u32 = parts
                    .next()
                    .ok_or_else(|| parse_err("missing edge target"))?
                    .parse()
                    .map_err(|_| parse_err("invalid edge target"))?;
                edges.push((u, v));
            }
            _ => {
                return Err(parse_err(&format!("unknown record tag `{tag}`")));
            }
        }
    }

    let node_count = declared.unwrap_or(labels.len()).max(labels.len());
    for i in 0..node_count {
        let name = labels.get(i).and_then(|o| o.as_deref()).unwrap_or("_");
        g.add_node_with_label(name);
    }
    for &(u, v) in &edges {
        if (u as usize) >= g.node_count() || (v as usize) >= g.node_count() {
            return Err(GraphError::Parse {
                line: 0,
                message: format!("edge ({u}, {v}) references an undeclared node"),
            });
        }
    }
    // Bulk sorted-dedup insert: O(m log m) instead of a per-edge O(deg)
    // duplicate scan.
    g.extend_edges(edges.into_iter().map(|(u, v)| (NodeId(u), NodeId(v))));
    Ok(g)
}

/// Serializes `g` to a `String` in the text format.
pub fn to_string(g: &LabeledGraph) -> String {
    let mut buf = Vec::new();
    write_graph(g, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("graph text format is valid UTF-8")
}

/// Parses a graph from a string in the text format.
pub fn from_str(s: &str) -> Result<LabeledGraph> {
    read_graph(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LabeledGraph {
        let mut g = LabeledGraph::new();
        let a = g.add_node_with_label("BSA");
        let b = g.add_node_with_label("MSA");
        let c = g.add_node_with_label("C");
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.add_edge(c, a);
        g
    }

    #[test]
    fn roundtrip() {
        let g = sample();
        let text = to_string(&g);
        let g2 = from_str(&text).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        for v in g.nodes() {
            assert_eq!(g2.label_name(v), g.label_name(v));
        }
        let mut e1: Vec<_> = g.edges().collect();
        let mut e2: Vec<_> = g2.edges().collect();
        e1.sort();
        e2.sort();
        assert_eq!(e1, e2);
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# hello\n\nn 2\nv 0 A\nv 1 B\n\ne 0 1\n";
        let g = from_str(text).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.label_name(NodeId(0)), Some("A"));
    }

    #[test]
    fn nodes_without_labels_get_placeholder() {
        let text = "n 3\ne 0 1\ne 1 2\n";
        let g = from_str(text).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.label_name(NodeId(0)), Some("_"));
    }

    #[test]
    fn rejects_unknown_tag() {
        assert!(from_str("x 1 2\n").is_err());
    }

    #[test]
    fn rejects_bad_numbers() {
        assert!(from_str("n abc\n").is_err());
        assert!(from_str("e 0\n").is_err());
        assert!(from_str("v 0\n").is_err());
    }

    #[test]
    fn rejects_out_of_range_edge() {
        assert!(from_str("n 2\ne 0 5\n").is_err());
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = from_str("").unwrap();
        assert!(g.is_empty());
    }
}
