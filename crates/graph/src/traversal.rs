//! Graph traversal and reachability-query evaluation.
//!
//! These are the algorithms the paper runs *unchanged* on both the original
//! graph `G` and the compressed graph `Gr` in Exp-2 (Fig. 12(a)):
//!
//! * [`bfs_reachable`] — plain breadth-first search (the paper's `BFS`).
//! * [`bidirectional_reachable`] — alternating forward/backward BFS
//!   (the paper's `BIBFS`).
//! * [`dfs_reachable`] — iterative depth-first search, used by tests as an
//!   independent oracle.
//! * [`bounded_bfs`] — depth-limited BFS returning every node within `k`
//!   hops, the primitive behind bounded-simulation edge checks.
//! * [`descendants`] / [`ancestors`] — full forward / backward closures of a
//!   single node.
//!
//! Every function is generic over [`GraphView`], so the same code runs on
//! the mutable `LabeledGraph` and on a frozen [`crate::CsrGraph`] snapshot.

use std::collections::VecDeque;

use crate::ids::NodeId;
use crate::view::GraphView;

/// Answers the reachability query `QR(from, to)` with a forward BFS.
///
/// Every node reaches itself (paths of length 0 are allowed, as in the
/// paper's definition of reachability).
pub fn bfs_reachable<G: GraphView>(g: &G, from: NodeId, to: NodeId) -> bool {
    if from == to {
        return true;
    }
    let mut visited = vec![false; g.node_count()];
    let mut queue = VecDeque::new();
    visited[from.index()] = true;
    queue.push_back(from);
    while let Some(u) = queue.pop_front() {
        for &v in g.out_neighbors(u) {
            if v == to {
                return true;
            }
            if !visited[v.index()] {
                visited[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    false
}

/// Convenience alias for [`bfs_reachable`].
pub fn reachable<G: GraphView>(g: &G, from: NodeId, to: NodeId) -> bool {
    bfs_reachable(g, from, to)
}

/// Answers `QR(from, to)` with a bidirectional BFS that alternately expands
/// the smaller of the two frontiers (the paper's `BIBFS`).
pub fn bidirectional_reachable<G: GraphView>(g: &G, from: NodeId, to: NodeId) -> bool {
    if from == to {
        return true;
    }
    let n = g.node_count();
    // 0 = unvisited, 1 = reached forward, 2 = reached backward.
    let mut mark = vec![0u8; n];
    let mut fwd = VecDeque::new();
    let mut bwd = VecDeque::new();
    mark[from.index()] = 1;
    mark[to.index()] = 2;
    fwd.push_back(from);
    bwd.push_back(to);

    while !fwd.is_empty() && !bwd.is_empty() {
        if fwd.len() <= bwd.len() {
            // Expand one forward level.
            for _ in 0..fwd.len() {
                let u = fwd.pop_front().expect("frontier non-empty");
                for &v in g.out_neighbors(u) {
                    match mark[v.index()] {
                        2 => return true,
                        0 => {
                            mark[v.index()] = 1;
                            fwd.push_back(v);
                        }
                        _ => {}
                    }
                }
            }
        } else {
            for _ in 0..bwd.len() {
                let u = bwd.pop_front().expect("frontier non-empty");
                for &v in g.in_neighbors(u) {
                    match mark[v.index()] {
                        1 => return true,
                        0 => {
                            mark[v.index()] = 2;
                            bwd.push_back(v);
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    false
}

/// Answers `QR(from, to)` with an iterative DFS. Used as an independent
/// oracle in tests (a deliberately different traversal order from BFS).
pub fn dfs_reachable<G: GraphView>(g: &G, from: NodeId, to: NodeId) -> bool {
    if from == to {
        return true;
    }
    let mut visited = vec![false; g.node_count()];
    let mut stack = vec![from];
    visited[from.index()] = true;
    while let Some(u) = stack.pop() {
        for &v in g.out_neighbors(u) {
            if v == to {
                return true;
            }
            if !visited[v.index()] {
                visited[v.index()] = true;
                stack.push(v);
            }
        }
    }
    false
}

/// Returns every node reachable from `start` within at most `k` edges,
/// excluding `start` itself unless it lies on a cycle of length ≤ `k`.
///
/// `None` for `k` means "unbounded" (the `*` edge bound of graph pattern
/// queries) and degenerates to a full forward closure minus the trivial
/// empty path.
pub fn bounded_bfs<G: GraphView>(g: &G, start: NodeId, k: Option<usize>) -> Vec<NodeId> {
    let mut dist = vec![usize::MAX; g.node_count()];
    let mut queue = VecDeque::new();
    let mut result = Vec::new();
    dist[start.index()] = 0;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        let d = dist[u.index()];
        if let Some(k) = k {
            if d >= k {
                continue;
            }
        }
        for &v in g.out_neighbors(u) {
            if dist[v.index()] == usize::MAX {
                dist[v.index()] = d + 1;
                result.push(v);
                queue.push_back(v);
            } else if v == start && d + 1 >= 1 && !result.contains(&start) {
                // `start` is reachable from itself via a non-empty path.
                result.push(start);
            }
        }
    }
    result
}

/// Full forward closure of `start` (the paper's descendant set), excluding
/// `start` unless it lies on a cycle.
pub fn descendants<G: GraphView>(g: &G, start: NodeId) -> Vec<NodeId> {
    bounded_bfs(g, start, None)
}

/// Full backward closure of `start` (the paper's ancestor set), excluding
/// `start` unless it lies on a cycle.
pub fn ancestors<G: GraphView>(g: &G, start: NodeId) -> Vec<NodeId> {
    let mut dist = vec![false; g.node_count()];
    let mut queue = VecDeque::new();
    let mut result = Vec::new();
    dist[start.index()] = true;
    queue.push_back(start);
    let mut start_on_cycle = false;
    while let Some(u) = queue.pop_front() {
        for &v in g.in_neighbors(u) {
            if v == start {
                start_on_cycle = true;
            }
            if !dist[v.index()] {
                dist[v.index()] = true;
                result.push(v);
                queue.push_back(v);
            }
        }
    }
    if start_on_cycle && !result.contains(&start) {
        result.push(start);
    }
    result
}

/// Computes single-source shortest-path distances (in edges) from `start`.
/// Unreachable nodes get `usize::MAX`.
pub fn bfs_distances<G: GraphView>(g: &G, start: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.node_count()];
    let mut queue = VecDeque::new();
    dist[start.index()] = 0;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        let d = dist[u.index()];
        for &v in g.out_neighbors(u) {
            if dist[v.index()] == usize::MAX {
                dist[v.index()] = d + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LabeledGraph;

    /// a -> b -> c -> d,  e isolated, f -> f (self loop), d -> b (cycle b,c,d)
    fn sample() -> (LabeledGraph, Vec<NodeId>) {
        let mut g = LabeledGraph::new();
        let ids: Vec<_> = (0..6).map(|_| g.add_node_with_label("X")).collect();
        g.add_edge(ids[0], ids[1]);
        g.add_edge(ids[1], ids[2]);
        g.add_edge(ids[2], ids[3]);
        g.add_edge(ids[3], ids[1]);
        g.add_edge(ids[5], ids[5]);
        (g, ids)
    }

    #[test]
    fn bfs_and_dfs_and_bibfs_agree() {
        let (g, n) = sample();
        for &u in &n {
            for &v in &n {
                let b = bfs_reachable(&g, u, v);
                assert_eq!(b, dfs_reachable(&g, u, v), "dfs mismatch {u}->{v}");
                assert_eq!(
                    b,
                    bidirectional_reachable(&g, u, v),
                    "bibfs mismatch {u}->{v}"
                );
            }
        }
    }

    #[test]
    fn reachability_facts() {
        let (g, n) = sample();
        assert!(reachable(&g, n[0], n[3]));
        assert!(!reachable(&g, n[3], n[0]));
        assert!(reachable(&g, n[1], n[1])); // trivial self-reachability
        assert!(!reachable(&g, n[0], n[4])); // isolated node
        assert!(reachable(&g, n[5], n[5]));
    }

    #[test]
    fn bounded_bfs_respects_bound() {
        let (g, n) = sample();
        let within1 = bounded_bfs(&g, n[0], Some(1));
        assert_eq!(within1, vec![n[1]]);
        let within2 = bounded_bfs(&g, n[0], Some(2));
        assert_eq!(within2, vec![n[1], n[2]]);
        let all = bounded_bfs(&g, n[0], None);
        assert_eq!(all.len(), 3);
        assert!(all.contains(&n[3]));
    }

    #[test]
    fn bounded_bfs_detects_cycles_back_to_start() {
        let (g, n) = sample();
        // b -> c -> d -> b : b reaches itself via a non-empty path.
        let from_b = bounded_bfs(&g, n[1], None);
        assert!(from_b.contains(&n[1]));
        // Self loop.
        let from_f = bounded_bfs(&g, n[5], Some(1));
        assert_eq!(from_f, vec![n[5]]);
    }

    #[test]
    fn descendants_and_ancestors() {
        let (g, n) = sample();
        let d = descendants(&g, n[0]);
        assert_eq!(d.len(), 3);
        let mut a = ancestors(&g, n[3]);
        a.sort();
        // ancestors of d: a, b, c, d (d is on the cycle b->c->d->b)
        assert_eq!(a, vec![n[0], n[1], n[2], n[3]]);
        let a_iso = ancestors(&g, n[4]);
        assert!(a_iso.is_empty());
        let a_self = ancestors(&g, n[5]);
        assert_eq!(a_self, vec![n[5]]);
    }

    #[test]
    fn distances() {
        let (g, n) = sample();
        let d = bfs_distances(&g, n[0]);
        assert_eq!(d[n[0].index()], 0);
        assert_eq!(d[n[1].index()], 1);
        assert_eq!(d[n[3].index()], 3);
        assert_eq!(d[n[4].index()], usize::MAX);
    }

    #[test]
    fn empty_and_singleton() {
        let mut g = LabeledGraph::new();
        let a = g.add_node_with_label("A");
        assert!(reachable(&g, a, a));
        assert!(bounded_bfs(&g, a, Some(3)).is_empty());
        assert!(descendants(&g, a).is_empty());
        assert!(ancestors(&g, a).is_empty());
    }
}
