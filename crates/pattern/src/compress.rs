//! `compressB` — graph pattern preserving compression (Section 4.2, Fig. 7).
//!
//! The compression function `R` maps `G` to the quotient of its maximum
//! bisimulation: one node per bisimulation class carrying the class label,
//! and an edge between two classes (self loops included) iff some original
//! edge connects their members. The query rewriting function `F` is the
//! identity — any pattern query is evaluated on `Gr` verbatim — and the
//! post-processing function `P` replaces each hypernode in the answer with
//! the original nodes it represents (Theorem 4). For Boolean pattern
//! queries `P` is not needed.

use qpgc_graph::{CsrGraph, GraphView, LabeledGraph, NodeId};

use crate::bisim::{bisimulation_partition_csr, BisimPartition};
use crate::pattern::MatchRelation;

/// The output of `compressB`: the compressed graph plus the node ↔ class
/// indexes implementing `F` (trivially) and `P`.
#[derive(Clone, Debug)]
pub struct PatternCompression {
    /// The compressed graph `Gr`. Node `i` is bisimulation class `i` of
    /// [`PatternCompression::partition`] and carries the class label.
    pub graph: LabeledGraph,
    /// The underlying bisimulation partition.
    pub partition: BisimPartition,
}

impl PatternCompression {
    /// The class (hypernode of `Gr`) containing original node `v`.
    pub fn class_of(&self, v: NodeId) -> NodeId {
        NodeId(self.partition.class_of(v))
    }

    /// The original nodes represented by hypernode `c` of `Gr` (the inverse
    /// node mapping used by the post-processing function `P`).
    pub fn members_of(&self, c: NodeId) -> &[NodeId] {
        &self.partition.members[c.index()]
    }

    /// The post-processing function `P`: expands a match relation computed
    /// on `Gr` into the match relation on `G` by replacing every hypernode
    /// with its members. Runs in time linear in the size of the output.
    pub fn post_process(&self, on_compressed: &MatchRelation) -> MatchRelation {
        crate::pattern::expand_match_relation(on_compressed, |c| self.members_of(c))
    }

    /// Number of hypernodes (`|Vr|`).
    pub fn class_count(&self) -> usize {
        self.partition.class_count()
    }

    /// The compression ratio `|Gr| / |G|` (the paper's `PCr`).
    pub fn ratio(&self, original: &LabeledGraph) -> f64 {
        qpgc_graph::stats::compression_ratio(original, &self.graph)
    }

    /// Approximate heap footprint in bytes (quotient graph + partition),
    /// following the capacity-based convention of
    /// [`LabeledGraph::heap_bytes`] / `CsrGraph::heap_bytes` so serving
    /// layers can account for the pattern side next to the
    /// reachability-side structures.
    ///
    /// [`LabeledGraph::heap_bytes`]: qpgc_graph::LabeledGraph::heap_bytes
    pub fn heap_bytes(&self) -> usize {
        self.graph.heap_bytes() + self.partition.heap_bytes()
    }
}

/// Runs `compressB` on `g`: freezes a CSR snapshot once and hands it to
/// [`compress_b_csr`] — the whole pipeline (bisimulation refinement and
/// quotient construction) runs over the snapshot, with no intermediate
/// `LabeledGraph` materialized along the way.
pub fn compress_b(g: &LabeledGraph) -> PatternCompression {
    compress_b_csr(&g.freeze())
}

/// Runs `compressB` over an already-frozen CSR snapshot.
pub fn compress_b_csr(g: &CsrGraph) -> PatternCompression {
    let partition = bisimulation_partition_csr(g);
    let graph = build_quotient_graph(g, &partition);
    PatternCompression { graph, partition }
}

/// Builds the bisimulation quotient graph: labelled hypernodes, one edge per
/// connected class pair (self loops preserved). The class edge list is
/// bulk-inserted (sorted + deduplicated), not probed edge by edge.
pub(crate) fn build_quotient_graph<G: GraphView>(
    g: &G,
    partition: &BisimPartition,
) -> LabeledGraph {
    let classes = partition.class_count();
    let mut quotient = LabeledGraph::with_capacity(classes);
    for c in 0..classes {
        // Re-intern the label *name* so that pattern queries written against
        // the original label vocabulary resolve against `Gr` too.
        let representative = partition.members[c][0];
        match g.label_name(representative) {
            Some(name) => {
                quotient.add_node_with_label(name);
            }
            None => {
                quotient.add_node(partition.labels[c]);
            }
        }
    }
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(g.edge_count());
    for u in g.nodes() {
        let cu = partition.class_of(u);
        for &v in g.out_neighbors(u) {
            edges.push((NodeId(cu), NodeId(partition.class_of(v))));
        }
    }
    quotient.extend_edges(edges);
    quotient
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded::bounded_match;
    use crate::pattern::Pattern;
    use crate::simulation::simulation_match;

    fn graph(labels: &[&str], edges: &[(u32, u32)]) -> LabeledGraph {
        let mut g = LabeledGraph::new();
        for l in labels {
            g.add_node_with_label(l);
        }
        for &(u, v) in edges {
            g.add_edge(NodeId(u), NodeId(v));
        }
        g
    }

    /// The paper's recommendation network of Fig. 2 (k = 3 customers).
    fn recommendation_network() -> LabeledGraph {
        graph(
            &[
                "BSA", "BSA", // 0, 1
                "MSA", "MSA", // 2, 3
                "FA", "FA", "FA", "FA", // 4, 5, 6, 7
                "C", "C", "C", "C", // 8, 9, 10, 11
            ],
            &[
                // BSA1/BSA2 both recommend an MSA and an FA.
                (0, 2),
                (0, 4),
                (1, 3),
                (1, 5),
                // FA1/FA2 recommend customers C1/C2, who talk back to FAs.
                (4, 8),
                (5, 9),
                (8, 4),
                (9, 5),
                // FA3/FA4 recommend the remaining customers.
                (6, 10),
                (6, 11),
                (7, 10),
                (7, 11),
                // Customers C3.. interact with FA3/FA4.
                (10, 6),
                (11, 7),
                // MSAs recommend FAs.
                (2, 6),
                (3, 7),
            ],
        )
    }

    #[test]
    fn quotient_merges_bisimilar_nodes() {
        let g = recommendation_network();
        let c = compress_b(&g);
        // BSA1/BSA2, MSA1/MSA2, FA3/FA4 and C3..Ck merge.
        assert!(c.class_count() < g.node_count());
        assert_eq!(c.class_of(NodeId(0)), c.class_of(NodeId(1)));
        assert_eq!(c.class_of(NodeId(2)), c.class_of(NodeId(3)));
        assert!(c.graph.size() < g.size());
        assert!(c.ratio(&g) < 1.0);
    }

    #[test]
    fn quotient_preserves_labels() {
        let g = recommendation_network();
        let c = compress_b(&g);
        for v in g.nodes() {
            let class = c.class_of(v);
            assert_eq!(g.label_name(v), c.graph.label_name(class));
        }
    }

    #[test]
    fn quotient_keeps_self_loops_for_intra_class_edges() {
        // Two bisimilar nodes forming a cycle produce a hypernode self loop.
        let g = graph(&["X", "X"], &[(0, 1), (1, 0)]);
        let c = compress_b(&g);
        assert_eq!(c.class_count(), 1);
        assert!(c.graph.has_edge(NodeId(0), NodeId(0)));
    }

    fn assert_pattern_preserved(g: &LabeledGraph, p: &Pattern) {
        let c = compress_b(g);
        let on_g = bounded_match(g, p);
        let on_gr = bounded_match(&c.graph, p);
        match (on_g, on_gr) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(a.canonical(), c.post_process(&b).canonical());
            }
            (a, b) => panic!(
                "boolean answer not preserved: original matched = {}, compressed matched = {}",
                a.is_some(),
                b.is_some()
            ),
        }
    }

    #[test]
    fn preserves_paper_example_pattern() {
        // Qp of Fig. 2: BSA —2→ C, C —1→ FA, BSA —1→ FA (approximation of the
        // described query: customers within 2 hops of BSAs, interacting with FAs).
        let g = recommendation_network();
        let mut p = Pattern::new();
        let b = p.add_node("BSA");
        let cst = p.add_node("C");
        let f = p.add_node("FA");
        p.add_edge(b, cst, 2);
        p.add_edge(cst, f, 1);
        assert_pattern_preserved(&g, &p);
    }

    #[test]
    fn preserves_simulation_patterns() {
        let g = recommendation_network();
        let mut p = Pattern::new();
        let f = p.add_node("FA");
        let cst = p.add_node("C");
        p.add_edge(f, cst, 1);
        p.add_edge(cst, f, 1);
        let c = compress_b(&g);
        let on_g = simulation_match(&g, &p).unwrap();
        let on_gr = simulation_match(&c.graph, &p).unwrap();
        assert_eq!(on_g.canonical(), c.post_process(&on_gr).canonical());
    }

    #[test]
    fn preserves_unbounded_patterns() {
        let g = recommendation_network();
        let mut p = Pattern::new();
        let b = p.add_node("BSA");
        let f = p.add_node("FA");
        p.add_edge_unbounded(b, f);
        assert_pattern_preserved(&g, &p);
    }

    #[test]
    fn preserves_boolean_answer_for_unmatchable_pattern() {
        let g = recommendation_network();
        let mut p = Pattern::new();
        let c1 = p.add_node("C");
        let b = p.add_node("BSA");
        p.add_edge(c1, b, 1); // no customer recommends a BSA
        assert_pattern_preserved(&g, &p);
    }

    #[test]
    fn preserves_patterns_on_cyclic_graph() {
        let g = graph(
            &["A", "B", "B", "C", "C"],
            &[(0, 1), (0, 2), (1, 3), (2, 4), (3, 1), (4, 2)],
        );
        let mut p = Pattern::new();
        let a = p.add_node("A");
        let b = p.add_node("B");
        let c = p.add_node("C");
        p.add_edge(a, b, 1);
        p.add_edge(b, c, 2);
        p.add_edge(c, b, 1);
        assert_pattern_preserved(&g, &p);
    }

    #[test]
    fn post_process_expands_and_dedups() {
        let g = graph(&["A", "B", "B"], &[(0, 1), (0, 2)]);
        let c = compress_b(&g);
        let mut on_gr = MatchRelation::empty(1);
        let class_b = c.class_of(NodeId(1));
        on_gr.matches[0] = vec![class_b, class_b];
        let expanded = c.post_process(&on_gr);
        assert_eq!(expanded.matches[0], vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn empty_graph() {
        let g = LabeledGraph::new();
        let c = compress_b(&g);
        assert_eq!(c.class_count(), 0);
        assert_eq!(c.graph.node_count(), 0);
    }

    #[test]
    fn heap_bytes_counts_graph_and_partition() {
        let g = recommendation_network();
        let c = compress_b(&g);
        assert!(c.heap_bytes() > c.graph.heap_bytes());
        assert!(c.heap_bytes() > c.partition.heap_bytes());
    }
}
