//! [`PatternView`] — the snapshot-facing, **patchable** form of the pattern
//! preserving compression.
//!
//! [`PatternCompression`](crate::compress::PatternCompression) is the batch
//! artefact: dense class ids, a freshly built mutable quotient graph,
//! re-materialized in full every time it is asked for. A `PatternView` is
//! what a serving layer keeps warm across versions instead:
//!
//! * the quotient lives in CSR form with rows indexed by the maintainer's
//!   **stable** class ids ([`StablePatternQuotient`]), so a class untouched
//!   by a batch keeps its row verbatim;
//! * [`PatternView::apply_delta`] derives the next view from the previous
//!   one and a [`PartitionDelta`]: only the rows of retired/born classes —
//!   plus live rows with a class-level edge into one of them — are
//!   re-derived, and the CSR is rewritten through the same row-diff
//!   machinery ([`CsrGraph::patch_relabeled`]) that patches the
//!   reachability quotient, with untouched row spans copied wholesale;
//! * retired ids persist as isolated rows carrying a reserved
//!   [`RETIRED_CLASS_LABEL`] that no pattern query can name, so candidate
//!   selection never sees ghost classes.
//!
//! ## Why the touched-row set is sufficient
//!
//! A class-level edge `(c, d)` exists iff some member of `c` has a data
//! edge into a member of `d`. The incremental maintainer retires every
//! class whose member set changes, and every data-graph edge update has its
//! source inside a retired class (the affected region is an ancestor cone
//! of the update sources). Hence an edge between two *surviving* classes
//! can neither appear nor disappear: the only rows whose adjacency can
//! change are the retired/born rows themselves and surviving rows with an
//! old edge into a retired class or a new edge into a born class — exactly
//! the set `apply_delta` re-derives. Everything else is span-copied.

use std::sync::Arc;

use qpgc_graph::update::{EdgeDelta, PartitionDelta};
use qpgc_graph::{CsrGraph, Label, NodeId};

use crate::bounded::bounded_match;
use crate::incremental::StablePatternQuotient;
use crate::pattern::{MatchRelation, Pattern};

/// Reserved label name carried by retired (inactive) quotient rows. The
/// embedded NUL keeps it out of any realistic query vocabulary, so retired
/// rows never enter a pattern's candidate sets.
pub const RETIRED_CLASS_LABEL: &str = "\u{0}retired-class\u{0}";

/// A read-optimized, patchable snapshot of the pattern preserving
/// compression, indexed by stable class ids.
///
/// Never mutated after construction — a serving layer shares it behind an
/// `Arc` and derives successors with [`PatternView::apply_delta`] (or
/// rebuilds with [`PatternView::build`] past its damage gate).
#[derive(Clone, Debug)]
pub struct PatternView {
    /// CSR quotient `Gr`. Rows are stable class ids; retired ids persist as
    /// isolated rows labelled [`RETIRED_CLASS_LABEL`].
    graph: CsrGraph,
    /// `class_of[v]` — stable class id of original node `v`.
    class_of: Vec<u32>,
    /// Member nodes per stable id (empty for retired ids). Rows are shared
    /// (`Arc`) between consecutive views: a patch clones the spine and
    /// replaces only churned entries.
    members: Vec<Arc<[NodeId]>>,
    /// Liveness per stable id.
    active: Vec<bool>,
    /// Number of live classes.
    live_classes: usize,
}

impl PatternView {
    /// Builds a view from scratch out of the maintainer's stable-id export.
    pub fn build(spq: &StablePatternQuotient) -> PatternView {
        let id_space = spq.id_space();
        let mut interner = spq.interner.clone();
        let retired = interner.intern(RETIRED_CLASS_LABEL);
        let mut labels = spq.labels.clone();
        for (c, &alive) in spq.active.iter().enumerate() {
            if !alive {
                labels[c] = retired;
            }
        }
        let graph = CsrGraph::from_edges(
            labels,
            interner,
            spq.edges.iter().map(|&(a, b)| (NodeId(a), NodeId(b))),
        );
        debug_assert_eq!(spq.members.len(), id_space);
        PatternView {
            graph,
            class_of: spq.class_of.clone(),
            // Shared slices: adopting the export's member rows is a
            // reference bump per class, not a copy.
            members: spq.members.clone(),
            active: spq.active.clone(),
            live_classes: spq.class_count(),
        }
    }

    /// Derives the next view from `self` and the batch's
    /// [`PartitionDelta`], re-deriving only the rows the delta can have
    /// changed (see the module docs for the sufficiency argument). `spq` is
    /// the post-batch stable-id export; the patched node index is
    /// debug-asserted against it when present. Only the per-class pieces
    /// (`labels`, `active`, `edges`) are consumed: untouched member rows
    /// carry over from `self`, churned ones come from the delta's births,
    /// and the node index is patched from the births too, so callers on
    /// the patch path pass the cheaper light export
    /// ([`IncrementalPattern::stable_quotient_without_members`]).
    ///
    /// [`IncrementalPattern::stable_quotient_without_members`]:
    ///     crate::incremental::IncrementalPattern::stable_quotient_without_members
    pub fn apply_delta(&self, delta: &PartitionDelta, spq: &StablePatternQuotient) -> PatternView {
        let id_space = delta.id_space;
        let old_space = self.graph.node_count();
        debug_assert!(id_space >= old_space, "stable id space never shrinks");
        debug_assert_eq!(id_space, spq.id_space());
        let added_ids = delta.added_ids();

        // Node → class index, member rows, liveness: patched from the
        // births. Member rows of untouched classes are Arc-shared.
        let mut class_of = self.class_of.clone();
        let mut members = self.members.clone();
        members.resize(id_space, Arc::from(&[][..]));
        let mut active = self.active.clone();
        active.resize(id_space, false);
        let mut live_classes = self.live_classes;
        for &r in &delta.removed {
            active[r as usize] = false;
            members[r as usize] = Arc::from(&[][..]);
            live_classes -= 1;
        }
        for birth in &delta.added {
            for &v in &birth.members {
                class_of[v.index()] = birth.id;
            }
            active[birth.id as usize] = true;
            members[birth.id as usize] = Arc::from(birth.members.as_slice());
            live_classes += 1;
        }
        debug_assert!(
            spq.class_of.is_empty() || class_of == spq.class_of,
            "delta-patched node index drifted"
        );
        debug_assert_eq!(live_classes, spq.class_count(), "live-class count drifted");

        // Post-batch class adjacency, indexed by source (`spq.edges` is
        // sorted by `(source, target)` — a counting pass gives row offsets).
        let mut new_off = vec![0u32; id_space + 1];
        for &(a, _) in &spq.edges {
            new_off[a as usize + 1] += 1;
        }
        for i in 0..id_space {
            new_off[i + 1] += new_off[i];
        }
        let new_row = |a: u32| {
            let (lo, hi) = (
                new_off[a as usize] as usize,
                new_off[a as usize + 1] as usize,
            );
            &spq.edges[lo..hi]
        };

        // Rows whose adjacency can have changed: the churned classes, live
        // rows with an old edge into a retired class, and live rows with a
        // new edge into a born class.
        let mut touched = vec![false; id_space];
        for &r in &delta.removed {
            touched[r as usize] = true;
            for &p in self.graph.in_neighbors(NodeId(r)) {
                touched[p.index()] = true;
            }
        }
        let mut is_added = vec![false; id_space];
        for &a in &added_ids {
            touched[a as usize] = true;
            is_added[a as usize] = true;
        }
        for &(a, b) in &spq.edges {
            if is_added[b as usize] {
                touched[a as usize] = true;
            }
        }

        // Per-row diff: the post-batch row vs. the previous view's row.
        // Both sides are sorted ascending; two-pointer sweep.
        let mut added_edges: Vec<(NodeId, NodeId)> = Vec::new();
        let mut removed_edges: Vec<(NodeId, NodeId)> = Vec::new();
        for a in 0..id_space as u32 {
            if !touched[a as usize] {
                continue;
            }
            let new_kept = new_row(a);
            let old_kept: &[NodeId] = if (a as usize) < old_space {
                self.graph.out_neighbors(NodeId(a))
            } else {
                &[]
            };
            let mut i = 0usize;
            let mut j = 0usize;
            while i < old_kept.len() || j < new_kept.len() {
                match (
                    old_kept.get(i).map(|t| t.0),
                    new_kept.get(j).map(|&(_, b)| b),
                ) {
                    (Some(o), Some(n)) if o == n => {
                        i += 1;
                        j += 1;
                    }
                    (Some(o), n) if n.is_none() || o < n.unwrap() => {
                        removed_edges.push((NodeId(a), NodeId(o)));
                        i += 1;
                    }
                    (_, Some(n)) => {
                        added_edges.push((NodeId(a), NodeId(n)));
                        j += 1;
                    }
                    _ => unreachable!(),
                }
            }
        }
        let diff = EdgeDelta::new(added_edges, removed_edges);

        // Labels: retired rows drop to the sentinel, recycled rows take the
        // label of the class reborn at their id (later relabels win, so a
        // same-delta retire-then-rebirth ends at the birth's label), and
        // appended rows are fresh births.
        let retired = self
            .graph
            .interner()
            .get(RETIRED_CLASS_LABEL)
            .expect("pattern views intern the retired-class sentinel at build time");
        let mut relabels: Vec<(NodeId, Label)> = delta
            .removed
            .iter()
            .map(|&r| (NodeId(r), retired))
            .collect();
        for birth in &delta.added {
            if (birth.id as usize) < old_space {
                relabels.push((NodeId(birth.id), spq.labels[birth.id as usize]));
            }
        }
        let appended: Vec<Label> = (old_space..id_space).map(|c| spq.labels[c]).collect();
        let graph = self
            .graph
            .patch_relabeled(diff.added(), diff.removed(), &appended, &relabels);

        PatternView {
            graph,
            class_of,
            members,
            active,
            live_classes,
        }
    }

    /// The compressed pattern graph `Gr` in CSR form. Rows are stable class
    /// ids: `node_count` is the id-space size (retired ids persist as
    /// isolated sentinel-labelled rows), [`PatternView::class_count`] the
    /// number of live classes.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The stable class id of original node `v`, or `None` outside this
    /// view's node space.
    pub fn class_of(&self, v: NodeId) -> Option<u32> {
        self.class_of.get(v.index()).copied()
    }

    /// The original nodes represented by hypernode `c` (empty for retired
    /// ids — the inverse node mapping used by the post-processing function
    /// `P`).
    pub fn members_of(&self, c: NodeId) -> &[NodeId] {
        &self.members[c.index()]
    }

    /// Number of live hypernodes (`|Vr|`).
    pub fn class_count(&self) -> usize {
        self.live_classes
    }

    /// Number of original nodes this view covers.
    pub fn node_count(&self) -> usize {
        self.class_of.len()
    }

    /// `true` when stable id `c` names a live class.
    pub fn is_live(&self, c: u32) -> bool {
        self.active.get(c as usize).copied().unwrap_or(false)
    }

    /// The post-processing function `P`: expands a match relation computed
    /// on `Gr` into the match relation on `G` by replacing every hypernode
    /// with its members. Runs in time linear in the size of the output.
    pub fn post_process(&self, on_compressed: &MatchRelation) -> MatchRelation {
        crate::pattern::expand_match_relation(on_compressed, |c| self.members_of(c))
    }

    /// Answers a pattern query on the compressed graph and expands
    /// hypernodes back to original nodes (the composition `P ∘ Match ∘ F`
    /// with the identity rewriting `F`).
    pub fn answer(&self, query: &Pattern) -> Option<MatchRelation> {
        let on_gr = bounded_match(&self.graph, query)?;
        Some(self.post_process(&on_gr))
    }

    /// Approximate heap footprint in bytes (CSR quotient + node index +
    /// member lists + liveness flags), following the capacity-based
    /// convention of [`CsrGraph::heap_bytes`].
    pub fn heap_bytes(&self) -> usize {
        self.graph.heap_bytes()
            + self.class_of.capacity() * std::mem::size_of::<u32>()
            + self.members.capacity() * std::mem::size_of::<Arc<[NodeId]>>()
            + self
                .members
                .iter()
                .map(|m| m.len() * std::mem::size_of::<NodeId>())
                .sum::<usize>()
            + self.active.capacity() * std::mem::size_of::<bool>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::compress_b;
    use crate::incremental::IncrementalPattern;
    use qpgc_graph::{LabeledGraph, UpdateBatch};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_labeled_graph(rng: &mut StdRng, n_max: usize) -> LabeledGraph {
        let alphabet = ["A", "B", "C"];
        let n = rng.gen_range(3..n_max);
        let mut g = LabeledGraph::new();
        for _ in 0..n {
            g.add_node_with_label(alphabet[rng.gen_range(0..alphabet.len())]);
        }
        for _ in 0..rng.gen_range(0..n * 2) {
            let u = rng.gen_range(0..n) as u32;
            let v = rng.gen_range(0..n) as u32;
            g.add_edge(NodeId(u), NodeId(v));
        }
        g
    }

    fn assert_views_identical(patched: &PatternView, rebuilt: &PatternView, ctx: &str) {
        assert_eq!(
            patched.graph().edges().collect::<Vec<_>>(),
            rebuilt.graph().edges().collect::<Vec<_>>(),
            "{ctx}: patched quotient edges diverged"
        );
        assert_eq!(
            patched.graph().labels(),
            rebuilt.graph().labels(),
            "{ctx}: patched row labels diverged"
        );
        assert_eq!(patched.class_of, rebuilt.class_of, "{ctx}: node index");
        assert_eq!(patched.active, rebuilt.active, "{ctx}: liveness");
        assert_eq!(patched.class_count(), rebuilt.class_count(), "{ctx}: |Vr|");
        for c in 0..patched.members.len() {
            assert_eq!(
                patched.members[c], rebuilt.members[c],
                "{ctx}: members of class {c}"
            );
        }
    }

    /// The structural heart of pattern-side patching: a patched view must be
    /// bit-identical to the one built from scratch off the same maintained
    /// state, and its query answers must match direct evaluation on the
    /// updated data graph.
    #[test]
    fn apply_delta_equals_full_rebuild_and_oracle() {
        let mut rng = StdRng::seed_from_u64(41);
        let mut queries: Vec<Pattern> = Vec::new();
        {
            let mut p = Pattern::new();
            let a = p.add_node("A");
            let b = p.add_node("B");
            p.add_edge(a, b, 1);
            queries.push(p);
            let mut p = Pattern::new();
            let a = p.add_node("A");
            let c = p.add_node("C");
            p.add_edge(a, c, 2);
            queries.push(p);
            let mut p = Pattern::new();
            let b = p.add_node("B");
            let a = p.add_node("A");
            p.add_edge_unbounded(b, a);
            queries.push(p);
            // A single-node query: exercises the retired-row sentinel (a
            // stale label on an isolated dead row would wrongly match).
            let mut p = Pattern::new();
            p.add_node("C");
            queries.push(p);
        }
        for case in 0..25 {
            let mut g = random_labeled_graph(&mut rng, 16);
            let mut inc = IncrementalPattern::new(&g);
            let mut view = PatternView::build(&inc.stable_quotient());
            for step in 0..4 {
                let n = g.node_count();
                let mut batch = UpdateBatch::new();
                for _ in 0..rng.gen_range(1..4) {
                    let u = NodeId(rng.gen_range(0..n) as u32);
                    let v = NodeId(rng.gen_range(0..n) as u32);
                    if rng.gen_bool(0.5) {
                        batch.insert(u, v);
                    } else {
                        batch.delete(u, v);
                    }
                }
                let (_, delta) = inc.apply_with_delta(&mut g, &batch);
                let spq = inc.stable_quotient();
                let patched = view.apply_delta(&delta, &spq);
                let rebuilt = PatternView::build(&spq);
                assert_views_identical(&patched, &rebuilt, &format!("case {case} step {step}"));
                for (qi, q) in queries.iter().enumerate() {
                    crate::pattern::assert_same_answer(
                        &bounded_match(&g, q),
                        &patched.answer(q),
                        &format!("case {case} step {step} query {qi}"),
                    );
                }
                view = patched;
            }
        }
    }

    #[test]
    fn empty_delta_patch_is_identity() {
        let mut g = LabeledGraph::new();
        let a = g.add_node_with_label("A");
        let b = g.add_node_with_label("B");
        g.add_edge(a, b);
        let mut inc = IncrementalPattern::new(&g);
        let view = PatternView::build(&inc.stable_quotient());
        let (_, delta) = inc.apply_with_delta(&mut g, &UpdateBatch::new());
        assert!(delta.is_empty());
        let spq = inc.stable_quotient();
        let patched = view.apply_delta(&delta, &spq);
        assert_views_identical(&patched, &view, "noop");
    }

    #[test]
    fn view_matches_batch_compression_answers() {
        let mut rng = StdRng::seed_from_u64(43);
        for _ in 0..10 {
            let g = random_labeled_graph(&mut rng, 14);
            let inc = IncrementalPattern::new(&g);
            let view = PatternView::build(&inc.stable_quotient());
            let pc = compress_b(&g);
            assert_eq!(view.class_count(), pc.class_count());
            let mut p = Pattern::new();
            let a = p.add_node("A");
            let b = p.add_node("B");
            p.add_edge(a, b, 2);
            let via_pc = bounded_match(&pc.graph, &p).map(|m| pc.post_process(&m));
            crate::pattern::assert_same_answer(
                &via_pc,
                &view.answer(&p),
                "view vs batch compression",
            );
        }
    }

    #[test]
    fn heap_bytes_counts_all_components() {
        let mut g = LabeledGraph::new();
        let a = g.add_node_with_label("A");
        let b = g.add_node_with_label("B");
        g.add_edge(a, b);
        let view = PatternView::build(&IncrementalPattern::new(&g).stable_quotient());
        assert!(view.heap_bytes() >= view.graph().heap_bytes());
        assert!(view.heap_bytes() > 0);
    }
}
