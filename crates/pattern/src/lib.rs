//! # qpgc-pattern
//!
//! Graph-pattern preserving compression (Section 4 of *Query Preserving
//! Graph Compression*, Fan et al., SIGMOD 2012) together with the pattern
//! query machinery the paper evaluates with, and the incremental
//! maintenance algorithm of Section 5.2.
//!
//! The pieces:
//!
//! * [`pattern`] — graph pattern queries `Qp = (Vp, Ep, fv, fe)` with edge
//!   bounds `k` or `*`, and the match-relation result type.
//! * [`bisim`] — the maximum bisimulation relation `Rb`, computed by
//!   rank-stratified signature refinement (Dovier–Piazza–Policriti style).
//! * [`compress`] — `compressB` (Fig. 7): the compression function `R`, the
//!   identity query rewriting `F`, and the post-processing function `P`
//!   that expands hypernodes back to original nodes.
//! * [`simulation`] — graph simulation (Henzinger–Henzinger–Kopke), the
//!   special case of pattern matching where every edge bound is 1.
//! * [`bounded`] — bounded simulation `Match` (Fan et al., PVLDB 2010), the
//!   general pattern matching algorithm of the paper.
//! * [`ak_index`] — the A(k)-index (parameterized k-bisimulation), included
//!   to demonstrate that it does *not* preserve pattern query answers.
//! * [`incremental`] — `incPCM` (Fig. 10): incremental maintenance of the
//!   compression under batch updates, plus the `IncBsim` baseline.
//! * [`inc_match`] — `IncBMatch`: incremental maintenance of a pattern
//!   query's match relation under updates (the baseline of Fig. 12(h)).
//! * [`view`] — [`PatternView`](view::PatternView): the snapshot-facing,
//!   *patchable* form of the compression (stable-id CSR quotient derived
//!   from its predecessor via a `PartitionDelta` instead of re-materialized
//!   per batch), consumed by serving layers.
//!
//! ## Example
//!
//! ```
//! use qpgc_graph::LabeledGraph;
//! use qpgc_pattern::compress::compress_b;
//! use qpgc_pattern::pattern::Pattern;
//! use qpgc_pattern::bounded::bounded_match;
//!
//! // Two bisimilar "BSA" nodes that each recommend an "FA".
//! let mut g = LabeledGraph::new();
//! let b1 = g.add_node_with_label("BSA");
//! let b2 = g.add_node_with_label("BSA");
//! let f1 = g.add_node_with_label("FA");
//! let f2 = g.add_node_with_label("FA");
//! g.add_edge(b1, f1);
//! g.add_edge(b2, f2);
//!
//! let compressed = compress_b(&g);
//! assert_eq!(compressed.graph.node_count(), 2); // {b1,b2}, {f1,f2}
//!
//! // A one-edge pattern BSA -> FA evaluated on the compressed graph and
//! // post-processed gives exactly the matches on the original graph.
//! let mut p = Pattern::new();
//! let qb = p.add_node("BSA");
//! let qf = p.add_node("FA");
//! p.add_edge(qb, qf, 1);
//!
//! let on_g = bounded_match(&g, &p).unwrap();
//! let on_gr = bounded_match(&compressed.graph, &p).unwrap();
//! let expanded = compressed.post_process(&on_gr);
//! assert_eq!(on_g.canonical(), expanded.canonical());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ak_index;
pub mod bisim;
pub mod bounded;
pub mod compress;
pub mod inc_match;
pub mod incremental;
pub mod pattern;
pub mod simulation;
pub mod view;

pub use bisim::{
    bisimulation_partition, bisimulation_partition_csr, bisimulation_partition_csr_threads,
    bisimulation_partition_threads, BisimPartition,
};
pub use bounded::bounded_match;
pub use compress::{compress_b, compress_b_csr, PatternCompression};
pub use inc_match::IncrementalMatch;
pub use incremental::{IncPatternStats, IncrementalPattern, StablePatternQuotient};
pub use pattern::{EdgeBound, MatchRelation, Pattern};
pub use simulation::{simulation_match, simulation_match_csr};
pub use view::PatternView;
