//! `IncBMatch` — incremental maintenance of a pattern query's match relation
//! (the baseline compared against `incPCM` + `Match` in Fig. 12(h)).
//!
//! The maximum bounded-simulation match is a greatest fixpoint, so it can be
//! maintained by re-running the refinement from any *over-approximation* of
//! the new per-node fixpoint sets:
//!
//! * **deletions only** — the old sets over-approximate the new ones
//!   (removing edges can only remove matches), so refinement restarts from
//!   them and usually converges in a few rounds touching only the damaged
//!   part;
//! * **batches containing insertions** — matches can appear, but only for
//!   label-eligible nodes that can reach an inserted edge's source: a node
//!   whose match status improves must gain a witness path through an
//!   inserted edge somewhere in its transitive dependency chain, and every
//!   node in that chain reaches the inserted edge's source. The old sets are
//!   widened with exactly those nodes before refining.
//!
//! Either way the result provably equals a from-scratch evaluation, which
//! the tests assert on randomized update sequences.
//!
//! The state tracks per-pattern-node fixpoint sets even while the pattern
//! does not match overall (some set empty); the user-facing answer is
//! derived from them (the paper's convention: the answer is `∅` unless every
//! pattern node has a match).

use std::collections::VecDeque;

use qpgc_graph::{LabeledGraph, NodeId, UpdateBatch};

use crate::bounded::{initial_candidates_allow_empty, refine_to_fixpoint};
use crate::pattern::{MatchRelation, Pattern};

/// Incrementally maintained match relation of one pattern query.
#[derive(Clone, Debug)]
pub struct IncrementalMatch {
    pattern: Pattern,
    /// Per-pattern-node greatest-fixpoint sets (possibly empty).
    sim: Vec<Vec<NodeId>>,
}

impl IncrementalMatch {
    /// Evaluates the pattern on `g` and starts maintaining the result.
    pub fn new(g: &LabeledGraph, pattern: Pattern) -> Self {
        let init = initial_candidates_allow_empty(g, &pattern);
        let sim = refine_to_fixpoint(g, &pattern, init);
        IncrementalMatch { pattern, sim }
    }

    /// The pattern being maintained.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The current answer: the maximum match relation, or `None` when the
    /// pattern does not match (`Qp ⋬ G`).
    pub fn current(&self) -> Option<MatchRelation> {
        if self.pattern.node_count() == 0 || self.sim.iter().any(|s| s.is_empty()) {
            return None;
        }
        let mut rel = MatchRelation::empty(self.pattern.node_count());
        rel.matches = self.sim.clone();
        Some(rel)
    }

    /// Applies `batch` to `g` and updates the maintained answer.
    pub fn apply(&mut self, g: &mut LabeledGraph, batch: &UpdateBatch) -> Option<MatchRelation> {
        let norm = batch.normalized(g);
        norm.apply_to(g);
        if norm.is_empty() {
            return self.current();
        }
        let (insertions, _) = norm.split();

        let start = if insertions.is_empty() {
            // Deletions only: the previous sets over-approximate the new ones.
            self.sim.clone()
        } else {
            self.widened_candidates(g, &insertions)
        };

        self.sim = refine_to_fixpoint(g, &self.pattern, start);
        self.current()
    }

    /// Builds candidate sets = old sets ∪ {label-eligible nodes that can
    /// reach an inserted edge's source in the updated graph}.
    fn widened_candidates(
        &self,
        g: &LabeledGraph,
        insertions: &[(NodeId, NodeId)],
    ) -> Vec<Vec<NodeId>> {
        let full = initial_candidates_allow_empty(g, &self.pattern);
        let touched = reverse_reach_marks(g, insertions.iter().map(|&(u, _)| u));

        full.into_iter()
            .enumerate()
            .map(|(u, full_candidates)| {
                let mut set: Vec<NodeId> = self.sim[u].clone();
                for v in full_candidates {
                    if touched[v.index()] {
                        set.push(v);
                    }
                }
                set.sort_unstable();
                set.dedup();
                set
            })
            .collect()
    }
}

/// Marks every node with a (possibly empty) path to one of `targets` (the
/// targets themselves are marked).
fn reverse_reach_marks(g: &LabeledGraph, targets: impl Iterator<Item = NodeId>) -> Vec<bool> {
    let n = g.node_count();
    let mut reached = vec![false; n];
    let mut queue = VecDeque::new();
    for t in targets {
        if !reached[t.index()] {
            reached[t.index()] = true;
            queue.push_back(t);
        }
    }
    while let Some(v) = queue.pop_front() {
        for &p in g.in_neighbors(v) {
            if !reached[p.index()] {
                reached[p.index()] = true;
                queue.push_back(p);
            }
        }
    }
    reached
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded::bounded_match;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn graph(labels: &[&str], edges: &[(u32, u32)]) -> LabeledGraph {
        let mut g = LabeledGraph::new();
        for l in labels {
            g.add_node_with_label(l);
        }
        for &(u, v) in edges {
            g.add_edge(NodeId(u), NodeId(v));
        }
        g
    }

    fn two_edge_pattern() -> Pattern {
        let mut p = Pattern::new();
        let a = p.add_node("A");
        let b = p.add_node("B");
        let c = p.add_node("C");
        p.add_edge(a, b, 2);
        p.add_edge(b, c, 1);
        p
    }

    fn assert_matches_scratch(inc: &IncrementalMatch, g: &LabeledGraph) {
        let scratch = bounded_match(g, inc.pattern());
        match (inc.current(), scratch) {
            (None, None) => {}
            (Some(a), Some(b)) => assert_eq!(a.canonical(), b.canonical()),
            (a, b) => panic!(
                "incremental ({}) and scratch ({}) disagree",
                a.is_some(),
                b.is_some()
            ),
        }
    }

    #[test]
    fn deletion_removes_matches() {
        let mut g = graph(
            &["A", "B", "C", "B", "C"],
            &[(0, 1), (1, 2), (0, 3), (3, 4)],
        );
        let mut inc = IncrementalMatch::new(&g, two_edge_pattern());
        assert!(inc.current().is_some());
        let mut batch = UpdateBatch::new();
        batch.delete(NodeId(3), NodeId(4));
        inc.apply(&mut g, &batch);
        assert_matches_scratch(&inc, &g);
        let rel = inc.current().unwrap();
        assert!(!rel.matches_of(1).contains(&NodeId(3)));
    }

    #[test]
    fn deletion_can_kill_the_match_entirely() {
        let mut g = graph(&["A", "B", "C"], &[(0, 1), (1, 2)]);
        let mut inc = IncrementalMatch::new(&g, two_edge_pattern());
        assert!(inc.current().is_some());
        let mut batch = UpdateBatch::new();
        batch.delete(NodeId(1), NodeId(2));
        inc.apply(&mut g, &batch);
        assert!(inc.current().is_none());
        assert_matches_scratch(&inc, &g);
    }

    #[test]
    fn insertion_adds_matches() {
        let mut g = graph(&["A", "B", "C", "B"], &[(0, 1), (1, 2), (0, 3)]);
        let mut inc = IncrementalMatch::new(&g, two_edge_pattern());
        let before = inc.current().unwrap().pair_count();
        let mut batch = UpdateBatch::new();
        batch.insert(NodeId(3), NodeId(2));
        inc.apply(&mut g, &batch);
        assert_matches_scratch(&inc, &g);
        assert!(inc.current().unwrap().pair_count() > before);
    }

    #[test]
    fn insertion_creates_match_from_nothing() {
        let mut g = graph(&["A", "B", "C"], &[(0, 1)]);
        let mut inc = IncrementalMatch::new(&g, two_edge_pattern());
        assert!(inc.current().is_none());
        let mut batch = UpdateBatch::new();
        batch.insert(NodeId(1), NodeId(2));
        inc.apply(&mut g, &batch);
        assert!(inc.current().is_some());
        assert_matches_scratch(&inc, &g);
    }

    #[test]
    fn mixed_batches_stay_exact() {
        let mut g = graph(
            &["A", "B", "C", "B", "C", "A"],
            &[(0, 1), (1, 2), (5, 3), (3, 4)],
        );
        let mut inc = IncrementalMatch::new(&g, two_edge_pattern());
        let mut batch = UpdateBatch::new();
        batch.delete(NodeId(1), NodeId(2));
        batch.insert(NodeId(1), NodeId(4));
        batch.insert(NodeId(2), NodeId(2));
        inc.apply(&mut g, &batch);
        assert_matches_scratch(&inc, &g);
    }

    #[test]
    fn unbounded_pattern_edges() {
        let mut p = Pattern::new();
        let a = p.add_node("A");
        let c = p.add_node("C");
        p.add_edge_unbounded(a, c);
        let mut g = graph(&["A", "B", "B", "C"], &[(0, 1), (1, 2)]);
        let mut inc = IncrementalMatch::new(&g, p);
        assert!(inc.current().is_none());
        let mut batch = UpdateBatch::new();
        batch.insert(NodeId(2), NodeId(3));
        inc.apply(&mut g, &batch);
        assert!(inc.current().is_some());
        assert_matches_scratch(&inc, &g);
    }

    #[test]
    fn randomized_sequences_match_scratch() {
        let mut rng = StdRng::seed_from_u64(123);
        let alphabet = ["A", "B", "C"];
        for _ in 0..15 {
            let n = rng.gen_range(4..14);
            let mut g = LabeledGraph::new();
            for _ in 0..n {
                g.add_node_with_label(alphabet[rng.gen_range(0..alphabet.len())]);
            }
            for _ in 0..rng.gen_range(0..n * 2) {
                let u = rng.gen_range(0..n) as u32;
                let v = rng.gen_range(0..n) as u32;
                g.add_edge(NodeId(u), NodeId(v));
            }
            let mut inc = IncrementalMatch::new(&g, two_edge_pattern());
            for _ in 0..4 {
                let mut batch = UpdateBatch::new();
                for _ in 0..rng.gen_range(1..4) {
                    let u = NodeId(rng.gen_range(0..n) as u32);
                    let v = NodeId(rng.gen_range(0..n) as u32);
                    if rng.gen_bool(0.5) {
                        batch.insert(u, v);
                    } else {
                        batch.delete(u, v);
                    }
                }
                inc.apply(&mut g, &batch);
                assert_matches_scratch(&inc, &g);
            }
        }
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut g = graph(&["A", "B", "C"], &[(0, 1), (1, 2)]);
        let mut inc = IncrementalMatch::new(&g, two_edge_pattern());
        let before = inc.current().unwrap().canonical();
        inc.apply(&mut g, &UpdateBatch::new());
        assert_eq!(inc.current().unwrap().canonical(), before);
    }

    #[test]
    fn maintained_sets_survive_unmatched_phases() {
        // Pattern stops matching, then matches again; the per-node sets must
        // come back exactly.
        let mut g = graph(&["A", "B", "C"], &[(0, 1), (1, 2)]);
        let mut inc = IncrementalMatch::new(&g, two_edge_pattern());
        let mut del = UpdateBatch::new();
        del.delete(NodeId(0), NodeId(1));
        inc.apply(&mut g, &del);
        assert!(inc.current().is_none());
        let mut ins = UpdateBatch::new();
        ins.insert(NodeId(0), NodeId(1));
        inc.apply(&mut g, &ins);
        assert_matches_scratch(&inc, &g);
        assert!(inc.current().is_some());
    }
}
