//! Bounded simulation `Match` (Fan et al., PVLDB 2010) — the pattern
//! matching semantics of the paper's graph pattern queries.
//!
//! A data graph matches a pattern `Qp` if there is a relation `S ⊆ Vp × V`
//! such that every pattern node has a match, matched nodes agree on labels,
//! and every pattern edge `(u, u')` with bound `k` (or `*`) is witnessed by
//! a non-empty path of length ≤ `k` (or any length) from the matching data
//! node to some data node matching `u'`. There is a unique maximum such
//! relation (Lemma 1); it is computed by a refinement loop whose edge checks
//! use reverse bounded BFS from the current candidate set of the edge
//! target.

use std::collections::VecDeque;

use qpgc_graph::{GraphView, NodeId};

use crate::pattern::{resolve_labels, EdgeBound, MatchRelation, Pattern};

/// Computes the maximum bounded-simulation match of `pattern` in `g`.
///
/// Generic over [`GraphView`]: runs identically on the mutable
/// [`LabeledGraph`](qpgc_graph::LabeledGraph) and on CSR snapshots such as
/// the serving layer's patched pattern quotients.
///
/// Returns `None` if the pattern does not match (`Qp ⋬ G`), otherwise the
/// maximum match relation `SM`.
pub fn bounded_match<G: GraphView>(g: &G, pattern: &Pattern) -> Option<MatchRelation> {
    bounded_match_from(g, pattern, initial_candidates(g, pattern)?)
}

/// Builds the initial (label-based) candidate sets; `None` if some pattern
/// node has no candidate at all.
pub(crate) fn initial_candidates<G: GraphView>(
    g: &G,
    pattern: &Pattern,
) -> Option<Vec<Vec<NodeId>>> {
    if pattern.node_count() == 0 {
        return None;
    }
    let labels = resolve_labels(pattern, g);
    let by_label = g.nodes_by_label();
    let mut sim = Vec::with_capacity(pattern.node_count());
    for u in pattern.nodes() {
        let cands = match labels[u as usize] {
            Some(l) => by_label.get(&l).cloned().unwrap_or_default(),
            None => Vec::new(),
        };
        if cands.is_empty() {
            return None;
        }
        sim.push(cands);
    }
    Some(sim)
}

/// Builds the initial label-based candidate sets, allowing empty sets (used
/// by the incremental algorithm, which tracks per-node fixpoints even when
/// the overall pattern does not match).
pub(crate) fn initial_candidates_allow_empty<G: GraphView>(
    g: &G,
    pattern: &Pattern,
) -> Vec<Vec<NodeId>> {
    let labels = resolve_labels(pattern, g);
    let by_label = g.nodes_by_label();
    pattern
        .nodes()
        .map(|u| match labels[u as usize] {
            Some(l) => by_label.get(&l).cloned().unwrap_or_default(),
            None => Vec::new(),
        })
        .collect()
}

/// Runs the refinement to the greatest fixpoint starting from `sim`, which
/// must be a superset of the maximum match (e.g. the label candidates, or a
/// previous result that can only have shrunk). Empty candidate sets are
/// allowed and simply propagate. Exposed for the incremental algorithm
/// (`IncBMatch`).
pub(crate) fn refine_to_fixpoint<G: GraphView>(
    g: &G,
    pattern: &Pattern,
    mut sim: Vec<Vec<NodeId>>,
) -> Vec<Vec<NodeId>> {
    let mut changed = true;
    while changed {
        changed = false;
        for &(u, u2, bound) in pattern.edges() {
            let (u, u2) = (u as usize, u2 as usize);
            // Nodes that can reach some member of sim(u2) via a non-empty
            // path of length ≤ bound: reverse bounded BFS from sim(u2).
            let can_reach = reverse_reach_within(g, &sim[u2], bound);
            let before = sim[u].len();
            sim[u].retain(|v| can_reach[v.index()]);
            if sim[u].len() != before {
                changed = true;
            }
        }
    }
    for s in &mut sim {
        s.sort_unstable();
    }
    sim
}

/// Runs the refinement from `sim` and packages the result as a match
/// relation (`None` if some pattern node ends up with no match).
pub(crate) fn bounded_match_from<G: GraphView>(
    g: &G,
    pattern: &Pattern,
    sim: Vec<Vec<NodeId>>,
) -> Option<MatchRelation> {
    if pattern.node_count() == 0 {
        return None;
    }
    let sim = refine_to_fixpoint(g, pattern, sim);
    if sim.iter().any(|s| s.is_empty()) {
        return None;
    }
    let mut result = MatchRelation::empty(pattern.node_count());
    for (u, s) in sim.into_iter().enumerate() {
        result.matches[u] = s;
    }
    Some(result)
}

/// Multi-source reverse BFS: marks every node that has a non-empty path of
/// length ≤ `bound` (unlimited for `*`) to some node in `targets`.
fn reverse_reach_within<G: GraphView>(g: &G, targets: &[NodeId], bound: EdgeBound) -> Vec<bool> {
    let limit = bound.hop_limit();
    let n = g.node_count();
    let mut dist = vec![usize::MAX; n];
    let mut reached = vec![false; n];
    let mut queue = VecDeque::new();
    for &t in targets {
        if dist[t.index()] == usize::MAX {
            dist[t.index()] = 0;
            queue.push_back(t);
        }
    }
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        if let Some(limit) = limit {
            if d >= limit {
                continue;
            }
        }
        for &p in g.in_neighbors(v) {
            // p reaches a target via a path of length d + 1 ≥ 1.
            reached[p.index()] = true;
            if dist[p.index()] == usize::MAX {
                dist[p.index()] = d + 1;
                queue.push_back(p);
            }
        }
    }
    reached
}

/// Evaluates the Boolean pattern query: `true` iff `Qp ⊴ G`.
pub fn boolean_match<G: GraphView>(g: &G, pattern: &Pattern) -> bool {
    bounded_match(g, pattern).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::simulation_match;
    use qpgc_graph::traversal;
    use qpgc_graph::LabeledGraph;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn graph(labels: &[&str], edges: &[(u32, u32)]) -> LabeledGraph {
        let mut g = LabeledGraph::new();
        for l in labels {
            g.add_node_with_label(l);
        }
        for &(u, v) in edges {
            g.add_edge(NodeId(u), NodeId(v));
        }
        g
    }

    #[test]
    fn bound_two_allows_two_hop_paths() {
        // A -> X -> B : pattern edge A -2-> B matches, A -1-> B does not.
        let g = graph(&["A", "X", "B"], &[(0, 1), (1, 2)]);
        let mut p2 = Pattern::new();
        let a = p2.add_node("A");
        let b = p2.add_node("B");
        p2.add_edge(a, b, 2);
        assert!(bounded_match(&g, &p2).is_some());

        let mut p1 = Pattern::new();
        let a = p1.add_node("A");
        let b = p1.add_node("B");
        p1.add_edge(a, b, 1);
        assert!(bounded_match(&g, &p1).is_none());
    }

    #[test]
    fn unbounded_edge_is_reachability() {
        let g = graph(
            &["A", "X", "X", "X", "B"],
            &[(0, 1), (1, 2), (2, 3), (3, 4)],
        );
        let mut p = Pattern::new();
        let a = p.add_node("A");
        let b = p.add_node("B");
        p.add_edge_unbounded(a, b);
        let m = bounded_match(&g, &p).unwrap();
        assert_eq!(m.matches_of(a), &[NodeId(0)]);
        assert_eq!(m.matches_of(b), &[NodeId(4)]);
    }

    #[test]
    fn non_empty_path_required_for_self_matching() {
        // Pattern A -1-> A requires an A node with an A child; a single A
        // node with no self loop must not match itself via the empty path.
        let g = graph(&["A"], &[]);
        let mut p = Pattern::new();
        let a1 = p.add_node("A");
        let a2 = p.add_node("A");
        p.add_edge(a1, a2, 1);
        assert!(bounded_match(&g, &p).is_none());

        let g_loop = graph(&["A"], &[(0, 0)]);
        assert!(bounded_match(&g_loop, &p).is_some());
    }

    #[test]
    fn bound_one_coincides_with_simulation() {
        let mut rng = StdRng::seed_from_u64(5);
        let alphabet = ["A", "B", "C"];
        for _ in 0..20 {
            let n = rng.gen_range(3..15);
            let mut g = LabeledGraph::new();
            for _ in 0..n {
                g.add_node_with_label(alphabet[rng.gen_range(0..alphabet.len())]);
            }
            for _ in 0..rng.gen_range(0..n * 2) {
                let u = rng.gen_range(0..n) as u32;
                let v = rng.gen_range(0..n) as u32;
                g.add_edge(NodeId(u), NodeId(v));
            }
            let mut p = Pattern::new();
            let a = p.add_node("A");
            let b = p.add_node("B");
            let c = p.add_node("C");
            p.add_edge(a, b, 1);
            p.add_edge(b, c, 1);
            let via_bounded = bounded_match(&g, &p);
            let via_sim = simulation_match(&g, &p);
            match (via_bounded, via_sim) {
                (None, None) => {}
                (Some(x), Some(y)) => assert_eq!(x.canonical(), y.canonical()),
                (x, y) => panic!(
                    "boolean disagreement: bounded={} sim={}",
                    x.is_some(),
                    y.is_some()
                ),
            }
        }
    }

    #[test]
    fn result_is_maximum_and_sound() {
        // Soundness check against the definition: every pair in the result
        // satisfies every pattern edge; maximality spot-checked by verifying
        // that label-eligible nodes excluded from the result genuinely fail.
        let g = graph(
            &["A", "A", "B", "B", "C", "C"],
            &[(0, 2), (2, 4), (1, 3), (0, 3), (3, 3)],
        );
        let mut p = Pattern::new();
        let a = p.add_node("A");
        let b = p.add_node("B");
        let c = p.add_node("C");
        p.add_edge(a, b, 1);
        p.add_edge(b, c, 2);
        let m = bounded_match(&g, &p).unwrap();
        // Soundness of the A -1-> B edge.
        for &v in m.matches_of(a) {
            assert!(g
                .out_neighbors(v)
                .iter()
                .any(|w| m.matches_of(b).contains(w)));
        }
        // Soundness of the B -2-> C edge.
        for &v in m.matches_of(b) {
            let within2 = traversal::bounded_bfs(&g, v, Some(2));
            assert!(within2.iter().any(|w| m.matches_of(c).contains(w)));
        }
        // Node 3 (B) only loops on itself and never reaches a C: must be out.
        assert!(!m.matches_of(b).contains(&NodeId(3)));
        // Node 1 (A) only points at node 3: must be out as well.
        assert!(!m.matches_of(a).contains(&NodeId(1)));
    }

    #[test]
    fn boolean_query() {
        let g = graph(&["A", "B"], &[(0, 1)]);
        let mut p = Pattern::new();
        let a = p.add_node("A");
        let b = p.add_node("B");
        p.add_edge(a, b, 1);
        assert!(boolean_match(&g, &p));
        let mut p2 = Pattern::new();
        let b2 = p2.add_node("B");
        let a2 = p2.add_node("A");
        p2.add_edge(b2, a2, 3);
        assert!(!boolean_match(&g, &p2));
    }

    #[test]
    fn missing_label_means_no_match() {
        let g = graph(&["A"], &[]);
        let mut p = Pattern::new();
        p.add_node("Q");
        assert!(bounded_match(&g, &p).is_none());
        assert!(!boolean_match(&g, &p));
    }

    #[test]
    fn empty_pattern_no_match() {
        let g = graph(&["A"], &[]);
        assert!(bounded_match(&g, &Pattern::new()).is_none());
    }

    #[test]
    fn larger_bounds_only_grow_matches() {
        let g = graph(
            &["A", "X", "X", "B", "A", "B"],
            &[(0, 1), (1, 2), (2, 3), (4, 5)],
        );
        let mut sizes = Vec::new();
        for k in 1..=4 {
            let mut p = Pattern::new();
            let a = p.add_node("A");
            let b = p.add_node("B");
            p.add_edge(a, b, k);
            let size = bounded_match(&g, &p).map(|m| m.pair_count()).unwrap_or(0);
            sizes.push(size);
        }
        for w in sizes.windows(2) {
            assert!(
                w[0] <= w[1],
                "match must be monotone in the bound: {sizes:?}"
            );
        }
        assert!(sizes[3] > sizes[0]);
    }
}
