//! The maximum bisimulation relation `Rb` (Section 4.1).
//!
//! A bisimulation on `G = (V, E, L)` is a relation `B` such that `(u, v) ∈
//! B` implies `L(u) = L(v)`, every child of `u` is matched by a child of `v`
//! that is again related by `B`, and vice versa. The *maximum* bisimulation
//! is an equivalence relation (Lemma 5); its quotient is what `compressB`
//! outputs.
//!
//! ## Algorithm
//!
//! We compute the coarsest stable partition by signature refinement,
//! stratified by bisimulation rank in the style of
//! Dovier–Piazza–Policriti (CAV 2001):
//!
//! 1. the initial partition groups nodes by `(label, rank rb)` — valid
//!    because bisimilar nodes share both (Lemma 9);
//! 2. the partition is repeatedly refined by splitting blocks whose members
//!    have different *signatures*, where the signature of a node is the set
//!    of blocks its children currently belong to;
//! 3. a fixpoint of this refinement is exactly the maximum bisimulation.
//!
//! Each refinement round is `O(|E| + |V|)` with hashing; rank
//! stratification keeps the number of rounds near the depth of the DAG of
//! SCCs in practice. A deliberately naive fixpoint (no rank seeding) is kept
//! as [`reference_bisimulation`] for differential testing.

use std::collections::HashMap;

use qpgc_graph::rank::{bisim_ranks, BisimRank};
use qpgc_graph::scc::Condensation;
use qpgc_graph::{Label, LabeledGraph, NodeId};

/// The partition of `V` induced by the maximum bisimulation.
#[derive(Clone, Debug)]
pub struct BisimPartition {
    /// `class_of[v]` — block id of node `v`; ids are dense `0..class_count`.
    pub class_of: Vec<u32>,
    /// Members of each block, ascending node order.
    pub members: Vec<Vec<NodeId>>,
    /// The (shared) label of each block.
    pub labels: Vec<Label>,
}

impl BisimPartition {
    /// Number of equivalence classes.
    pub fn class_count(&self) -> usize {
        self.members.len()
    }

    /// The class id of node `v`.
    pub fn class_of(&self, v: NodeId) -> u32 {
        self.class_of[v.index()]
    }

    /// `true` iff `u` and `v` are bisimilar.
    pub fn bisimilar(&self, u: NodeId, v: NodeId) -> bool {
        self.class_of(u) == self.class_of(v)
    }

    /// Canonical form (sorted member lists sorted by first member) for
    /// comparisons in tests.
    pub fn canonical(&self) -> Vec<Vec<u32>> {
        let mut classes: Vec<Vec<u32>> = self
            .members
            .iter()
            .map(|m| {
                let mut v: Vec<u32> = m.iter().map(|n| n.0).collect();
                v.sort_unstable();
                v
            })
            .collect();
        classes.sort();
        classes
    }
}

/// Computes the maximum bisimulation partition of `g` (rank-stratified
/// signature refinement).
pub fn bisimulation_partition(g: &LabeledGraph) -> BisimPartition {
    let cond = Condensation::of(g);
    let ranks = bisim_ranks(g, &cond);
    // Initial blocks: (label, rank). Both are invariants of bisimilarity.
    let init = |v: NodeId| (g.label(v), ranks.rank[v.index()]);
    refine_to_fixpoint(g, init)
}

/// A reference implementation seeded only by labels (no rank
/// stratification); used in tests and the ablation benchmark.
pub fn reference_bisimulation(g: &LabeledGraph) -> BisimPartition {
    let init = |v: NodeId| (g.label(v), BisimRank::Finite(0));
    refine_to_fixpoint(g, init)
}

/// Runs the signature-refinement fixpoint from an initial block assignment
/// given by `seed` (which must be coarser than the maximum bisimulation).
fn refine_to_fixpoint<F>(g: &LabeledGraph, seed: F) -> BisimPartition
where
    F: Fn(NodeId) -> (Label, BisimRank),
{
    let n = g.node_count();
    let mut block: Vec<u32> = vec![0; n];
    // Seed blocks.
    {
        let mut key_to_block: HashMap<(Label, BisimRank), u32> = HashMap::new();
        for v in g.nodes() {
            let key = seed(v);
            let next = key_to_block.len() as u32;
            let id = *key_to_block.entry(key).or_insert(next);
            block[v.index()] = id;
        }
    }

    // Refine until stable: the signature of a node is (its current block,
    // the sorted deduplicated set of its children's blocks).
    loop {
        let mut key_to_block: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
        let mut new_block = vec![0u32; n];
        let mut changed = false;
        for v in g.nodes() {
            let mut succ: Vec<u32> = g
                .out_neighbors(v)
                .iter()
                .map(|&w| block[w.index()])
                .collect();
            succ.sort_unstable();
            succ.dedup();
            let key = (block[v.index()], succ);
            let next = key_to_block.len() as u32;
            let id = *key_to_block.entry(key).or_insert(next);
            new_block[v.index()] = id;
        }
        // Count blocks before/after to detect stabilization.
        let old_count = count_distinct(&block);
        let new_count = key_to_block.len();
        if new_count != old_count {
            changed = true;
        }
        block = new_block;
        if !changed {
            break;
        }
    }

    // Densify ids in first-seen order and collect members.
    let mut remap: HashMap<u32, u32> = HashMap::new();
    let mut class_of = vec![0u32; n];
    let mut members: Vec<Vec<NodeId>> = Vec::new();
    let mut labels: Vec<Label> = Vec::new();
    for v in g.nodes() {
        let id = *remap.entry(block[v.index()]).or_insert_with(|| {
            members.push(Vec::new());
            labels.push(g.label(v));
            (members.len() - 1) as u32
        });
        class_of[v.index()] = id;
        members[id as usize].push(v);
    }
    BisimPartition {
        class_of,
        members,
        labels,
    }
}

fn count_distinct(block: &[u32]) -> usize {
    let mut seen: Vec<bool> = vec![false; block.len().max(1)];
    let mut count = 0;
    for &b in block {
        let b = b as usize;
        if b >= seen.len() {
            seen.resize(b + 1, false);
        }
        if !seen[b] {
            seen[b] = true;
            count += 1;
        }
    }
    count
}

/// A pairwise oracle for bisimilarity used in tests: checks the definition
/// directly by a coinductive fixpoint over candidate pairs (O(n²·m), only
/// for tiny graphs).
pub fn naive_bisimilar(g: &LabeledGraph, a: NodeId, b: NodeId) -> bool {
    let n = g.node_count();
    // related[u][v] starts true iff labels agree, then is refined.
    let mut related = vec![vec![false; n]; n];
    for u in g.nodes() {
        for v in g.nodes() {
            related[u.index()][v.index()] = g.label(u) == g.label(v);
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for u in g.nodes() {
            for v in g.nodes() {
                if !related[u.index()][v.index()] {
                    continue;
                }
                let forward = g.out_neighbors(u).iter().all(|&uc| {
                    g.out_neighbors(v)
                        .iter()
                        .any(|&vc| related[uc.index()][vc.index()])
                });
                let backward = g.out_neighbors(v).iter().all(|&vc| {
                    g.out_neighbors(u)
                        .iter()
                        .any(|&uc| related[uc.index()][vc.index()])
                });
                if !(forward && backward) {
                    related[u.index()][v.index()] = false;
                    changed = true;
                }
            }
        }
    }
    related[a.index()][b.index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn graph(labels: &[&str], edges: &[(u32, u32)]) -> LabeledGraph {
        let mut g = LabeledGraph::new();
        for l in labels {
            g.add_node_with_label(l);
        }
        for &(u, v) in edges {
            g.add_edge(NodeId(u), NodeId(v));
        }
        g
    }

    #[test]
    fn leaves_with_same_label_are_bisimilar() {
        let g = graph(&["A", "B", "B"], &[(0, 1), (0, 2)]);
        let p = bisimulation_partition(&g);
        assert!(p.bisimilar(NodeId(1), NodeId(2)));
        assert_eq!(p.class_count(), 2);
    }

    #[test]
    fn different_labels_never_bisimilar() {
        let g = graph(&["A", "B"], &[]);
        let p = bisimulation_partition(&g);
        assert!(!p.bisimilar(NodeId(0), NodeId(1)));
    }

    #[test]
    fn paper_fig6_g1_a_nodes_not_bisimilar() {
        // Fig. 6, G1: A1 -> B1 -> C, A2 -> {B2 -> C, B3 -> D}, A3 -> B4 -> D.
        // None of the A nodes are bisimilar to each other.
        let g = graph(
            &["A", "A", "A", "B", "B", "B", "B", "C", "D"],
            &[
                (0, 3), // A1 -> B1
                (3, 7), // B1 -> C
                (1, 4), // A2 -> B2
                (1, 5), // A2 -> B3
                (4, 7), // B2 -> C
                (5, 8), // B3 -> D
                (2, 6), // A3 -> B4
                (6, 8), // B4 -> D
            ],
        );
        let p = bisimulation_partition(&g);
        assert!(!p.bisimilar(NodeId(0), NodeId(1)));
        assert!(!p.bisimilar(NodeId(0), NodeId(2)));
        assert!(!p.bisimilar(NodeId(1), NodeId(2)));
        // B1 and B2 are bisimilar (both lead only to C); B3 and B4 likewise.
        assert!(p.bisimilar(NodeId(3), NodeId(4)));
        assert!(p.bisimilar(NodeId(5), NodeId(6)));
        assert!(!p.bisimilar(NodeId(3), NodeId(5)));
    }

    #[test]
    fn paper_fig6_g2_a5_a6_bisimilar() {
        // Fig. 6, G2 (spirit): A4 -> B5 -> C5, A5 -> B6 -> C6, A6 -> B7 -> C7,
        // where A4 additionally reaches a D node, making it non-bisimilar to
        // A5/A6 while still being reachability-comparable.
        let g = graph(
            &["A", "A", "A", "B", "B", "B", "C", "C", "C", "D"],
            &[
                (0, 3),
                (3, 6),
                (3, 9), // A4's B child also points to D
                (1, 4),
                (4, 7),
                (2, 5),
                (5, 8),
            ],
        );
        let p = bisimulation_partition(&g);
        assert!(p.bisimilar(NodeId(1), NodeId(2)));
        assert!(!p.bisimilar(NodeId(0), NodeId(1)));
    }

    #[test]
    fn cycles_of_same_label_are_bisimilar() {
        // Two disjoint self-reinforcing cycles with the same label are
        // bisimilar; a chain with the same label is not bisimilar to them.
        let g = graph(
            &["X", "X", "X", "X", "X"],
            &[(0, 1), (1, 0), (2, 3), (3, 2), (4, 4)],
        );
        let p = bisimulation_partition(&g);
        assert!(p.bisimilar(NodeId(0), NodeId(1)));
        assert!(p.bisimilar(NodeId(0), NodeId(2)));
        assert!(p.bisimilar(NodeId(0), NodeId(4))); // self loop simulates the 2-cycle
    }

    #[test]
    fn chain_vs_cycle_not_bisimilar() {
        let g = graph(&["X", "X", "X"], &[(0, 1), (2, 2)]);
        let p = bisimulation_partition(&g);
        // Node 0 has a child that is a leaf; node 2's children all loop.
        assert!(!p.bisimilar(NodeId(0), NodeId(2)));
        assert!(!p.bisimilar(NodeId(1), NodeId(2)));
    }

    #[test]
    fn rank_stratified_matches_reference() {
        let mut rng = StdRng::seed_from_u64(11);
        let alphabet = ["A", "B", "C"];
        for _ in 0..25 {
            let n = rng.gen_range(2..20);
            let mut g = LabeledGraph::new();
            for _ in 0..n {
                g.add_node_with_label(alphabet[rng.gen_range(0..alphabet.len())]);
            }
            let m = rng.gen_range(0..n * 3);
            for _ in 0..m {
                let u = rng.gen_range(0..n) as u32;
                let v = rng.gen_range(0..n) as u32;
                g.add_edge(NodeId(u), NodeId(v));
            }
            let a = bisimulation_partition(&g);
            let b = reference_bisimulation(&g);
            assert_eq!(a.canonical(), b.canonical());
        }
    }

    #[test]
    fn matches_naive_pairwise_oracle() {
        let mut rng = StdRng::seed_from_u64(3);
        let alphabet = ["A", "B"];
        for _ in 0..15 {
            let n = rng.gen_range(2..9);
            let mut g = LabeledGraph::new();
            for _ in 0..n {
                g.add_node_with_label(alphabet[rng.gen_range(0..alphabet.len())]);
            }
            let m = rng.gen_range(0..n * 2);
            for _ in 0..m {
                let u = rng.gen_range(0..n) as u32;
                let v = rng.gen_range(0..n) as u32;
                g.add_edge(NodeId(u), NodeId(v));
            }
            let p = bisimulation_partition(&g);
            for u in g.nodes() {
                for v in g.nodes() {
                    assert_eq!(
                        p.bisimilar(u, v),
                        naive_bisimilar(&g, u, v),
                        "bisimilarity mismatch for ({u}, {v})"
                    );
                }
            }
        }
    }

    #[test]
    fn partition_labels_are_consistent() {
        let g = graph(&["A", "B", "B", "A"], &[(0, 1), (3, 2)]);
        let p = bisimulation_partition(&g);
        for (c, members) in p.members.iter().enumerate() {
            for &m in members {
                assert_eq!(g.label(m), p.labels[c]);
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = LabeledGraph::new();
        let p = bisimulation_partition(&g);
        assert_eq!(p.class_count(), 0);
    }

    #[test]
    fn canonical_is_stable() {
        let g = graph(&["A", "B", "B"], &[(0, 1), (0, 2)]);
        let p1 = bisimulation_partition(&g);
        let p2 = bisimulation_partition(&g);
        assert_eq!(p1.canonical(), p2.canonical());
    }
}
