//! The maximum bisimulation relation `Rb` (Section 4.1).
//!
//! A bisimulation on `G = (V, E, L)` is a relation `B` such that `(u, v) ∈
//! B` implies `L(u) = L(v)`, every child of `u` is matched by a child of `v`
//! that is again related by `B`, and vice versa. The *maximum* bisimulation
//! is an equivalence relation (Lemma 5); its quotient is what `compressB`
//! outputs.
//!
//! ## Algorithm
//!
//! We compute the coarsest stable partition by signature refinement,
//! stratified by bisimulation rank in the style of
//! Dovier–Piazza–Policriti (CAV 2001):
//!
//! 1. the initial partition groups nodes by `(label, rank rb)` — valid
//!    because bisimilar nodes share both (Lemma 9);
//! 2. the partition is repeatedly refined by splitting blocks whose members
//!    have different *signatures*, where the signature of a node is the set
//!    of blocks its children currently belong to;
//! 3. a fixpoint of this refinement is exactly the maximum bisimulation.
//!
//! ## Hot-path implementation
//!
//! [`bisimulation_partition_csr`] runs the refinement over a frozen
//! [`CsrGraph`] with **no per-node heap allocation inside the loop**:
//!
//! * signatures are summarized by an order-independent 128-bit fingerprint
//!   of the deduplicated child-block set (epoch-marked, one `O(deg)` scan —
//!   no `Vec<u32>` per node, no sorting, no `HashMap<(u32, Vec<u32>), u32>`
//!   rebuilt per round);
//! * block ids are *stable* — a split keeps the largest fragment under the
//!   old id and moves the rest to fresh ids — so a node's signature only
//!   changes when one of its children moves, and a **worklist** (parents of
//!   moved nodes) drives the next round. When a round produces no split the
//!   worklist is empty and the loop exits immediately: the full extra
//!   "confirm stabilization" signature pass of the baseline implementation
//!   disappears;
//! * singleton blocks can never split, so their members are skipped
//!   entirely.
//!
//! Two same-block nodes only ever compare fingerprints computed against the
//! same partition state (bisimilar nodes are dirtied together), so the
//! comparison is exact up to a 128-bit fingerprint collision —
//! `≈ b²/2¹²⁸` for block size `b`, which is far below memory-error rates.
//!
//! The pre-CSR per-round implementation is kept as
//! [`bisimulation_partition_baseline`] (rank-seeded) and
//! [`reference_bisimulation`] (label-seeded) for differential testing and
//! the ablation benchmark.

use std::collections::HashMap;

use qpgc_graph::rank::{bisim_ranks, BisimRank};
use qpgc_graph::scc::Condensation;
use qpgc_graph::{CsrGraph, Label, LabeledGraph, NodeId};

/// The partition of `V` induced by the maximum bisimulation.
#[derive(Clone, Debug)]
pub struct BisimPartition {
    /// `class_of[v]` — block id of node `v`; ids are dense `0..class_count`.
    pub class_of: Vec<u32>,
    /// Members of each block, ascending node order.
    pub members: Vec<Vec<NodeId>>,
    /// The (shared) label of each block.
    pub labels: Vec<Label>,
}

impl BisimPartition {
    /// Number of equivalence classes.
    pub fn class_count(&self) -> usize {
        self.members.len()
    }

    /// The class id of node `v`.
    pub fn class_of(&self, v: NodeId) -> u32 {
        self.class_of[v.index()]
    }

    /// `true` iff `u` and `v` are bisimilar.
    pub fn bisimilar(&self, u: NodeId, v: NodeId) -> bool {
        self.class_of(u) == self.class_of(v)
    }

    /// Approximate heap footprint in bytes (node index, member lists, block
    /// labels), following the capacity-based convention of
    /// [`LabeledGraph::heap_bytes`](qpgc_graph::LabeledGraph::heap_bytes).
    pub fn heap_bytes(&self) -> usize {
        let node_id = std::mem::size_of::<NodeId>();
        let member_lists: usize = self
            .members
            .iter()
            .map(|m| m.capacity() * node_id + std::mem::size_of::<Vec<NodeId>>())
            .sum();
        self.class_of.capacity() * std::mem::size_of::<u32>()
            + member_lists
            + self.labels.capacity() * std::mem::size_of::<Label>()
    }

    /// Canonical form (sorted member lists sorted by first member) for
    /// comparisons in tests.
    pub fn canonical(&self) -> Vec<Vec<u32>> {
        let mut classes: Vec<Vec<u32>> = self
            .members
            .iter()
            .map(|m| {
                let mut v: Vec<u32> = m.iter().map(|n| n.0).collect();
                v.sort_unstable();
                v
            })
            .collect();
        classes.sort();
        classes
    }
}

/// Computes the maximum bisimulation partition of `g` (rank-stratified
/// signature refinement) by freezing a CSR snapshot and running
/// [`bisimulation_partition_csr`] on it.
pub fn bisimulation_partition(g: &LabeledGraph) -> BisimPartition {
    bisimulation_partition_csr(&g.freeze())
}

/// [`bisimulation_partition`] with an explicit worker count for the
/// fingerprint-refresh phase. The output is **bit-identical** to the
/// sequential path at every thread count — see
/// [`bisimulation_partition_csr_threads`].
pub fn bisimulation_partition_threads(g: &LabeledGraph, threads: usize) -> BisimPartition {
    bisimulation_partition_csr_threads(&g.freeze(), threads)
}

/// Computes the maximum bisimulation partition over a frozen CSR snapshot
/// with the allocation-free worklist refinement (see the module docs).
pub fn bisimulation_partition_csr(g: &CsrGraph) -> BisimPartition {
    bisimulation_partition_csr_threads(g, 1)
}

/// [`bisimulation_partition_csr`] with an explicit worker count.
///
/// `threads == 0` means "use the machine's available parallelism"; any
/// value is clamped to the round's worklist size. Parallelism covers the
/// signature-fingerprint refresh (Phase 1): the worklist is partitioned
/// into contiguous chunks over the shared member arena and each
/// `std::thread::scope` worker computes fingerprints for its chunk with
/// private epoch-mark scratch. Fingerprints are pure functions of the
/// current block assignment, and the per-round merge (fingerprint scatter,
/// affected-block discovery, splitting, fresh-id assignment) replays the
/// worklist in its original order on one thread — so stable-id assignment
/// is **bit-identical** to the sequential path at every thread count. The
/// differential suites pin this.
pub fn bisimulation_partition_csr_threads(g: &CsrGraph, threads: usize) -> BisimPartition {
    let cond = Condensation::of(g);
    let ranks = bisim_ranks(g, &cond);
    refine_worklist(g, |v| (g.label(v), ranks.rank[v.index()]), threads)
}

/// SplitMix64-style finalizer used to build the set fingerprints.
#[inline]
fn mix64(x: u64, seed: u64) -> u64 {
    let mut z = x.wrapping_add(seed).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The order-independent 128-bit fingerprint of `v`'s deduplicated
/// child-block set under the current `block` assignment. Bumps `epoch` and
/// uses `mark` for the dedup scan; pure in `(g, block, v)`, which is what
/// makes the parallel Phase 1 bit-identical to the sequential one.
#[inline]
fn node_fingerprint(
    g: &CsrGraph,
    block: &[u32],
    v: u32,
    mark: &mut [u64],
    epoch: &mut u64,
) -> u128 {
    *epoch += 1;
    let e = *epoch;
    let mut h1 = 0u64;
    let mut h2 = 0u64;
    let mut distinct = 0u64;
    for &w in g.out_neighbors(NodeId(v)) {
        let wb = block[w.index()];
        let m = &mut mark[wb as usize];
        if *m != e {
            *m = e;
            h1 = h1.wrapping_add(mix64(wb as u64, 0xa076_1d64_78bd_642f));
            h2 = h2.wrapping_add(mix64(wb as u64, 0xe703_7ed1_a0b4_28db));
            distinct += 1;
        }
    }
    h1 ^= mix64(distinct, 0x8ebc_6af0_9c88_c6e3);
    h2 ^= mix64(distinct, 0x5899_65cc_7537_4cc3);
    ((h1 as u128) << 64) | h2 as u128
}

/// Rounds with fewer dirty nodes than this run Phase 1 sequentially even
/// when workers are available — thread spawn/join overhead dominates below
/// it. Has no effect on the output (only on who computes each fingerprint).
const PARALLEL_WORK_MIN: usize = 1024;

/// Worklist signature refinement from an initial block assignment given by
/// `seed` (which must be coarser than the maximum bisimulation).
fn refine_worklist<F>(g: &CsrGraph, seed: F, threads: usize) -> BisimPartition
where
    F: Fn(NodeId) -> (Label, BisimRank),
{
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let n = g.node_count();
    let mut block: Vec<u32> = vec![0; n];
    // Block membership lives in one shared arena: `arena` is a permutation
    // of the node ids and `range[b]` is the contiguous `(start, len)` span
    // of block `b`'s members. A split sorts the span in place and carves it
    // into sub-spans — no member is ever copied and no per-block `Vec` is
    // ever allocated.
    let mut range: Vec<(u32, u32)> = Vec::new();
    {
        // Seed blocks (the only HashMap with composite keys; runs once).
        let mut key_to_block: HashMap<(Label, BisimRank), u32> = HashMap::new();
        for v in g.nodes() {
            let next = range.len() as u32;
            let id = *key_to_block.entry(seed(v)).or_insert_with(|| {
                range.push((0, 0));
                next
            });
            block[v.index()] = id;
            range[id as usize].1 += 1;
        }
    }
    let seed_blocks = range.len();
    let mut arena: Vec<u32> = vec![0; n];
    {
        // Counting scatter of nodes into their seed block's span.
        let mut start = 0u32;
        for r in range.iter_mut() {
            r.0 = start;
            start += r.1;
        }
        let mut cursor: Vec<u32> = range.iter().map(|r| r.0).collect();
        for (v, &b) in block.iter().enumerate() {
            arena[cursor[b as usize] as usize] = v as u32;
            cursor[b as usize] += 1;
        }
    }

    // All buffers below are allocated once and reused every round.
    let mut fp: Vec<u128> = vec![0; n];
    let mut dirty: Vec<bool> = vec![true; n];
    let mut work: Vec<u32> = (0..n as u32).collect();
    let mut block_affected: Vec<bool> = vec![false; seed_blocks];
    let mut affected: Vec<u32> = Vec::new();
    let mut runs: Vec<(u32, u32)> = Vec::new();
    // Epoch-marked deduplication of child blocks: `mark[b] == epoch` means
    // block b was already folded into the current node's fingerprint. Block
    // ids never exceed n, so one n-sized array serves every round.
    let mut mark: Vec<u64> = vec![0; n.max(1)];
    let mut epoch: u64 = 0;
    // Per-worker epoch-mark scratch for the parallel Phase 1, allocated on
    // the first parallel round and reused afterwards.
    let mut worker_scratch: Vec<(Vec<u64>, u64)> = Vec::new();

    while !work.is_empty() {
        // Phase 1: refresh the fingerprints of dirty nodes. Nodes in
        // singleton blocks are skipped — a singleton can never split. The
        // fingerprint is an order-independent 128-bit sum over the *set* of
        // child blocks (duplicates dropped via the epoch marks), so it needs
        // one O(deg) scan — no sorting, no scratch list.
        if threads > 1 && work.len() >= PARALLEL_WORK_MIN {
            // Partition the worklist into contiguous chunks; each worker
            // computes fingerprints for its chunk against the (read-only)
            // block assignment. The scatter below and the affected-block
            // sweep replay `work` in original order, so the merged state is
            // bit-identical to the sequential branch.
            while worker_scratch.len() < threads {
                worker_scratch.push((vec![0u64; n.max(1)], 0u64));
            }
            let chunk = work.len().div_ceil(threads);
            let block_ref: &[u32] = &block;
            let range_ref: &[(u32, u32)] = &range;
            let computed: Vec<Vec<(u32, u128)>> = std::thread::scope(|s| {
                let handles: Vec<_> = work
                    .chunks(chunk)
                    .zip(worker_scratch.iter_mut())
                    .map(|(slice, (mark, epoch))| {
                        s.spawn(move || {
                            let mut out: Vec<(u32, u128)> = Vec::with_capacity(slice.len());
                            for &v in slice {
                                if range_ref[block_ref[v as usize] as usize].1 <= 1 {
                                    continue;
                                }
                                out.push((v, node_fingerprint(g, block_ref, v, mark, epoch)));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("refinement worker panicked"))
                    .collect()
            });
            for part in &computed {
                for &(v, f) in part {
                    fp[v as usize] = f;
                }
            }
            for &v in &work {
                dirty[v as usize] = false;
                let b = block[v as usize];
                if range[b as usize].1 <= 1 {
                    continue;
                }
                if !block_affected[b as usize] {
                    block_affected[b as usize] = true;
                    affected.push(b);
                }
            }
        } else {
            for &v in &work {
                dirty[v as usize] = false;
                let b = block[v as usize];
                if range[b as usize].1 <= 1 {
                    continue;
                }
                fp[v as usize] = node_fingerprint(g, &block, v, &mut mark, &mut epoch);
                if !block_affected[b as usize] {
                    block_affected[b as usize] = true;
                    affected.push(b);
                }
            }
        }
        work.clear();

        // Phase 2: split every affected block by fingerprint. The largest
        // fragment keeps the block id (fewest parents dirtied); the rest
        // move to fresh ids.
        let first_new_block = range.len();
        for &b in &affected {
            block_affected[b as usize] = false;
            let (start, len) = range[b as usize];
            let span = &mut arena[start as usize..(start + len) as usize];
            // Linear uniformity pre-scan: most affected blocks turn out not
            // to split, and a scan is much cheaper than the sort below.
            if len <= 1
                || span[1..]
                    .iter()
                    .all(|&v| fp[v as usize] == fp[span[0] as usize])
            {
                continue;
            }
            span.sort_unstable_by_key(|&v| fp[v as usize]);
            runs.clear();
            let mut run_start = 0u32;
            for i in 1..=len {
                if i == len
                    || fp[span[i as usize] as usize] != fp[span[run_start as usize] as usize]
                {
                    runs.push((run_start, i));
                    run_start = i;
                }
            }
            let largest = runs
                .iter()
                .enumerate()
                .max_by_key(|(_, r)| r.1 - r.0)
                .map(|(i, _)| i)
                .expect("non-empty runs");
            for (ri, &(rs, re)) in runs.iter().enumerate() {
                if ri == largest {
                    range[b as usize] = (start + rs, re - rs);
                    continue;
                }
                let id = range.len() as u32;
                range.push((start + rs, re - rs));
                block_affected.push(false);
                for i in rs..re {
                    block[arena[(start + i) as usize] as usize] = id;
                }
            }
        }
        affected.clear();

        // Phase 3: a node's signature only depends on its children's block
        // ids, so exactly the parents of moved nodes — the members of the
        // blocks created this round — need re-examination. Runs after every
        // split so the singleton check sees final block sizes.
        for nb in first_new_block..range.len() {
            let (start, len) = range[nb];
            for i in 0..len {
                let v = arena[(start + i) as usize];
                for &p in g.in_neighbors(NodeId(v)) {
                    if !dirty[p.index()] && range[block[p.index()] as usize].1 > 1 {
                        dirty[p.index()] = true;
                        work.push(p.0);
                    }
                }
            }
        }
    }

    densify(g.labels(), &block)
}

/// Densifies stable block ids into first-seen order and collects members —
/// shared by the worklist and baseline paths.
fn densify(node_labels: &[Label], block: &[u32]) -> BisimPartition {
    let n = block.len();
    // Block ids are always < n, so a flat vector serves as the remap table.
    let mut remap: Vec<u32> = vec![u32::MAX; n.max(1)];
    let mut class_of = vec![0u32; n];
    let mut members: Vec<Vec<NodeId>> = Vec::new();
    let mut labels: Vec<Label> = Vec::new();
    for v in 0..n {
        let slot = &mut remap[block[v] as usize];
        if *slot == u32::MAX {
            *slot = members.len() as u32;
            members.push(Vec::new());
            labels.push(node_labels[v]);
        }
        let id = *slot;
        class_of[v] = id;
        members[id as usize].push(NodeId(v as u32));
    }
    BisimPartition {
        class_of,
        members,
        labels,
    }
}

/// The pre-CSR implementation (per-round `HashMap<(u32, Vec<u32>), u32>`
/// signature table, rank-seeded), retained as the differential-testing
/// oracle and the perf baseline the `BENCH_2.json` harness measures the CSR
/// path against.
pub fn bisimulation_partition_baseline(g: &LabeledGraph) -> BisimPartition {
    let cond = Condensation::of(g);
    let ranks = bisim_ranks(g, &cond);
    refine_to_fixpoint(g, |v| (g.label(v), ranks.rank[v.index()]))
}

/// A reference implementation seeded only by labels (no rank
/// stratification); used in tests and the ablation benchmark.
pub fn reference_bisimulation(g: &LabeledGraph) -> BisimPartition {
    refine_to_fixpoint(g, |v| (g.label(v), BisimRank::Finite(0)))
}

/// Runs the per-round hash-table signature-refinement fixpoint from an
/// initial block assignment given by `seed`. The block count is carried
/// between rounds (the old implementation rescanned the whole block vector
/// with a `count_distinct` pass every round).
fn refine_to_fixpoint<F>(g: &LabeledGraph, seed: F) -> BisimPartition
where
    F: Fn(NodeId) -> (Label, BisimRank),
{
    let n = g.node_count();
    let mut block: Vec<u32> = vec![0; n];
    let mut block_count;
    {
        let mut key_to_block: HashMap<(Label, BisimRank), u32> = HashMap::new();
        for v in g.nodes() {
            let key = seed(v);
            let next = key_to_block.len() as u32;
            let id = *key_to_block.entry(key).or_insert(next);
            block[v.index()] = id;
        }
        block_count = key_to_block.len();
    }

    // Refine until stable: the signature of a node is (its current block,
    // the sorted deduplicated set of its children's blocks). Splitting can
    // only increase the block count, so an unchanged count means fixpoint.
    loop {
        let mut key_to_block: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
        let mut new_block = vec![0u32; n];
        for v in g.nodes() {
            let mut succ: Vec<u32> = g
                .out_neighbors(v)
                .iter()
                .map(|&w| block[w.index()])
                .collect();
            succ.sort_unstable();
            succ.dedup();
            let key = (block[v.index()], succ);
            let next = key_to_block.len() as u32;
            let id = *key_to_block.entry(key).or_insert(next);
            new_block[v.index()] = id;
        }
        let new_count = key_to_block.len();
        block = new_block;
        if new_count == block_count {
            break;
        }
        block_count = new_count;
    }

    densify(g.labels(), &block)
}

/// A pairwise oracle for bisimilarity used in tests: checks the definition
/// directly by a coinductive fixpoint over candidate pairs (O(n²·m), only
/// for tiny graphs).
pub fn naive_bisimilar(g: &LabeledGraph, a: NodeId, b: NodeId) -> bool {
    let n = g.node_count();
    // related[u][v] starts true iff labels agree, then is refined.
    let mut related = vec![vec![false; n]; n];
    for u in g.nodes() {
        for v in g.nodes() {
            related[u.index()][v.index()] = g.label(u) == g.label(v);
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for u in g.nodes() {
            for v in g.nodes() {
                if !related[u.index()][v.index()] {
                    continue;
                }
                let forward = g.out_neighbors(u).iter().all(|&uc| {
                    g.out_neighbors(v)
                        .iter()
                        .any(|&vc| related[uc.index()][vc.index()])
                });
                let backward = g.out_neighbors(v).iter().all(|&vc| {
                    g.out_neighbors(u)
                        .iter()
                        .any(|&uc| related[uc.index()][vc.index()])
                });
                if !(forward && backward) {
                    related[u.index()][v.index()] = false;
                    changed = true;
                }
            }
        }
    }
    related[a.index()][b.index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn graph(labels: &[&str], edges: &[(u32, u32)]) -> LabeledGraph {
        let mut g = LabeledGraph::new();
        for l in labels {
            g.add_node_with_label(l);
        }
        for &(u, v) in edges {
            g.add_edge(NodeId(u), NodeId(v));
        }
        g
    }

    #[test]
    fn leaves_with_same_label_are_bisimilar() {
        let g = graph(&["A", "B", "B"], &[(0, 1), (0, 2)]);
        let p = bisimulation_partition(&g);
        assert!(p.bisimilar(NodeId(1), NodeId(2)));
        assert_eq!(p.class_count(), 2);
    }

    #[test]
    fn different_labels_never_bisimilar() {
        let g = graph(&["A", "B"], &[]);
        let p = bisimulation_partition(&g);
        assert!(!p.bisimilar(NodeId(0), NodeId(1)));
    }

    #[test]
    fn paper_fig6_g1_a_nodes_not_bisimilar() {
        // Fig. 6, G1: A1 -> B1 -> C, A2 -> {B2 -> C, B3 -> D}, A3 -> B4 -> D.
        // None of the A nodes are bisimilar to each other.
        let g = graph(
            &["A", "A", "A", "B", "B", "B", "B", "C", "D"],
            &[
                (0, 3), // A1 -> B1
                (3, 7), // B1 -> C
                (1, 4), // A2 -> B2
                (1, 5), // A2 -> B3
                (4, 7), // B2 -> C
                (5, 8), // B3 -> D
                (2, 6), // A3 -> B4
                (6, 8), // B4 -> D
            ],
        );
        let p = bisimulation_partition(&g);
        assert!(!p.bisimilar(NodeId(0), NodeId(1)));
        assert!(!p.bisimilar(NodeId(0), NodeId(2)));
        assert!(!p.bisimilar(NodeId(1), NodeId(2)));
        // B1 and B2 are bisimilar (both lead only to C); B3 and B4 likewise.
        assert!(p.bisimilar(NodeId(3), NodeId(4)));
        assert!(p.bisimilar(NodeId(5), NodeId(6)));
        assert!(!p.bisimilar(NodeId(3), NodeId(5)));
    }

    #[test]
    fn paper_fig6_g2_a5_a6_bisimilar() {
        // Fig. 6, G2 (spirit): A4 -> B5 -> C5, A5 -> B6 -> C6, A6 -> B7 -> C7,
        // where A4 additionally reaches a D node, making it non-bisimilar to
        // A5/A6 while still being reachability-comparable.
        let g = graph(
            &["A", "A", "A", "B", "B", "B", "C", "C", "C", "D"],
            &[
                (0, 3),
                (3, 6),
                (3, 9), // A4's B child also points to D
                (1, 4),
                (4, 7),
                (2, 5),
                (5, 8),
            ],
        );
        let p = bisimulation_partition(&g);
        assert!(p.bisimilar(NodeId(1), NodeId(2)));
        assert!(!p.bisimilar(NodeId(0), NodeId(1)));
    }

    #[test]
    fn cycles_of_same_label_are_bisimilar() {
        // Two disjoint self-reinforcing cycles with the same label are
        // bisimilar; a chain with the same label is not bisimilar to them.
        let g = graph(
            &["X", "X", "X", "X", "X"],
            &[(0, 1), (1, 0), (2, 3), (3, 2), (4, 4)],
        );
        let p = bisimulation_partition(&g);
        assert!(p.bisimilar(NodeId(0), NodeId(1)));
        assert!(p.bisimilar(NodeId(0), NodeId(2)));
        assert!(p.bisimilar(NodeId(0), NodeId(4))); // self loop simulates the 2-cycle
    }

    #[test]
    fn chain_vs_cycle_not_bisimilar() {
        let g = graph(&["X", "X", "X"], &[(0, 1), (2, 2)]);
        let p = bisimulation_partition(&g);
        // Node 0 has a child that is a leaf; node 2's children all loop.
        assert!(!p.bisimilar(NodeId(0), NodeId(2)));
        assert!(!p.bisimilar(NodeId(1), NodeId(2)));
    }

    fn random_labeled(rng: &mut StdRng, n_max: usize, alphabet: &[&str]) -> LabeledGraph {
        let n = rng.gen_range(2..n_max);
        let mut g = LabeledGraph::new();
        for _ in 0..n {
            g.add_node_with_label(alphabet[rng.gen_range(0..alphabet.len())]);
        }
        let m = rng.gen_range(0..n * 3);
        for _ in 0..m {
            let u = rng.gen_range(0..n) as u32;
            let v = rng.gen_range(0..n) as u32;
            g.add_edge(NodeId(u), NodeId(v));
        }
        g
    }

    #[test]
    fn rank_stratified_matches_reference() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..25 {
            let g = random_labeled(&mut rng, 20, &["A", "B", "C"]);
            let a = bisimulation_partition(&g);
            let b = reference_bisimulation(&g);
            assert_eq!(a.canonical(), b.canonical());
        }
    }

    #[test]
    fn worklist_csr_matches_baseline() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..40 {
            let g = random_labeled(&mut rng, 40, &["A", "B", "C", "D"]);
            let fast = bisimulation_partition_csr(&g.freeze());
            let slow = bisimulation_partition_baseline(&g);
            assert_eq!(fast.canonical(), slow.canonical());
        }
    }

    #[test]
    fn matches_naive_pairwise_oracle() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..15 {
            let g = random_labeled(&mut rng, 9, &["A", "B"]);
            let p = bisimulation_partition(&g);
            for u in g.nodes() {
                for v in g.nodes() {
                    assert_eq!(
                        p.bisimilar(u, v),
                        naive_bisimilar(&g, u, v),
                        "bisimilarity mismatch for ({u}, {v})"
                    );
                }
            }
        }
    }

    #[test]
    fn partition_labels_are_consistent() {
        let g = graph(&["A", "B", "B", "A"], &[(0, 1), (3, 2)]);
        let p = bisimulation_partition(&g);
        for (c, members) in p.members.iter().enumerate() {
            for &m in members {
                assert_eq!(g.label(m), p.labels[c]);
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = LabeledGraph::new();
        let p = bisimulation_partition(&g);
        assert_eq!(p.class_count(), 0);
        let b = bisimulation_partition_baseline(&g);
        assert_eq!(b.class_count(), 0);
    }

    #[test]
    fn parallel_refinement_is_bit_identical_to_sequential() {
        // Large enough that the first rounds exceed PARALLEL_WORK_MIN, so
        // the scoped-worker Phase 1 actually runs. Equality is on the raw
        // id assignment, not the canonical form — stable ids must match.
        let mut rng = StdRng::seed_from_u64(2026);
        for _ in 0..3 {
            let alphabet = ["A", "B", "C", "D"];
            let n = 2048 + rng.gen_range(0..512);
            let mut g = LabeledGraph::new();
            for _ in 0..n {
                g.add_node_with_label(alphabet[rng.gen_range(0..alphabet.len())]);
            }
            for _ in 0..n * 3 {
                let u = rng.gen_range(0..n) as u32;
                let v = rng.gen_range(0..n) as u32;
                g.add_edge(NodeId(u), NodeId(v));
            }
            let csr = g.freeze();
            let sequential = bisimulation_partition_csr(&csr);
            for threads in [2, 4] {
                let parallel = bisimulation_partition_csr_threads(&csr, threads);
                assert_eq!(sequential.class_of, parallel.class_of, "threads={threads}");
                assert_eq!(sequential.members, parallel.members, "threads={threads}");
                assert_eq!(sequential.labels, parallel.labels, "threads={threads}");
            }
        }
    }

    #[test]
    fn canonical_is_stable() {
        let g = graph(&["A", "B", "B"], &[(0, 1), (0, 2)]);
        let p1 = bisimulation_partition(&g);
        let p2 = bisimulation_partition(&g);
        assert_eq!(p1.canonical(), p2.canonical());
    }
}
