//! `incPCM` — incremental maintenance of the pattern-preserving compression
//! (Section 5.2, Fig. 10) — and the `IncBsim` baseline.
//!
//! Given the bisimulation quotient of `G` and a batch `ΔG` of edge updates,
//! the maintained state is updated to the quotient of `G ⊕ ΔG` without
//! recompressing and without traversing the unaffected part of `G`.
//!
//! ## Algorithm
//!
//! As with the reachability case, the paper's `bSplit`/`bMerge`/`PT`
//! procedures are realized as an *affected-region localized recomputation*
//! (DESIGN.md §2):
//!
//! 1. **Affected classes.** Bisimilarity of a node depends only on its
//!    label and the behaviour of its descendants, so an edge update
//!    `(u, w)` can only change the class of nodes that reach `u`, i.e. the
//!    ancestor cone of `[u]` in the compressed graph (Lemma 9's rank
//!    argument is the same observation phrased through `rb`). The union of
//!    those cones over the batch is `AFF`.
//! 2. **Hybrid graph.** Explode the affected classes into their member
//!    nodes; keep every unaffected class as a single *atom* labelled with
//!    the class label, connected by the maintained class-level edges
//!    (including self loops). The mapping "unaffected node ↦ its atom,
//!    affected node ↦ itself" is a functional bisimulation from `G ⊕ ΔG`
//!    to this hybrid graph, so running the ordinary bisimulation partition
//!    on the hybrid graph yields exactly the new equivalence classes.
//! 3. **Patch.** Unchanged atoms keep their identity; every other group
//!    becomes a (re)built class, and the class-level edge counters incident
//!    to rebuilt classes are refreshed from the adjacency of their members.
//!
//! The cost depends on `|AFF|`, `|Gr|` and the edges incident to affected
//! members — never on `|G|` (the problem is unbounded, Theorem 8, so a
//! dependence on `|Gr|` is unavoidable in general).

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use qpgc_graph::ids::LabelInterner;
use qpgc_graph::update::{ClassBirth, PartitionDelta};
use qpgc_graph::{Label, LabeledGraph, NodeId, UpdateBatch};

use crate::bisim::{bisimulation_partition_threads, BisimPartition};
use crate::compress::PatternCompression;

/// The maintained pattern compression exported under **stable** class ids —
/// the bisimulation-side mirror of
/// `qpgc_reach::incremental::StableQuotient`.
///
/// Stable ids survive across updates for classes a batch's
/// [`PartitionDelta`] does not touch, which is what lets snapshot layers
/// *patch* their served pattern structure (see
/// [`PatternView`](crate::view::PatternView)) instead of re-materializing
/// [`PatternCompression`] every batch. Retired ids are inactive holes;
/// derived structures keep an isolated row for them.
#[derive(Clone, Debug)]
pub struct StablePatternQuotient {
    /// `class_of[v]` — stable class id of node `v` (always an active id).
    /// Empty in the light export
    /// ([`IncrementalPattern::stable_quotient_without_members`]), whose
    /// consumers patch the node index from the delta's births instead.
    pub class_of: Vec<u32>,
    /// Class label per stable id (stale for inactive ids).
    pub labels: Vec<Label>,
    /// Liveness per stable id.
    pub active: Vec<bool>,
    /// Member nodes per stable id, ascending (empty for inactive ids).
    /// Shared slices so consumers that keep per-class member rows (the
    /// served [`PatternView`](crate::view::PatternView)) adopt them with a
    /// reference bump instead of a second copy.
    pub members: Vec<Arc<[NodeId]>>,
    /// Distinct class-level edges of the quotient — the key set of the
    /// maintained quotient-edge counters, sorted by `(source, target)`
    /// stable id. Self entries `(c, c)` are included (they are the
    /// hypernode self loops induced by intra-class edges).
    pub edges: Vec<(u32, u32)>,
    /// Label names of the original graph, so views built from this export
    /// can resolve pattern queries written against the original label
    /// vocabulary. Fresh (empty) in the light export — patch consumers
    /// keep their own interner.
    pub interner: LabelInterner,
}

impl StablePatternQuotient {
    /// Size of the stable id space (`max id + 1`, holes included).
    pub fn id_space(&self) -> usize {
        self.active.len()
    }

    /// Number of live classes (`|Vr|`).
    pub fn class_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }
}

/// Statistics of one incremental maintenance step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncPatternStats {
    /// Updates that survived normalization.
    pub effective_updates: usize,
    /// Number of affected (exploded) classes.
    pub affected_classes: usize,
    /// Number of original nodes inside affected classes.
    pub affected_nodes: usize,
    /// Number of classes created or rewritten (a proxy for `|ΔGr|`).
    pub changed_classes: usize,
}

/// Incrementally maintained pattern-preserving compression.
#[derive(Clone, Debug)]
pub struct IncrementalPattern {
    class_of: Vec<u32>,
    members: Vec<Vec<NodeId>>,
    labels: Vec<Label>,
    active: Vec<bool>,
    free_ids: Vec<u32>,
    /// Directed counts of original edges between classes; self entries
    /// `(c, c)` count intra-class edges (they become hypernode self loops).
    q_edges: HashMap<(u32, u32), u32>,
    /// Label names of the original graph, kept so the materialized
    /// compressed graph can resolve pattern queries written by name.
    interner: LabelInterner,
    /// Worker count handed to the refinement kernel (`0` = available
    /// parallelism). Refinement output is bit-identical at every value.
    threads: usize,
}

impl IncrementalPattern {
    /// Builds the compression of `g` from scratch.
    pub fn new(g: &LabeledGraph) -> Self {
        Self::new_with_threads(g, 1)
    }

    /// [`IncrementalPattern::new`] with an explicit worker count for the
    /// refinement kernel, remembered for later recomputes. Stable-id
    /// assignment is bit-identical at every thread count (see
    /// [`bisimulation_partition_threads`]), so the differential guarantees
    /// are unchanged.
    pub fn new_with_threads(g: &LabeledGraph, threads: usize) -> Self {
        let partition = bisimulation_partition_threads(g, threads);
        let mut q_edges: HashMap<(u32, u32), u32> = HashMap::new();
        for (u, v) in g.edges() {
            let cu = partition.class_of(u);
            let cv = partition.class_of(v);
            *q_edges.entry((cu, cv)).or_insert(0) += 1;
        }
        let classes = partition.class_count();
        IncrementalPattern {
            class_of: partition.class_of,
            members: partition.members,
            labels: partition.labels,
            active: vec![true; classes],
            free_ids: Vec::new(),
            q_edges,
            interner: g.interner().clone(),
            threads,
        }
    }

    /// Number of active classes (`|Vr|`).
    pub fn class_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// The class id of node `v`.
    pub fn class_of(&self, v: NodeId) -> u32 {
        self.class_of[v.index()]
    }

    /// Applies the update batch: mutates `g` to `G ⊕ ΔG` and maintains the
    /// compressed state so that it equals `R(G ⊕ ΔG)`.
    pub fn apply(&mut self, g: &mut LabeledGraph, batch: &UpdateBatch) -> IncPatternStats {
        self.apply_with_delta(g, batch).0
    }

    /// [`IncrementalPattern::apply`] that also exports the structured
    /// [`PartitionDelta`] — retired stable class ids, created classes with
    /// member lists and origin provenance, and the id-space size. Bisimilar
    /// classes carry no cyclic flag, so [`ClassBirth::cyclic`] is always
    /// `false` here.
    pub fn apply_with_delta(
        &mut self,
        g: &mut LabeledGraph,
        batch: &UpdateBatch,
    ) -> (IncPatternStats, PartitionDelta) {
        let mut stats = IncPatternStats::default();
        let norm = batch.normalized(g);
        if norm.is_empty() {
            let delta = PartitionDelta {
                id_space: self.members.len(),
                ..PartitionDelta::default()
            };
            return (stats, delta);
        }
        stats.effective_updates = norm.len();

        // Affected classes: ancestor cones of the update sources' classes.
        let sources: HashSet<u32> = norm
            .updates()
            .iter()
            .map(|u| self.class_of(u.edge().0))
            .collect();
        let affected = self.ancestor_cone(&sources);
        stats.affected_classes = affected.len();
        // qpgc-lint: allow(deterministic-iteration) -- a commutative sum
        // over set members: any iteration order yields the same total.
        stats.affected_nodes = affected
            .iter()
            .map(|&c| self.members[c as usize].len())
            .sum();

        norm.apply_to(g);

        let delta = self.localized_recompute(g, &affected);
        stats.changed_classes = delta.added.len();
        (stats, delta)
    }

    /// Applies a batch one update at a time, re-running the incremental
    /// algorithm per unit update. This is the `IncBsim` baseline of
    /// Fig. 12(g): the single-update incremental bisimulation invoked
    /// repeatedly.
    pub fn apply_one_by_one(
        &mut self,
        g: &mut LabeledGraph,
        batch: &UpdateBatch,
    ) -> IncPatternStats {
        let mut total = IncPatternStats::default();
        for u in batch.updates() {
            let single = UpdateBatch::from_updates(vec![*u]);
            let s = self.apply(g, &single);
            total.effective_updates += s.effective_updates;
            total.affected_classes += s.affected_classes;
            total.affected_nodes += s.affected_nodes;
            total.changed_classes += s.changed_classes;
        }
        total
    }

    /// Classes that can reach any of `sources` over the class-level edges
    /// (including the sources themselves).
    fn ancestor_cone(&self, sources: &HashSet<u32>) -> HashSet<u32> {
        let mut radj: HashMap<u32, Vec<u32>> = HashMap::new();
        // qpgc-lint: allow(deterministic-iteration) -- the reverse
        // adjacency only drives the BFS below, whose result is the
        // `visited` *set*: the fixpoint is identical under any edge visit
        // order, and localized_recompute sorts the cone before any id is
        // handed out.
        for &(a, b) in self.q_edges.keys() {
            if a != b {
                radj.entry(b).or_default().push(a);
            }
        }
        let mut visited: HashSet<u32> = sources.clone();
        // qpgc-lint: allow(deterministic-iteration) -- seed order only
        // permutes the BFS schedule; the visited-set fixpoint it computes
        // is order-insensitive.
        let mut queue: VecDeque<u32> = sources.iter().copied().collect();
        while let Some(c) = queue.pop_front() {
            if let Some(parents) = radj.get(&c) {
                for &p in parents {
                    if visited.insert(p) {
                        queue.push_back(p);
                    }
                }
            }
        }
        visited
    }

    fn localized_recompute(&mut self, g: &LabeledGraph, affected: &HashSet<u32>) -> PartitionDelta {
        #[derive(Clone, Copy)]
        enum Unit {
            Atom(u32),
            Member(NodeId),
        }

        // ---- Build the hybrid graph. -------------------------------------
        let mut hybrid = LabeledGraph::new();
        let mut units: Vec<Unit> = Vec::new();
        let mut atom_of_class: HashMap<u32, NodeId> = HashMap::new();
        let mut hybrid_of_node: HashMap<NodeId, NodeId> = HashMap::new();

        for c in 0..self.members.len() as u32 {
            if !self.active[c as usize] || affected.contains(&c) {
                continue;
            }
            let h = hybrid.add_node(self.labels[c as usize]);
            units.push(Unit::Atom(c));
            atom_of_class.insert(c, h);
        }
        // Sorted iteration keeps hybrid node ids — and through them the
        // recycled stable ids — independent of hash-set iteration order
        // (same rationale as `IncrementalReach::localized_recompute`).
        let mut affected_sorted: Vec<u32> = affected.iter().copied().collect();
        affected_sorted.sort_unstable();
        let mut exploded: Vec<NodeId> = Vec::new();
        for &c in &affected_sorted {
            for &v in &self.members[c as usize] {
                let h = hybrid.add_node(g.label(v));
                units.push(Unit::Member(v));
                hybrid_of_node.insert(v, h);
                exploded.push(v);
            }
        }

        // Class-level edges between unaffected classes (self loops
        // included), iterated in sorted order: the hybrid adjacency feeds
        // the bisimulation recomputation that hands out stable ids, so its
        // construction must not depend on hash iteration order.
        let mut atom_edges: Vec<(u32, u32)> = self.q_edges.keys().copied().collect();
        atom_edges.sort_unstable();
        for &(a, b) in &atom_edges {
            if let (Some(&ha), Some(&hb)) = (atom_of_class.get(&a), atom_of_class.get(&b)) {
                hybrid.add_edge(ha, hb);
            }
        }
        // Out-edges of affected members from the (updated) data graph.
        // Bisimilarity only looks downward, and no unaffected class has an
        // edge into an affected one, so in-edges need no special handling.
        for &v in &exploded {
            let hv = hybrid_of_node[&v];
            for &w in g.out_neighbors(v) {
                let hw = match hybrid_of_node.get(&w) {
                    Some(&h) => h,
                    None => atom_of_class[&self.class_of(w)],
                };
                hybrid.add_edge(hv, hw);
            }
        }

        // ---- Recompute the bisimulation on the hybrid graph. -------------
        let part = bisimulation_partition_threads(&hybrid, self.threads);
        let mut groups: Vec<Vec<Unit>> = vec![Vec::new(); part.class_count()];
        for (i, &unit) in units.iter().enumerate() {
            groups[part.class_of(NodeId::new(i)) as usize].push(unit);
        }

        // ---- Patch the maintained state. ----------------------------------
        let mut retired: HashSet<u32> = affected.clone();
        for group in &groups {
            if group.len() == 1 {
                if let Unit::Atom(_) = group[0] {
                    continue;
                }
            }
            for unit in group {
                if let Unit::Atom(c) = unit {
                    retired.insert(*c);
                }
            }
        }

        // Pass A: collect member sets of changed groups before retiring ids,
        // recording origin provenance for the delta export.
        let mut pending: Vec<(Vec<NodeId>, Label, Vec<u32>)> = Vec::new();
        for (gi, group) in groups.iter().enumerate() {
            if group.len() == 1 {
                if let Unit::Atom(_) = group[0] {
                    continue;
                }
            }
            let mut member_nodes: Vec<NodeId> = Vec::new();
            let mut origins: Vec<u32> = Vec::new();
            for unit in group {
                match unit {
                    Unit::Member(v) => {
                        origins.push(self.class_of[v.index()]);
                        member_nodes.push(*v);
                    }
                    Unit::Atom(c) => {
                        origins.push(*c);
                        let old = std::mem::take(&mut self.members[*c as usize]);
                        member_nodes.extend(old);
                    }
                }
            }
            member_nodes.sort_unstable();
            origins.sort_unstable();
            origins.dedup();
            pending.push((member_nodes, part.labels[gi], origins));
        }

        // Pass B: retire changed classes and their class-level edges, in
        // sorted id order so the free-id stack is deterministic.
        self.q_edges
            .retain(|&(a, b), _| !retired.contains(&a) && !retired.contains(&b));
        let mut removed: Vec<u32> = retired.into_iter().collect();
        removed.sort_unstable();
        for &c in &removed {
            self.active[c as usize] = false;
            self.members[c as usize].clear();
            self.free_ids.push(c);
        }

        // Pass C: create the new classes.
        let mut new_ids: Vec<u32> = Vec::new();
        let mut births: Vec<ClassBirth> = Vec::new();
        for (member_nodes, label, origins) in pending {
            let id = match self.free_ids.pop() {
                Some(id) => id,
                None => {
                    self.members.push(Vec::new());
                    self.labels.push(label);
                    self.active.push(false);
                    (self.members.len() - 1) as u32
                }
            };
            for &v in &member_nodes {
                self.class_of[v.index()] = id;
            }
            births.push(ClassBirth {
                id,
                members: member_nodes.clone(),
                cyclic: false,
                origins,
            });
            self.members[id as usize] = member_nodes;
            self.labels[id as usize] = label;
            self.active[id as usize] = true;
            new_ids.push(id);
        }

        // Rebuild class-level edge counters incident to the new classes.
        let new_set: HashSet<u32> = new_ids.iter().copied().collect();
        for &id in &new_ids {
            let members = self.members[id as usize].clone();
            for v in members {
                for &w in g.out_neighbors(v) {
                    let cw = self.class_of(w);
                    *self.q_edges.entry((id, cw)).or_insert(0) += 1;
                }
                for &z in g.in_neighbors(v) {
                    let cz = self.class_of(z);
                    if cz != id && !new_set.contains(&cz) {
                        *self.q_edges.entry((cz, id)).or_insert(0) += 1;
                    }
                }
            }
        }

        PartitionDelta {
            removed,
            added: births,
            id_space: self.members.len(),
        }
    }

    /// Exports the current state under **stable** class ids (node → class
    /// index, labels, liveness, member lists, and the distinct class-level
    /// edges from the maintained counters — no graph rescan). Stable ids
    /// survive across updates for untouched classes, which is what lets
    /// snapshot layers patch a served [`PatternView`](crate::view::PatternView)
    /// from a [`PartitionDelta`] instead of rebuilding it; see
    /// [`StablePatternQuotient`].
    pub fn stable_quotient(&self) -> StablePatternQuotient {
        let mut spq = self.stable_quotient_without_members();
        spq.class_of = self.class_of.clone();
        spq.interner = self.interner.clone();
        spq.members = self
            .members
            .iter()
            .map(|m| Arc::from(m.as_slice()))
            .collect();
        spq
    }

    /// The **light** export for *patch* consumers: `members` are empty
    /// rows, `class_of` is empty, and the interner is fresh.
    /// `PatternView::apply_delta` carries untouched member rows over from
    /// its predecessor, takes churned ones from the [`PartitionDelta`]'s
    /// births, patches the node index from the births too, and resolves the
    /// retired-row sentinel through its own interner — so the only pieces
    /// it reads from the export are the per-class structures (`labels`,
    /// `active`, `edges`). Cloning the `O(|V|)` node index and every member
    /// list here would scale the patch path with graph size instead of
    /// churn.
    ///
    /// [`PatternView::apply_delta`]: crate::view::PatternView::apply_delta
    pub fn stable_quotient_without_members(&self) -> StablePatternQuotient {
        let mut edges: Vec<(u32, u32)> = self.q_edges.keys().copied().collect();
        edges.sort_unstable();
        StablePatternQuotient {
            class_of: Vec::new(),
            labels: self.labels.clone(),
            active: self.active.clone(),
            members: vec![Arc::from(&[][..]); self.members.len()],
            edges,
            interner: LabelInterner::new(),
        }
    }

    /// Materializes the current state as a [`PatternCompression`] with a
    /// freshly built quotient graph.
    pub fn to_compression(&self) -> PatternCompression {
        let mut dense: HashMap<u32, u32> = HashMap::new();
        let mut members: Vec<Vec<NodeId>> = Vec::new();
        let mut labels: Vec<Label> = Vec::new();
        for c in 0..self.members.len() as u32 {
            if self.active[c as usize] {
                dense.insert(c, members.len() as u32);
                members.push(self.members[c as usize].clone());
                labels.push(self.labels[c as usize]);
            }
        }
        let mut class_of = vec![0u32; self.class_of.len()];
        for (v, &c) in self.class_of.iter().enumerate() {
            class_of[v] = dense[&c];
        }

        let mut quotient = LabeledGraph::with_capacity(members.len());
        for &l in &labels {
            match self.interner.name(l) {
                Some(name) => {
                    quotient.add_node_with_label(name);
                }
                None => {
                    quotient.add_node(l);
                }
            }
        }
        // Sorted so the materialized quotient's adjacency lists are
        // reproducible across runs, not hash-order artifacts.
        let mut q_edges_sorted: Vec<(u32, u32)> = self.q_edges.keys().copied().collect();
        q_edges_sorted.sort_unstable();
        for &(a, b) in &q_edges_sorted {
            quotient.add_edge(NodeId(dense[&a]), NodeId(dense[&b]));
        }

        PatternCompression {
            graph: quotient,
            partition: BisimPartition {
                class_of,
                members,
                labels,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded::bounded_match;
    use crate::compress::compress_b;
    use crate::pattern::Pattern;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn graph(labels: &[&str], edges: &[(u32, u32)]) -> LabeledGraph {
        let mut g = LabeledGraph::new();
        for l in labels {
            g.add_node_with_label(l);
        }
        for &(u, v) in edges {
            g.add_edge(NodeId(u), NodeId(v));
        }
        g
    }

    fn assert_matches_batch(mut g: LabeledGraph, batch: UpdateBatch) {
        let mut inc = IncrementalPattern::new(&g);
        inc.apply(&mut g, &batch);
        let expect = compress_b(&g);
        let got = inc.to_compression();
        assert_eq!(
            got.partition.canonical(),
            expect.partition.canonical(),
            "incremental bisimulation diverged from batch recompression"
        );
        // The materialized quotient graphs must also be isomorphic in the
        // sense that both preserve the same pattern queries; spot check with
        // a generic two-edge pattern over the labels present.
        let mut p = Pattern::new();
        let a = p.add_node("A");
        let b = p.add_node("B");
        p.add_edge(a, b, 2);
        let on_g = bounded_match(&g, &p);
        let on_inc = bounded_match(&got.graph, &p).map(|m| got.post_process(&m));
        match (on_g, on_inc) {
            (None, None) => {}
            (Some(x), Some(y)) => assert_eq!(x.canonical(), y.canonical()),
            (x, y) => panic!(
                "boolean answers diverge: original={} incremental={}",
                x.is_some(),
                y.is_some()
            ),
        }
    }

    #[test]
    fn insertion_splits_bisimilar_nodes() {
        // B1 and B2 bisimilar until B1 gets a new child with a fresh label.
        let g = graph(
            &["A", "B", "B", "C", "C", "D"],
            &[(0, 1), (0, 2), (1, 3), (2, 4)],
        );
        let mut batch = UpdateBatch::new();
        batch.insert(NodeId(1), NodeId(5));
        assert_matches_batch(g, batch);
    }

    #[test]
    fn insertion_merges_nodes() {
        // B2 lacks a C child; adding one makes it bisimilar to B1.
        let g = graph(&["A", "B", "B", "C", "C"], &[(0, 1), (0, 2), (1, 3)]);
        let mut batch = UpdateBatch::new();
        batch.insert(NodeId(2), NodeId(4));
        assert_matches_batch(g, batch);
    }

    #[test]
    fn deletion_propagates_to_ancestors() {
        // Removing a C child of B1 changes B1's class and therefore A's view.
        let g = graph(
            &["A", "A", "B", "B", "C", "C"],
            &[(0, 2), (1, 3), (2, 4), (3, 5)],
        );
        let mut batch = UpdateBatch::new();
        batch.delete(NodeId(2), NodeId(4));
        assert_matches_batch(g, batch);
    }

    #[test]
    fn cycle_creation_and_destruction() {
        let g = graph(&["X", "X", "X", "X"], &[(0, 1), (1, 2), (2, 3)]);
        let mut batch = UpdateBatch::new();
        batch.insert(NodeId(3), NodeId(0));
        assert_matches_batch(g.clone(), batch);

        let g2 = graph(&["X", "X", "X", "X"], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut batch2 = UpdateBatch::new();
        batch2.delete(NodeId(2), NodeId(3));
        assert_matches_batch(g2, batch2);
    }

    #[test]
    fn mixed_batch() {
        let g = graph(
            &["A", "B", "B", "C", "C", "D"],
            &[(0, 1), (0, 2), (1, 3), (2, 4), (4, 5)],
        );
        let mut batch = UpdateBatch::new();
        batch.insert(NodeId(3), NodeId(5));
        batch.delete(NodeId(2), NodeId(4));
        batch.insert(NodeId(5), NodeId(5));
        assert_matches_batch(g, batch);
    }

    #[test]
    fn one_by_one_matches_batch_application() {
        let g = graph(
            &["A", "B", "B", "C", "C"],
            &[(0, 1), (0, 2), (1, 3), (2, 4)],
        );
        let mut batch = UpdateBatch::new();
        batch.insert(NodeId(1), NodeId(4));
        batch.delete(NodeId(2), NodeId(4));

        let mut g1 = g.clone();
        let mut inc1 = IncrementalPattern::new(&g1);
        inc1.apply(&mut g1, &batch);

        let mut g2 = g.clone();
        let mut inc2 = IncrementalPattern::new(&g2);
        inc2.apply_one_by_one(&mut g2, &batch);

        assert_eq!(
            inc1.to_compression().partition.canonical(),
            inc2.to_compression().partition.canonical()
        );
        assert_eq!(
            inc1.to_compression().partition.canonical(),
            compress_b(&g1).partition.canonical()
        );
    }

    #[test]
    fn noop_batch() {
        let g = graph(&["A", "B"], &[(0, 1)]);
        let mut g2 = g.clone();
        let mut inc = IncrementalPattern::new(&g2);
        let stats = inc.apply(&mut g2, &UpdateBatch::new());
        assert_eq!(stats, IncPatternStats::default());
        assert_eq!(inc.class_count(), 2);
    }

    #[test]
    fn delta_export_replays_the_class_lifecycle() {
        let mut rng = StdRng::seed_from_u64(123);
        let alphabet = ["A", "B", "C"];
        for case in 0..30 {
            let n = rng.gen_range(3..14);
            let mut g = LabeledGraph::new();
            for _ in 0..n {
                g.add_node_with_label(alphabet[rng.gen_range(0..alphabet.len())]);
            }
            for _ in 0..rng.gen_range(0..n * 2) {
                let u = rng.gen_range(0..n) as u32;
                let v = rng.gen_range(0..n) as u32;
                g.add_edge(NodeId(u), NodeId(v));
            }
            let mut inc = IncrementalPattern::new(&g);
            let before_class_of = inc.class_of.clone();
            let mut batch = UpdateBatch::new();
            for _ in 0..rng.gen_range(1..5) {
                let u = NodeId(rng.gen_range(0..n) as u32);
                let v = NodeId(rng.gen_range(0..n) as u32);
                if rng.gen_bool(0.5) {
                    batch.insert(u, v);
                } else {
                    batch.delete(u, v);
                }
            }
            let (stats, delta) = inc.apply_with_delta(&mut g, &batch);
            assert_eq!(stats.changed_classes, delta.added.len());
            assert_eq!(delta.id_space, inc.members.len());
            // Replaying the births on the pre-batch index reproduces the
            // post-batch node → class map.
            let mut replayed = before_class_of;
            for birth in &delta.added {
                assert!(!birth.cyclic);
                for &v in &birth.members {
                    replayed[v.index()] = birth.id;
                }
                for o in &birth.origins {
                    assert!(delta.removed.contains(o), "case {case}: origin {o}");
                }
            }
            assert_eq!(replayed, inc.class_of, "case {case}: class map diverged");
        }
    }

    #[test]
    fn randomized_incremental_equals_batch() {
        let mut rng = StdRng::seed_from_u64(99);
        let alphabet = ["A", "B", "C"];
        for case in 0..30 {
            let n = rng.gen_range(3..14);
            let mut g = LabeledGraph::new();
            for _ in 0..n {
                g.add_node_with_label(alphabet[rng.gen_range(0..alphabet.len())]);
            }
            for _ in 0..rng.gen_range(0..n * 2) {
                let u = rng.gen_range(0..n) as u32;
                let v = rng.gen_range(0..n) as u32;
                g.add_edge(NodeId(u), NodeId(v));
            }
            let mut batch = UpdateBatch::new();
            for _ in 0..rng.gen_range(1..6) {
                let u = NodeId(rng.gen_range(0..n) as u32);
                let v = NodeId(rng.gen_range(0..n) as u32);
                if rng.gen_bool(0.5) {
                    batch.insert(u, v);
                } else {
                    batch.delete(u, v);
                }
            }
            let mut g2 = g.clone();
            let mut inc = IncrementalPattern::new(&g2);
            inc.apply(&mut g2, &batch);
            assert_eq!(
                inc.to_compression().partition.canonical(),
                compress_b(&g2).partition.canonical(),
                "case {case} diverged"
            );
        }
    }

    #[test]
    fn repeated_batches_stay_consistent() {
        let mut g = graph(
            &["A", "B", "B", "C", "C", "D"],
            &[(0, 1), (0, 2), (1, 3), (2, 4), (3, 5)],
        );
        let mut inc = IncrementalPattern::new(&g);
        let steps: Vec<Vec<(u32, u32, bool)>> = vec![
            vec![(4, 5, true)],
            vec![(1, 3, false), (2, 3, true)],
            vec![(5, 0, true)],
            vec![(5, 0, false), (0, 1, false)],
        ];
        for step in steps {
            let mut batch = UpdateBatch::new();
            for (u, v, ins) in step {
                if ins {
                    batch.insert(NodeId(u), NodeId(v));
                } else {
                    batch.delete(NodeId(u), NodeId(v));
                }
            }
            inc.apply(&mut g, &batch);
            assert_eq!(
                inc.to_compression().partition.canonical(),
                compress_b(&g).partition.canonical()
            );
        }
    }
}
