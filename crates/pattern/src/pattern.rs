//! Graph pattern queries `Qp = (Vp, Ep, fv, fe)` and their match relations.
//!
//! A pattern query (Section 2.1) is a small directed graph whose nodes carry
//! search conditions (here: a label name, `fv`) and whose edges carry a
//! bound `fe`: a positive integer `k` ("there must be a non-empty path of
//! length ≤ k") or `*` ("there must be a non-empty path of any length").
//! Matching is defined by bounded simulation; the answer is the unique
//! maximum match relation `SM ⊆ Vp × V` (Lemma 1), or the empty relation if
//! the pattern does not match.

use qpgc_graph::NodeId;

/// The bound `fe(u, u')` attached to a pattern edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeBound {
    /// A non-empty path of length at most `k` is required (`k ≥ 1`).
    Bounded(u32),
    /// A non-empty path of any length is required (the paper's `*`).
    Unbounded,
}

impl EdgeBound {
    /// Interprets the bound as an `Option<usize>` hop limit (`None` = no
    /// limit), the form the bounded-BFS primitives take.
    pub fn hop_limit(self) -> Option<usize> {
        match self {
            EdgeBound::Bounded(k) => Some(k as usize),
            EdgeBound::Unbounded => None,
        }
    }
}

/// Identifier of a pattern node (index into the pattern's node list).
pub type PatternNodeId = u32;

/// A graph pattern query.
#[derive(Clone, Debug, PartialEq)]
pub struct Pattern {
    /// `fv`: the label name each pattern node must match.
    labels: Vec<String>,
    /// Pattern edges with their bounds.
    edges: Vec<(PatternNodeId, PatternNodeId, EdgeBound)>,
}

impl Default for Pattern {
    fn default() -> Self {
        Self::new()
    }
}

impl Pattern {
    /// Creates an empty pattern.
    pub fn new() -> Self {
        Pattern {
            labels: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds a pattern node with search condition `label` and returns its id.
    pub fn add_node(&mut self, label: &str) -> PatternNodeId {
        self.labels.push(label.to_string());
        (self.labels.len() - 1) as PatternNodeId
    }

    /// Adds a pattern edge with a finite bound `k ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or either endpoint does not exist.
    pub fn add_edge(&mut self, from: PatternNodeId, to: PatternNodeId, k: u32) -> &mut Self {
        assert!(k >= 1, "edge bounds must be positive");
        self.add_edge_with_bound(from, to, EdgeBound::Bounded(k))
    }

    /// Adds a pattern edge with the unbounded (`*`) bound.
    pub fn add_edge_unbounded(&mut self, from: PatternNodeId, to: PatternNodeId) -> &mut Self {
        self.add_edge_with_bound(from, to, EdgeBound::Unbounded)
    }

    /// Adds a pattern edge with an explicit [`EdgeBound`].
    pub fn add_edge_with_bound(
        &mut self,
        from: PatternNodeId,
        to: PatternNodeId,
        bound: EdgeBound,
    ) -> &mut Self {
        assert!((from as usize) < self.labels.len(), "unknown pattern node");
        assert!((to as usize) < self.labels.len(), "unknown pattern node");
        self.edges.push((from, to, bound));
        self
    }

    /// Number of pattern nodes (`|Vp|`).
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of pattern edges (`|Ep|`).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The label name of pattern node `u`.
    pub fn label(&self, u: PatternNodeId) -> &str {
        &self.labels[u as usize]
    }

    /// The pattern edges as `(from, to, bound)` triples.
    pub fn edges(&self) -> &[(PatternNodeId, PatternNodeId, EdgeBound)] {
        &self.edges
    }

    /// Iterator over pattern node ids.
    pub fn nodes(&self) -> impl Iterator<Item = PatternNodeId> {
        0..self.labels.len() as PatternNodeId
    }

    /// `true` if every edge bound is `1`, i.e. the pattern is a plain graph
    /// simulation pattern in the sense of Henzinger–Henzinger–Kopke.
    pub fn is_simulation_pattern(&self) -> bool {
        self.edges
            .iter()
            .all(|&(_, _, b)| b == EdgeBound::Bounded(1))
    }

    /// Returns a copy of the pattern with every bound replaced by `1`
    /// (useful for comparing bounded and plain simulation on the same
    /// topology).
    pub fn as_simulation_pattern(&self) -> Pattern {
        Pattern {
            labels: self.labels.clone(),
            edges: self
                .edges
                .iter()
                .map(|&(a, b, _)| (a, b, EdgeBound::Bounded(1)))
                .collect(),
        }
    }
}

/// The answer to a pattern query: for each pattern node, the set of data
/// nodes that match it. The relation is the *maximum* match (Lemma 1); it is
/// empty (`matched() == false`) when some pattern node has no match.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatchRelation {
    /// `matches[u]` — the data nodes matching pattern node `u`, sorted.
    pub matches: Vec<Vec<NodeId>>,
}

/// The post-processing function `P`, shared by every compressed form:
/// expands a match relation computed on a quotient graph into the relation
/// on the original graph by replacing each hypernode with its members
/// (looked up through `members_of`). Runs in time linear in the size of the
/// output.
pub(crate) fn expand_match_relation<'a>(
    on_compressed: &MatchRelation,
    members_of: impl Fn(NodeId) -> &'a [NodeId],
) -> MatchRelation {
    let mut out = MatchRelation::empty(on_compressed.matches.len());
    for (u, classes) in on_compressed.matches.iter().enumerate() {
        let mut expanded: Vec<NodeId> = Vec::new();
        for &c in classes {
            expanded.extend_from_slice(members_of(c));
        }
        expanded.sort_unstable();
        expanded.dedup();
        out.matches[u] = expanded;
    }
    out
}

/// Differential-testing oracle shared by every suite that compares two ways
/// of answering the same pattern query: panics unless the optional match
/// relations agree as booleans and — when both match — as canonical
/// relations. `ctx` prefixes the failure message. Keeping the comparison in
/// one place guarantees the unit, integration, and bench differentials all
/// apply the identical equivalence.
pub fn assert_same_answer(
    expected: &Option<MatchRelation>,
    got: &Option<MatchRelation>,
    ctx: &str,
) {
    match (expected, got) {
        (None, None) => {}
        (Some(x), Some(y)) => assert_eq!(
            x.canonical(),
            y.canonical(),
            "{ctx}: match relations diverged"
        ),
        (x, y) => panic!(
            "{ctx}: boolean answers diverged (expected matched = {}, got matched = {})",
            x.is_some(),
            y.is_some()
        ),
    }
}

impl MatchRelation {
    /// Creates a relation for a pattern with `pattern_nodes` nodes, with all
    /// match sets empty.
    pub fn empty(pattern_nodes: usize) -> Self {
        MatchRelation {
            matches: vec![Vec::new(); pattern_nodes],
        }
    }

    /// `true` iff every pattern node has at least one match, i.e. `Qp ⊴ G`.
    pub fn matched(&self) -> bool {
        !self.matches.is_empty() && self.matches.iter().all(|m| !m.is_empty())
    }

    /// Total number of `(pattern node, data node)` pairs in the relation.
    pub fn pair_count(&self) -> usize {
        self.matches.iter().map(Vec::len).sum()
    }

    /// The match set of pattern node `u`.
    pub fn matches_of(&self, u: PatternNodeId) -> &[NodeId] {
        &self.matches[u as usize]
    }

    /// A canonical representation (sorted pair list) for comparing relations
    /// produced by different evaluation strategies.
    pub fn canonical(&self) -> Vec<(u32, u32)> {
        let mut pairs: Vec<(u32, u32)> = self
            .matches
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |v| (u as u32, v.0)))
            .collect();
        pairs.sort_unstable();
        pairs
    }
}

/// Resolves the pattern's label names against a data graph's interner,
/// returning for each pattern node the interned label (or `None` if the
/// label does not occur in the graph at all). Accepts any
/// [`qpgc_graph::GraphView`] (mutable graph or CSR snapshot).
pub fn resolve_labels<G: qpgc_graph::GraphView>(
    pattern: &Pattern,
    g: &G,
) -> Vec<Option<qpgc_graph::Label>> {
    pattern
        .nodes()
        .map(|u| g.lookup_label(pattern.label(u)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpgc_graph::LabeledGraph;

    #[test]
    fn build_pattern() {
        let mut p = Pattern::new();
        let a = p.add_node("BSA");
        let b = p.add_node("C");
        let c = p.add_node("FA");
        p.add_edge(a, b, 2);
        p.add_edge_unbounded(b, c);
        assert_eq!(p.node_count(), 3);
        assert_eq!(p.edge_count(), 2);
        assert_eq!(p.label(a), "BSA");
        assert_eq!(p.edges()[1].2, EdgeBound::Unbounded);
        assert!(!p.is_simulation_pattern());
        assert!(p.as_simulation_pattern().is_simulation_pattern());
        assert_eq!(p.nodes().count(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_rejected() {
        let mut p = Pattern::new();
        let a = p.add_node("A");
        let b = p.add_node("B");
        p.add_edge(a, b, 0);
    }

    #[test]
    #[should_panic(expected = "unknown pattern node")]
    fn dangling_edge_rejected() {
        let mut p = Pattern::new();
        let a = p.add_node("A");
        p.add_edge(a, 7, 1);
    }

    #[test]
    fn edge_bound_hop_limit() {
        assert_eq!(EdgeBound::Bounded(3).hop_limit(), Some(3));
        assert_eq!(EdgeBound::Unbounded.hop_limit(), None);
    }

    #[test]
    fn match_relation_basics() {
        let mut r = MatchRelation::empty(2);
        assert!(!r.matched());
        r.matches[0].push(NodeId(4));
        assert!(!r.matched());
        r.matches[1].push(NodeId(2));
        assert!(r.matched());
        assert_eq!(r.pair_count(), 2);
        assert_eq!(r.canonical(), vec![(0, 4), (1, 2)]);
        assert_eq!(r.matches_of(0), &[NodeId(4)]);
    }

    #[test]
    fn empty_pattern_relation_is_unmatched() {
        let r = MatchRelation::empty(0);
        assert!(!r.matched());
        assert_eq!(r.pair_count(), 0);
    }

    #[test]
    fn resolve_labels_against_graph() {
        let mut g = LabeledGraph::new();
        g.add_node_with_label("A");
        g.add_node_with_label("B");
        let mut p = Pattern::new();
        p.add_node("B");
        p.add_node("Z");
        let resolved = resolve_labels(&p, &g);
        assert!(resolved[0].is_some());
        assert!(resolved[1].is_none());
    }
}
