//! Graph simulation (Henzinger, Henzinger & Kopke, FOCS 1995).
//!
//! Pattern queries "via graph simulation" are the special case of the
//! paper's pattern queries where every edge bound is `1`: each pattern edge
//! must be matched by a single data edge.
//!
//! ## Hot-path implementation
//!
//! [`simulation_match_view`] computes the maximum simulation with the
//! counter-based HHK refinement driven by **reverse adjacency**: for every
//! pattern edge `(u, u')` and candidate `v` of `u` it maintains the number
//! of children of `v` currently in `sim(u')`. When a node `w` is evicted
//! from `sim(u')`, only the *parents* of `w` (one reverse-adjacency scan)
//! have their counters decremented — a counter hitting zero evicts the
//! parent in turn. Total work is `O(|Ep| · (|V| + |E|))`, instead of
//! re-scanning every candidate's children until nothing changes. On a
//! frozen [`CsrGraph`] the parent scans are contiguous slices of the
//! reverse CSR arrays.
//!
//! The original fixpoint re-scan loop is retained as
//! [`reference_simulation_match`] for differential testing.

use std::collections::VecDeque;

use qpgc_graph::{CsrGraph, GraphView, LabeledGraph, NodeId};

use crate::pattern::{resolve_labels, MatchRelation, Pattern, PatternNodeId};

/// Computes the maximum graph-simulation match of `pattern` in `g`.
///
/// Returns `None` when the pattern does not match (some pattern node ends up
/// with no candidates), otherwise the maximum match relation.
///
/// Every edge bound of the pattern is *interpreted as 1* regardless of its
/// declared value; use [`crate::bounded::bounded_match`] for general bounds.
pub fn simulation_match(g: &LabeledGraph, pattern: &Pattern) -> Option<MatchRelation> {
    simulation_match_view(g, pattern)
}

/// [`simulation_match`] over a frozen CSR snapshot.
pub fn simulation_match_csr(g: &CsrGraph, pattern: &Pattern) -> Option<MatchRelation> {
    simulation_match_view(g, pattern)
}

/// The generic implementation behind [`simulation_match`] /
/// [`simulation_match_csr`]: counter-based pruning over the reverse
/// adjacency of any [`GraphView`].
pub fn simulation_match_view<G: GraphView>(g: &G, pattern: &Pattern) -> Option<MatchRelation> {
    if pattern.node_count() == 0 {
        return None;
    }
    let labels = resolve_labels(pattern, g);
    let n = g.node_count();
    let np = pattern.node_count();

    // Candidate sets and membership bitmaps, seeded by label.
    let by_label = g.nodes_by_label();
    let mut member: Vec<Vec<bool>> = vec![vec![false; n]; np];
    for u in pattern.nodes() {
        let cands = labels[u as usize].and_then(|l| by_label.get(&l));
        match cands {
            Some(cands) if !cands.is_empty() => {
                for &v in cands {
                    member[u as usize][v.index()] = true;
                }
            }
            _ => return None,
        }
    }

    // Pattern reverse adjacency: edge indices grouped by edge target.
    let mut edges_into: Vec<Vec<usize>> = vec![Vec::new(); np];
    for (ei, &(_, u2, _)) in pattern.edges().iter().enumerate() {
        edges_into[u2 as usize].push(ei);
    }

    // count[ei][v] = number of children of v currently in sim(target(ei)),
    // maintained for candidates v of source(ei). All counters are computed
    // against the *initial* label-based membership first — evicting while
    // counting would leave later counters missing decrements when the
    // eviction queue drains. An eviction is pushed once (the bitmap is
    // cleared at push time) and its parents' counters are decremented when
    // popped.
    let mut count: Vec<Vec<u32>> = vec![vec![0; n]; pattern.edge_count()];
    for (ei, &(u, u2, _)) in pattern.edges().iter().enumerate() {
        let u = u as usize;
        for vi in 0..n {
            if !member[u][vi] {
                continue;
            }
            count[ei][vi] = g
                .out_neighbors(NodeId(vi as u32))
                .iter()
                .filter(|w| member[u2 as usize][w.index()])
                .count() as u32;
        }
    }
    let mut queue: VecDeque<(PatternNodeId, NodeId)> = VecDeque::new();
    for (ei, &(u, _, _)) in pattern.edges().iter().enumerate() {
        let u = u as usize;
        for vi in 0..n {
            if member[u][vi] && count[ei][vi] == 0 {
                member[u][vi] = false;
                queue.push_back((u as PatternNodeId, NodeId(vi as u32)));
            }
        }
    }

    while let Some((u, v)) = queue.pop_front() {
        // v left sim(u): every parent p of v loses one witness for every
        // pattern edge pointing at u.
        for &ei in &edges_into[u as usize] {
            let u_src = pattern.edges()[ei].0 as usize;
            for &p in g.in_neighbors(v) {
                if !member[u_src][p.index()] {
                    continue;
                }
                let c = &mut count[ei][p.index()];
                debug_assert!(*c > 0, "counter underflow");
                *c -= 1;
                if *c == 0 {
                    member[u_src][p.index()] = false;
                    queue.push_back((u_src as PatternNodeId, p));
                }
            }
        }
    }

    // Collect the surviving candidates (already in ascending node order).
    let mut result = MatchRelation::empty(np);
    for (u, members_of_u) in member.iter().enumerate() {
        let survivors: Vec<NodeId> = members_of_u
            .iter()
            .enumerate()
            .filter_map(|(vi, &m)| m.then_some(NodeId(vi as u32)))
            .collect();
        if survivors.is_empty() {
            return None;
        }
        result.matches[u] = survivors;
    }
    Some(result)
}

/// The pre-CSR implementation: fixpoint re-scans over forward adjacency.
/// Retained as the differential-testing oracle for
/// [`simulation_match_view`].
pub fn reference_simulation_match(g: &LabeledGraph, pattern: &Pattern) -> Option<MatchRelation> {
    if pattern.node_count() == 0 {
        return None;
    }
    let labels = resolve_labels(pattern, g);
    // Candidate sets: nodes with the right label.
    let mut sim: Vec<Vec<NodeId>> = Vec::with_capacity(pattern.node_count());
    let by_label = g.nodes_by_label();
    for u in pattern.nodes() {
        let cands = match labels[u as usize] {
            Some(l) => by_label.get(&l).cloned().unwrap_or_default(),
            None => Vec::new(),
        };
        if cands.is_empty() {
            return None;
        }
        sim.push(cands);
    }

    // Membership bitmaps for O(1) "is v in sim(u')" checks.
    let mut member: Vec<Vec<bool>> = sim
        .iter()
        .map(|s| {
            let mut m = vec![false; g.node_count()];
            for &v in s {
                m[v.index()] = true;
            }
            m
        })
        .collect();

    let mut changed = true;
    while changed {
        changed = false;
        for &(u, u2, _) in pattern.edges() {
            // v stays in sim(u) only if some child of v is in sim(u2).
            let (u, u2) = (u as usize, u2 as usize);
            let mut retained: Vec<NodeId> = Vec::with_capacity(sim[u].len());
            for &v in &sim[u] {
                let ok = g.out_neighbors(v).iter().any(|&w| member[u2][w.index()]);
                if ok {
                    retained.push(v);
                } else {
                    member[u][v.index()] = false;
                    changed = true;
                }
            }
            if retained.is_empty() {
                return None;
            }
            sim[u] = retained;
        }
    }

    let mut result = MatchRelation::empty(pattern.node_count());
    for (u, mut s) in sim.into_iter().enumerate() {
        s.sort_unstable();
        result.matches[u] = s;
    }
    Some(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(labels: &[&str], edges: &[(u32, u32)]) -> LabeledGraph {
        let mut g = LabeledGraph::new();
        for l in labels {
            g.add_node_with_label(l);
        }
        for &(u, v) in edges {
            g.add_edge(NodeId(u), NodeId(v));
        }
        g
    }

    #[test]
    fn single_edge_pattern() {
        let g = graph(&["A", "B", "B", "A"], &[(0, 1), (3, 2), (1, 2)]);
        let mut p = Pattern::new();
        let a = p.add_node("A");
        let b = p.add_node("B");
        p.add_edge(a, b, 1);
        let m = simulation_match(&g, &p).unwrap();
        assert_eq!(m.matches_of(a), &[NodeId(0), NodeId(3)]);
        assert_eq!(m.matches_of(b), &[NodeId(1), NodeId(2)]);
    }

    #[test]
    fn refinement_propagates_upward() {
        // A -> B -> C pattern. Data: A1 -> B1 -> C, A2 -> B2 (B2 has no C
        // child), so A2 and B2 must be eliminated.
        let g = graph(&["A", "B", "C", "A", "B"], &[(0, 1), (1, 2), (3, 4)]);
        let mut p = Pattern::new();
        let a = p.add_node("A");
        let b = p.add_node("B");
        let c = p.add_node("C");
        p.add_edge(a, b, 1);
        p.add_edge(b, c, 1);
        let m = simulation_match(&g, &p).unwrap();
        assert_eq!(m.matches_of(a), &[NodeId(0)]);
        assert_eq!(m.matches_of(b), &[NodeId(1)]);
        assert_eq!(m.matches_of(c), &[NodeId(2)]);
    }

    #[test]
    fn no_match_when_label_missing() {
        let g = graph(&["A", "B"], &[(0, 1)]);
        let mut p = Pattern::new();
        p.add_node("Z");
        assert!(simulation_match(&g, &p).is_none());
    }

    #[test]
    fn no_match_when_edge_unsatisfiable() {
        let g = graph(&["A", "B"], &[]);
        let mut p = Pattern::new();
        let a = p.add_node("A");
        let b = p.add_node("B");
        p.add_edge(a, b, 1);
        assert!(simulation_match(&g, &p).is_none());
    }

    #[test]
    fn cyclic_pattern_on_cyclic_data() {
        let g = graph(&["A", "B", "A", "B"], &[(0, 1), (1, 0), (2, 3)]);
        let mut p = Pattern::new();
        let a = p.add_node("A");
        let b = p.add_node("B");
        p.add_edge(a, b, 1);
        p.add_edge(b, a, 1);
        let m = simulation_match(&g, &p).unwrap();
        // Only the 2-cycle participates; node 2 (A) and 3 (B) have no way back.
        assert_eq!(m.matches_of(a), &[NodeId(0)]);
        assert_eq!(m.matches_of(b), &[NodeId(1)]);
    }

    #[test]
    fn empty_pattern_is_no_match() {
        let g = graph(&["A"], &[]);
        assert!(simulation_match(&g, &Pattern::new()).is_none());
    }

    #[test]
    fn isolated_pattern_node_matches_by_label_only() {
        let g = graph(&["A", "A", "B"], &[(0, 2)]);
        let mut p = Pattern::new();
        let a = p.add_node("A");
        let m = simulation_match(&g, &p).unwrap();
        assert_eq!(m.matches_of(a), &[NodeId(0), NodeId(1)]);
    }

    #[test]
    fn maximality_contains_every_valid_simulation() {
        // The result must be the *maximum* match: every node that can match
        // does match. Star data graph: hub A with three B children, each B
        // with its own C child except one.
        let g = graph(
            &["A", "B", "B", "B", "C", "C"],
            &[(0, 1), (0, 2), (0, 3), (1, 4), (2, 5)],
        );
        let mut p = Pattern::new();
        let a = p.add_node("A");
        let b = p.add_node("B");
        let c = p.add_node("C");
        p.add_edge(a, b, 1);
        p.add_edge(b, c, 1);
        let m = simulation_match(&g, &p).unwrap();
        assert_eq!(m.matches_of(b), &[NodeId(1), NodeId(2)]);
        assert_eq!(m.matches_of(c), &[NodeId(4), NodeId(5)]);
    }

    #[test]
    fn counter_pruning_matches_reference_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let alphabet = ["A", "B", "C"];
        let mut rng = StdRng::seed_from_u64(19);
        for round in 0..40 {
            let n = rng.gen_range(2..30);
            let mut g = LabeledGraph::new();
            for _ in 0..n {
                g.add_node_with_label(alphabet[rng.gen_range(0..alphabet.len())]);
            }
            let m = rng.gen_range(0..n * 3);
            for _ in 0..m {
                let u = rng.gen_range(0..n) as u32;
                let v = rng.gen_range(0..n) as u32;
                g.add_edge(NodeId(u), NodeId(v));
            }
            let mut p = Pattern::new();
            let pn = rng.gen_range(1..4usize);
            for i in 0..pn {
                p.add_node(alphabet[(round + i) % alphabet.len()]);
            }
            for _ in 0..rng.gen_range(0..4usize) {
                let a = rng.gen_range(0..pn) as u32;
                let b = rng.gen_range(0..pn) as u32;
                p.add_edge(a, b, 1);
            }
            let fast = simulation_match(&g, &p);
            let fast_csr = simulation_match_csr(&g.freeze(), &p);
            let slow = reference_simulation_match(&g, &p);
            match (fast, fast_csr, slow) {
                (None, None, None) => {}
                (Some(a), Some(b), Some(c)) => {
                    assert_eq!(a.canonical(), c.canonical(), "round {round}");
                    assert_eq!(b.canonical(), c.canonical(), "round {round} (csr)");
                }
                (a, b, c) => panic!(
                    "round {round}: disagree — view {:?} csr {:?} reference {:?}",
                    a.is_some(),
                    b.is_some(),
                    c.is_some()
                ),
            }
        }
    }
}
