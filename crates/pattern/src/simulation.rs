//! Graph simulation (Henzinger, Henzinger & Kopke, FOCS 1995).
//!
//! Pattern queries "via graph simulation" are the special case of the
//! paper's pattern queries where every edge bound is `1`: each pattern edge
//! must be matched by a single data edge. The maximum simulation relation is
//! computed by the classic refinement: start from label-compatible candidate
//! sets and repeatedly remove a candidate `v` of pattern node `u` if some
//! pattern edge `(u, u')` cannot be matched from `v`.

use qpgc_graph::{LabeledGraph, NodeId};

use crate::pattern::{resolve_labels, MatchRelation, Pattern};

/// Computes the maximum graph-simulation match of `pattern` in `g`.
///
/// Returns `None` when the pattern does not match (some pattern node ends up
/// with no candidates), otherwise the maximum match relation.
///
/// Every edge bound of the pattern is *interpreted as 1* regardless of its
/// declared value; use [`crate::bounded::bounded_match`] for general bounds.
pub fn simulation_match(g: &LabeledGraph, pattern: &Pattern) -> Option<MatchRelation> {
    if pattern.node_count() == 0 {
        return None;
    }
    let labels = resolve_labels(pattern, g);
    // Candidate sets: nodes with the right label.
    let mut sim: Vec<Vec<NodeId>> = Vec::with_capacity(pattern.node_count());
    let by_label = g.nodes_by_label();
    for u in pattern.nodes() {
        let cands = match labels[u as usize] {
            Some(l) => by_label.get(&l).cloned().unwrap_or_default(),
            None => Vec::new(),
        };
        if cands.is_empty() {
            return None;
        }
        sim.push(cands);
    }

    // Membership bitmaps for O(1) "is v in sim(u')" checks.
    let mut member: Vec<Vec<bool>> = sim
        .iter()
        .map(|s| {
            let mut m = vec![false; g.node_count()];
            for &v in s {
                m[v.index()] = true;
            }
            m
        })
        .collect();

    let mut changed = true;
    while changed {
        changed = false;
        for &(u, u2, _) in pattern.edges() {
            // v stays in sim(u) only if some child of v is in sim(u2).
            let (u, u2) = (u as usize, u2 as usize);
            let mut retained: Vec<NodeId> = Vec::with_capacity(sim[u].len());
            for &v in &sim[u] {
                let ok = g.out_neighbors(v).iter().any(|&w| member[u2][w.index()]);
                if ok {
                    retained.push(v);
                } else {
                    member[u][v.index()] = false;
                    changed = true;
                }
            }
            if retained.is_empty() {
                return None;
            }
            sim[u] = retained;
        }
    }

    let mut result = MatchRelation::empty(pattern.node_count());
    for (u, mut s) in sim.into_iter().enumerate() {
        s.sort_unstable();
        result.matches[u] = s;
    }
    Some(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(labels: &[&str], edges: &[(u32, u32)]) -> LabeledGraph {
        let mut g = LabeledGraph::new();
        for l in labels {
            g.add_node_with_label(l);
        }
        for &(u, v) in edges {
            g.add_edge(NodeId(u), NodeId(v));
        }
        g
    }

    #[test]
    fn single_edge_pattern() {
        let g = graph(&["A", "B", "B", "A"], &[(0, 1), (3, 2), (1, 2)]);
        let mut p = Pattern::new();
        let a = p.add_node("A");
        let b = p.add_node("B");
        p.add_edge(a, b, 1);
        let m = simulation_match(&g, &p).unwrap();
        assert_eq!(m.matches_of(a), &[NodeId(0), NodeId(3)]);
        assert_eq!(m.matches_of(b), &[NodeId(1), NodeId(2)]);
    }

    #[test]
    fn refinement_propagates_upward() {
        // A -> B -> C pattern. Data: A1 -> B1 -> C, A2 -> B2 (B2 has no C
        // child), so A2 and B2 must be eliminated.
        let g = graph(&["A", "B", "C", "A", "B"], &[(0, 1), (1, 2), (3, 4)]);
        let mut p = Pattern::new();
        let a = p.add_node("A");
        let b = p.add_node("B");
        let c = p.add_node("C");
        p.add_edge(a, b, 1);
        p.add_edge(b, c, 1);
        let m = simulation_match(&g, &p).unwrap();
        assert_eq!(m.matches_of(a), &[NodeId(0)]);
        assert_eq!(m.matches_of(b), &[NodeId(1)]);
        assert_eq!(m.matches_of(c), &[NodeId(2)]);
    }

    #[test]
    fn no_match_when_label_missing() {
        let g = graph(&["A", "B"], &[(0, 1)]);
        let mut p = Pattern::new();
        p.add_node("Z");
        assert!(simulation_match(&g, &p).is_none());
    }

    #[test]
    fn no_match_when_edge_unsatisfiable() {
        let g = graph(&["A", "B"], &[]);
        let mut p = Pattern::new();
        let a = p.add_node("A");
        let b = p.add_node("B");
        p.add_edge(a, b, 1);
        assert!(simulation_match(&g, &p).is_none());
    }

    #[test]
    fn cyclic_pattern_on_cyclic_data() {
        let g = graph(&["A", "B", "A", "B"], &[(0, 1), (1, 0), (2, 3)]);
        let mut p = Pattern::new();
        let a = p.add_node("A");
        let b = p.add_node("B");
        p.add_edge(a, b, 1);
        p.add_edge(b, a, 1);
        let m = simulation_match(&g, &p).unwrap();
        // Only the 2-cycle participates; node 2 (A) and 3 (B) have no way back.
        assert_eq!(m.matches_of(a), &[NodeId(0)]);
        assert_eq!(m.matches_of(b), &[NodeId(1)]);
    }

    #[test]
    fn empty_pattern_is_no_match() {
        let g = graph(&["A"], &[]);
        assert!(simulation_match(&g, &Pattern::new()).is_none());
    }

    #[test]
    fn isolated_pattern_node_matches_by_label_only() {
        let g = graph(&["A", "A", "B"], &[(0, 2)]);
        let mut p = Pattern::new();
        let a = p.add_node("A");
        let m = simulation_match(&g, &p).unwrap();
        assert_eq!(m.matches_of(a), &[NodeId(0), NodeId(1)]);
    }

    #[test]
    fn maximality_contains_every_valid_simulation() {
        // The result must be the *maximum* match: every node that can match
        // does match. Star data graph: hub A with three B children, each B
        // with its own C child except one.
        let g = graph(
            &["A", "B", "B", "B", "C", "C"],
            &[(0, 1), (0, 2), (0, 3), (1, 4), (2, 5)],
        );
        let mut p = Pattern::new();
        let a = p.add_node("A");
        let b = p.add_node("B");
        let c = p.add_node("C");
        p.add_edge(a, b, 1);
        p.add_edge(b, c, 1);
        let m = simulation_match(&g, &p).unwrap();
        assert_eq!(m.matches_of(b), &[NodeId(1), NodeId(2)]);
        assert_eq!(m.matches_of(c), &[NodeId(4), NodeId(5)]);
    }
}
