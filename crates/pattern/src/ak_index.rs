//! The A(k)-index: parameterized (k-bounded) bisimulation.
//!
//! The A(k)-index of Kaushik et al. (ICDE 2002) groups nodes that are
//! *k-bisimilar*: indistinguishable by downward traversals of length at most
//! `k`. The paper uses it (Sections 3.1 and 4.1) as a foil: the index graph
//! built from k-bisimulation does **not** preserve reachability queries nor
//! pattern queries in general, whereas full bisimulation does. We implement
//! it so that the non-preservation claims can be demonstrated by tests and
//! examples, and to serve as an ablation point ("what if we stop refining
//! after k rounds?").

use std::collections::HashMap;

use qpgc_graph::{LabeledGraph, NodeId};

use crate::bisim::BisimPartition;
use crate::compress::build_quotient_graph;

/// Computes the k-bisimulation partition: the result of `k` rounds of
/// signature refinement starting from the label partition.
///
/// `k = 0` groups purely by label; as `k → ∞` the partition converges to the
/// full bisimulation.
pub fn k_bisimulation_partition(g: &LabeledGraph, k: usize) -> BisimPartition {
    let n = g.node_count();
    let mut block: Vec<u32> = vec![0; n];
    {
        let mut key_to_block: HashMap<qpgc_graph::Label, u32> = HashMap::new();
        for v in g.nodes() {
            let next = key_to_block.len() as u32;
            let id = *key_to_block.entry(g.label(v)).or_insert(next);
            block[v.index()] = id;
        }
    }
    for _ in 0..k {
        let mut key_to_block: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
        let mut new_block = vec![0u32; n];
        for v in g.nodes() {
            let mut succ: Vec<u32> = g
                .out_neighbors(v)
                .iter()
                .map(|&w| block[w.index()])
                .collect();
            succ.sort_unstable();
            succ.dedup();
            let key = (block[v.index()], succ);
            let next = key_to_block.len() as u32;
            let id = *key_to_block.entry(key).or_insert(next);
            new_block[v.index()] = id;
        }
        let stable = key_to_block.len() == count_distinct(&block);
        block = new_block;
        if stable {
            break;
        }
    }

    let mut remap: HashMap<u32, u32> = HashMap::new();
    let mut class_of = vec![0u32; n];
    let mut members: Vec<Vec<NodeId>> = Vec::new();
    let mut labels = Vec::new();
    for v in g.nodes() {
        let id = *remap.entry(block[v.index()]).or_insert_with(|| {
            members.push(Vec::new());
            labels.push(g.label(v));
            (members.len() - 1) as u32
        });
        class_of[v.index()] = id;
        members[id as usize].push(v);
    }
    BisimPartition {
        class_of,
        members,
        labels,
    }
}

fn count_distinct(block: &[u32]) -> usize {
    let mut seen = vec![false; block.len().max(1)];
    let mut count = 0;
    for &b in block {
        let b = b as usize;
        if b >= seen.len() {
            seen.resize(b + 1, false);
        }
        if !seen[b] {
            seen[b] = true;
            count += 1;
        }
    }
    count
}

/// The A(k)-index: the index graph (quotient of the k-bisimulation) plus its
/// partition.
#[derive(Clone, Debug)]
pub struct AkIndex {
    /// The index graph (quotient under k-bisimulation).
    pub graph: LabeledGraph,
    /// The k-bisimulation partition.
    pub partition: BisimPartition,
    /// The `k` the index was built with.
    pub k: usize,
}

/// Builds the A(k)-index of `g`.
pub fn ak_index(g: &LabeledGraph, k: usize) -> AkIndex {
    let partition = k_bisimulation_partition(g, k);
    let graph = build_quotient_graph(g, &partition);
    AkIndex {
        graph,
        partition,
        k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bisim::bisimulation_partition;
    use crate::bounded::bounded_match;
    use crate::compress::compress_b;
    use crate::pattern::Pattern;

    fn graph(labels: &[&str], edges: &[(u32, u32)]) -> LabeledGraph {
        let mut g = LabeledGraph::new();
        for l in labels {
            g.add_node_with_label(l);
        }
        for &(u, v) in edges {
            g.add_edge(NodeId(u), NodeId(v));
        }
        g
    }

    /// The Section 4.1 counterexample shape (Fig. 6, G1 in spirit): A nodes
    /// that are 1-bisimilar (they all only have B children) but whose B
    /// children lead to different labels one level further down.
    fn counterexample() -> LabeledGraph {
        graph(
            &["A", "A", "A", "B", "B", "B", "B", "C", "D"],
            &[
                (0, 3),
                (3, 7), // A1 -> B1 -> C
                (1, 4),
                (4, 7), // A2 -> B2 -> C
                (1, 5),
                (5, 8), // A2 -> B3 -> D
                (2, 6),
                (6, 8), // A3 -> B4 -> D
            ],
        )
    }

    #[test]
    fn k0_groups_by_label() {
        let g = counterexample();
        let p = k_bisimulation_partition(&g, 0);
        assert_eq!(p.class_count(), 4); // A, B, C, D
    }

    #[test]
    fn k1_merges_all_a_nodes() {
        // With k = 1 all A nodes look alike (they all have only B children),
        // even though they are not fully bisimilar.
        let g = counterexample();
        let p = k_bisimulation_partition(&g, 1);
        assert!(p.bisimilar(NodeId(0), NodeId(1)));
        assert!(p.bisimilar(NodeId(0), NodeId(2)));
        let full = bisimulation_partition(&g);
        assert!(!full.bisimilar(NodeId(0), NodeId(1)));
    }

    #[test]
    fn large_k_converges_to_full_bisimulation() {
        let g = counterexample();
        let pk = k_bisimulation_partition(&g, 10);
        let full = bisimulation_partition(&g);
        assert_eq!(pk.canonical(), full.canonical());
    }

    #[test]
    fn refinement_is_monotone_in_k() {
        let g = counterexample();
        let mut last = 0;
        for k in 0..5 {
            let classes = k_bisimulation_partition(&g, k).class_count();
            assert!(classes >= last);
            last = classes;
        }
    }

    #[test]
    fn ak_index_does_not_preserve_pattern_queries() {
        // The Section 4.1 argument: the A(1)-index merges nodes that are
        // 1-bisimilar but not bisimilar, so a query whose answer depends on
        // structure two levels down returns spurious matches when its result
        // on the index graph is expanded back to original nodes.
        //
        // Data: A1 -> B1 -> C and A2 -> B2 -> D. Query: A —(≤2)→ C.
        // True matches for the A query node: {A1} only.
        let g = graph(
            &["A", "A", "B", "B", "C", "D"],
            &[(0, 2), (2, 4), (1, 3), (3, 5)],
        );
        let idx = ak_index(&g, 1);
        let full = compress_b(&g);

        let mut p = Pattern::new();
        let a = p.add_node("A");
        let c = p.add_node("C");
        p.add_edge(a, c, 2);

        let on_g = bounded_match(&g, &p).expect("the original graph matches");
        assert_eq!(on_g.matches_of(a), &[NodeId(0)]);

        // A(1) merges A1 and A2 (both only have B children), so the expanded
        // answer wrongly includes A2.
        assert!(idx.partition.bisimilar(NodeId(0), NodeId(1)));
        let on_ak = bounded_match(&idx.graph, &p).expect("the index graph matches");
        let mut expanded_ak: Vec<NodeId> = on_ak
            .matches_of(a)
            .iter()
            .flat_map(|&blk| idx.partition.members[blk.index()].clone())
            .collect();
        expanded_ak.sort_unstable();
        assert_eq!(
            expanded_ak,
            vec![NodeId(0), NodeId(1)],
            "A(1) false positive"
        );

        // Full-bisimulation compression keeps A1 and A2 apart and the
        // post-processed answer is exact.
        let on_gr = bounded_match(&full.graph, &p).expect("the compressed graph matches");
        let expanded = full.post_process(&on_gr);
        assert_eq!(expanded.matches_of(a), on_g.matches_of(a));
    }

    #[test]
    fn index_graph_is_smaller_than_graph() {
        let g = counterexample();
        let idx = ak_index(&g, 1);
        assert!(idx.graph.node_count() < g.node_count());
        assert_eq!(idx.k, 1);
    }
}
