//! Synthetic graph generators.
//!
//! The paper's synthetic experiments (Exp-2, Exp-4) use a generator
//! "controlled by three parameters: the number of nodes |V|, the number of
//! edges |E|, and the size |L| of the node label set". [`random_graph`]
//! implements exactly that. The dataset emulators additionally need
//! generators with realistic degree skew and community structure:
//! [`power_law_graph`] (preferential attachment, for social networks),
//! [`web_graph`] (hierarchical hosts with a bow-tie core), and
//! [`citation_graph`] (time-ordered near-DAG).

use std::collections::HashSet;

use qpgc_graph::{LabeledGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Edge accumulator for the generators: O(1) expected duplicate detection
/// while drawing (so the accept/reject decisions — and therefore the RNG
/// stream — are identical to inserting into a graph one edge at a time),
/// followed by one bulk sorted-dedup insert via
/// [`LabeledGraph::extend_edges`]. This keeps dataset construction at
/// `O(m log m)` instead of the `O(m·d)` per-insert duplicate scans of
/// repeated `add_edge` calls.
#[derive(Default)]
struct EdgeAcc {
    seen: HashSet<(u32, u32)>,
}

impl EdgeAcc {
    fn with_capacity(m: usize) -> Self {
        EdgeAcc {
            seen: HashSet::with_capacity(m),
        }
    }

    /// Records the edge; `true` if it was new (same contract as
    /// `LabeledGraph::add_edge`).
    fn insert(&mut self, u: u32, v: u32) -> bool {
        self.seen.insert((u, v))
    }

    fn len(&self) -> usize {
        self.seen.len()
    }

    /// Bulk-inserts everything accumulated into `g`. `extend_edges` sorts
    /// the batch, so the set's iteration order is irrelevant to the result.
    fn apply(self, g: &mut LabeledGraph) {
        g.extend_edges(self.seen.into_iter().map(|(u, v)| (NodeId(u), NodeId(v))));
    }
}

/// Parameters shared by the synthetic generators.
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// Number of nodes `|V|`.
    pub nodes: usize,
    /// Target number of edges `|E|`.
    pub edges: usize,
    /// Size of the label alphabet `|L|`.
    pub labels: usize,
    /// RNG seed; the same seed always yields the same graph.
    pub seed: u64,
}

impl SyntheticConfig {
    /// Convenience constructor.
    pub fn new(nodes: usize, edges: usize, labels: usize, seed: u64) -> Self {
        SyntheticConfig {
            nodes,
            edges,
            labels,
            seed,
        }
    }
}

fn label_name(i: usize) -> String {
    format!("L{i}")
}

fn add_labeled_nodes(g: &mut LabeledGraph, n: usize, labels: usize, rng: &mut StdRng) {
    for _ in 0..n {
        let l = if labels <= 1 {
            0
        } else {
            rng.gen_range(0..labels)
        };
        g.add_node_with_label(&label_name(l));
    }
}

/// The paper's plain synthetic generator: `|V|` nodes, `|E|` uniformly
/// random directed edges (without duplicates), `|L|` labels assigned
/// uniformly at random.
pub fn random_graph(cfg: &SyntheticConfig) -> LabeledGraph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut g = LabeledGraph::with_capacity(cfg.nodes);
    add_labeled_nodes(&mut g, cfg.nodes, cfg.labels, &mut rng);
    if cfg.nodes == 0 {
        return g;
    }
    let max_edges = cfg.nodes * cfg.nodes;
    let target = cfg.edges.min(max_edges);
    let mut acc = EdgeAcc::with_capacity(target);
    let mut attempts = 0usize;
    while acc.len() < target && attempts < target * 20 {
        let u = rng.gen_range(0..cfg.nodes) as u32;
        let v = rng.gen_range(0..cfg.nodes) as u32;
        acc.insert(u, v);
        attempts += 1;
    }
    acc.apply(&mut g);
    g
}

/// Preferential-attachment digraph with reciprocity — the social-network
/// emulator. Nodes arrive one at a time; most connect `m ≈ |E|/|V|`
/// out-edges to targets drawn proportionally to (in-degree + 1), while a
/// fraction of "lurker" nodes only follow a single hub and never receive
/// links themselves (real social networks are full of such structurally
/// identical accounts — they are what bisimulation collapses). With
/// probability `0.15` a link is reciprocated, giving the dense-core SCC
/// structure that makes social networks highly compressible for
/// reachability (Table 1's observation).
pub fn power_law_graph(cfg: &SyntheticConfig) -> LabeledGraph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut g = LabeledGraph::with_capacity(cfg.nodes);
    add_labeled_nodes(&mut g, cfg.nodes, cfg.labels, &mut rng);
    if cfg.nodes <= 1 {
        return g;
    }
    let m = (cfg.edges / cfg.nodes.max(1)).max(1);
    let mut acc = EdgeAcc::with_capacity(cfg.edges);
    // Attachment pool: node ids repeated once per incident edge (+1 baseline).
    let mut pool: Vec<u32> = (0..cfg.nodes as u32).collect();
    for v in 1..cfg.nodes {
        let v = v as u32;
        // ~30% of accounts are lurkers: they follow one popular account and
        // are never linked back to.
        let lurker = rng.gen_bool(0.3);
        let budget = if lurker { 1 } else { m };
        for _ in 0..budget {
            if acc.len() >= cfg.edges {
                break;
            }
            let idx = rng.gen_range(0..pool.len());
            let mut target = pool[idx];
            if target >= v {
                target = rng.gen_range(0..v);
            }
            if acc.insert(v, target) {
                pool.push(target);
            }
            // Reciprocity: some social links are mutual (never for lurkers).
            if !lurker && rng.gen_bool(0.15) && acc.insert(target, v) {
                pool.push(v);
            }
        }
    }
    // Top up to the requested edge count with preferential edges from
    // non-lurker nodes.
    let mut attempts = 0;
    while acc.len() < cfg.edges && attempts < cfg.edges * 10 {
        attempts += 1;
        let v = rng.gen_range(1..cfg.nodes) as u32;
        let target = pool[rng.gen_range(0..pool.len())];
        if target != v && acc.insert(v, target) {
            pool.push(target);
        }
    }
    acc.apply(&mut g);
    g
}

/// Hierarchical web-graph emulator: hosts form a tree of directories, pages
/// link mostly within their host (downward and to the host root) plus a few
/// cross-host links, and a small "core" of hub pages links densely both
/// ways (the bow-tie structure of web graphs).
pub fn web_graph(cfg: &SyntheticConfig) -> LabeledGraph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut g = LabeledGraph::with_capacity(cfg.nodes);
    add_labeled_nodes(&mut g, cfg.nodes, cfg.labels, &mut rng);
    if cfg.nodes <= 1 {
        return g;
    }
    let n = cfg.nodes;
    let hosts = (n / 50).max(1);
    let core = (n / 20).max(2).min(n);
    let mut acc = EdgeAcc::with_capacity(cfg.edges);
    // Tree backbone inside each host: node i points to its "parent".
    for i in 1..n {
        let host = i % hosts;
        let parent = if i > hosts { i - hosts } else { host };
        acc.insert(i as u32, parent as u32);
    }
    // Core hub pages link to each other densely.
    for _ in 0..core * 3 {
        let u = rng.gen_range(0..core) as u32;
        let v = rng.gen_range(0..core) as u32;
        acc.insert(u, v);
    }
    // Remaining edges: mostly downward within a host, some cross-host.
    while acc.len() < cfg.edges {
        let u = rng.gen_range(0..n) as u32;
        let v = if rng.gen_bool(0.7) {
            // within-host link
            let host = (u as usize) % hosts;
            let k = (n - host).div_ceil(hosts);
            (host + hosts * rng.gen_range(0..k.max(1))).min(n - 1) as u32
        } else {
            rng.gen_range(0..n) as u32
        };
        acc.insert(u, v);
        if acc.len() + n < cfg.edges && rng.gen_bool(0.05) {
            // occasional backlink to a hub
            let hub = rng.gen_range(0..core) as u32;
            acc.insert(v, hub);
        }
    }
    acc.apply(&mut g);
    g
}

/// Citation-network emulator: node `i` "appears" after node `j < i` and can
/// only cite earlier nodes, with preferential attachment to highly cited
/// papers. The result is a DAG (plus label diversity), matching the low
/// reachability compressibility of citation data in Table 1.
pub fn citation_graph(cfg: &SyntheticConfig) -> LabeledGraph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut g = LabeledGraph::with_capacity(cfg.nodes);
    add_labeled_nodes(&mut g, cfg.nodes, cfg.labels, &mut rng);
    if cfg.nodes <= 1 {
        return g;
    }
    let m = (cfg.edges / cfg.nodes.max(1)).max(1);
    let mut acc = EdgeAcc::with_capacity(cfg.edges);
    let mut pool: Vec<u32> = vec![0];
    for v in 1..cfg.nodes {
        for _ in 0..m {
            if acc.len() >= cfg.edges {
                break;
            }
            let cited = if rng.gen_bool(0.8) {
                pool[rng.gen_range(0..pool.len())]
            } else {
                rng.gen_range(0..v) as u32
            };
            let cited = cited.min(v as u32 - 1);
            if acc.insert(v as u32, cited) {
                pool.push(cited);
            }
        }
        pool.push(v as u32);
    }
    acc.apply(&mut g);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpgc_graph::scc::Condensation;
    use qpgc_graph::GraphStats;

    #[test]
    fn random_graph_matches_parameters() {
        let cfg = SyntheticConfig::new(500, 2000, 10, 1);
        let g = random_graph(&cfg);
        assert_eq!(g.node_count(), 500);
        assert!(g.edge_count() >= 1800, "got {}", g.edge_count());
        assert!(g.label_alphabet_size() <= 10);
        assert!(g.label_alphabet_size() >= 5);
    }

    #[test]
    fn generators_are_deterministic() {
        let cfg = SyntheticConfig::new(200, 800, 5, 42);
        let a = random_graph(&cfg);
        let b = random_graph(&cfg);
        assert_eq!(a.edge_count(), b.edge_count());
        let mut ea: Vec<_> = a.edges().collect();
        let mut eb: Vec<_> = b.edges().collect();
        ea.sort();
        eb.sort();
        assert_eq!(ea, eb);

        let p1 = power_law_graph(&cfg);
        let p2 = power_law_graph(&cfg);
        assert_eq!(
            p1.edges().collect::<Vec<_>>(),
            p2.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_graph(&SyntheticConfig::new(100, 300, 5, 1));
        let b = random_graph(&SyntheticConfig::new(100, 300, 5, 2));
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn power_law_graph_has_degree_skew() {
        let g = power_law_graph(&SyntheticConfig::new(1000, 5000, 8, 7));
        let stats = GraphStats::of(&g);
        assert!(
            stats.max_in_degree > 20,
            "hub expected, got {}",
            stats.max_in_degree
        );
        assert!(g.edge_count() > 2000);
    }

    #[test]
    fn power_law_graph_has_nontrivial_sccs() {
        let g = power_law_graph(&SyntheticConfig::new(500, 3000, 4, 3));
        let cond = Condensation::of(&g);
        assert!(
            cond.component_count() < g.node_count(),
            "reciprocal links should create cycles"
        );
    }

    #[test]
    fn citation_graph_is_acyclic() {
        let g = citation_graph(&SyntheticConfig::new(400, 1500, 20, 9));
        let cond = Condensation::of(&g);
        assert_eq!(cond.component_count(), g.node_count());
        // every edge goes from a later node to an earlier one
        for (u, v) in g.edges() {
            assert!(u.0 > v.0);
        }
    }

    #[test]
    fn web_graph_is_connected_enough() {
        let g = web_graph(&SyntheticConfig::new(600, 2400, 50, 11));
        assert_eq!(g.node_count(), 600);
        assert!(g.edge_count() >= 2400);
        let stats = GraphStats::of(&g);
        assert!(stats.sources < 300);
    }

    #[test]
    fn tiny_and_empty_configs() {
        for gen in [random_graph, power_law_graph, web_graph, citation_graph] {
            let g = gen(&SyntheticConfig::new(0, 0, 1, 0));
            assert_eq!(g.node_count(), 0);
            let g = gen(&SyntheticConfig::new(1, 5, 1, 0));
            assert_eq!(g.node_count(), 1);
        }
    }

    #[test]
    fn label_alphabet_is_respected() {
        let g = random_graph(&SyntheticConfig::new(300, 600, 1, 5));
        assert_eq!(g.label_alphabet_size(), 1);
        let g = citation_graph(&SyntheticConfig::new(300, 900, 67, 5));
        assert!(g.label_alphabet_size() <= 67);
        assert!(g.label_alphabet_size() > 30);
    }
}
