//! Emulators for the real-life datasets of the paper's evaluation.
//!
//! Section 6 evaluates reachability compression on ten graphs (Table 1) and
//! pattern compression on five labeled graphs (Table 2). The originals are
//! SNAP / CAIDA / ArnetMiner downloads; this module regenerates stand-ins
//! with the same topology class, the same label alphabet size and the same
//! edge density, scaled down by `scale` (default 20× smaller) so the full
//! benchmark suite runs in minutes on a laptop. See DESIGN.md §2 for the
//! substitution rationale.

use qpgc_graph::LabeledGraph;

use crate::synthetic::{citation_graph, power_law_graph, random_graph, web_graph, SyntheticConfig};

/// The topology family a dataset belongs to, which decides the generator
/// used to emulate it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetKind {
    /// Online social network (power-law, reciprocal edges, dense core).
    Social,
    /// Web / internet topology graph (hierarchical hosts, bow-tie core).
    Web,
    /// Citation network (time-ordered, near-DAG).
    Citation,
    /// Peer-to-peer overlay (sparse, mildly skewed).
    PeerToPeer,
}

/// Description of one emulated dataset.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Dataset name as used in the paper's tables.
    pub name: &'static str,
    /// Node count of the original dataset.
    pub original_nodes: usize,
    /// Edge count of the original dataset.
    pub original_edges: usize,
    /// Label alphabet size used in the paper (1 when unlabeled).
    pub labels: usize,
    /// Topology family.
    pub kind: DatasetKind,
}

impl DatasetSpec {
    /// Generates the emulated graph at `1/scale` of the original size.
    /// `scale = 1` reproduces the original node/edge counts.
    ///
    /// The label alphabet is scaled with the node count so that the
    /// *nodes-per-label* ratio of the original is preserved (a 100-node
    /// stand-in for a 10 000-node graph with 95 labels keeps ≈ 2 labels,
    /// not 95) — this is what keeps the pattern-compression ratios at small
    /// scale comparable to the paper's full-scale numbers.
    pub fn generate(&self, scale: usize, seed: u64) -> LabeledGraph {
        let scale = scale.max(1);
        let nodes = (self.original_nodes / scale).max(50);
        let edges = (self.original_edges / scale).max(nodes);
        let labels = if self.labels <= 1 {
            1
        } else {
            self.labels
                .min((nodes * self.labels / self.original_nodes).max(2))
        };
        let cfg = SyntheticConfig::new(nodes, edges, labels, seed ^ fxhash(self.name));
        match self.kind {
            DatasetKind::Social => power_law_graph(&cfg),
            DatasetKind::Web => web_graph(&cfg),
            DatasetKind::Citation => citation_graph(&cfg),
            DatasetKind::PeerToPeer => random_graph(&cfg),
        }
    }
}

/// Tiny deterministic string hash so each dataset gets its own seed stream.
fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf29ce484222325, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

/// The ten datasets of Table 1 (reachability preserving compression).
pub const REACHABILITY_DATASETS: &[DatasetSpec] = &[
    DatasetSpec {
        name: "facebook",
        original_nodes: 64_000,
        original_edges: 1_500_000,
        labels: 1,
        kind: DatasetKind::Social,
    },
    DatasetSpec {
        name: "amazon",
        original_nodes: 262_000,
        original_edges: 1_200_000,
        labels: 1,
        kind: DatasetKind::Social,
    },
    DatasetSpec {
        name: "Youtube",
        original_nodes: 155_000,
        original_edges: 796_000,
        labels: 1,
        kind: DatasetKind::Social,
    },
    DatasetSpec {
        name: "wikiVote",
        original_nodes: 7_000,
        original_edges: 104_000,
        labels: 1,
        kind: DatasetKind::Social,
    },
    DatasetSpec {
        name: "wikiTalk",
        original_nodes: 2_400_000,
        original_edges: 5_000_000,
        labels: 1,
        kind: DatasetKind::Social,
    },
    DatasetSpec {
        name: "socEpinions",
        original_nodes: 76_000,
        original_edges: 509_000,
        labels: 1,
        kind: DatasetKind::Social,
    },
    DatasetSpec {
        name: "NotreDame",
        original_nodes: 326_000,
        original_edges: 1_500_000,
        labels: 1,
        kind: DatasetKind::Web,
    },
    DatasetSpec {
        name: "P2P",
        original_nodes: 6_000,
        original_edges: 21_000,
        labels: 1,
        kind: DatasetKind::PeerToPeer,
    },
    DatasetSpec {
        name: "Internet",
        original_nodes: 52_000,
        original_edges: 103_000,
        labels: 247,
        kind: DatasetKind::Web,
    },
    DatasetSpec {
        name: "citHepTh",
        original_nodes: 28_000,
        original_edges: 353_000,
        labels: 1,
        kind: DatasetKind::Citation,
    },
];

/// The six datasets the paper's Fig. 12(d) plots 2-hop index memory for —
/// one list shared by the experiment, its tests, and the perf snapshot so
/// they cannot drift apart.
pub const FIG12D_DATASETS: &[&str] = &[
    "P2P",
    "wikiVote",
    "citHepTh",
    "socEpinions",
    "facebook",
    "NotreDame",
];

/// The five labeled datasets of Table 2 (pattern preserving compression).
pub const PATTERN_DATASETS: &[DatasetSpec] = &[
    DatasetSpec {
        name: "California",
        original_nodes: 10_000,
        original_edges: 16_000,
        labels: 95,
        kind: DatasetKind::Web,
    },
    DatasetSpec {
        name: "Internet",
        original_nodes: 52_000,
        original_edges: 103_000,
        labels: 247,
        kind: DatasetKind::Web,
    },
    DatasetSpec {
        name: "Youtube",
        original_nodes: 155_000,
        original_edges: 796_000,
        labels: 16,
        kind: DatasetKind::Social,
    },
    DatasetSpec {
        name: "Citation",
        original_nodes: 630_000,
        original_edges: 633_000,
        labels: 67,
        kind: DatasetKind::Citation,
    },
    DatasetSpec {
        name: "P2P",
        original_nodes: 6_000,
        original_edges: 21_000,
        labels: 1,
        kind: DatasetKind::PeerToPeer,
    },
];

/// Looks up a Table 1 dataset by name and generates it.
pub fn dataset(name: &str, scale: usize, seed: u64) -> Option<LabeledGraph> {
    REACHABILITY_DATASETS
        .iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
        .map(|d| d.generate(scale, seed))
}

/// Looks up a Table 2 dataset by name and generates it.
pub fn pattern_dataset(name: &str, scale: usize, seed: u64) -> Option<LabeledGraph> {
    PATTERN_DATASETS
        .iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
        .map(|d| d.generate(scale, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_reachability_datasets_generate() {
        for spec in REACHABILITY_DATASETS {
            let g = spec.generate(100, 0);
            assert!(g.node_count() >= 50, "{} too small", spec.name);
            assert!(g.edge_count() > 0, "{} has no edges", spec.name);
        }
    }

    #[test]
    fn all_pattern_datasets_generate_with_labels() {
        for spec in PATTERN_DATASETS {
            let g = spec.generate(50, 0);
            assert!(g.node_count() >= 50);
            assert!(
                g.label_alphabet_size() <= spec.labels,
                "{}: labels {} > {}",
                spec.name,
                g.label_alphabet_size(),
                spec.labels
            );
        }
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert!(dataset("p2p", 10, 0).is_some());
        assert!(dataset("WIKIVOTE", 100, 0).is_some());
        assert!(dataset("unknown", 10, 0).is_none());
        assert!(pattern_dataset("california", 10, 0).is_some());
    }

    #[test]
    fn density_tracks_the_original() {
        for spec in REACHABILITY_DATASETS
            .iter()
            .filter(|s| s.name != "wikiTalk")
        {
            let g = spec.generate(50, 0);
            let original_density = spec.original_edges as f64 / spec.original_nodes as f64;
            let emulated_density = g.edge_count() as f64 / g.node_count() as f64;
            assert!(
                emulated_density > original_density * 0.4
                    && emulated_density < original_density * 2.5,
                "{}: density {:.2} vs original {:.2}",
                spec.name,
                emulated_density,
                original_density
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = dataset("P2P", 10, 7).unwrap();
        let b = dataset("P2P", 10, 7).unwrap();
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn scale_one_matches_original_size() {
        // Only check the smallest dataset at full scale to keep tests fast.
        let spec = REACHABILITY_DATASETS
            .iter()
            .find(|s| s.name == "P2P")
            .unwrap();
        let g = spec.generate(1, 0);
        assert_eq!(g.node_count(), spec.original_nodes);
    }
}
