//! # qpgc-generators
//!
//! Workload generation for the *query preserving graph compression*
//! reproduction: synthetic graph generators, emulators for the real-life
//! datasets used in the paper's evaluation (Section 6), pattern-query
//! generation, graph-evolution models, and update-batch generation.
//!
//! The paper evaluates on graphs downloaded from SNAP / CAIDA / ArnetMiner.
//! Those downloads are not available offline, so [`datasets`] provides a
//! deterministic emulator per dataset that matches the topology *class*
//! (power-law social network, bow-tie web graph, near-DAG citation network,
//! sparse P2P overlay), the label alphabet size and the edge density of the
//! original, scaled down by a configurable factor. DESIGN.md §2 documents
//! why this preserves the shape of the paper's results.
//!
//! All generators are deterministic given their seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod evolution;
pub mod pattern_gen;
pub mod synthetic;
pub mod updates;

pub use datasets::{
    dataset, pattern_dataset, DatasetKind, DatasetSpec, PATTERN_DATASETS, REACHABILITY_DATASETS,
};
pub use pattern_gen::{random_pattern, PatternGenConfig};
pub use synthetic::{citation_graph, power_law_graph, random_graph, web_graph, SyntheticConfig};
pub use updates::{delete_batch, insert_batch, mixed_batch, preferential_insert_batch};
