//! Graph evolution models for Exp-4 (Figures 12(i)–12(l)).
//!
//! Two growth models are used:
//!
//! * the **densification law** of Leskovec et al. for synthetic graphs: at
//!   every iteration the node count grows to `β · |Vi|` and the edge count
//!   to `|V_{i+1}|^α`, with `α ∈ {1.05, 1.10}` and `β = 1.2` in the paper;
//! * **power-law edge growth** for the real-life emulations: in each step
//!   the edge count grows by a fixed rate (5 % in the paper) and 80 % of the
//!   new edges attach to high-degree nodes.
//!
//! Both are expressed as functions that *extend an existing graph in place*
//! and return the batch of insertions performed, so they double as workload
//! generators for the incremental-maintenance experiments.

use qpgc_graph::{LabeledGraph, NodeId, UpdateBatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the densification-law evolution.
#[derive(Clone, Debug)]
pub struct DensificationConfig {
    /// Densification exponent `α` (edges = nodes^α).
    pub alpha: f64,
    /// Node growth factor `β` per iteration.
    pub beta: f64,
    /// Label alphabet size for newly created nodes.
    pub labels: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DensificationConfig {
    fn default() -> Self {
        DensificationConfig {
            alpha: 1.05,
            beta: 1.2,
            labels: 10,
            seed: 0,
        }
    }
}

/// Performs one densification iteration: grows the node set by `β` and adds
/// uniformly random edges until `|E| = |V|^α`. Returns the insertions made.
pub fn densification_step(
    g: &mut LabeledGraph,
    cfg: &DensificationConfig,
    iteration: u64,
) -> UpdateBatch {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(iteration));
    let old_nodes = g.node_count();
    let new_nodes = ((old_nodes as f64 * cfg.beta).ceil() as usize).max(old_nodes + 1);
    for i in old_nodes..new_nodes {
        let l = i % cfg.labels.max(1);
        g.add_node_with_label(&format!("L{l}"));
    }
    let target_edges = (new_nodes as f64).powf(cfg.alpha).ceil() as usize;
    let mut batch = UpdateBatch::new();
    let mut attempts = 0usize;
    while g.edge_count() < target_edges && attempts < target_edges * 20 {
        let u = rng.gen_range(0..new_nodes) as u32;
        let v = rng.gen_range(0..new_nodes) as u32;
        if g.add_edge(NodeId(u), NodeId(v)) {
            batch.insert(NodeId(u), NodeId(v));
        }
        attempts += 1;
    }
    batch
}

/// Parameters of the power-law edge-growth model used on the real-life
/// emulations.
#[derive(Clone, Debug)]
pub struct PowerLawGrowthConfig {
    /// Fraction of `|E|` added per step (the paper uses 0.05).
    pub edge_growth_rate: f64,
    /// Probability that a new edge attaches to a high-degree node (0.8).
    pub high_degree_bias: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PowerLawGrowthConfig {
    fn default() -> Self {
        PowerLawGrowthConfig {
            edge_growth_rate: 0.05,
            high_degree_bias: 0.8,
            seed: 0,
        }
    }
}

/// Performs one power-law growth step: adds `rate · |E|` edges, attaching
/// each with probability `high_degree_bias` to one of the top-degree nodes.
/// Returns the insertions made.
pub fn power_law_growth_step(
    g: &mut LabeledGraph,
    cfg: &PowerLawGrowthConfig,
    iteration: u64,
) -> UpdateBatch {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(iteration));
    let n = g.node_count();
    let mut batch = UpdateBatch::new();
    if n < 2 {
        return batch;
    }
    let to_add = ((g.edge_count() as f64) * cfg.edge_growth_rate).ceil() as usize;

    // The "high degree" pool: the top ~5% of nodes by total degree.
    let mut by_degree: Vec<NodeId> = g.nodes().collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(g.out_degree(v) + g.in_degree(v)));
    let pool = &by_degree[..(n / 20).max(1)];

    let mut attempts = 0usize;
    while batch.len() < to_add && attempts < to_add * 20 {
        attempts += 1;
        let u = NodeId(rng.gen_range(0..n) as u32);
        let v = if rng.gen_bool(cfg.high_degree_bias) {
            pool[rng.gen_range(0..pool.len())]
        } else {
            NodeId(rng.gen_range(0..n) as u32)
        };
        if u != v && g.add_edge(u, v) {
            batch.insert(u, v);
        }
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{power_law_graph, SyntheticConfig};

    #[test]
    fn densification_grows_nodes_and_edges() {
        let mut g = LabeledGraph::new();
        for i in 0..100 {
            g.add_node_with_label(&format!("L{}", i % 5));
        }
        let cfg = DensificationConfig {
            alpha: 1.1,
            beta: 1.2,
            labels: 5,
            seed: 3,
        };
        let before_nodes = g.node_count();
        let before_edges = g.edge_count();
        let batch = densification_step(&mut g, &cfg, 0);
        assert!(g.node_count() > before_nodes);
        assert!(g.edge_count() > before_edges);
        assert_eq!(batch.len(), g.edge_count() - before_edges);
        // edges ≈ nodes^alpha
        let expected = (g.node_count() as f64).powf(1.1);
        assert!((g.edge_count() as f64) >= expected * 0.9);
    }

    #[test]
    fn densification_is_deterministic() {
        let make = || {
            let mut g = LabeledGraph::new();
            for i in 0..50 {
                g.add_node_with_label(&format!("L{}", i % 3));
            }
            let cfg = DensificationConfig::default();
            densification_step(&mut g, &cfg, 1);
            g
        };
        let a = make();
        let b = make();
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn power_law_growth_adds_requested_fraction() {
        let mut g = power_law_graph(&SyntheticConfig::new(500, 2500, 5, 1));
        let before = g.edge_count();
        let cfg = PowerLawGrowthConfig::default();
        let batch = power_law_growth_step(&mut g, &cfg, 0);
        assert!(!batch.is_empty());
        assert!(g.edge_count() > before);
        let expected = (before as f64 * 0.05) as usize;
        assert!(
            batch.len() >= expected / 2,
            "added {} of ~{expected}",
            batch.len()
        );
    }

    #[test]
    fn power_law_growth_prefers_hubs() {
        let mut g = power_law_graph(&SyntheticConfig::new(400, 2000, 5, 2));
        let mut by_degree: Vec<NodeId> = g.nodes().collect();
        by_degree.sort_by_key(|&v| std::cmp::Reverse(g.out_degree(v) + g.in_degree(v)));
        let hubs: std::collections::HashSet<NodeId> = by_degree[..20].iter().copied().collect();
        let cfg = PowerLawGrowthConfig {
            edge_growth_rate: 0.2,
            high_degree_bias: 0.8,
            seed: 5,
        };
        let batch = power_law_growth_step(&mut g, &cfg, 0);
        let to_hubs = batch
            .updates()
            .iter()
            .filter(|u| hubs.contains(&u.edge().1))
            .count();
        assert!(
            to_hubs * 2 > batch.len(),
            "expected most edges to target hubs ({to_hubs}/{})",
            batch.len()
        );
    }

    #[test]
    fn growth_on_tiny_graph_is_safe() {
        let mut g = LabeledGraph::new();
        g.add_node_with_label("A");
        let batch = power_law_growth_step(&mut g, &PowerLawGrowthConfig::default(), 0);
        assert!(batch.is_empty());
    }
}
