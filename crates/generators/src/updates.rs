//! Update-batch generation (`ΔG`) for the incremental-maintenance
//! experiments (Exp-3, Figures 12(e)–(h)).

use qpgc_graph::{LabeledGraph, NodeId, UpdateBatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a batch of `count` edge insertions between uniformly random
/// node pairs that are not currently connected by an edge.
pub fn insert_batch(g: &LabeledGraph, count: usize, seed: u64) -> UpdateBatch {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.node_count();
    let mut batch = UpdateBatch::new();
    if n < 2 {
        return batch;
    }
    let mut attempts = 0;
    while batch.len() < count && attempts < count * 30 + 100 {
        attempts += 1;
        let u = NodeId(rng.gen_range(0..n) as u32);
        let v = NodeId(rng.gen_range(0..n) as u32);
        if u != v && !g.has_edge(u, v) {
            batch.insert(u, v);
        }
    }
    batch
}

/// Generates a batch of `count` insertions where 80 % of the edges attach to
/// high-degree nodes (the paper's power-law growth assumption for real-life
/// graphs).
pub fn preferential_insert_batch(g: &LabeledGraph, count: usize, seed: u64) -> UpdateBatch {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.node_count();
    let mut batch = UpdateBatch::new();
    if n < 2 {
        return batch;
    }
    let mut by_degree: Vec<NodeId> = g.nodes().collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(g.out_degree(v) + g.in_degree(v)));
    let pool = &by_degree[..(n / 20).max(1)];
    let mut attempts = 0;
    while batch.len() < count && attempts < count * 30 + 100 {
        attempts += 1;
        let u = NodeId(rng.gen_range(0..n) as u32);
        let v = if rng.gen_bool(0.8) {
            pool[rng.gen_range(0..pool.len())]
        } else {
            NodeId(rng.gen_range(0..n) as u32)
        };
        if u != v && !g.has_edge(u, v) {
            batch.insert(u, v);
        }
    }
    batch
}

/// Generates a batch of `count` deletions of uniformly random existing edges
/// (without repetition).
pub fn delete_batch(g: &LabeledGraph, count: usize, seed: u64) -> UpdateBatch {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    let mut batch = UpdateBatch::new();
    let count = count.min(edges.len());
    // Partial Fisher–Yates shuffle.
    for i in 0..count {
        let j = rng.gen_range(i..edges.len());
        edges.swap(i, j);
        let (u, v) = edges[i];
        batch.delete(u, v);
    }
    batch
}

/// Generates a mixed batch of **cone-local** updates: roughly half
/// insertions of absent edges and half deletions of existing ones, with
/// every update source drawn from nodes whose proper *ancestor* cone spans
/// at most `cone_cap` SCCs and every update target from nodes whose proper
/// *descendant* cone does.
///
/// Cone-local updates are the small-affected-region regime of incremental
/// maintenance: for an update `(u, w)` the affected area of `incRCM` is
/// `anc([u]) ∪ desc([w])` plus the endpoint classes, so bounding both
/// cones bounds the churn of every batch. On the emulated datasets the
/// overwhelming majority of nodes qualifies even for single-digit caps
/// (scale-free graphs concentrate the giant cones in a few hub SCCs), so
/// this is also what ordinary localized growth looks like — in contrast
/// to [`mixed_batch`]'s uniformly random endpoints, which hit a giant-cone
/// hub every few draws, churn most of the quotient, and are therefore
/// correctly routed to full snapshot rebuilds by the serving layer's
/// damage threshold.
///
/// Cone sizes are measured on the SCC condensation with the chunked
/// reach-set sweep (`O(|Vscc|²/w)` — affordable at bench scales; this is a
/// generator, not a hot path).
pub fn local_batch(g: &LabeledGraph, count: usize, cone_cap: u64, seed: u64) -> UpdateBatch {
    use qpgc_graph::reach_sets::{DagReach, DEFAULT_CHUNK};
    use qpgc_graph::scc::Condensation;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut batch = UpdateBatch::new();
    if g.node_count() < 2 {
        return batch;
    }
    let cond = Condensation::of(g);
    let dag = DagReach::from_condensation(&cond);
    let nc = cond.component_count();
    let mut desc = vec![0u64; nc];
    let mut anc = vec![0u64; nc];
    for cols in dag.chunks(DEFAULT_CHUNK) {
        let d = dag.descendants_chunk(cols.clone());
        let a = dag.ancestors_chunk(cols.clone());
        for c in 0..nc {
            desc[c] += d[c].count_ones() as u64;
            anc[c] += a[c].count_ones() as u64;
        }
    }
    let low_anc: Vec<NodeId> = g
        .nodes()
        .filter(|&v| anc[cond.component_of(v) as usize] <= cone_cap)
        .collect();
    let low_desc_ok = |w: NodeId| desc[cond.component_of(w) as usize] <= cone_cap;
    let low_desc: Vec<NodeId> = g.nodes().filter(|&w| low_desc_ok(w)).collect();
    if low_anc.is_empty() || low_desc.is_empty() {
        return batch;
    }
    // Existing edges with qualifying endpoints are the deletion candidates.
    let mut deletable: Vec<(NodeId, NodeId)> = low_anc
        .iter()
        .flat_map(|&u| {
            g.out_neighbors(u)
                .iter()
                .filter(|&&w| low_desc_ok(w))
                .map(move |&w| (u, w))
        })
        .collect();
    let mut attempts = 0;
    while batch.len() < count && attempts < count * 30 + 100 {
        attempts += 1;
        let delete = !deletable.is_empty() && rng.gen_bool(0.5);
        if delete {
            let i = rng.gen_range(0..deletable.len());
            let (u, w) = deletable.swap_remove(i);
            batch.delete(u, w);
        } else {
            let u = low_anc[rng.gen_range(0..low_anc.len())];
            let w = low_desc[rng.gen_range(0..low_desc.len())];
            if u != w && !g.has_edge(u, w) {
                batch.insert(u, w);
            }
        }
    }
    batch
}

/// Generates a mixed batch with roughly half insertions and half deletions.
pub fn mixed_batch(g: &LabeledGraph, count: usize, seed: u64) -> UpdateBatch {
    let ins = insert_batch(g, count / 2 + count % 2, seed ^ 0x5ee1);
    let del = delete_batch(g, count / 2, seed ^ 0xde15);
    let mut batch = UpdateBatch::new();
    let mut ins_iter = ins.updates().iter();
    let mut del_iter = del.updates().iter();
    // Interleave so the batch exercises both paths in arbitrary order.
    loop {
        match (ins_iter.next(), del_iter.next()) {
            (None, None) => break,
            (a, b) => {
                if let Some(u) = a {
                    batch.insert(u.edge().0, u.edge().1);
                }
                if let Some(u) = b {
                    batch.delete(u.edge().0, u.edge().1);
                }
            }
        }
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{power_law_graph, random_graph, SyntheticConfig};

    fn data() -> LabeledGraph {
        random_graph(&SyntheticConfig::new(300, 1200, 5, 3))
    }

    #[test]
    fn insert_batch_only_adds_new_edges() {
        let g = data();
        let b = insert_batch(&g, 50, 1);
        assert_eq!(b.len(), 50);
        for u in b.updates() {
            assert!(u.is_insert());
            let (a, c) = u.edge();
            assert!(!g.has_edge(a, c));
        }
    }

    #[test]
    fn delete_batch_only_removes_existing_edges() {
        let g = data();
        let b = delete_batch(&g, 40, 2);
        assert_eq!(b.len(), 40);
        let mut seen = std::collections::HashSet::new();
        for u in b.updates() {
            assert!(!u.is_insert());
            assert!(g.has_edge(u.edge().0, u.edge().1));
            assert!(seen.insert(u.edge()), "duplicate deletion");
        }
    }

    #[test]
    fn delete_batch_caps_at_edge_count() {
        let g = random_graph(&SyntheticConfig::new(10, 12, 2, 0));
        let b = delete_batch(&g, 1000, 0);
        assert_eq!(b.len(), g.edge_count());
    }

    #[test]
    fn mixed_batch_has_both_kinds() {
        let g = data();
        let b = mixed_batch(&g, 30, 5);
        let (ins, del) = b.split();
        assert!(!ins.is_empty());
        assert!(!del.is_empty());
        assert!(b.len() >= 28);
    }

    #[test]
    fn preferential_insert_targets_hubs() {
        let g = power_law_graph(&SyntheticConfig::new(400, 2400, 3, 9));
        let mut by_degree: Vec<NodeId> = g.nodes().collect();
        by_degree.sort_by_key(|&v| std::cmp::Reverse(g.out_degree(v) + g.in_degree(v)));
        let hubs: std::collections::HashSet<NodeId> = by_degree[..20].iter().copied().collect();
        let b = preferential_insert_batch(&g, 100, 4);
        let hub_hits = b
            .updates()
            .iter()
            .filter(|u| hubs.contains(&u.edge().1))
            .count();
        assert!(hub_hits > b.len() / 2);
    }

    #[test]
    fn local_batch_bounds_endpoint_cones() {
        use qpgc_graph::reach_sets::DagReach;
        use qpgc_graph::scc::Condensation;
        let g = data();
        let cap = 8u64;
        let b = local_batch(&g, 40, cap, 9);
        assert!(!b.is_empty());
        // Recompute the SCC cone sizes the generator bounds against.
        let cond = Condensation::of(&g);
        let dag = DagReach::from_condensation(&cond);
        let desc_sets = dag.full_descendants();
        let anc_sets = dag.full_ancestors();
        for u in b.updates() {
            let (a, w) = u.edge();
            assert!(
                anc_sets[cond.component_of(a) as usize].count_ones() as u64 <= cap,
                "update source {a} has a large ancestor cone"
            );
            assert!(
                desc_sets[cond.component_of(w) as usize].count_ones() as u64 <= cap,
                "update target {w} has a large descendant cone"
            );
            if !u.is_insert() {
                assert!(g.has_edge(a, w));
            }
        }
        assert_eq!(local_batch(&g, 40, cap, 9), local_batch(&g, 40, cap, 9));
        // Degenerate graphs yield an empty batch, not a hang.
        let mut tiny = LabeledGraph::new();
        tiny.add_node_with_label("X");
        assert!(local_batch(&tiny, 5, 8, 0).is_empty());
    }

    #[test]
    fn batches_are_deterministic() {
        let g = data();
        assert_eq!(insert_batch(&g, 20, 7), insert_batch(&g, 20, 7));
        assert_eq!(delete_batch(&g, 20, 7), delete_batch(&g, 20, 7));
        assert_eq!(mixed_batch(&g, 20, 7), mixed_batch(&g, 20, 7));
    }

    #[test]
    fn tiny_graphs_are_safe() {
        let mut g = LabeledGraph::new();
        g.add_node_with_label("A");
        assert!(insert_batch(&g, 5, 0).is_empty());
        assert!(delete_batch(&g, 5, 0).is_empty());
        assert!(preferential_insert_batch(&g, 5, 0).is_empty());
    }
}
