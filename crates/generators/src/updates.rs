//! Update-batch generation (`ΔG`) for the incremental-maintenance
//! experiments (Exp-3, Figures 12(e)–(h)).

use qpgc_graph::{LabeledGraph, NodeId, UpdateBatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a batch of `count` edge insertions between uniformly random
/// node pairs that are not currently connected by an edge.
pub fn insert_batch(g: &LabeledGraph, count: usize, seed: u64) -> UpdateBatch {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.node_count();
    let mut batch = UpdateBatch::new();
    if n < 2 {
        return batch;
    }
    let mut attempts = 0;
    while batch.len() < count && attempts < count * 30 + 100 {
        attempts += 1;
        let u = NodeId(rng.gen_range(0..n) as u32);
        let v = NodeId(rng.gen_range(0..n) as u32);
        if u != v && !g.has_edge(u, v) {
            batch.insert(u, v);
        }
    }
    batch
}

/// Generates a batch of `count` insertions where 80 % of the edges attach to
/// high-degree nodes (the paper's power-law growth assumption for real-life
/// graphs).
pub fn preferential_insert_batch(g: &LabeledGraph, count: usize, seed: u64) -> UpdateBatch {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.node_count();
    let mut batch = UpdateBatch::new();
    if n < 2 {
        return batch;
    }
    let mut by_degree: Vec<NodeId> = g.nodes().collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(g.out_degree(v) + g.in_degree(v)));
    let pool = &by_degree[..(n / 20).max(1)];
    let mut attempts = 0;
    while batch.len() < count && attempts < count * 30 + 100 {
        attempts += 1;
        let u = NodeId(rng.gen_range(0..n) as u32);
        let v = if rng.gen_bool(0.8) {
            pool[rng.gen_range(0..pool.len())]
        } else {
            NodeId(rng.gen_range(0..n) as u32)
        };
        if u != v && !g.has_edge(u, v) {
            batch.insert(u, v);
        }
    }
    batch
}

/// Generates a batch of `count` deletions of uniformly random existing edges
/// (without repetition).
pub fn delete_batch(g: &LabeledGraph, count: usize, seed: u64) -> UpdateBatch {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    let mut batch = UpdateBatch::new();
    let count = count.min(edges.len());
    // Partial Fisher–Yates shuffle.
    for i in 0..count {
        let j = rng.gen_range(i..edges.len());
        edges.swap(i, j);
        let (u, v) = edges[i];
        batch.delete(u, v);
    }
    batch
}

/// Generates a mixed batch with roughly half insertions and half deletions.
pub fn mixed_batch(g: &LabeledGraph, count: usize, seed: u64) -> UpdateBatch {
    let ins = insert_batch(g, count / 2 + count % 2, seed ^ 0x5ee1);
    let del = delete_batch(g, count / 2, seed ^ 0xde15);
    let mut batch = UpdateBatch::new();
    let mut ins_iter = ins.updates().iter();
    let mut del_iter = del.updates().iter();
    // Interleave so the batch exercises both paths in arbitrary order.
    loop {
        match (ins_iter.next(), del_iter.next()) {
            (None, None) => break,
            (a, b) => {
                if let Some(u) = a {
                    batch.insert(u.edge().0, u.edge().1);
                }
                if let Some(u) = b {
                    batch.delete(u.edge().0, u.edge().1);
                }
            }
        }
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{power_law_graph, random_graph, SyntheticConfig};

    fn data() -> LabeledGraph {
        random_graph(&SyntheticConfig::new(300, 1200, 5, 3))
    }

    #[test]
    fn insert_batch_only_adds_new_edges() {
        let g = data();
        let b = insert_batch(&g, 50, 1);
        assert_eq!(b.len(), 50);
        for u in b.updates() {
            assert!(u.is_insert());
            let (a, c) = u.edge();
            assert!(!g.has_edge(a, c));
        }
    }

    #[test]
    fn delete_batch_only_removes_existing_edges() {
        let g = data();
        let b = delete_batch(&g, 40, 2);
        assert_eq!(b.len(), 40);
        let mut seen = std::collections::HashSet::new();
        for u in b.updates() {
            assert!(!u.is_insert());
            assert!(g.has_edge(u.edge().0, u.edge().1));
            assert!(seen.insert(u.edge()), "duplicate deletion");
        }
    }

    #[test]
    fn delete_batch_caps_at_edge_count() {
        let g = random_graph(&SyntheticConfig::new(10, 12, 2, 0));
        let b = delete_batch(&g, 1000, 0);
        assert_eq!(b.len(), g.edge_count());
    }

    #[test]
    fn mixed_batch_has_both_kinds() {
        let g = data();
        let b = mixed_batch(&g, 30, 5);
        let (ins, del) = b.split();
        assert!(!ins.is_empty());
        assert!(!del.is_empty());
        assert!(b.len() >= 28);
    }

    #[test]
    fn preferential_insert_targets_hubs() {
        let g = power_law_graph(&SyntheticConfig::new(400, 2400, 3, 9));
        let mut by_degree: Vec<NodeId> = g.nodes().collect();
        by_degree.sort_by_key(|&v| std::cmp::Reverse(g.out_degree(v) + g.in_degree(v)));
        let hubs: std::collections::HashSet<NodeId> = by_degree[..20].iter().copied().collect();
        let b = preferential_insert_batch(&g, 100, 4);
        let hub_hits = b
            .updates()
            .iter()
            .filter(|u| hubs.contains(&u.edge().1))
            .count();
        assert!(hub_hits > b.len() / 2);
    }

    #[test]
    fn batches_are_deterministic() {
        let g = data();
        assert_eq!(insert_batch(&g, 20, 7), insert_batch(&g, 20, 7));
        assert_eq!(delete_batch(&g, 20, 7), delete_batch(&g, 20, 7));
        assert_eq!(mixed_batch(&g, 20, 7), mixed_batch(&g, 20, 7));
    }

    #[test]
    fn tiny_graphs_are_safe() {
        let mut g = LabeledGraph::new();
        g.add_node_with_label("A");
        assert!(insert_batch(&g, 5, 0).is_empty());
        assert!(delete_batch(&g, 5, 0).is_empty());
        assert!(preferential_insert_batch(&g, 5, 0).is_empty());
    }
}
