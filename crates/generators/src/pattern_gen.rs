//! Random graph pattern generation (the paper's "pattern generator",
//! Section 6, controlled by `(Vp, Ep, Lp, k)`).

use qpgc_graph::LabeledGraph;
use qpgc_pattern::pattern::Pattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the pattern generator.
#[derive(Clone, Debug)]
pub struct PatternGenConfig {
    /// Number of pattern nodes `|Vp|`.
    pub nodes: usize,
    /// Number of pattern edges `|Ep|`.
    pub edges: usize,
    /// Upper bound `k` on finite edge bounds; a small fraction of edges get
    /// the `*` bound when `allow_unbounded` is set.
    pub max_bound: u32,
    /// Whether to sprinkle `*` bounds (10 % of edges).
    pub allow_unbounded: bool,
    /// RNG seed.
    pub seed: u64,
}

impl PatternGenConfig {
    /// The `(Vp, Ep, k)` triple notation used in the paper's figures.
    pub fn new(nodes: usize, edges: usize, max_bound: u32, seed: u64) -> Self {
        PatternGenConfig {
            nodes,
            edges,
            max_bound,
            allow_unbounded: false,
            seed,
        }
    }
}

/// Generates a random connected pattern whose node labels are drawn from the
/// labels actually present in `g` (so the pattern has a chance to match).
///
/// The pattern's underlying shape is a random tree over its nodes plus extra
/// random edges up to `cfg.edges`, which mirrors how the paper's patterns
/// are described (small connected queries of 3–8 nodes).
pub fn random_pattern(g: &LabeledGraph, cfg: &PatternGenConfig) -> Pattern {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut pattern = Pattern::new();
    if cfg.nodes == 0 {
        return pattern;
    }

    // Collect the label vocabulary of the data graph (by name).
    let mut names: Vec<String> = Vec::new();
    for v in g.nodes() {
        if let Some(name) = g.label_name(v) {
            if !names.contains(&name.to_string()) {
                names.push(name.to_string());
            }
        }
        if names.len() > 64 {
            break;
        }
    }
    if names.is_empty() {
        names.push("_".to_string());
    }

    for _ in 0..cfg.nodes {
        let name = &names[rng.gen_range(0..names.len())];
        pattern.add_node(name);
    }

    let bound = |rng: &mut StdRng| {
        if cfg.allow_unbounded && rng.gen_bool(0.1) {
            None
        } else {
            Some(rng.gen_range(1..=cfg.max_bound.max(1)))
        }
    };

    // Tree backbone keeps the pattern connected.
    let mut edge_count = 0;
    for v in 1..cfg.nodes as u32 {
        let parent = rng.gen_range(0..v);
        match bound(&mut rng) {
            Some(k) => pattern.add_edge(parent, v, k),
            None => pattern.add_edge_unbounded(parent, v),
        };
        edge_count += 1;
    }
    // Extra edges.
    let mut attempts = 0;
    while edge_count < cfg.edges && attempts < cfg.edges * 10 {
        attempts += 1;
        let a = rng.gen_range(0..cfg.nodes as u32);
        let b = rng.gen_range(0..cfg.nodes as u32);
        if a == b {
            continue;
        }
        match bound(&mut rng) {
            Some(k) => pattern.add_edge(a, b, k),
            None => pattern.add_edge_unbounded(a, b),
        };
        edge_count += 1;
    }
    pattern
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{random_graph, SyntheticConfig};
    use qpgc_pattern::pattern::EdgeBound;

    fn data() -> LabeledGraph {
        random_graph(&SyntheticConfig::new(200, 800, 10, 1))
    }

    #[test]
    fn pattern_has_requested_shape() {
        let g = data();
        let p = random_pattern(&g, &PatternGenConfig::new(5, 7, 3, 42));
        assert_eq!(p.node_count(), 5);
        assert!(p.edge_count() >= 4); // at least the spanning tree
        assert!(p.edge_count() <= 7);
        for &(_, _, b) in p.edges() {
            match b {
                EdgeBound::Bounded(k) => assert!((1..=3).contains(&k)),
                EdgeBound::Unbounded => panic!("unbounded not requested"),
            }
        }
    }

    #[test]
    fn labels_come_from_the_data_graph() {
        let g = data();
        let p = random_pattern(&g, &PatternGenConfig::new(6, 6, 2, 7));
        for u in p.nodes() {
            assert!(
                g.interner().get(p.label(u)).is_some(),
                "label {} not in data graph",
                p.label(u)
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let g = data();
        let cfg = PatternGenConfig::new(4, 5, 3, 11);
        assert_eq!(random_pattern(&g, &cfg), random_pattern(&g, &cfg));
    }

    #[test]
    fn unbounded_edges_appear_when_allowed() {
        let g = data();
        let mut cfg = PatternGenConfig::new(8, 20, 3, 5);
        cfg.allow_unbounded = true;
        let mut saw_unbounded = false;
        for seed in 0..20 {
            cfg.seed = seed;
            let p = random_pattern(&g, &cfg);
            if p.edges().iter().any(|&(_, _, b)| b == EdgeBound::Unbounded) {
                saw_unbounded = true;
                break;
            }
        }
        assert!(saw_unbounded);
    }

    #[test]
    fn empty_pattern_config() {
        let g = data();
        let p = random_pattern(&g, &PatternGenConfig::new(0, 0, 1, 0));
        assert_eq!(p.node_count(), 0);
    }
}
