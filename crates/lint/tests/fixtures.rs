//! Fixture corpus tests: every rule is pinned by at least one positive
//! (violating) and one negative (clean) miniature workspace under
//! `crates/lint/fixtures/`, with exact diagnostics — rule id, relative
//! file, line — asserted. A drift meta-test injects a fake `fail_point!`
//! site into a temp tree and checks both registry directions, and a final
//! self-check runs the linter over the real workspace and requires it
//! clean (the same bar the CI `static-analysis` gate enforces).

use std::path::{Path, PathBuf};

use qpgc_lint::engine::run_root;
use qpgc_lint::Finding;

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

/// The (rule, file, line) triples of `findings`, in engine order.
fn pins(findings: &[Finding]) -> Vec<(&'static str, &str, usize)> {
    findings
        .iter()
        .map(|f| (f.rule, f.file.as_str(), f.line))
        .collect()
}

#[test]
fn lock_hygiene_flags_bare_unwrap_and_expect() {
    let findings = run_root(&fixture_root("lock/bad"));
    assert_eq!(
        pins(&findings),
        [
            ("lock-hygiene", "crates/s/src/store.rs", 4),
            ("lock-hygiene", "crates/s/src/store.rs", 5),
            ("lock-hygiene", "crates/s/src/store.rs", 6),
        ]
    );
    assert!(
        findings[0].message.contains("PoisonError::into_inner"),
        "message must name the recovery idiom: {}",
        findings[0].message
    );
}

#[test]
fn lock_hygiene_accepts_poison_recovery() {
    assert_eq!(pins(&run_root(&fixture_root("lock/ok"))), []);
}

#[test]
fn determinism_flags_unsorted_hash_iteration_in_scope() {
    let findings = run_root(&fixture_root("det/bad"));
    assert_eq!(
        pins(&findings),
        [
            (
                "deterministic-iteration",
                "crates/reachability/src/incremental.rs",
                5
            ),
            (
                "deterministic-iteration",
                "crates/reachability/src/incremental.rs",
                8
            ),
        ]
    );
}

#[test]
fn determinism_accepts_sorted_chains_and_justified_pragmas() {
    assert_eq!(pins(&run_root(&fixture_root("det/ok"))), []);
}

#[test]
fn timing_gate_flags_ungated_wall_clock_asserts() {
    let findings = run_root(&fixture_root("timing/bad"));
    assert_eq!(pins(&findings), [("timing-gate", "tests/tests/t.rs", 7)]);
    assert!(findings[0].message.contains("QPGC_TIMING_TESTS"));
}

#[test]
fn timing_gate_accepts_env_gated_functions() {
    assert_eq!(pins(&run_root(&fixture_root("timing/ok"))), []);
}

#[test]
fn failpoint_registry_flags_both_directions() {
    let findings = run_root(&fixture_root("registry/bad"));
    assert_eq!(
        pins(&findings),
        [
            ("failpoint-registry", "crates/serve/src/a.rs", 2),
            ("failpoint-registry", "tests/tests/fault_injection.rs", 1),
        ]
    );
    assert!(findings[0].message.contains("store/ghost"), "unarmed site");
    assert!(
        findings[1].message.contains("store/armed_but_dead"),
        "dead armed site"
    );
}

#[test]
fn failpoint_registry_accepts_matched_sites() {
    assert_eq!(pins(&run_root(&fixture_root("registry/ok"))), []);
}

#[test]
fn bench_schema_flags_both_directions() {
    let findings = run_root(&fixture_root("bench/bad"));
    assert_eq!(
        pins(&findings),
        [
            ("bench-schema", ".github/workflows/ci.yml", 7),
            ("bench-schema", "crates/bench/src/perf.rs", 6),
        ]
    );
    assert!(findings[0].message.contains("ghost_key"), "dead grep");
    assert!(
        findings[1].message.contains("unsmoked"),
        "ungrepped section"
    );
}

#[test]
fn bench_schema_accepts_matched_keys_and_ignores_placeholders() {
    // The ok fixture emits a `  "scale": {}` format! placeholder on purpose:
    // it must not be read as an (ungrepped) section.
    assert_eq!(pins(&run_root(&fixture_root("bench/ok"))), []);
}

#[test]
fn hygiene_flags_missing_forbid_and_banned_macros() {
    let findings = run_root(&fixture_root("hygiene/bad"));
    assert_eq!(
        pins(&findings),
        [
            ("hygiene", "crates/x/src/lib.rs", 1),
            ("hygiene", "crates/x/src/lib.rs", 2),
            ("hygiene", "crates/x/src/lib.rs", 3),
            ("hygiene", "crates/x/src/lib.rs", 7),
        ]
    );
    assert!(findings[0].message.contains("forbid(unsafe_code)"));
}

#[test]
fn hygiene_accepts_forbidding_roots_bins_and_test_modules() {
    assert_eq!(pins(&run_root(&fixture_root("hygiene/ok"))), []);
}

#[test]
fn pragma_hygiene_flags_unjustified_unknown_and_unused_allows() {
    let findings = run_root(&fixture_root("pragma/bad"));
    assert_eq!(
        pins(&findings),
        [
            ("pragma", "crates/x/src/util.rs", 2),       // no justification
            ("lock-hygiene", "crates/x/src/util.rs", 3), // finding stands
            ("pragma", "crates/x/src/util.rs", 4),       // unknown rule id
            ("pragma", "crates/x/src/util.rs", 6),       // suppresses nothing
        ]
    );
    assert!(findings[0].message.contains("no justification"));
    assert!(findings[2].message.contains("unknown rule"));
    assert!(findings[3].message.contains("unused pragma"));
}

/// Drift meta-test: start from a registry-consistent temp tree, inject a
/// fake `fail_point!` site into a new file, and assert the registry rule
/// flags it; then arm a site whose `fail_point!` no longer exists and
/// assert the dead-site direction fires too.
#[test]
fn failpoint_registry_catches_injected_drift() {
    let root = std::env::temp_dir().join(format!("qpgc_lint_drift_{}", std::process::id()));
    let write = |rel: &str, text: &str| {
        let p = root.join(rel);
        std::fs::create_dir_all(p.parent().unwrap()).unwrap();
        std::fs::write(p, text).unwrap();
    };

    write(
        "crates/core/src/pipeline.rs",
        "pub fn publish() {\n    qpgc_fault::fail_point!(\"store/publish\");\n}\n",
    );
    write(
        "tests/tests/fault_injection.rs",
        "const ALL_SITES: &[&str] = &[\"store/publish\"];\n\
         #[test]\nfn arm() {\n    for s in ALL_SITES {\n        let _ = s;\n    }\n}\n",
    );
    assert_eq!(pins(&run_root(&root)), [], "consistent tree must be clean");

    // Drift 1: a new fail_point! site nobody arms.
    write(
        "crates/core/src/drift.rs",
        "pub fn oops() {\n    qpgc_fault::fail_point!(\"ghost/injected\");\n}\n",
    );
    let findings = run_root(&root);
    assert_eq!(
        pins(&findings),
        [("failpoint-registry", "crates/core/src/drift.rs", 2)]
    );
    assert!(findings[0].message.contains("ghost/injected"));
    assert!(findings[0].message.contains("not armed"));

    // Drift 2: the site vanishes from the code but stays armed.
    write("crates/core/src/drift.rs", "pub fn oops() {}\n");
    write("crates/core/src/pipeline.rs", "pub fn publish() {}\n");
    let findings = run_root(&root);
    assert_eq!(
        pins(&findings),
        [("failpoint-registry", "tests/tests/fault_injection.rs", 1)]
    );
    assert!(findings[0].message.contains("store/publish"));
    assert!(findings[0].message.contains("dead site"));

    std::fs::remove_dir_all(&root).unwrap();
}

/// The real workspace must lint clean — the exact bar the CI
/// `static-analysis` gate holds, so a violation fails `cargo test` locally
/// before it ever reaches CI.
#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    assert!(root.join("Cargo.toml").exists(), "bad workspace root");
    let findings = run_root(root);
    assert!(
        findings.is_empty(),
        "workspace must lint clean; findings:\n{}",
        findings
            .iter()
            .map(|f| format!("  {}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
