//! A minimal, dependency-free Rust lexer.
//!
//! The linter's rules are token-sequence matchers, so the lexer only has to
//! get the *boundaries* right: comments (line, nested block, doc), string
//! literals (plain, raw, byte, with escapes decoded), char literals vs.
//! lifetimes, numbers, identifiers, and single-character punctuation. It
//! does not classify keywords or build a syntax tree — rules that need
//! structure (function spans, statement ends) recover it from the token
//! stream with brace/paren counting.
//!
//! Pragma comments (`// qpgc-lint: allow(<rule>) -- <justification>`) are
//! collected during lexing so the engine never has to re-scan raw text.

/// Token classification — just enough for sequence matching.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`for`, `fn`, `q_edges`, `HashMap`, ...).
    Ident,
    /// String literal; [`Token::text`] holds the *decoded* value.
    Str,
    /// Char or byte literal (value not decoded — no rule needs it).
    Char,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Numeric literal (integers, floats, any radix; value not parsed).
    Num,
    /// Single punctuation character; [`Token::text`] is that character.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// Classification.
    pub kind: Kind,
    /// Identifier text, decoded string value, or punctuation character.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

/// A `// qpgc-lint: ...` comment found during lexing.
#[derive(Clone, Debug)]
pub struct PragmaComment {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// Comment body after the `qpgc-lint:` marker, trimmed.
    pub body: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All pragma comments in source order.
    pub pragmas: Vec<PragmaComment>,
}

/// Lexes `src`, never failing: unterminated constructs run to end-of-file,
/// which is the forgiving behaviour a linter wants (rustc will report the
/// real error).
pub fn lex(src: &str) -> Lexed {
    Lexer {
        cs: src.chars().collect(),
        i: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    cs: Vec<char>,
    i: usize,
    line: usize,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.cs.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.cs.get(self.i).copied();
        if c == Some('\n') {
            self.line += 1;
        }
        self.i += 1;
        c
    }

    fn push(&mut self, kind: Kind, text: String, line: usize) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment();
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if c.is_alphabetic() || c == '_' {
                self.ident_or_prefixed_string();
            } else if c == '"' {
                self.string(false);
            } else if c == '\'' {
                self.char_or_lifetime();
            } else if c.is_ascii_digit() {
                self.number();
            } else {
                let line = self.line;
                self.bump();
                self.push(Kind::Punct, c.to_string(), line);
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.i + 2;
        while self.peek(0).is_some_and(|c| c != '\n') {
            self.bump();
        }
        let text: String = self.cs[start..self.i].iter().collect();
        // Accept the pragma marker in plain and doc comments alike.
        let body = text.trim_start_matches(['/', '!']).trim();
        if let Some(rest) = body.strip_prefix("qpgc-lint:") {
            self.out.pragmas.push(PragmaComment {
                line,
                body: rest.trim().to_string(),
            });
        }
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 && self.peek(0).is_some() {
            if self.peek(0) == Some('/') && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == Some('*') && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
    }

    fn ident_or_prefixed_string(&mut self) {
        let line = self.line;
        let start = self.i;
        while self
            .peek(0)
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            self.bump();
        }
        let word: String = self.cs[start..self.i].iter().collect();
        match word.as_str() {
            // Raw / byte string prefixes glue onto a following quote.
            "r" | "br" | "rb" if matches!(self.peek(0), Some('"') | Some('#')) => {
                self.string(true);
            }
            "b" if self.peek(0) == Some('"') => {
                self.string(false);
            }
            "b" if self.peek(0) == Some('\'') => {
                // Byte char literal: delegate to the char path.
                self.char_or_lifetime();
            }
            _ => self.push(Kind::Ident, word, line),
        }
    }

    /// Lexes a string literal starting at the current position (`"` or the
    /// `#`s of a raw string). `raw` selects raw-string rules (no escapes,
    /// terminated by `"` plus the same number of `#`s).
    fn string(&mut self, raw: bool) {
        let line = self.line;
        let mut hashes = 0usize;
        if raw {
            while self.peek(0) == Some('#') {
                hashes += 1;
                self.bump();
            }
        }
        self.bump(); // opening quote
        let mut value = String::new();
        while let Some(c) = self.peek(0) {
            if c == '"' {
                if !raw || (0..hashes).all(|k| self.peek(1 + k) == Some('#')) {
                    self.bump();
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
                value.push(c);
                self.bump();
            } else if c == '\\' && !raw {
                self.bump();
                self.escape(&mut value);
            } else {
                value.push(c);
                self.bump();
            }
        }
        self.push(Kind::Str, value, line);
    }

    /// Decodes one escape sequence (the leading `\` is already consumed).
    fn escape(&mut self, value: &mut String) {
        match self.bump() {
            Some('n') => value.push('\n'),
            Some('t') => value.push('\t'),
            Some('r') => value.push('\r'),
            Some('0') => value.push('\0'),
            Some('\\') => value.push('\\'),
            Some('"') => value.push('"'),
            Some('\'') => value.push('\''),
            Some('x') => {
                let mut v = 0u32;
                for _ in 0..2 {
                    if let Some(d) = self.peek(0).and_then(|c| c.to_digit(16)) {
                        v = v * 16 + d;
                        self.bump();
                    }
                }
                value.push(char::from_u32(v).unwrap_or('\u{FFFD}'));
            }
            Some('u') => {
                let mut v = 0u32;
                if self.peek(0) == Some('{') {
                    self.bump();
                    while let Some(c) = self.peek(0) {
                        if c == '}' {
                            self.bump();
                            break;
                        }
                        if let Some(d) = c.to_digit(16) {
                            v = v * 16 + d;
                        }
                        self.bump();
                    }
                }
                value.push(char::from_u32(v).unwrap_or('\u{FFFD}'));
            }
            // Line continuation: swallow the newline and leading whitespace.
            Some('\n') => {
                while self.peek(0).is_some_and(|c| c.is_whitespace() && c != '\n') {
                    self.bump();
                }
            }
            Some(other) => value.push(other),
            None => {}
        }
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // Current char is `'` (a `b` byte-char prefix was already consumed).
        let next = self.peek(1);
        if next.is_some_and(|c| c.is_alphanumeric() || c == '_')
            && next != Some('\\')
            && self.peek(2) != Some('\'')
        {
            // Lifetime: `'a`, `'static`, ...
            self.bump(); // '
            let start = self.i;
            while self
                .peek(0)
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                self.bump();
            }
            let name: String = self.cs[start..self.i].iter().collect();
            self.push(Kind::Lifetime, name, line);
            return;
        }
        // Char literal.
        self.bump(); // '
        if self.peek(0) == Some('\\') {
            self.bump();
            if self.peek(0) == Some('u') {
                self.bump();
                while self.peek(0).is_some_and(|c| c != '}' && c != '\'') {
                    self.bump();
                }
                self.bump(); // }
            } else {
                self.bump(); // escaped char (also covers \xNN's x; hex eaten below)
                while self.peek(0).is_some_and(|c| c != '\'') {
                    self.bump();
                }
            }
        } else {
            self.bump();
        }
        if self.peek(0) == Some('\'') {
            self.bump();
        }
        self.push(Kind::Char, String::new(), line);
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.i;
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` continues the number; `0..n` leaves the range alone.
                self.bump();
            } else {
                break;
            }
        }
        let text: String = self.cs[start..self.i].iter().collect();
        self.push(Kind::Num, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_are_skipped_and_nested_blocks_close() {
        let toks = kinds("a // line\nb /* x /* y */ z */ c");
        let idents: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(idents, ["a", "b", "c"]);
    }

    #[test]
    fn strings_decode_escapes_and_raw_strings_do_not() {
        let toks = kinds(r#"let s = "  \"serve\": {\n"; let r = r"a\n";"#);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == Kind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(strs, ["  \"serve\": {\n", "a\\n"]);
    }

    #[test]
    fn hashed_raw_strings_terminate_on_matching_hashes() {
        let toks = kinds("r#\"quote \" inside\"# after");
        assert_eq!(toks[0], (Kind::Str, "quote \" inside".to_string()));
        assert_eq!(toks[1], (Kind::Ident, "after".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; }");
        let lifetimes = toks.iter().filter(|(k, _)| *k == Kind::Lifetime).count();
        let chars = toks.iter().filter(|(k, _)| *k == Kind::Char).count();
        assert_eq!((lifetimes, chars), (2, 2));
    }

    #[test]
    fn pragmas_are_collected_with_lines() {
        let src = "fn a() {}\n// qpgc-lint: allow(hygiene) -- demo only\nfn b() {}\n";
        let lexed = lex(src);
        assert_eq!(lexed.pragmas.len(), 1);
        assert_eq!(lexed.pragmas[0].line, 2);
        assert_eq!(lexed.pragmas[0].body, "allow(hygiene) -- demo only");
    }

    #[test]
    fn tokens_carry_lines_across_multiline_strings() {
        let src = "let s = \"one\ntwo\";\nlet t = 1;";
        let lexed = lex(src);
        let t_ident = lexed
            .tokens
            .iter()
            .find(|t| t.text == "t")
            .expect("ident t");
        assert_eq!(t_ident.line, 3);
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let toks = kinds("for i in 0..n { let f = 1.5; }");
        assert!(toks.contains(&(Kind::Num, "0".to_string())));
        assert!(toks.contains(&(Kind::Num, "1.5".to_string())));
    }
}
