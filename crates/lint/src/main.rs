//! `qpgc_lint` binary: lints the workspace and reports findings.
//!
//! ```text
//! cargo run -p qpgc_lint              # human output, exit 1 on findings
//! cargo run -p qpgc_lint -- --json    # machine output for CI artifacts
//! cargo run -p qpgc_lint -- --root P  # lint a different tree (fixtures)
//! ```

use std::path::PathBuf;

use qpgc_lint::engine::run_root;
use qpgc_lint::to_json;

fn main() {
    let mut json = false;
    // Default to the workspace this binary was built from: the manifest
    // dir is `crates/lint`, so the root is two levels up.
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--root" => {
                i += 1;
                root = PathBuf::from(args.get(i).unwrap_or_else(|| {
                    eprintln!("--root requires a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument `{other}`; usage: qpgc_lint [--json] [--root PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if !root.join("Cargo.toml").is_file() {
        eprintln!("no Cargo.toml under {} — pass --root", root.display());
        std::process::exit(2);
    }

    let findings = run_root(&root);
    if json {
        print!("{}", to_json(&findings));
    } else {
        for f in &findings {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
        if findings.is_empty() {
            eprintln!("qpgc_lint: workspace clean");
        } else {
            eprintln!("qpgc_lint: {} finding(s)", findings.len());
        }
    }
    std::process::exit(if findings.is_empty() { 0 } else { 1 });
}
