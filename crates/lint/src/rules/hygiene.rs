//! **hygiene** — two structural conventions:
//!
//! 1. Every crate root (`lib.rs`) carries `#![forbid(unsafe_code)]`, so
//!    "no unsafe" stays a compiler-enforced property of the whole
//!    workspace rather than a habit.
//! 2. `dbg!` / `todo!` / `unimplemented!` never ship, and `println!` (raw
//!    stdout) stays out of library code — binaries, benches, tests, and
//!    examples are the only places that own stdout. The bench harness's
//!    progress chatter goes through `eprintln!`, which is allowed.

use crate::engine::{is_ident, is_punct, SourceFile};
use crate::lexer::Kind;
use crate::Finding;

/// Rule id.
pub const RULE: &str = "hygiene";

/// Macros banned outside binaries, benches, tests, and examples.
const BANNED: &[&str] = &["dbg", "todo", "unimplemented", "println"];

/// Checks crate-root attributes and banned-macro usage.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let tokens = &file.lexed.tokens;

    if file.rel.ends_with("lib.rs") && !has_forbid_unsafe(file) {
        out.push(Finding::new(
            RULE,
            &file.rel,
            1,
            "crate root lacks `#![forbid(unsafe_code)]` — every workspace crate \
             forbids unsafe at the root",
        ));
    }

    for i in 0..tokens.len() {
        if !(tokens[i].kind == Kind::Ident
            && BANNED.contains(&tokens[i].text.as_str())
            && is_punct(tokens, i + 1, "!"))
        {
            continue;
        }
        if allowed_context(file, i) {
            continue;
        }
        out.push(Finding::new(
            RULE,
            &file.rel,
            tokens[i].line,
            &format!(
                "`{}!` in library code: binaries, benches, tests, and examples are \
                 the only allowed contexts (use eprintln!/a Result for the rest)",
                tokens[i].text
            ),
        ));
    }
    out
}

/// True iff the crate root carries `#![forbid(unsafe_code)]`.
fn has_forbid_unsafe(file: &SourceFile) -> bool {
    let tokens = &file.lexed.tokens;
    (0..tokens.len()).any(|i| {
        is_punct(tokens, i, "#")
            && is_punct(tokens, i + 1, "!")
            && is_punct(tokens, i + 2, "[")
            && is_ident(tokens, i + 3, "forbid")
            && is_punct(tokens, i + 4, "(")
            && is_ident(tokens, i + 5, "unsafe_code")
    })
}

/// Banned macros are fine in binary targets, benches, test code (both
/// `tests/` trees and `#[cfg(test)]` modules), and examples.
fn allowed_context(file: &SourceFile, token_idx: usize) -> bool {
    let p = format!("/{}", file.rel);
    p.contains("/bin/")
        || p.contains("/benches/")
        || p.contains("/tests/")
        || p.contains("/examples/")
        || p.ends_with("/main.rs")
        || p.ends_with("/build.rs")
        || file.in_test_region(token_idx)
}
