//! **bench-schema** — CI's perf-harness smoke step greps the JSON snapshot
//! `bench_json` writes for known keys. Both sides can drift silently: a
//! renamed emitter key turns the grep into a guaranteed CI failure only
//! *after* merge, and a new top-level section nobody greps ships without
//! any smoke coverage. This rule checks both directions statically:
//!
//! * every `grep -q '"key"'` in `.github/workflows/ci.yml` must appear as
//!   (part of) a string literal in `crates/bench` sources;
//! * every top-level section the hand-rolled JSON writer emits (a string
//!   literal shaped `  "name": {` or `  "name": [`) must be grepped.

use std::collections::BTreeMap;

use crate::engine::SourceFile;
use crate::lexer::Kind;
use crate::Finding;

/// Rule id.
pub const RULE: &str = "bench-schema";

/// Cross-checks CI smoke greps against the bench crate's JSON writer.
pub fn check(ci: Option<(&str, &str)>, files: &[SourceFile]) -> Vec<Finding> {
    let bench_files: Vec<&SourceFile> = files
        .iter()
        .filter(|f| f.rel.contains("crates/bench/"))
        .collect();
    if bench_files.is_empty() {
        return Vec::new();
    }
    let sections = emitted_sections(&bench_files);
    let Some((ci_rel, ci_text)) = ci else {
        // Bench sources but no workflow: flag once so a renamed/lost
        // workflow cannot silently disable the smoke checks.
        if let Some((section, (file, line))) = sections.iter().next() {
            return vec![Finding::new(
                RULE,
                file,
                *line,
                &format!(
                    "bench_json emits section \"{section}\" but no \
                     .github/workflows/ci.yml was found to smoke-grep it"
                ),
            )];
        }
        return Vec::new();
    };

    let keys = ci_grep_keys(ci_text);
    let mut out = Vec::new();

    // Direction A: every grepped key is emitted somewhere in crates/bench.
    for (key, line) in &keys {
        let quoted = format!("\"{key}\"");
        let emitted = bench_files.iter().any(|f| {
            f.lexed
                .tokens
                .iter()
                .any(|t| t.kind == Kind::Str && (t.text == *key || t.text.contains(&quoted)))
        });
        if !emitted {
            out.push(Finding::new(
                RULE,
                ci_rel,
                *line,
                &format!(
                    "CI smoke-greps \"{key}\" but no crates/bench string literal emits \
                     it: the grep can only fail"
                ),
            ));
        }
    }

    // Direction B: every emitted top-level section is smoke-grepped.
    for (section, (file, line)) in &sections {
        if !keys.iter().any(|(k, _)| k == section) {
            out.push(Finding::new(
                RULE,
                file,
                *line,
                &format!(
                    "bench_json emits top-level section \"{section}\" that CI never \
                     smoke-greps: add `grep -q '\"{section}\"'` to the perf smoke step"
                ),
            ));
        }
    }
    out
}

/// Keys grepped by CI: for each line containing `grep -q '...'`, the first
/// `"quoted"` word inside the single-quoted pattern. Returns
/// `(key, 1-based line)` pairs in file order (first occurrence wins).
pub fn ci_grep_keys(ci_text: &str) -> Vec<(String, usize)> {
    let mut keys: Vec<(String, usize)> = Vec::new();
    for (idx, line) in ci_text.lines().enumerate() {
        let Some(at) = line.find("grep -q '") else {
            continue;
        };
        let rest = &line[at + "grep -q '".len()..];
        let Some(end) = rest.find('\'') else {
            continue;
        };
        let pattern = &rest[..end];
        let mut quotes = pattern.match_indices('"');
        if let (Some((a, _)), Some((b, _))) = (quotes.next(), quotes.next()) {
            let key = pattern[a + 1..b].to_string();
            if !key.is_empty() && !keys.iter().any(|(k, _)| *k == key) {
                keys.push((key, idx + 1));
            }
        }
    }
    keys
}

/// Top-level sections the JSON writer emits: string literals whose decoded
/// value starts with exactly two spaces, a quoted name, and a `{`/`[`
/// opener (`  "serve": {\n`). A `{}` right after the colon is a `format!`
/// placeholder (scalar), not a section. Literals inside `#[cfg(test)]`
/// modules are skipped — fabricated cross-schema fixtures (the parser
/// tolerance tests) are not emitted schema.
fn emitted_sections<'a>(bench_files: &[&'a SourceFile]) -> BTreeMap<String, (&'a str, usize)> {
    let mut out: BTreeMap<String, (&str, usize)> = BTreeMap::new();
    for f in bench_files {
        for (i, t) in f.lexed.tokens.iter().enumerate() {
            if t.kind != Kind::Str || f.in_test_region(i) {
                continue;
            }
            if let Some(section) = parse_section(&t.text) {
                out.entry(section).or_insert((f.rel.as_str(), t.line));
            }
        }
    }
    out
}

/// Parses `  "name": {` / `  "name": [` (object/array section opener).
fn parse_section(value: &str) -> Option<String> {
    let rest = value.strip_prefix("  \"")?;
    if rest.starts_with(' ') {
        return None; // deeper indentation
    }
    let (name, after) = rest.split_once('"')?;
    let after = after.strip_prefix(':')?.trim_start_matches(' ');
    let mut chars = after.chars();
    match (chars.next(), chars.next()) {
        (Some('['), Some('\n') | None) | (Some('{'), Some('\n') | None) => Some(name.to_string()),
        _ => None,
    }
}
