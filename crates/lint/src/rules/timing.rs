//! **timing-gate** — wall-clock assertions are machine-dependent: the CI
//! box is a single-CPU container where scaling curves flatten into parity
//! artifacts (see ROADMAP). The workspace convention is that any
//! `assert!`-family check comparing `Instant`s, `elapsed()` results, or
//! `Duration`s must sit in a function that first consults the
//! `QPGC_TIMING_TESTS` environment variable, so structural assertions
//! always run while timing assertions only run where timing is real.

use crate::engine::{is_punct, matching_brace, SourceFile};
use crate::lexer::Kind;
use crate::Finding;

/// Rule id.
pub const RULE: &str = "timing-gate";

/// The assertion macros audited.
const ASSERT_MACROS: &[&str] = &[
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// Identifiers inside the macro arguments that mark a timing comparison.
const TIMING_IDENTS: &[&str] = &["Instant", "Duration", "elapsed"];

/// The environment variable whose presence gates timing assertions.
const GATE: &str = "QPGC_TIMING_TESTS";

/// Flags timing assertions in functions that never check the gate.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let tokens = &file.lexed.tokens;
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !(tokens[i].kind == Kind::Ident
            && ASSERT_MACROS.contains(&tokens[i].text.as_str())
            && is_punct(tokens, i + 1, "!"))
        {
            continue;
        }
        // Macro argument span: the bracketed group after `!`.
        let open = i + 2;
        if !(is_punct(tokens, open, "(") || is_punct(tokens, open, "[")) {
            continue;
        }
        let close = matching_bracket(tokens, open);
        let timing = tokens[open..=close]
            .iter()
            .any(|t| t.kind == Kind::Ident && TIMING_IDENTS.contains(&t.text.as_str()));
        if !timing {
            continue;
        }
        let gated = file.enclosing_fn(i).is_some_and(|f| {
            tokens[f.start..=f.end]
                .iter()
                .any(|t| matches!(t.kind, Kind::Ident | Kind::Str) && t.text.contains(GATE))
        });
        if !gated {
            out.push(Finding::new(
                RULE,
                &file.rel,
                tokens[i].line,
                &format!(
                    "{}! compares wall-clock values (Instant/elapsed/Duration) in a \
                     function that never checks {GATE}: gate it with \
                     `if std::env::var(\"{GATE}\").is_ok() {{ ... }}` so the assertion \
                     only runs where timing is meaningful",
                    tokens[i].text
                ),
            ));
        }
    }
    out
}

/// Index of the bracket matching `(` / `[` at `open`.
fn matching_bracket(tokens: &[crate::lexer::Token], open: usize) -> usize {
    if is_punct(tokens, open, "{") {
        return matching_brace(tokens, open);
    }
    let (o, c) = if is_punct(tokens, open, "[") {
        ("[", "]")
    } else {
        ("(", ")")
    };
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == Kind::Punct {
            if t.text == o {
                depth += 1;
            } else if t.text == c {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
    }
    tokens.len().saturating_sub(1)
}
