//! **failpoint-registry** — the fault-injection suite is only meaningful
//! if it arms *every* failpoint site compiled into the pipeline. This rule
//! extracts each `fail_point!("site")` literal across the workspace and
//! cross-checks it bidirectionally against the sites armed in
//! `tests/tests/fault_injection.rs` (the `*_SITES` arrays plus direct
//! `fail_at("site", n)` calls):
//!
//! * a site without test coverage means a recovery path ships untested;
//! * an armed site that no longer exists means the suite silently stopped
//!   exercising whatever it used to exercise.

use std::collections::BTreeMap;

use crate::engine::{is_ident, is_punct, SourceFile};
use crate::lexer::Kind;
use crate::Finding;

/// Rule id.
pub const RULE: &str = "failpoint-registry";

/// Path suffix of the arming registry.
const REGISTRY_SUFFIX: &str = "tests/tests/fault_injection.rs";

/// Cross-checks `fail_point!` sites against the armed registry.
pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    // site -> first (file, line) it is declared at.
    let mut sites: BTreeMap<String, (String, usize)> = BTreeMap::new();
    for f in files {
        for (site, line) in fail_point_sites(f) {
            sites.entry(site).or_insert((f.rel.clone(), line));
        }
    }
    let registry = files.iter().find(|f| f.rel.ends_with(REGISTRY_SUFFIX));

    let mut out = Vec::new();
    let Some(reg) = registry else {
        // No registry file: only an error if there are sites to cover
        // (fixture roots without a fault suite stay silent).
        if let Some((site, (file, line))) = sites.iter().next() {
            out.push(Finding::new(
                RULE,
                file,
                *line,
                &format!(
                    "fail_point!(\"{site}\") exists but no `{REGISTRY_SUFFIX}` was found \
                     to arm it"
                ),
            ));
        }
        return out;
    };

    let armed = armed_sites(reg);
    for (site, (file, line)) in &sites {
        if !armed.contains_key(site) {
            out.push(Finding::new(
                RULE,
                file,
                *line,
                &format!(
                    "failpoint site `{site}` is not armed by {REGISTRY_SUFFIX}: add it \
                     to the site list so its recovery path is exercised"
                ),
            ));
        }
    }
    for (site, line) in &armed {
        if !sites.contains_key(site) {
            out.push(Finding::new(
                RULE,
                &reg.rel,
                *line,
                &format!(
                    "armed site `{site}` has no fail_point!(\"{site}\") anywhere in the \
                     workspace: the suite arms a dead site"
                ),
            ));
        }
    }
    out
}

/// All `fail_point!("<site>")` literals in one file.
pub fn fail_point_sites(file: &SourceFile) -> Vec<(String, usize)> {
    let tokens = &file.lexed.tokens;
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if is_ident(tokens, i, "fail_point")
            && is_punct(tokens, i + 1, "!")
            && is_punct(tokens, i + 2, "(")
            && tokens.get(i + 3).is_some_and(|t| t.kind == Kind::Str)
        {
            out.push((tokens[i + 3].text.clone(), tokens[i + 3].line));
        }
    }
    out
}

/// Sites the registry arms: every string literal inside a
/// `const <NAME>_SITES: &[&str] = &[ ... ];` array, plus the first
/// argument of every `fail_at("<site>", n)` call.
pub fn armed_sites(file: &SourceFile) -> BTreeMap<String, usize> {
    let tokens = &file.lexed.tokens;
    let mut armed = BTreeMap::new();
    for i in 0..tokens.len() {
        // const FOO_SITES: ... = &[ "a", "b", ... ];
        if is_ident(tokens, i, "const")
            && tokens
                .get(i + 1)
                .is_some_and(|t| t.kind == Kind::Ident && t.text.ends_with("_SITES"))
        {
            let mut j = i + 2;
            while j < tokens.len() && !is_punct(tokens, j, "[") {
                j += 1;
            }
            // Skip the `[` of `&[&str]` — the literal array starts at the
            // *next* `[`.
            j += 1;
            while j < tokens.len() && !is_punct(tokens, j, "[") {
                j += 1;
            }
            while j < tokens.len() && !is_punct(tokens, j, "]") {
                if tokens[j].kind == Kind::Str {
                    armed
                        .entry(tokens[j].text.clone())
                        .or_insert(tokens[j].line);
                }
                j += 1;
            }
        }
        // fail_at("site", n)
        if is_ident(tokens, i, "fail_at")
            && is_punct(tokens, i + 1, "(")
            && tokens.get(i + 2).is_some_and(|t| t.kind == Kind::Str)
        {
            armed
                .entry(tokens[i + 2].text.clone())
                .or_insert(tokens[i + 2].line);
        }
    }
    armed
}
