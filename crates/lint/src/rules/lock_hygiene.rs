//! **lock-hygiene** — bare `.lock().unwrap()` / `.lock().expect(...)` (and
//! the zero-argument `RwLock` cousins `.read()` / `.write()`) propagate
//! poison to readers. The serving pipeline catches every panic *before*
//! guards drop and rolls staged state back, so a poisoned lock always holds
//! the last consistent value — the workspace idiom is poison *recovery*:
//! `lock().unwrap_or_else(PoisonError::into_inner)` (see
//! `qpgc_serve::store::lock_recover` and `qpgc_fault`'s hit counters).

use crate::engine::{is_ident, is_punct, SourceFile};
use crate::Finding;

/// Rule id.
pub const RULE: &str = "lock-hygiene";

/// Lock acquisition methods: `Mutex::lock`, `RwLock::read`, `RwLock::write`.
/// Only the zero-argument forms match, which keeps `io::Read::read(&mut
/// buf)` and friends out of scope.
const ACQUIRE: &[&str] = &["lock", "read", "write"];

/// Flags `.{lock,read,write}().unwrap()` and `.{lock,read,write}().expect(`.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let tokens = &file.lexed.tokens;
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !is_punct(tokens, i, ".") {
            continue;
        }
        let Some(acquire) = ACQUIRE.iter().find(|m| is_ident(tokens, i + 1, m)) else {
            continue;
        };
        if !(is_punct(tokens, i + 2, "(") && is_punct(tokens, i + 3, ")")) {
            continue; // not the zero-argument lock-acquisition form
        }
        if !is_punct(tokens, i + 4, ".") {
            continue;
        }
        let sink = if is_ident(tokens, i + 5, "unwrap")
            && is_punct(tokens, i + 6, "(")
            && is_punct(tokens, i + 7, ")")
        {
            Some("unwrap()")
        } else if is_ident(tokens, i + 5, "expect") && is_punct(tokens, i + 6, "(") {
            Some("expect(..)")
        } else {
            None
        };
        if let Some(sink) = sink {
            out.push(Finding::new(
                RULE,
                &file.rel,
                tokens[i + 1].line,
                &format!(
                    ".{acquire}().{sink} propagates lock poison; recover it instead: \
                     `.{acquire}().unwrap_or_else(PoisonError::into_inner)` \
                     (or the store's lock_recover/read_recover/write_recover helpers)"
                ),
            ));
        }
    }
    out
}
