//! The six enforced invariants, one module per rule. Each per-file rule
//! exposes `check(&SourceFile) -> Vec<Finding>`; the cross-file rules
//! (failpoint registry, bench schema) take the whole file set.

pub mod bench_schema;
pub mod determinism;
pub mod failpoints;
pub mod hygiene;
pub mod lock_hygiene;
pub mod timing;
