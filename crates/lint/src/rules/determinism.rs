//! **deterministic-iteration** — inside the incremental-maintenance
//! modules, iterating a `HashMap`/`HashSet` leaks the hasher's per-process
//! random order into whatever the loop builds. That is exactly the PR 4
//! stable-id bug: hybrid node ids handed out in `HashSet` iteration order
//! made identical update streams produce different stable class ids, which
//! the serving layer's snapshot differential then tripped over. The fix —
//! and the idiom this rule enforces — is to funnel hash iteration through a
//! sort (`collect` + `sort_unstable`, or a `BTreeMap`/`BTreeSet`) before
//! order can matter, or to carry an audited pragma arguing why order cannot
//! leak (order-insensitive set outputs, commutative folds).
//!
//! The rule is scoped to the maintenance modules ([`in_scope`]) because
//! that is where iteration order feeds stable ids; elsewhere hash iteration
//! is routine and harmless.

use std::collections::BTreeSet;

use crate::engine::{is_ident, is_punct, SourceFile};
use crate::lexer::{Kind, Token};
use crate::Finding;

/// Rule id.
pub const RULE: &str = "deterministic-iteration";

/// The incremental-maintenance modules whose iteration order feeds stable
/// class ids (the `localized_recompute` paths on both sides).
const SCOPE_SUFFIXES: &[&str] = &[
    "reachability/src/incremental.rs",
    "pattern/src/incremental.rs",
];

/// True iff the rule audits this file.
pub fn in_scope(rel: &str) -> bool {
    SCOPE_SUFFIXES.iter().any(|s| rel.ends_with(s))
}

/// Iteration methods that surface hash order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

/// An identifier starting with one of these within the statement chain
/// counts as funnelling through a sort.
const SORTED_MARKS: &[&str] = &["sort", "BTreeMap", "BTreeSet", "BinaryHeap"];

/// Flags unsorted hash-collection iteration in the maintenance modules.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    if !in_scope(&file.rel) {
        return Vec::new();
    }
    let tokens = &file.lexed.tokens;
    let hash_names = hash_typed_names(tokens);
    let mut out = Vec::new();
    let mut flagged_lines = BTreeSet::new();

    for i in 0..tokens.len() {
        // Form 1: `<name>.iter()/.keys()/...` on a hash-typed name.
        let method_site = tokens[i].kind == Kind::Ident
            && hash_names.contains(&tokens[i].text)
            && is_punct(tokens, i + 1, ".")
            && ITER_METHODS.iter().any(|m| is_ident(tokens, i + 2, m))
            && is_punct(tokens, i + 3, "(");
        // Form 2: `for <pat> in [&[mut]] <name> {` — direct iteration.
        let direct_site = tokens[i].kind == Kind::Ident
            && hash_names.contains(&tokens[i].text)
            && is_punct(tokens, i + 1, "{")
            && in_for_header(tokens, i);
        if !(method_site || direct_site) {
            continue;
        }
        if has_sort_in_chain(tokens, i) {
            continue;
        }
        if flagged_lines.insert(tokens[i].line) {
            out.push(Finding::new(
                RULE,
                &file.rel,
                tokens[i].line,
                &format!(
                    "iteration over hash collection `{}` without a sort in the statement \
                     chain: hash order is random per process and leaks into stable ids \
                     (the PR 4 divergence) — collect + sort_unstable, use a BTree map/set, \
                     or add `// qpgc-lint: allow({RULE}) -- <why order cannot leak>`",
                    tokens[i].text
                ),
            ));
        }
    }
    out
}

/// Names declared with a `HashMap`/`HashSet` type or initialised from one:
/// `name: [&][mut] [std::collections::]Hash{Map,Set}<...>` (fields, lets,
/// params) and `name = Hash{Map,Set}::...` bindings.
fn hash_typed_names(tokens: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..tokens.len() {
        if !(is_ident(tokens, i, "HashMap") || is_ident(tokens, i, "HashSet")) {
            continue;
        }
        // Walk back over `&`, `mut`, lifetimes, and a `std::collections::`
        // path prefix to find `name :` or `name =`.
        let mut j = i;
        while j > 0 {
            let prev = &tokens[j - 1];
            let skip = matches!(prev.kind, Kind::Lifetime)
                || (prev.kind == Kind::Punct && (prev.text == "&" || prev.text == ":"))
                || (prev.kind == Kind::Ident
                    && matches!(prev.text.as_str(), "mut" | "std" | "collections" | "dyn"));
            if !skip {
                break;
            }
            j -= 1;
            // A `:` might be the `name :` introducer — check and stop there.
            if tokens[j].kind == Kind::Punct
                && tokens[j].text == ":"
                && j > 0
                && tokens[j - 1].kind == Kind::Ident
                && !matches!(tokens[j - 1].text.as_str(), "std" | "collections")
                && !is_punct(tokens, j.wrapping_sub(2), ":")
                && !is_punct(tokens, j + 1, ":")
            {
                names.insert(tokens[j - 1].text.clone());
                break;
            }
        }
        // `name = HashMap::new()` / `let [mut] name = HashSet::from_iter(..)`.
        if j >= 1 && is_punct(tokens, j - 1, "=") && j >= 2 && tokens[j - 2].kind == Kind::Ident {
            names.insert(tokens[j - 2].text.clone());
        }
    }
    names
}

/// True iff token `i` sits in a `for ... in ...` header: scanning backwards
/// within the current statement finds `in` preceded (eventually) by `for`.
fn in_for_header(tokens: &[Token], i: usize) -> bool {
    let mut saw_in = false;
    let mut j = i;
    while j > 0 {
        j -= 1;
        match (tokens[j].kind, tokens[j].text.as_str()) {
            (Kind::Ident, "in") => saw_in = true,
            (Kind::Ident, "for") => return saw_in,
            (Kind::Punct, ";") | (Kind::Punct, "{") | (Kind::Punct, "}") => return false,
            _ => {}
        }
    }
    false
}

/// True iff the statement containing token `i`, or the two source lines
/// after it, mentions a sorting construct ([`SORTED_MARKS`]). This is the
/// "statement chain" heuristic: it accepts both in-chain sorts
/// (`collect::<BTreeSet<_>>()`) and the workspace's collect-then-sort idiom
/// (`let mut v: Vec<_> = set.iter().collect(); v.sort_unstable();`).
fn has_sort_in_chain(tokens: &[Token], i: usize) -> bool {
    // Statement start: walk back to the previous `;`, `{`, or `}`.
    let mut s = i;
    while s > 0 {
        let t = &tokens[s - 1];
        if t.kind == Kind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
            break;
        }
        s -= 1;
    }
    // Statement end: forward to the first `;` or block-opening `{` at
    // bracket depth 0 relative to the iteration site.
    let mut depth = 0i32;
    let mut end = i;
    for (j, t) in tokens.iter().enumerate().skip(i) {
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" | "{" if depth <= 0 => {
                    end = j;
                    break;
                }
                _ => {}
            }
        }
        end = j;
    }
    let window_end_line = tokens[end].line + 2;
    tokens[s..]
        .iter()
        .take_while(|t| t.line <= window_end_line)
        .any(|t| t.kind == Kind::Ident && SORTED_MARKS.iter().any(|m| t.text.starts_with(m)))
}
