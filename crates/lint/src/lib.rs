//! # qpgc_lint — the workspace invariant linter
//!
//! The paper's guarantee is query equivalence between `G` and its
//! compression `Gr`, and the repo proves it *dynamically* through the
//! differential suites. The invariants that make those suites trustworthy,
//! though, were enforced only by convention until this crate: stable-id
//! determinism (a `HashSet` iteration-order leak caused a real divergence,
//! fixed in PR 4), lock poison-recovery (PR 7), the failpoint-site registry
//! shared between `crates/serve`/`crates/fault` and the fault-injection
//! suite, `QPGC_TIMING_TESTS`-gating of wall-clock assertions, and the CI
//! smoke-grep keys that must track what `bench_json` emits.
//!
//! `qpgc_lint` turns those conventions into a compiler-adjacent static
//! pass: a hand-rolled comment/string/char/raw-string-aware Rust lexer
//! (zero dependencies — the build container has no crates.io access)
//! feeding a rule engine with per-statement and file-scoped
//! `// qpgc-lint: allow(<rule>) -- <justification>` pragmas.
//!
//! Run it with `cargo run -p qpgc_lint` (human output) or
//! `cargo run -p qpgc_lint -- --json` (machine output, uploaded as a CI
//! artifact by the `static-analysis` gate). Exit code 0 means clean.
//!
//! ## Rules
//!
//! | id | invariant |
//! |----|-----------|
//! | `lock-hygiene` | no bare `.lock()/.read()/.write()` + `.unwrap()/.expect(...)`; poison must be recovered |
//! | `deterministic-iteration` | no unsorted `HashMap`/`HashSet` iteration in the incremental-maintenance modules |
//! | `failpoint-registry` | `fail_point!` sites and the fault-injection arm list agree bidirectionally |
//! | `timing-gate` | wall-clock assertions sit in functions that check `QPGC_TIMING_TESTS` |
//! | `bench-schema` | CI smoke greps and `bench_json`'s top-level sections agree bidirectionally |
//! | `hygiene` | crate roots forbid unsafe; `dbg!`/`todo!`/`unimplemented!`/`println!` stay out of library code |
//!
//! Every pragma must carry a `-- justification`; pragmas that suppress
//! nothing are themselves findings, so allows cannot rot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod rules;

/// One diagnostic: a rule violation (or pragma-hygiene problem) at a line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`lock-hygiene`, `deterministic-iteration`, ...).
    pub rule: &'static str,
    /// Path relative to the linted root, `/`-separated.
    pub file: String,
    /// 1-based line the finding anchors to.
    pub line: usize,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl Finding {
    /// Builds a finding.
    pub fn new(rule: &'static str, file: &str, line: usize, message: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message: message.to_string(),
        }
    }
}

/// Renders findings as the `--json` report (stable shape:
/// `{"findings": [{"rule", "file", "line", "message"}...], "count": N}`).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 == findings.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{comma}\n",
            escape_json(f.rule),
            escape_json(&f.file),
            f.line,
            escape_json(&f.message)
        ));
    }
    out.push_str(&format!("  ],\n  \"count\": {}\n}}\n", findings.len()));
    out
}

/// Escapes a string for embedding in a JSON literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_is_well_formed_and_escaped() {
        let findings = vec![Finding::new("hygiene", "a/b.rs", 7, "say \"hi\"\n")];
        let json = to_json(&findings);
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\\\"hi\\\"\\n"));
        assert!(to_json(&[]).contains("\"count\": 0"));
    }
}
