//! The rule engine: file walking, pragma resolution, structural helpers
//! (function spans, `#[cfg(test)]` regions, statement boundaries), and the
//! top-level [`run_root`] entry point that the binary and the test suites
//! share.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use crate::lexer::{self, Kind, Lexed, Token};
use crate::rules;
use crate::Finding;

/// Directory names the walker never descends into, shared by every rule:
/// vendored dependency stubs, build output, proptest failure persistence,
/// and the linter's own (deliberately violating) fixture corpus. Hidden
/// directories (`.git`, `.github`, ...) are skipped as well — the CI
/// workflow is read explicitly by the bench-schema rule, not walked.
pub const EXCLUDED_DIRS: &[&str] = &["vendor", "target", "proptest-regressions", "fixtures"];

/// True iff the walker must skip a directory with this (file) name.
pub fn is_excluded_dir(name: &str) -> bool {
    name.starts_with('.') || EXCLUDED_DIRS.contains(&name)
}

/// Collects every `.rs` file under `root` (sorted, exclusions applied),
/// as `(relative-path-with-/-separators, absolute-path)` pairs.
pub fn walk_rust_files(root: &Path) -> Vec<(String, PathBuf)> {
    let mut out = Vec::new();
    walk_into(root, root, &mut out);
    out.sort();
    out
}

fn walk_into(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if !is_excluded_dir(&name) {
                walk_into(root, &path, out);
            }
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
}

/// One `// qpgc-lint: allow(<rule>) -- <justification>` pragma, resolved.
#[derive(Clone, Debug)]
pub struct Allow {
    /// Rule id the pragma suppresses.
    pub rule: String,
    /// The text after `--`; empty means the pragma is itself a finding.
    pub justification: String,
    /// 1-based line the pragma comment sits on.
    pub line: usize,
    /// Lines the pragma covers: the whole file when it appears before the
    /// first token, otherwise the statement starting at/under the pragma.
    pub covers: (usize, usize),
    /// Pragmas whose body did not parse as `allow(<rule>)`.
    pub malformed: bool,
}

/// A lexed source file plus the structural facts rules ask about.
pub struct SourceFile {
    /// Path relative to the linted root, `/`-separated.
    pub rel: String,
    /// Lexed token stream and pragma comments.
    pub lexed: Lexed,
    /// Resolved `allow` pragmas.
    pub allows: Vec<Allow>,
    /// Token-index spans of `#[cfg(test)] mod ... { ... }` regions.
    pub test_regions: Vec<(usize, usize)>,
    /// Token-index spans of `fn` bodies (headers included), innermost last.
    pub fn_spans: Vec<FnSpan>,
}

/// One function's span in the token stream.
#[derive(Clone, Copy, Debug)]
pub struct FnSpan {
    /// Index of the `fn` keyword token.
    pub start: usize,
    /// Index of the closing `}` of the body (or last token when unclosed).
    pub end: usize,
}

impl SourceFile {
    /// Lexes `text` into a file record for `rel`.
    pub fn parse(rel: &str, text: &str) -> SourceFile {
        let lexed = lexer::lex(text);
        let test_regions = find_test_regions(&lexed.tokens);
        let fn_spans = find_fn_spans(&lexed.tokens);
        let allows = resolve_allows(&lexed);
        SourceFile {
            rel: rel.to_string(),
            lexed,
            allows,
            test_regions,
            fn_spans,
        }
    }

    /// True iff token index `i` lies inside a `#[cfg(test)]` module.
    pub fn in_test_region(&self, i: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| s <= i && i <= e)
    }

    /// The innermost function span containing token index `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<FnSpan> {
        self.fn_spans
            .iter()
            .filter(|f| f.start <= i && i <= f.end)
            .min_by_key(|f| f.end - f.start)
            .copied()
    }
}

/// Scans for `#[cfg(... test ...)]` followed (after any further attributes)
/// by `mod <name> {` and records the token span of the braces.
fn find_test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(is_punct(tokens, i, "#") && is_punct(tokens, i + 1, "[")) {
            i += 1;
            continue;
        }
        // Find the closing `]` of this attribute and whether it is a
        // cfg(...) mentioning `test`.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut saw_cfg = false;
        let mut saw_test = false;
        while j < tokens.len() {
            match tokens[j].kind {
                Kind::Punct if tokens[j].text == "[" => depth += 1,
                Kind::Punct if tokens[j].text == "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Kind::Ident if tokens[j].text == "cfg" => saw_cfg = true,
                Kind::Ident if tokens[j].text == "test" => saw_test = true,
                _ => {}
            }
            j += 1;
        }
        if !(saw_cfg && saw_test) {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then require `mod <name> {`.
        let mut k = j + 1;
        while is_punct(tokens, k, "#") && is_punct(tokens, k + 1, "[") {
            let mut d = 0usize;
            while k < tokens.len() {
                if is_punct(tokens, k, "[") {
                    d += 1;
                } else if is_punct(tokens, k, "]") {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                k += 1;
            }
            k += 1;
        }
        if is_ident(tokens, k, "mod") {
            if let Some(open) = (k..tokens.len()).find(|&m| is_punct(tokens, m, "{")) {
                let close = matching_brace(tokens, open);
                regions.push((i, close));
                i = open + 1;
                continue;
            }
        }
        i = j + 1;
    }
    regions
}

/// Scans for `fn` keywords and records each function's body span.
fn find_fn_spans(tokens: &[Token]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    for i in 0..tokens.len() {
        if !is_ident(tokens, i, "fn") {
            continue;
        }
        // Find the body `{`: the first `{` at angle/paren depth 0 that is
        // not preceded by `=` (to step over `-> impl Trait` oddities the
        // simple scan cannot see, a `;` before any `{` means a bodyless
        // trait/extern declaration).
        let mut j = i + 1;
        let mut paren = 0i32;
        let mut body = None;
        while j < tokens.len() {
            match (tokens[j].kind, tokens[j].text.as_str()) {
                (Kind::Punct, "(") | (Kind::Punct, "[") => paren += 1,
                (Kind::Punct, ")") | (Kind::Punct, "]") => paren -= 1,
                (Kind::Punct, ";") if paren == 0 => break,
                (Kind::Punct, "{") if paren == 0 => {
                    body = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        if let Some(open) = body {
            spans.push(FnSpan {
                start: i,
                end: matching_brace(tokens, open),
            });
        }
    }
    spans
}

/// Index of the `}` matching the `{` at `open` (last token if unclosed).
pub fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == Kind::Punct {
            if t.text == "{" {
                depth += 1;
            } else if t.text == "}" {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// True iff `tokens[i]` is the punctuation `p`.
pub fn is_punct(tokens: &[Token], i: usize, p: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == Kind::Punct && t.text == p)
}

/// True iff `tokens[i]` is the identifier `id`.
pub fn is_ident(tokens: &[Token], i: usize, id: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == Kind::Ident && t.text == id)
}

/// Resolves pragma comments into [`Allow`]s with coverage spans.
fn resolve_allows(lexed: &Lexed) -> Vec<Allow> {
    let first_code_line = lexed.tokens.first().map(|t| t.line).unwrap_or(usize::MAX);
    lexed
        .pragmas
        .iter()
        .map(|p| {
            let (rule, justification, malformed) = parse_pragma_body(&p.body);
            let covers = if p.line < first_code_line {
                (1, usize::MAX) // file-scoped: sits above all code
            } else {
                statement_coverage(&lexed.tokens, p.line)
            };
            Allow {
                rule,
                justification,
                line: p.line,
                covers,
                malformed,
            }
        })
        .collect()
}

/// Parses `allow(<rule>) -- <justification>` → (rule, justification, bad).
fn parse_pragma_body(body: &str) -> (String, String, bool) {
    let (head, justification) = match body.split_once("--") {
        Some((h, j)) => (h.trim(), j.trim().to_string()),
        None => (body.trim(), String::new()),
    };
    let rule = head
        .strip_prefix("allow(")
        .and_then(|r| r.strip_suffix(')'))
        .map(|r| r.trim().to_string());
    match rule {
        Some(r) if !r.is_empty() => (r, justification, false),
        _ => (String::new(), justification, true),
    }
}

/// Lines covered by a pragma at `line`: from the pragma through the end of
/// the statement that starts at the first token at/after it (a trailing
/// pragma covers the statement on its own line). The statement ends at the
/// first `;` at nesting depth 0 or the `{` opening a block — which is what
/// makes a pragma placed directly above a `for`-loop header cover every
/// finding anchored inside that header.
fn statement_coverage(tokens: &[Token], line: usize) -> (usize, usize) {
    let Some(start) = tokens.iter().position(|t| t.line >= line) else {
        return (line, line);
    };
    let mut depth = 0i32;
    for t in &tokens[start..] {
        match (t.kind, t.text.as_str()) {
            (Kind::Punct, "(") | (Kind::Punct, "[") => depth += 1,
            (Kind::Punct, ")") | (Kind::Punct, "]") => depth -= 1,
            (Kind::Punct, ";") if depth <= 0 => return (line, t.line),
            (Kind::Punct, "{") if depth <= 0 => return (line, t.line),
            _ => {}
        }
    }
    (line, tokens.last().map(|t| t.line).unwrap_or(line))
}

/// Every rule id the engine accepts in `allow(...)` pragmas.
pub const RULE_IDS: &[&str] = &[
    rules::lock_hygiene::RULE,
    rules::determinism::RULE,
    rules::failpoints::RULE,
    rules::timing::RULE,
    rules::bench_schema::RULE,
    rules::hygiene::RULE,
];

/// Rule id for pragma-hygiene diagnostics emitted by the engine itself.
pub const PRAGMA_RULE: &str = "pragma";

/// Lints the workspace rooted at `root` and returns the surviving findings,
/// sorted by `(file, line, rule)`. This is the single entry point: the
/// binary, the fixture tests, and the workspace self-check all call it.
pub fn run_root(root: &Path) -> Vec<Finding> {
    let mut files = Vec::new();
    for (rel, path) in walk_rust_files(root) {
        if let Ok(text) = std::fs::read_to_string(&path) {
            files.push(SourceFile::parse(&rel, &text));
        }
    }
    let ci = {
        let path = root.join(".github/workflows/ci.yml");
        std::fs::read_to_string(&path)
            .ok()
            .map(|text| (".github/workflows/ci.yml".to_string(), text))
    };

    let mut raw: Vec<Finding> = Vec::new();
    for f in &files {
        raw.extend(rules::lock_hygiene::check(f));
        raw.extend(rules::determinism::check(f));
        raw.extend(rules::timing::check(f));
        raw.extend(rules::hygiene::check(f));
    }
    raw.extend(rules::failpoints::check(&files));
    raw.extend(rules::bench_schema::check(
        ci.as_ref().map(|(rel, text)| (rel.as_str(), text.as_str())),
        &files,
    ));

    apply_pragmas(&files, raw)
}

/// Drops findings covered by a justified pragma, then reports pragma
/// hygiene: malformed pragmas, unknown rule ids, missing justifications,
/// and pragmas that suppressed nothing (so stale allows cannot linger).
fn apply_pragmas(files: &[SourceFile], raw: Vec<Finding>) -> Vec<Finding> {
    let mut used: BTreeSet<(String, usize)> = BTreeSet::new();
    let mut out: Vec<Finding> = Vec::new();

    for finding in raw {
        let file = files.iter().find(|f| f.rel == finding.file);
        let suppressor = file.and_then(|f| {
            f.allows.iter().find(|a| {
                !a.malformed
                    && a.rule == finding.rule
                    && a.covers.0 <= finding.line
                    && finding.line <= a.covers.1
            })
        });
        match suppressor {
            Some(a) if !a.justification.is_empty() => {
                used.insert((finding.file.clone(), a.line));
            }
            Some(a) => {
                // Unjustified pragma: the finding stands AND the pragma is
                // flagged below; mark used so it is not double-reported.
                used.insert((finding.file.clone(), a.line));
                out.push(finding);
            }
            None => out.push(finding),
        }
    }

    for f in files {
        for a in &f.allows {
            if a.malformed {
                out.push(Finding::new(
                    PRAGMA_RULE,
                    &f.rel,
                    a.line,
                    "malformed pragma: expected `qpgc-lint: allow(<rule>) -- <justification>`",
                ));
            } else if !RULE_IDS.contains(&a.rule.as_str()) {
                out.push(Finding::new(
                    PRAGMA_RULE,
                    &f.rel,
                    a.line,
                    &format!(
                        "pragma names unknown rule `{}` (known: {})",
                        a.rule,
                        RULE_IDS.join(", ")
                    ),
                ));
            } else if a.justification.is_empty() {
                out.push(Finding::new(
                    PRAGMA_RULE,
                    &f.rel,
                    a.line,
                    &format!(
                        "pragma for `{}` carries no justification: write `-- <why this is sound>`",
                        a.rule
                    ),
                ));
            } else if !used.contains(&(f.rel.clone(), a.line)) {
                out.push(Finding::new(
                    PRAGMA_RULE,
                    &f.rel,
                    a.line,
                    &format!(
                        "unused pragma: no `{}` finding here to suppress — delete it",
                        a.rule
                    ),
                ));
            }
        }
    }

    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn excluded_dirs_cover_the_shared_list_and_hidden_dirs() {
        for name in [
            "vendor",
            "target",
            "proptest-regressions",
            "fixtures",
            ".git",
            ".github",
        ] {
            assert!(is_excluded_dir(name), "{name} must be excluded");
        }
        for name in ["crates", "tests", "src", "examples"] {
            assert!(!is_excluded_dir(name), "{name} must be walked");
        }
    }

    #[test]
    fn walker_skips_excluded_trees() {
        let root = std::env::temp_dir().join(format!("qpgc_lint_walk_{}", std::process::id()));
        let mk = |rel: &str| {
            let p = root.join(rel);
            std::fs::create_dir_all(p.parent().unwrap()).unwrap();
            std::fs::write(p, "fn x() {}\n").unwrap();
        };
        mk("crates/a/src/lib.rs");
        mk("vendor/rand/src/lib.rs");
        mk("target/debug/build.rs");
        mk("crates/a/proptest-regressions/regress.rs");
        mk("crates/lint/fixtures/bad.rs");
        let rels: Vec<String> = walk_rust_files(&root).into_iter().map(|(r, _)| r).collect();
        std::fs::remove_dir_all(&root).unwrap();
        assert_eq!(rels, ["crates/a/src/lib.rs"]);
    }

    #[test]
    fn pragma_bodies_parse_and_malform() {
        let (rule, just, bad) = parse_pragma_body("allow(hygiene) -- demo");
        assert_eq!(
            (rule.as_str(), just.as_str(), bad),
            ("hygiene", "demo", false)
        );
        let (_, _, bad) = parse_pragma_body("allowed(hygiene)");
        assert!(bad);
        let (rule, just, bad) = parse_pragma_body("allow(lock-hygiene)");
        assert_eq!(
            (rule.as_str(), just.as_str(), bad),
            ("lock-hygiene", "", false)
        );
    }

    #[test]
    fn test_regions_and_fn_spans_are_found() {
        let src = "fn a() { let x = 1; }\n#[cfg(test)]\nmod tests {\n fn b() {}\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.fn_spans.len(), 2);
        assert_eq!(f.test_regions.len(), 1);
        // Token for `b` lies inside the test region; `a`'s does not.
        let b_idx = f.lexed.tokens.iter().position(|t| t.text == "b").unwrap();
        let a_idx = f.lexed.tokens.iter().position(|t| t.text == "a").unwrap();
        assert!(f.in_test_region(b_idx));
        assert!(!f.in_test_region(a_idx));
    }
}
