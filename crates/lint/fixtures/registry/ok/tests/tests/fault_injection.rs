const SINGLE_SITES: &[&str] = &["store/armed"];

#[test]
fn arm_everything() {
    for site in SINGLE_SITES {
        let _ = site;
    }
    fail_at("store/staged", 1);
}

fn fail_at(_site: &str, _nth: u64) {}
