pub fn publish() {
    qpgc_fault::fail_point!("store/armed");
}

pub fn stage() {
    qpgc_fault::fail_point!("store/staged");
}
