const SINGLE_SITES: &[&str] = &["store/armed_but_dead"];

#[test]
fn arm_everything() {
    for site in SINGLE_SITES {
        let _ = site;
    }
}
