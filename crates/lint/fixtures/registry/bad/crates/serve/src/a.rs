pub fn publish() {
    qpgc_fault::fail_point!("store/ghost");
}
