use std::sync::{Mutex, RwLock};

pub fn counters(m: &Mutex<u64>, l: &RwLock<u64>) -> u64 {
    let a = *m.lock().unwrap();
    let b = *m.lock().expect("poisoned");
    let c = *l.read().unwrap();
    a + b + c
}
