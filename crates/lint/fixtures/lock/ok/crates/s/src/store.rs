use std::sync::{Mutex, PoisonError, RwLock};

pub fn counter(m: &Mutex<u64>) -> u64 {
    *m.lock().unwrap_or_else(PoisonError::into_inner)
}

pub fn reader(l: &RwLock<u64>) -> u64 {
    *l.read().unwrap_or_else(PoisonError::into_inner)
}
