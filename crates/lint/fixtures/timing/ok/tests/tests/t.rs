use std::time::{Duration, Instant};

#[test]
fn fast_enough_when_gated() {
    if std::env::var("QPGC_TIMING_TESTS").is_err() {
        return;
    }
    let t0 = Instant::now();
    work();
    assert!(t0.elapsed() < Duration::from_millis(100));
}

fn work() {}
