use std::time::{Duration, Instant};

#[test]
fn fast_enough() {
    let t0 = Instant::now();
    work();
    assert!(t0.elapsed() < Duration::from_millis(100));
}

fn work() {}
