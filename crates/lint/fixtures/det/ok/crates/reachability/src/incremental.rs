use std::collections::{HashMap, HashSet};

pub fn sorted_ids(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut keys: Vec<u32> = m.keys().copied().collect();
    keys.sort_unstable();
    keys
}

pub fn member_total(s: &HashSet<u32>) -> usize {
    // qpgc-lint: allow(deterministic-iteration) -- commutative sum; order
    // cannot leak into the total.
    s.iter().map(|&v| v as usize).sum()
}
