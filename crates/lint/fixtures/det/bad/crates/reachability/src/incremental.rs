use std::collections::{HashMap, HashSet};

pub fn leak_order(m: &HashMap<u32, u32>, s: &HashSet<u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for (&k, _) in m.iter() {
        out.push(k);
    }
    for &v in s {
        out.push(v);
    }
    out
}
