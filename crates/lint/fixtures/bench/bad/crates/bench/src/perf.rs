pub fn to_json() -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"serve\": {\n");
    out.push_str("  },\n");
    out.push_str("  \"unsmoked\": [\n");
    out.push_str("  ]\n}\n");
    out
}
