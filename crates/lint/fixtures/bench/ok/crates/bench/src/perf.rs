pub fn to_json() -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"serve\": {\n");
    out.push_str("  },\n");
    out.push_str("  \"phases_ms\": {\n");
    out.push_str("  },\n");
    // A `{}` right after the colon is a format! placeholder for a scalar,
    // not a JSON section — must not be treated as emitted schema.
    out.push_str("  \"scale\": {},\n");
    out.push_str("}\n");
    out
}
