pub fn greet() {
    println!("hi");
    dbg!(42);
}

pub fn later() {
    todo!()
}
