fn main() {
    println!("binaries own stdout");
}
