//! Demo crate root: carries the forbid and keeps stdout quiet.

#![forbid(unsafe_code)]

pub fn greet() -> &'static str {
    "hi"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_output_is_fine() {
        println!("banned macros are allowed inside cfg(test) regions");
    }
}
