pub fn helper(m: &std::sync::Mutex<u64>) -> u64 {
    // qpgc-lint: allow(lock-hygiene)
    let v = *m.lock().unwrap();
    // qpgc-lint: allow(no-such-rule) -- typo'd rule name
    let w = v + 1;
    // qpgc-lint: allow(hygiene) -- nothing here triggers hygiene
    w
}
