//! # qpgc_fault — deterministic failpoint injection
//!
//! Fault-tolerance claims are only as good as the faults they were tested
//! against. This crate provides *failpoints*: named sites in the serving
//! pipeline ([`fail_point!`]) that a test can arm to panic on a chosen hit,
//! exercising the exact recovery paths (panic isolation, staged-state
//! rollback, crash-consistent log replay) that an unlucky production batch
//! would.
//!
//! ## Design
//!
//! * **Zero cost when disabled.** Without the `failpoints` cargo feature,
//!   [`eval`] is an empty inlined function and every helper degenerates to
//!   a no-op — the instrumented crates carry the call sites unconditionally
//!   and pay nothing for them. The feature is compiled into *this* crate
//!   (the `fail_point!` macro expands to a call into it), so enabling it
//!   from a test package lights up every site in the workspace build.
//! * **Deterministic triggers.** A [`FaultPlan`] is a list of rules keyed
//!   by `(site, nth-hit)`: the `nth` time (1-based) the named site is
//!   evaluated under the plan, it panics with a recognizable payload
//!   (`"failpoint `site` (hit n)"`). Hit counters are shared by every
//!   thread that [`adopt`]s the plan, so a rule fires exactly once no
//!   matter how many concurrent shard writers race through the site.
//! * **Thread-local activation.** Plans are installed per thread
//!   ([`install`]), so parallel tests cannot arm each other's sites. Code
//!   that fans work out to scoped threads propagates the installing
//!   thread's plan by capturing [`handle`] before the spawn and
//!   [`adopt`]ing it inside each worker — the sharded store's apply path
//!   does exactly this.
//!
//! ## Usage
//!
//! ```
//! use qpgc_fault::{fail_point, FaultPlan};
//!
//! fn publish() {
//!     qpgc_fault::fail_point!("doc/publish");
//!     // ... the work the fault preempts ...
//! }
//!
//! // Without the `failpoints` feature (the default), nothing fires:
//! publish();
//!
//! // With it, a test arms the site and catches the induced panic:
//! let _guard = qpgc_fault::install(FaultPlan::new().fail_at("doc/publish", 1));
//! # #[cfg(feature = "failpoints")]
//! assert!(std::panic::catch_unwind(publish).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Evaluates the failpoint `site`: panics iff the thread's active
/// [`FaultPlan`] has a rule whose `nth` matches the site's hit count.
/// Compiles to a no-op without the `failpoints` feature.
#[macro_export]
macro_rules! fail_point {
    ($site:expr) => {
        $crate::eval($site)
    };
}

#[cfg(feature = "failpoints")]
mod imp {
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex};

    /// One armed failpoint plan: rules keyed by `(site, nth-hit)`.
    #[derive(Clone, Debug, Default)]
    pub struct FaultPlan {
        rules: Vec<(String, u64)>,
    }

    impl FaultPlan {
        /// An empty plan (no site fires).
        pub fn new() -> Self {
            FaultPlan::default()
        }

        /// Arms `site` to panic on its `nth` evaluation (1-based) under
        /// this plan.
        pub fn fail_at(mut self, site: &str, nth: u64) -> Self {
            assert!(nth >= 1, "hit counts are 1-based");
            self.rules.push((site.to_string(), nth));
            self
        }
    }

    #[derive(Debug)]
    struct Shared {
        rules: Vec<(String, u64)>,
        hits: Mutex<HashMap<String, u64>>,
    }

    /// A live, reference-counted fault plan. Cloning shares the hit
    /// counters, which is what makes `(site, nth)` rules deterministic
    /// across the scoped worker threads that [`adopt`](crate::adopt) it.
    #[derive(Clone, Debug)]
    pub struct FaultHandle(Arc<Shared>);

    impl FaultHandle {
        fn bump_and_check(&self, site: &str) {
            if !self.0.rules.iter().any(|(s, _)| s == site) {
                return;
            }
            let hit = {
                let mut hits = self.0.hits.lock().unwrap_or_else(|e| e.into_inner());
                let h = hits.entry(site.to_string()).or_insert(0);
                *h += 1;
                *h
            };
            if self.0.rules.iter().any(|(s, nth)| s == site && *nth == hit) {
                panic!("failpoint `{site}` (hit {hit})");
            }
        }
    }

    thread_local! {
        static ACTIVE: RefCell<Option<FaultHandle>> = const { RefCell::new(None) };
    }

    /// Clears the calling thread's plan when dropped, restoring whatever
    /// was active before.
    #[derive(Debug)]
    pub struct InstallGuard {
        previous: Option<FaultHandle>,
    }

    impl Drop for InstallGuard {
        fn drop(&mut self) {
            ACTIVE.with(|a| *a.borrow_mut() = self.previous.take());
        }
    }

    /// Installs `plan` as the calling thread's active plan for the guard's
    /// lifetime.
    pub fn install(plan: FaultPlan) -> InstallGuard {
        let handle = FaultHandle(Arc::new(Shared {
            rules: plan.rules,
            hits: Mutex::new(HashMap::new()),
        }));
        let previous = ACTIVE.with(|a| a.borrow_mut().replace(handle));
        InstallGuard { previous }
    }

    /// The calling thread's active plan, if any — capture it before
    /// spawning workers and [`adopt`](crate::adopt) it inside each.
    pub fn handle() -> Option<FaultHandle> {
        ACTIVE.with(|a| a.borrow().clone())
    }

    /// Adopts a captured plan (hit counters shared with the installer) on
    /// the calling thread for the guard's lifetime. `None` is a no-op
    /// guard, so call sites need no conditionals.
    pub fn adopt(handle: Option<FaultHandle>) -> InstallGuard {
        let previous = match handle {
            Some(h) => ACTIVE.with(|a| a.borrow_mut().replace(h)),
            None => ACTIVE.with(|a| a.borrow().clone()),
        };
        InstallGuard { previous }
    }

    /// See [`fail_point!`](crate::fail_point).
    pub fn eval(site: &str) {
        if let Some(h) = ACTIVE.with(|a| a.borrow().clone()) {
            h.bump_and_check(site);
        }
    }
}

#[cfg(not(feature = "failpoints"))]
mod imp {
    /// One armed failpoint plan — inert without the `failpoints` feature.
    #[derive(Clone, Debug, Default)]
    pub struct FaultPlan;

    impl FaultPlan {
        /// An empty plan (no site fires).
        pub fn new() -> Self {
            FaultPlan
        }

        /// Arms `site` to panic on its `nth` evaluation — a no-op in this
        /// build; enable the `failpoints` feature to make it live.
        pub fn fail_at(self, _site: &str, _nth: u64) -> Self {
            self
        }
    }

    /// A live fault plan — inert without the `failpoints` feature.
    #[derive(Clone, Debug)]
    pub struct FaultHandle;

    /// Inert guard.
    #[derive(Debug)]
    pub struct InstallGuard;

    /// Installs `plan` — a no-op in this build.
    pub fn install(_plan: FaultPlan) -> InstallGuard {
        InstallGuard
    }

    /// Always `None` in this build.
    pub fn handle() -> Option<FaultHandle> {
        None
    }

    /// Inert adoption guard.
    pub fn adopt(_handle: Option<FaultHandle>) -> InstallGuard {
        InstallGuard
    }

    /// See [`fail_point!`](crate::fail_point) — a no-op in this build.
    #[inline(always)]
    pub fn eval(_site: &str) {}
}

pub use imp::{adopt, eval, handle, install, FaultHandle, FaultPlan, InstallGuard};

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn payload(e: Box<dyn std::any::Any + Send>) -> String {
        e.downcast_ref::<String>()
            .cloned()
            .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default()
    }

    #[test]
    fn unarmed_sites_never_fire() {
        eval("t/unarmed");
        let _g = install(FaultPlan::new().fail_at("t/other", 1));
        eval("t/unarmed");
    }

    #[test]
    fn nth_hit_fires_exactly_once() {
        let _g = install(FaultPlan::new().fail_at("t/nth", 3));
        eval("t/nth");
        eval("t/nth");
        let err = catch_unwind(AssertUnwindSafe(|| eval("t/nth"))).unwrap_err();
        assert_eq!(payload(err), "failpoint `t/nth` (hit 3)");
        // Hit 4 and beyond pass again.
        eval("t/nth");
        eval("t/nth");
    }

    #[test]
    fn plans_are_thread_local_but_counters_are_shared_on_adoption() {
        let _g = install(FaultPlan::new().fail_at("t/shared", 2));
        let captured = handle();
        // A thread without the plan never fires.
        std::thread::scope(|s| {
            s.spawn(|| eval("t/shared")).join().unwrap();
        });
        // Two adopting threads share the counter: exactly one panics.
        let results: Vec<bool> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let h = captured.clone();
                    s.spawn(move || {
                        let _a = adopt(h);
                        catch_unwind(AssertUnwindSafe(|| eval("t/shared"))).is_err()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(results.iter().filter(|&&p| p).count(), 1);
    }

    #[test]
    fn guard_restores_the_previous_plan() {
        let _outer = install(FaultPlan::new().fail_at("t/outer", 1));
        {
            let _inner = install(FaultPlan::new());
            eval("t/outer"); // inner plan has no rule for it
        }
        // Outer plan is active again (and its counter starts fresh: the
        // inner evaluation ran under the inner plan).
        assert!(catch_unwind(AssertUnwindSafe(|| eval("t/outer"))).is_err());
    }
}
