//! `incRCM` — incremental maintenance of the reachability-preserving
//! compression (Section 5.1, Fig. 8).
//!
//! Given the compression of `G` and a batch `ΔG` of edge insertions and
//! deletions, the maintained state is updated to the compression of
//! `G ⊕ ΔG` without recompressing from scratch and without searching `G`:
//! the algorithm touches only the compressed structures, the update batch,
//! and the adjacency lists of nodes inside the *affected area*.
//!
//! ## Algorithm
//!
//! The paper's `incRCM` proceeds by reducing redundant updates, maintaining
//! topological ranks, and splitting / merging hypernodes. The `Split` /
//! `Merge` procedures are only sketched in the paper; this implementation
//! realizes the same plan as an *affected-region localized recomputation*
//! (see DESIGN.md §2):
//!
//! 1. **Reduce `ΔG`** — normalize the batch against `G` and drop insertions
//!    that are already implied by the current reachability relation (the
//!    paper's redundant-insertion rule; provably safe for insertion-only
//!    batches, which is when it is applied).
//! 2. **Locate the affected area** — for an update `(u, w)` the only classes
//!    whose ancestor or descendant sets can change are those that reach
//!    `[u]` or are reachable from `[w]` (plus the endpoint classes
//!    themselves). The union over the batch is the affected class set `AFF`,
//!    computed by two multi-source BFS traversals over the compressed graph.
//! 3. **Localized recomputation** — build a *hybrid graph* whose nodes are
//!    the members of affected classes (exploded) plus one atom per
//!    unaffected class (cyclic atoms get a self loop), and whose edges are
//!    the compressed inter-class edges between unaffected classes plus the
//!    real adjacency of affected members. The reachability equivalence of
//!    the hybrid graph, computed by the very same routine as the batch
//!    algorithm, is exactly the new equivalence restricted to the affected
//!    region; unaffected classes that come out untouched keep their
//!    identity.
//! 4. **Patch the state** — splice the new classes into the node → class
//!    index and rebuild the inter-class edge counters incident to them.
//!
//! The cost is `O((|AFF| + |Gr|)²/w + edges incident to affected members)`,
//! independent of `|G|`, matching the spirit of the paper's
//! `O(|AFF| · |Gr|)` bound (the problem itself is unbounded — Theorem 6 —
//! so no algorithm can depend on `|ΔG| + |ΔGr|` alone).

use std::collections::{HashMap, HashSet, VecDeque};

use qpgc_graph::transitive::transitive_reduction;
use qpgc_graph::{LabeledGraph, NodeId, UpdateBatch};

use crate::compress::ReachCompression;
use crate::equivalence::{reachability_partition, ReachPartition};

/// Statistics of one incremental maintenance step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncStats {
    /// Number of updates after normalization and redundancy reduction.
    pub effective_updates: usize,
    /// Number of updates dropped as redundant.
    pub redundant_dropped: usize,
    /// Number of affected equivalence classes (exploded into members).
    pub affected_classes: usize,
    /// Number of original nodes inside affected classes.
    pub affected_nodes: usize,
    /// Number of nodes of the hybrid graph used for the localized
    /// recomputation.
    pub hybrid_nodes: usize,
    /// Number of classes created or rewritten by this step (a proxy for
    /// `|ΔGr|`).
    pub changed_classes: usize,
}

/// Incrementally maintained reachability-preserving compression.
#[derive(Clone, Debug)]
pub struct IncrementalReach {
    /// `class_of[v]` — class id of node `v`. Ids are stable across updates
    /// for unaffected classes; freed ids are recycled.
    class_of: Vec<u32>,
    /// Members per class id (meaningful only for active ids).
    members: Vec<Vec<NodeId>>,
    /// Cyclic flag per class id.
    cyclic: Vec<bool>,
    /// Whether a class id is in use.
    active: Vec<bool>,
    /// Recycled class ids.
    free_ids: Vec<u32>,
    /// Directed counts of original edges between *distinct* classes.
    q_edges: HashMap<(u32, u32), u32>,
}

impl IncrementalReach {
    /// Builds the compression of `g` from scratch (the batch step that the
    /// incremental algorithm then maintains).
    pub fn new(g: &LabeledGraph) -> Self {
        let partition = reachability_partition(g);
        Self::from_partition(g, partition)
    }

    fn from_partition(g: &LabeledGraph, partition: ReachPartition) -> Self {
        let classes = partition.class_count();
        let mut q_edges: HashMap<(u32, u32), u32> = HashMap::new();
        for (u, v) in g.edges() {
            let cu = partition.class_of(u);
            let cv = partition.class_of(v);
            if cu != cv {
                *q_edges.entry((cu, cv)).or_insert(0) += 1;
            }
        }
        IncrementalReach {
            class_of: partition.class_of,
            members: partition.members,
            cyclic: partition.cyclic,
            active: vec![true; classes],
            free_ids: Vec::new(),
            q_edges,
        }
    }

    /// Number of active equivalence classes (`|Vr|`).
    pub fn class_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Number of compressed inter-class edges currently tracked (before
    /// transitive reduction).
    pub fn quotient_edge_count(&self) -> usize {
        self.q_edges.len()
    }

    /// The class id of node `v`.
    pub fn class_of(&self, v: NodeId) -> u32 {
        self.class_of[v.index()]
    }

    /// Answers the reachability query `QR(v, w)` using only the compressed
    /// state (BFS over the class-level edges).
    pub fn query(&self, v: NodeId, w: NodeId) -> bool {
        if v == w {
            return true;
        }
        let cv = self.class_of(v);
        let cw = self.class_of(w);
        if cv == cw {
            return self.cyclic[cv as usize];
        }
        self.class_reaches(cv, cw)
    }

    fn class_adjacency(&self) -> HashMap<u32, Vec<u32>> {
        let mut adj: HashMap<u32, Vec<u32>> = HashMap::new();
        for &(a, b) in self.q_edges.keys() {
            adj.entry(a).or_default().push(b);
        }
        adj
    }

    fn class_reaches(&self, from: u32, to: u32) -> bool {
        let adj = self.class_adjacency();
        let mut visited = HashSet::new();
        let mut queue = VecDeque::new();
        visited.insert(from);
        queue.push_back(from);
        while let Some(c) = queue.pop_front() {
            if let Some(next) = adj.get(&c) {
                for &d in next {
                    if d == to {
                        return true;
                    }
                    if visited.insert(d) {
                        queue.push_back(d);
                    }
                }
            }
        }
        false
    }

    /// Multi-source BFS over class-level edges; `forward` follows edges,
    /// otherwise reverse edges. Returns every class reached *including* the
    /// sources.
    fn class_cone(&self, sources: &HashSet<u32>, forward: bool) -> HashSet<u32> {
        let mut adj: HashMap<u32, Vec<u32>> = HashMap::new();
        for &(a, b) in self.q_edges.keys() {
            if forward {
                adj.entry(a).or_default().push(b);
            } else {
                adj.entry(b).or_default().push(a);
            }
        }
        let mut visited: HashSet<u32> = sources.clone();
        let mut queue: VecDeque<u32> = sources.iter().copied().collect();
        while let Some(c) = queue.pop_front() {
            if let Some(next) = adj.get(&c) {
                for &d in next {
                    if visited.insert(d) {
                        queue.push_back(d);
                    }
                }
            }
        }
        visited
    }

    /// Applies the update batch: mutates `g` to `G ⊕ ΔG` and maintains the
    /// compressed state so that it equals `R(G ⊕ ΔG)`.
    pub fn apply(&mut self, g: &mut LabeledGraph, batch: &UpdateBatch) -> IncStats {
        let mut stats = IncStats::default();
        let norm = batch.normalized(g);
        if norm.is_empty() {
            return stats;
        }

        // Step 1: redundant-insertion reduction (safe when the batch inserts
        // only, because insertions never invalidate the implying paths).
        let insertions_only = norm.updates().iter().all(|u| u.is_insert());
        let mut effective: Vec<(NodeId, NodeId, bool)> = Vec::new();
        for u in norm.updates() {
            let (a, b) = u.edge();
            // Redundant iff `a` already reaches `b` via a *non-empty* path:
            // then the proper-reachability relation (and hence Re and Gr) is
            // unchanged by the insertion. Note the self-loop case: inserting
            // `(a, a)` is only redundant if `a` already lies on a cycle.
            let already_proper_reach = if a == b {
                self.cyclic[self.class_of(a) as usize]
            } else {
                self.query(a, b)
            };
            if insertions_only && u.is_insert() && already_proper_reach {
                stats.redundant_dropped += 1;
                continue;
            }
            effective.push((a, b, u.is_insert()));
        }
        stats.effective_updates = effective.len();

        // All normalized updates are applied to the graph, including the
        // redundant ones (they still change the edge set, just not the
        // reachability relation).
        norm.apply_to(g);

        if effective.is_empty() {
            return stats;
        }

        // Step 2: affected classes = up-cone of the sources ∪ down-cone of
        // the targets, over the class-level edges of the *old* compression.
        let mut up_sources: HashSet<u32> = HashSet::new();
        let mut down_sources: HashSet<u32> = HashSet::new();
        for &(a, b, _) in &effective {
            up_sources.insert(self.class_of(a));
            down_sources.insert(self.class_of(b));
        }
        let mut affected: HashSet<u32> = self.class_cone(&up_sources, false);
        affected.extend(self.class_cone(&down_sources, true));
        stats.affected_classes = affected.len();
        stats.affected_nodes = affected
            .iter()
            .map(|&c| self.members[c as usize].len())
            .sum();

        // Step 3: localized recomputation on the hybrid graph.
        let changed = self.localized_recompute(g, &affected);
        stats.changed_classes = changed;
        stats.hybrid_nodes = self.class_count(); // informative only

        stats
    }

    /// Rebuilds the equivalence inside the affected region and patches the
    /// state. Returns the number of classes created or rewritten.
    fn localized_recompute(&mut self, g: &LabeledGraph, affected: &HashSet<u32>) -> usize {
        // ---- Build the hybrid graph. -------------------------------------
        #[derive(Clone, Copy)]
        enum Unit {
            Atom(u32),
            Member(NodeId),
        }
        let mut hybrid = LabeledGraph::new();
        let mut units: Vec<Unit> = Vec::new();
        let mut atom_of_class: HashMap<u32, NodeId> = HashMap::new();
        let mut hybrid_of_node: HashMap<NodeId, NodeId> = HashMap::new();

        for c in 0..self.members.len() as u32 {
            if !self.active[c as usize] || affected.contains(&c) {
                continue;
            }
            let h = hybrid.add_node_with_label("atom");
            units.push(Unit::Atom(c));
            atom_of_class.insert(c, h);
            if self.cyclic[c as usize] {
                // A cyclic class reaches itself via non-empty paths; the self
                // loop keeps that visible to the equivalence computation.
                hybrid.add_edge(h, h);
            }
        }
        for &c in affected {
            for &v in &self.members[c as usize] {
                let h = hybrid.add_node_with_label("node");
                units.push(Unit::Member(v));
                hybrid_of_node.insert(v, h);
            }
        }

        // Edges between unaffected classes come from the maintained
        // class-level edge counters.
        for &(a, b) in self.q_edges.keys() {
            if let (Some(&ha), Some(&hb)) = (atom_of_class.get(&a), atom_of_class.get(&b)) {
                hybrid.add_edge(ha, hb);
            }
        }
        // Edges incident to affected members come from the (already updated)
        // data graph adjacency of exactly those members.
        for (&v, &hv) in &hybrid_of_node {
            for &w in g.out_neighbors(v) {
                let hw = match hybrid_of_node.get(&w) {
                    Some(&h) => h,
                    None => atom_of_class[&self.class_of(w)],
                };
                hybrid.add_edge(hv, hw);
            }
            for &z in g.in_neighbors(v) {
                if !hybrid_of_node.contains_key(&z) {
                    let hz = atom_of_class[&self.class_of(z)];
                    hybrid.add_edge(hz, hv);
                }
            }
        }

        // ---- Recompute the equivalence on the hybrid graph. --------------
        let part = reachability_partition(&hybrid);

        // Group hybrid units by their new class.
        let mut groups: Vec<Vec<Unit>> = vec![Vec::new(); part.class_count()];
        for (i, &unit) in units.iter().enumerate() {
            groups[part.class_of(NodeId::new(i)) as usize].push(unit);
        }

        // ---- Patch the maintained state. ----------------------------------
        // Classes whose composition changes: all affected classes, plus any
        // unaffected atom that merges with something else.
        let mut retired: HashSet<u32> = affected.clone();
        for group in &groups {
            if group.len() == 1 {
                if let Unit::Atom(_) = group[0] {
                    continue; // unchanged class keeps its identity
                }
            }
            for unit in group {
                if let Unit::Atom(c) = unit {
                    retired.insert(*c);
                }
            }
        }

        // Pass A: collect the member sets of every changed group *before*
        // any class id is retired or recycled (absorbed atoms hand over
        // their member lists wholesale here).
        let mut pending: Vec<(Vec<NodeId>, bool)> = Vec::new();
        for (gi, group) in groups.iter().enumerate() {
            if group.len() == 1 {
                if let Unit::Atom(_) = group[0] {
                    continue;
                }
            }
            let mut member_nodes: Vec<NodeId> = Vec::new();
            for unit in group {
                match unit {
                    Unit::Member(v) => member_nodes.push(*v),
                    Unit::Atom(c) => {
                        // The atom's previous members move wholesale.
                        let old = std::mem::take(&mut self.members[*c as usize]);
                        member_nodes.extend(old);
                    }
                }
            }
            member_nodes.sort_unstable();
            pending.push((member_nodes, part.cyclic[gi]));
        }

        // Pass B: retire changed classes and drop the class-level edges
        // touching them; they are rebuilt below from the adjacency of the
        // new classes' members.
        self.q_edges
            .retain(|&(a, b), _| !retired.contains(&a) && !retired.contains(&b));
        for &c in &retired {
            self.active[c as usize] = false;
            self.members[c as usize].clear();
            self.free_ids.push(c);
        }

        // Pass C: create the new classes (recycling retired ids).
        let mut new_ids: Vec<u32> = Vec::new();
        let mut changed = 0usize;
        for (member_nodes, is_cyclic) in pending {
            changed += 1;
            let id = match self.free_ids.pop() {
                Some(id) => id,
                None => {
                    self.members.push(Vec::new());
                    self.cyclic.push(false);
                    self.active.push(false);
                    (self.members.len() - 1) as u32
                }
            };
            for &v in &member_nodes {
                self.class_of[v.index()] = id;
            }
            self.members[id as usize] = member_nodes;
            self.cyclic[id as usize] = is_cyclic;
            self.active[id as usize] = true;
            new_ids.push(id);
        }

        // Rebuild class-level edge counters incident to the new classes.
        let new_set: HashSet<u32> = new_ids.iter().copied().collect();
        for &id in &new_ids {
            // Iterate over a snapshot because `class_of` is already final.
            let members = self.members[id as usize].clone();
            for v in members {
                for &w in g.out_neighbors(v) {
                    let cw = self.class_of(w);
                    if cw != id {
                        *self.q_edges.entry((id, cw)).or_insert(0) += 1;
                    }
                }
                for &z in g.in_neighbors(v) {
                    let cz = self.class_of(z);
                    if cz != id && !new_set.contains(&cz) {
                        *self.q_edges.entry((cz, id)).or_insert(0) += 1;
                    }
                }
            }
        }
        changed
    }

    /// Dense renumbering of the active class ids (ascending id order) plus
    /// the partition expressed in those dense ids.
    fn dense_partition(&self) -> (HashMap<u32, u32>, ReachPartition) {
        let mut dense: HashMap<u32, u32> = HashMap::new();
        let mut members: Vec<Vec<NodeId>> = Vec::new();
        let mut cyclic: Vec<bool> = Vec::new();
        for c in 0..self.members.len() as u32 {
            if self.active[c as usize] {
                dense.insert(c, members.len() as u32);
                members.push(self.members[c as usize].clone());
                cyclic.push(self.cyclic[c as usize]);
            }
        }
        let mut class_of = vec![0u32; self.class_of.len()];
        for (v, &c) in self.class_of.iter().enumerate() {
            class_of[v] = dense[&c];
        }
        (
            dense,
            ReachPartition {
                class_of,
                members,
                cyclic,
            },
        )
    }

    /// The current partition with densely renumbered class ids (class `i` is
    /// the `i`-th active class in id order — the same numbering
    /// [`IncrementalReach::to_compression`] uses), *without* materializing
    /// the compressed graph. Snapshot layers that build their own quotient
    /// representation (e.g. a CSR snapshot with class edges collected in
    /// parallel) start from this.
    pub fn partition(&self) -> ReachPartition {
        self.dense_partition().1
    }

    /// Materializes the current state as a [`ReachCompression`] with a
    /// freshly built (transitively reduced) compressed graph. Class `i` of
    /// the result corresponds to the `i`-th active class in id order.
    pub fn to_compression(&self) -> ReachCompression {
        let (dense, partition) = self.dense_partition();
        let members = &partition.members;

        // Quotient graph + transitive reduction.
        let mut quotient = LabeledGraph::with_capacity(members.len());
        for _ in 0..members.len() {
            quotient.add_node_with_label("σ");
        }
        for &(a, b) in self.q_edges.keys() {
            quotient.add_edge(NodeId(dense[&a]), NodeId(dense[&b]));
        }
        let kept = transitive_reduction(&quotient)
            .expect("the quotient of the reachability equivalence relation is a DAG");
        let mut reduced = LabeledGraph::with_capacity(members.len());
        for _ in 0..members.len() {
            reduced.add_node_with_label("σ");
        }
        for (a, b) in kept {
            reduced.add_edge(a, b);
        }

        ReachCompression {
            graph: reduced,
            partition,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::compress_r;
    use qpgc_graph::traversal::bfs_reachable;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn graph(n: usize, edges: &[(u32, u32)]) -> LabeledGraph {
        let mut g = LabeledGraph::new();
        for _ in 0..n {
            g.add_node_with_label("X");
        }
        for &(u, v) in edges {
            g.add_edge(NodeId(u), NodeId(v));
        }
        g
    }

    /// The incremental result must be identical (as a partition and as a
    /// reachability oracle) to recompressing the updated graph from scratch.
    fn assert_matches_batch(mut g: LabeledGraph, batch: UpdateBatch) {
        let mut inc = IncrementalReach::new(&g);
        inc.apply(&mut g, &batch);

        let batch_compressed = compress_r(&g);
        let inc_compressed = inc.to_compression();
        assert_eq!(
            inc_compressed.partition.canonical(),
            batch_compressed.partition.canonical(),
            "incremental partition diverged from batch recompression"
        );
        for v in g.nodes() {
            for w in g.nodes() {
                let expected = bfs_reachable(&g, v, w);
                assert_eq!(inc.query(v, w), expected, "inc query ({v},{w})");
                assert_eq!(
                    inc_compressed.query(v, w),
                    expected,
                    "materialized query ({v},{w})"
                );
            }
        }
    }

    #[test]
    fn single_insertion_splitting_a_class() {
        // Diamond: 1 and 2 equivalent; adding 1 -> 4 splits them.
        let g = graph(5, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let mut batch = UpdateBatch::new();
        batch.insert(NodeId(1), NodeId(4));
        assert_matches_batch(g, batch);
    }

    #[test]
    fn single_insertion_merging_classes() {
        // 0 -> 1, 0 -> 2, 1 -> 3; adding 2 -> 3 makes 1 and 2 equivalent.
        let g = graph(4, &[(0, 1), (0, 2), (1, 3)]);
        let mut batch = UpdateBatch::new();
        batch.insert(NodeId(2), NodeId(3));
        assert_matches_batch(g, batch);
    }

    #[test]
    fn single_deletion_splitting() {
        let g = graph(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let mut batch = UpdateBatch::new();
        batch.delete(NodeId(2), NodeId(3));
        assert_matches_batch(g, batch);
    }

    #[test]
    fn insertion_creating_a_cycle() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut batch = UpdateBatch::new();
        batch.insert(NodeId(3), NodeId(1));
        assert_matches_batch(g, batch);
    }

    #[test]
    fn deletion_breaking_a_cycle() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        let mut batch = UpdateBatch::new();
        batch.delete(NodeId(2), NodeId(1));
        assert_matches_batch(g, batch);
    }

    #[test]
    fn redundant_insertion_is_detected() {
        let g = graph(3, &[(0, 1), (1, 2)]);
        let mut g2 = g.clone();
        let mut inc = IncrementalReach::new(&g2);
        let before = inc.to_compression().partition.canonical();
        let mut batch = UpdateBatch::new();
        batch.insert(NodeId(0), NodeId(2)); // implied by 0 -> 1 -> 2
        let stats = inc.apply(&mut g2, &batch);
        assert_eq!(stats.redundant_dropped, 1);
        assert_eq!(stats.effective_updates, 0);
        assert_eq!(inc.to_compression().partition.canonical(), before);
        // And it still matches the batch result.
        assert_eq!(
            inc.to_compression().partition.canonical(),
            compress_r(&g2).partition.canonical()
        );
    }

    #[test]
    fn noop_batch() {
        let g = graph(3, &[(0, 1)]);
        let mut g2 = g.clone();
        let mut inc = IncrementalReach::new(&g2);
        let stats = inc.apply(&mut g2, &UpdateBatch::new());
        assert_eq!(stats, IncStats::default());
    }

    #[test]
    fn mixed_batch() {
        let g = graph(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5), (2, 5)]);
        let mut batch = UpdateBatch::new();
        batch.insert(NodeId(5), NodeId(0)); // creates a big cycle
        batch.delete(NodeId(0), NodeId(2));
        batch.insert(NodeId(1), NodeId(5));
        assert_matches_batch(g, batch);
    }

    #[test]
    fn repeated_batches_stay_consistent() {
        let mut g = graph(7, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (5, 4), (5, 6)]);
        let mut inc = IncrementalReach::new(&g);
        let batches: Vec<Vec<(u32, u32, bool)>> = vec![
            vec![(6, 0, true)],
            vec![(3, 5, true), (0, 1, false)],
            vec![(4, 6, true), (6, 0, false)],
            vec![(2, 3, false), (1, 3, false)],
        ];
        for b in batches {
            let mut batch = UpdateBatch::new();
            for (u, v, ins) in b {
                if ins {
                    batch.insert(NodeId(u), NodeId(v));
                } else {
                    batch.delete(NodeId(u), NodeId(v));
                }
            }
            inc.apply(&mut g, &batch);
            let batch_c = compress_r(&g);
            assert_eq!(
                inc.to_compression().partition.canonical(),
                batch_c.partition.canonical()
            );
        }
    }

    #[test]
    fn randomized_incremental_equals_batch() {
        let mut rng = StdRng::seed_from_u64(42);
        for case in 0..30 {
            let n = rng.gen_range(3..14);
            let m = rng.gen_range(0..n * 2);
            let mut g = LabeledGraph::new();
            for _ in 0..n {
                g.add_node_with_label("X");
            }
            for _ in 0..m {
                let u = rng.gen_range(0..n) as u32;
                let v = rng.gen_range(0..n) as u32;
                g.add_edge(NodeId(u), NodeId(v));
            }
            let mut batch = UpdateBatch::new();
            for _ in 0..rng.gen_range(1..6) {
                let u = NodeId(rng.gen_range(0..n) as u32);
                let v = NodeId(rng.gen_range(0..n) as u32);
                if rng.gen_bool(0.5) {
                    batch.insert(u, v);
                } else {
                    batch.delete(u, v);
                }
            }
            let mut g2 = g.clone();
            let mut inc = IncrementalReach::new(&g2);
            inc.apply(&mut g2, &batch);
            let expect = compress_r(&g2);
            assert_eq!(
                inc.to_compression().partition.canonical(),
                expect.partition.canonical(),
                "case {case} diverged"
            );
        }
    }

    #[test]
    fn partition_export_matches_materialized_compression() {
        let mut g = graph(5, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let mut inc = IncrementalReach::new(&g);
        let mut batch = UpdateBatch::new();
        batch.insert(NodeId(3), NodeId(4));
        batch.delete(NodeId(2), NodeId(3));
        inc.apply(&mut g, &batch);
        let part = inc.partition();
        let comp = inc.to_compression();
        assert_eq!(part.class_of, comp.partition.class_of);
        assert_eq!(part.members, comp.partition.members);
        assert_eq!(part.cyclic, comp.partition.cyclic);
    }

    #[test]
    fn quotient_edges_stay_in_sync() {
        let mut g = graph(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut inc = IncrementalReach::new(&g);
        let mut batch = UpdateBatch::new();
        batch.delete(NodeId(1), NodeId(2));
        batch.insert(NodeId(0), NodeId(4));
        inc.apply(&mut g, &batch);
        // Rebuild from scratch and compare the full reachability oracle.
        for v in g.nodes() {
            for w in g.nodes() {
                assert_eq!(inc.query(v, w), bfs_reachable(&g, v, w));
            }
        }
        assert_eq!(inc.class_count(), compress_r(&g).class_count());
    }
}
