//! `incRCM` — incremental maintenance of the reachability-preserving
//! compression (Section 5.1, Fig. 8).
//!
//! Given the compression of `G` and a batch `ΔG` of edge insertions and
//! deletions, the maintained state is updated to the compression of
//! `G ⊕ ΔG` without recompressing from scratch and without searching `G`:
//! the algorithm touches only the compressed structures, the update batch,
//! and the adjacency lists of nodes inside the *affected area*.
//!
//! ## Algorithm
//!
//! The paper's `incRCM` proceeds by reducing redundant updates, maintaining
//! topological ranks, and splitting / merging hypernodes. The `Split` /
//! `Merge` procedures are only sketched in the paper; this implementation
//! realizes the same plan as an *affected-region localized recomputation*
//! (see DESIGN.md §2):
//!
//! 1. **Reduce `ΔG`** — normalize the batch against `G` and drop insertions
//!    that are already implied by the current reachability relation (the
//!    paper's redundant-insertion rule; provably safe for insertion-only
//!    batches, which is when it is applied).
//! 2. **Locate the affected area** — for an update `(u, w)` the only classes
//!    whose ancestor or descendant sets can change are those that reach
//!    `[u]` or are reachable from `[w]` (plus the endpoint classes
//!    themselves). The union over the batch is the affected class set `AFF`,
//!    computed by two multi-source BFS traversals over the compressed graph.
//! 3. **Localized recomputation** — build a *hybrid graph* whose nodes are
//!    the members of affected classes (exploded) plus one atom per
//!    unaffected class (cyclic atoms get a self loop), and whose edges are
//!    the compressed inter-class edges between unaffected classes plus the
//!    real adjacency of affected members. The reachability equivalence of
//!    the hybrid graph, computed by the very same routine as the batch
//!    algorithm, is exactly the new equivalence restricted to the affected
//!    region; unaffected classes that come out untouched keep their
//!    identity.
//! 4. **Patch the state** — splice the new classes into the node → class
//!    index and rebuild the inter-class edge counters incident to them.
//!
//! The cost is `O((|AFF| + |Gr|)²/w + edges incident to affected members)`,
//! independent of `|G|`, matching the spirit of the paper's
//! `O(|AFF| · |Gr|)` bound (the problem itself is unbounded — Theorem 6 —
//! so no algorithm can depend on `|ΔG| + |ΔGr|` alone).

use std::collections::{HashMap, HashSet, VecDeque};

use qpgc_graph::transitive::transitive_reduction;
use qpgc_graph::update::{ClassBirth, PartitionDelta};
use qpgc_graph::{LabeledGraph, NodeId, UpdateBatch};

use crate::compress::ReachCompression;
use crate::equivalence::{reachability_partition_threads, ReachPartition};

/// The maintained compression state exported with **stable** class ids —
/// the ids [`IncrementalReach`] keeps across updates (recycling retired
/// ones) rather than the densely renumbered ids of
/// [`IncrementalReach::partition`].
///
/// Stable ids are what makes snapshot *patching* possible: a class id
/// absent from a [`PartitionDelta`] names the same node set before and
/// after the batch, so derived per-class structures (quotient CSR rows,
/// landmark labels) indexed by stable id can be carried over verbatim.
/// Retired ids are simply inactive holes; derived structures keep an empty
/// row for them.
#[derive(Clone, Debug)]
pub struct StableQuotient {
    /// `class_of[v]` — stable class id of node `v` (always an active id).
    pub class_of: Vec<u32>,
    /// Cyclic flag per stable id (stale for inactive ids).
    pub cyclic: Vec<bool>,
    /// Liveness per stable id.
    pub active: Vec<bool>,
    /// Distinct inter-class edges of the (unreduced) quotient, sorted by
    /// `(source, target)` stable id.
    pub edges: Vec<(u32, u32)>,
}

impl StableQuotient {
    /// Size of the stable id space (`max id + 1`, holes included).
    pub fn id_space(&self) -> usize {
        self.active.len()
    }

    /// Number of live classes (`|Vr|`).
    pub fn class_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }
}

/// Statistics of one incremental maintenance step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncStats {
    /// Number of updates after normalization and redundancy reduction.
    pub effective_updates: usize,
    /// Number of updates dropped as redundant.
    pub redundant_dropped: usize,
    /// Number of affected equivalence classes (exploded into members).
    pub affected_classes: usize,
    /// Number of original nodes inside affected classes.
    pub affected_nodes: usize,
    /// Number of nodes of the hybrid graph used for the localized
    /// recomputation.
    pub hybrid_nodes: usize,
    /// Number of classes created or rewritten by this step (a proxy for
    /// `|ΔGr|`).
    pub changed_classes: usize,
}

/// Incrementally maintained reachability-preserving compression.
#[derive(Clone, Debug)]
pub struct IncrementalReach {
    /// `class_of[v]` — class id of node `v`. Ids are stable across updates
    /// for unaffected classes; freed ids are recycled.
    class_of: Vec<u32>,
    /// Members per class id (meaningful only for active ids).
    members: Vec<Vec<NodeId>>,
    /// Cyclic flag per class id.
    cyclic: Vec<bool>,
    /// Whether a class id is in use.
    active: Vec<bool>,
    /// Recycled class ids.
    free_ids: Vec<u32>,
    /// Directed counts of original edges between *distinct* classes.
    q_edges: HashMap<(u32, u32), u32>,
    /// Worker count handed to the partition kernel (`0` = available
    /// parallelism). Partition output is bit-identical at every value.
    threads: usize,
}

impl IncrementalReach {
    /// Builds the compression of `g` from scratch (the batch step that the
    /// incremental algorithm then maintains).
    pub fn new(g: &LabeledGraph) -> Self {
        Self::new_with_threads(g, 1)
    }

    /// [`IncrementalReach::new`] with an explicit worker count for the
    /// closure sweeps, remembered for later localized recomputes. The
    /// partition (and hence stable-id assignment) is bit-identical at every
    /// thread count — see
    /// [`reachability_partition_threads`](crate::equivalence::reachability_partition_threads).
    pub fn new_with_threads(g: &LabeledGraph, threads: usize) -> Self {
        let partition = reachability_partition_threads(g, threads);
        Self::from_partition(g, partition, threads)
    }

    fn from_partition(g: &LabeledGraph, partition: ReachPartition, threads: usize) -> Self {
        let classes = partition.class_count();
        let mut q_edges: HashMap<(u32, u32), u32> = HashMap::new();
        for (u, v) in g.edges() {
            let cu = partition.class_of(u);
            let cv = partition.class_of(v);
            if cu != cv {
                *q_edges.entry((cu, cv)).or_insert(0) += 1;
            }
        }
        IncrementalReach {
            class_of: partition.class_of,
            members: partition.members,
            cyclic: partition.cyclic,
            active: vec![true; classes],
            free_ids: Vec::new(),
            q_edges,
            threads,
        }
    }

    /// Number of active equivalence classes (`|Vr|`).
    pub fn class_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Number of compressed inter-class edges currently tracked (before
    /// transitive reduction).
    pub fn quotient_edge_count(&self) -> usize {
        self.q_edges.len()
    }

    /// The class id of node `v`.
    pub fn class_of(&self, v: NodeId) -> u32 {
        self.class_of[v.index()]
    }

    /// Answers the reachability query `QR(v, w)` using only the compressed
    /// state (BFS over the class-level edges).
    pub fn query(&self, v: NodeId, w: NodeId) -> bool {
        if v == w {
            return true;
        }
        let cv = self.class_of(v);
        let cw = self.class_of(w);
        if cv == cw {
            return self.cyclic[cv as usize];
        }
        self.class_reaches(cv, cw)
    }

    fn class_adjacency(&self) -> HashMap<u32, Vec<u32>> {
        let mut adj: HashMap<u32, Vec<u32>> = HashMap::new();
        // qpgc-lint: allow(deterministic-iteration) -- the adjacency feeds
        // only `class_reaches`, whose BFS returns a bool: neighbor-list
        // order cannot leak into ids or any materialized artifact, and
        // sorting here would tax the per-query hot path.
        for &(a, b) in self.q_edges.keys() {
            adj.entry(a).or_default().push(b);
        }
        adj
    }

    fn class_reaches(&self, from: u32, to: u32) -> bool {
        let adj = self.class_adjacency();
        let mut visited = HashSet::new();
        let mut queue = VecDeque::new();
        visited.insert(from);
        queue.push_back(from);
        while let Some(c) = queue.pop_front() {
            if let Some(next) = adj.get(&c) {
                for &d in next {
                    if d == to {
                        return true;
                    }
                    if visited.insert(d) {
                        queue.push_back(d);
                    }
                }
            }
        }
        false
    }

    /// Multi-source BFS over class-level edges; `forward` follows edges,
    /// otherwise reverse edges. Returns every class reached *including* the
    /// sources.
    fn class_cone(&self, sources: &HashSet<u32>, forward: bool) -> HashSet<u32> {
        let mut adj: HashMap<u32, Vec<u32>> = HashMap::new();
        // qpgc-lint: allow(deterministic-iteration) -- the adjacency only
        // drives the multi-source BFS below, whose result is the
        // `visited` *set*: a set fixpoint is identical under any edge
        // visit order, and every consumer of the cone sorts before order
        // matters (`affected_sorted` in localized_recompute).
        for &(a, b) in self.q_edges.keys() {
            if forward {
                adj.entry(a).or_default().push(b);
            } else {
                adj.entry(b).or_default().push(a);
            }
        }
        let mut visited: HashSet<u32> = sources.clone();
        // qpgc-lint: allow(deterministic-iteration) -- seed order only
        // permutes the BFS schedule; the visited-set fixpoint it computes
        // is order-insensitive.
        let mut queue: VecDeque<u32> = sources.iter().copied().collect();
        while let Some(c) = queue.pop_front() {
            if let Some(next) = adj.get(&c) {
                for &d in next {
                    if visited.insert(d) {
                        queue.push_back(d);
                    }
                }
            }
        }
        visited
    }

    /// Applies the update batch: mutates `g` to `G ⊕ ΔG` and maintains the
    /// compressed state so that it equals `R(G ⊕ ΔG)`.
    pub fn apply(&mut self, g: &mut LabeledGraph, batch: &UpdateBatch) -> IncStats {
        self.apply_with_delta(g, batch).0
    }

    /// [`IncrementalReach::apply`] that also exports the structured
    /// [`PartitionDelta`]: which stable class ids the step retired, which
    /// classes it created (with members, cyclic flags, and origin
    /// provenance), and the resulting id-space size. Consumers that maintain
    /// per-class derived state (e.g. the serving layer's delta-patched
    /// snapshots) apply the delta instead of re-reading the whole partition.
    pub fn apply_with_delta(
        &mut self,
        g: &mut LabeledGraph,
        batch: &UpdateBatch,
    ) -> (IncStats, PartitionDelta) {
        let mut stats = IncStats::default();
        let norm = batch.normalized(g);
        if norm.is_empty() {
            let delta = PartitionDelta {
                id_space: self.members.len(),
                ..PartitionDelta::default()
            };
            return (stats, delta);
        }

        // Step 1: redundant-insertion reduction (safe when the batch inserts
        // only, because insertions never invalidate the implying paths).
        let insertions_only = norm.updates().iter().all(|u| u.is_insert());
        let mut effective: Vec<(NodeId, NodeId, bool)> = Vec::new();
        for u in norm.updates() {
            let (a, b) = u.edge();
            // Redundant iff `a` already reaches `b` via a *non-empty* path:
            // then the proper-reachability relation (and hence Re and Gr) is
            // unchanged by the insertion. Note the self-loop case: inserting
            // `(a, a)` is only redundant if `a` already lies on a cycle.
            let already_proper_reach = if a == b {
                self.cyclic[self.class_of(a) as usize]
            } else {
                self.query(a, b)
            };
            if insertions_only && u.is_insert() && already_proper_reach {
                stats.redundant_dropped += 1;
                continue;
            }
            effective.push((a, b, u.is_insert()));
        }
        stats.effective_updates = effective.len();

        // All normalized updates are applied to the graph, including the
        // redundant ones (they still change the edge set, just not the
        // reachability relation).
        norm.apply_to(g);

        if effective.is_empty() {
            let delta = PartitionDelta {
                id_space: self.members.len(),
                ..PartitionDelta::default()
            };
            return (stats, delta);
        }

        // Step 2: affected classes = up-cone of the sources ∪ down-cone of
        // the targets, over the class-level edges of the *old* compression.
        let mut up_sources: HashSet<u32> = HashSet::new();
        let mut down_sources: HashSet<u32> = HashSet::new();
        for &(a, b, _) in &effective {
            up_sources.insert(self.class_of(a));
            down_sources.insert(self.class_of(b));
        }
        let mut affected: HashSet<u32> = self.class_cone(&up_sources, false);
        affected.extend(self.class_cone(&down_sources, true));
        stats.affected_classes = affected.len();
        // qpgc-lint: allow(deterministic-iteration) -- a commutative sum
        // over set members: any iteration order yields the same total.
        stats.affected_nodes = affected
            .iter()
            .map(|&c| self.members[c as usize].len())
            .sum();

        // Step 3: localized recomputation on the hybrid graph.
        let delta = self.localized_recompute(g, &affected);
        stats.changed_classes = delta.added.len();
        stats.hybrid_nodes = self.class_count(); // informative only

        (stats, delta)
    }

    /// Rebuilds the equivalence inside the affected region and patches the
    /// state. Returns the structured delta of retired and created classes.
    fn localized_recompute(&mut self, g: &LabeledGraph, affected: &HashSet<u32>) -> PartitionDelta {
        // ---- Build the hybrid graph. -------------------------------------
        #[derive(Clone, Copy)]
        enum Unit {
            Atom(u32),
            Member(NodeId),
        }
        let mut hybrid = LabeledGraph::new();
        let mut units: Vec<Unit> = Vec::new();
        let mut atom_of_class: HashMap<u32, NodeId> = HashMap::new();
        let mut hybrid_of_node: HashMap<NodeId, NodeId> = HashMap::new();

        for c in 0..self.members.len() as u32 {
            if !self.active[c as usize] || affected.contains(&c) {
                continue;
            }
            let h = hybrid.add_node_with_label("atom");
            units.push(Unit::Atom(c));
            atom_of_class.insert(c, h);
            if self.cyclic[c as usize] {
                // A cyclic class reaches itself via non-empty paths; the self
                // loop keeps that visible to the equivalence computation.
                hybrid.add_edge(h, h);
            }
        }
        // Iterate affected classes in sorted order: hybrid node ids (and
        // through them the ids handed out for the rebuilt classes) must not
        // depend on hash-set iteration order, so that identical update
        // streams always produce identical stable ids — the property the
        // serving layer's snapshot differential relies on.
        let mut affected_sorted: Vec<u32> = affected.iter().copied().collect();
        affected_sorted.sort_unstable();
        let mut exploded: Vec<NodeId> = Vec::new();
        for &c in &affected_sorted {
            for &v in &self.members[c as usize] {
                let h = hybrid.add_node_with_label("node");
                units.push(Unit::Member(v));
                hybrid_of_node.insert(v, h);
                exploded.push(v);
            }
        }

        // Edges between unaffected classes come from the maintained
        // class-level edge counters, iterated in sorted order: the hybrid
        // graph's adjacency feeds the equivalence recomputation that hands
        // out stable ids, so nothing about its construction may depend on
        // hash iteration order.
        let mut atom_edges: Vec<(u32, u32)> = self.q_edges.keys().copied().collect();
        atom_edges.sort_unstable();
        for &(a, b) in &atom_edges {
            if let (Some(&ha), Some(&hb)) = (atom_of_class.get(&a), atom_of_class.get(&b)) {
                hybrid.add_edge(ha, hb);
            }
        }
        // Edges incident to affected members come from the (already updated)
        // data graph adjacency of exactly those members.
        for &v in &exploded {
            let hv = hybrid_of_node[&v];
            for &w in g.out_neighbors(v) {
                let hw = match hybrid_of_node.get(&w) {
                    Some(&h) => h,
                    None => atom_of_class[&self.class_of(w)],
                };
                hybrid.add_edge(hv, hw);
            }
            for &z in g.in_neighbors(v) {
                if !hybrid_of_node.contains_key(&z) {
                    let hz = atom_of_class[&self.class_of(z)];
                    hybrid.add_edge(hz, hv);
                }
            }
        }

        // ---- Recompute the equivalence on the hybrid graph. --------------
        let part = reachability_partition_threads(&hybrid, self.threads);

        // Group hybrid units by their new class.
        let mut groups: Vec<Vec<Unit>> = vec![Vec::new(); part.class_count()];
        for (i, &unit) in units.iter().enumerate() {
            groups[part.class_of(NodeId::new(i)) as usize].push(unit);
        }

        // ---- Patch the maintained state. ----------------------------------
        // Classes whose composition changes: all affected classes, plus any
        // unaffected atom that merges with something else.
        let mut retired: HashSet<u32> = affected.clone();
        for group in &groups {
            if group.len() == 1 {
                if let Unit::Atom(_) = group[0] {
                    continue; // unchanged class keeps its identity
                }
            }
            for unit in group {
                if let Unit::Atom(c) = unit {
                    retired.insert(*c);
                }
            }
        }

        // Pass A: collect the member sets of every changed group *before*
        // any class id is retired or recycled (absorbed atoms hand over
        // their member lists wholesale here). Origins record which retired
        // classes each group's members came from, for the delta export.
        let mut pending: Vec<(Vec<NodeId>, bool, Vec<u32>)> = Vec::new();
        for (gi, group) in groups.iter().enumerate() {
            if group.len() == 1 {
                if let Unit::Atom(_) = group[0] {
                    continue;
                }
            }
            let mut member_nodes: Vec<NodeId> = Vec::new();
            let mut origins: Vec<u32> = Vec::new();
            for unit in group {
                match unit {
                    Unit::Member(v) => {
                        origins.push(self.class_of[v.index()]);
                        member_nodes.push(*v);
                    }
                    Unit::Atom(c) => {
                        // The atom's previous members move wholesale.
                        origins.push(*c);
                        let old = std::mem::take(&mut self.members[*c as usize]);
                        member_nodes.extend(old);
                    }
                }
            }
            member_nodes.sort_unstable();
            origins.sort_unstable();
            origins.dedup();
            pending.push((member_nodes, part.cyclic[gi], origins));
        }

        // Pass B: retire changed classes and drop the class-level edges
        // touching them; they are rebuilt below from the adjacency of the
        // new classes' members. Retiring in sorted id order keeps the
        // free-id stack — and hence the ids recycled by Pass C — fully
        // deterministic.
        self.q_edges
            .retain(|&(a, b), _| !retired.contains(&a) && !retired.contains(&b));
        let mut removed: Vec<u32> = retired.into_iter().collect();
        removed.sort_unstable();
        for &c in &removed {
            self.active[c as usize] = false;
            self.members[c as usize].clear();
            self.free_ids.push(c);
        }

        // Pass C: create the new classes (recycling retired ids).
        let mut new_ids: Vec<u32> = Vec::new();
        let mut births: Vec<ClassBirth> = Vec::new();
        for (member_nodes, is_cyclic, origins) in pending {
            let id = match self.free_ids.pop() {
                Some(id) => id,
                None => {
                    self.members.push(Vec::new());
                    self.cyclic.push(false);
                    self.active.push(false);
                    (self.members.len() - 1) as u32
                }
            };
            for &v in &member_nodes {
                self.class_of[v.index()] = id;
            }
            births.push(ClassBirth {
                id,
                members: member_nodes.clone(),
                cyclic: is_cyclic,
                origins,
            });
            self.members[id as usize] = member_nodes;
            self.cyclic[id as usize] = is_cyclic;
            self.active[id as usize] = true;
            new_ids.push(id);
        }

        // Rebuild class-level edge counters incident to the new classes.
        let new_set: HashSet<u32> = new_ids.iter().copied().collect();
        for &id in &new_ids {
            // Iterate over a snapshot because `class_of` is already final.
            let members = self.members[id as usize].clone();
            for v in members {
                for &w in g.out_neighbors(v) {
                    let cw = self.class_of(w);
                    if cw != id {
                        *self.q_edges.entry((id, cw)).or_insert(0) += 1;
                    }
                }
                for &z in g.in_neighbors(v) {
                    let cz = self.class_of(z);
                    if cz != id && !new_set.contains(&cz) {
                        *self.q_edges.entry((cz, id)).or_insert(0) += 1;
                    }
                }
            }
        }

        PartitionDelta {
            removed,
            added: births,
            id_space: self.members.len(),
        }
    }

    /// Dense renumbering of the active class ids (ascending id order) plus
    /// the partition expressed in those dense ids.
    fn dense_partition(&self) -> (HashMap<u32, u32>, ReachPartition) {
        let mut dense: HashMap<u32, u32> = HashMap::new();
        let mut members: Vec<Vec<NodeId>> = Vec::new();
        let mut cyclic: Vec<bool> = Vec::new();
        for c in 0..self.members.len() as u32 {
            if self.active[c as usize] {
                dense.insert(c, members.len() as u32);
                members.push(self.members[c as usize].clone());
                cyclic.push(self.cyclic[c as usize]);
            }
        }
        let mut class_of = vec![0u32; self.class_of.len()];
        for (v, &c) in self.class_of.iter().enumerate() {
            class_of[v] = dense[&c];
        }
        (
            dense,
            ReachPartition {
                class_of,
                members,
                cyclic,
            },
        )
    }

    /// The current partition with densely renumbered class ids (class `i` is
    /// the `i`-th active class in id order — the same numbering
    /// [`IncrementalReach::to_compression`] uses), *without* materializing
    /// the compressed graph. Snapshot layers that build their own quotient
    /// representation (e.g. a CSR snapshot with class edges collected in
    /// parallel) start from this.
    pub fn partition(&self) -> ReachPartition {
        self.dense_partition().1
    }

    /// The current state under **stable** class ids: the node → class index,
    /// cyclic and liveness flags per id, and the distinct unreduced
    /// inter-class edges — everything a snapshot layer needs to build (or
    /// delta-patch, via [`IncrementalReach::apply_with_delta`]) its quotient
    /// representation with rows that survive across versions.
    pub fn stable_quotient(&self) -> StableQuotient {
        let mut edges: Vec<(u32, u32)> = self.q_edges.keys().copied().collect();
        edges.sort_unstable();
        StableQuotient {
            class_of: self.class_of.clone(),
            cyclic: self.cyclic.clone(),
            active: self.active.clone(),
            edges,
        }
    }

    /// Materializes the current state as a [`ReachCompression`] with a
    /// freshly built (transitively reduced) compressed graph. Class `i` of
    /// the result corresponds to the `i`-th active class in id order.
    pub fn to_compression(&self) -> ReachCompression {
        let (dense, partition) = self.dense_partition();
        let members = &partition.members;

        // Quotient graph + transitive reduction.
        let mut quotient = LabeledGraph::with_capacity(members.len());
        for _ in 0..members.len() {
            quotient.add_node_with_label("σ");
        }
        // Sorted so the materialized quotient's adjacency lists are
        // reproducible across runs, not hash-order artifacts.
        let mut q_edges_sorted: Vec<(u32, u32)> = self.q_edges.keys().copied().collect();
        q_edges_sorted.sort_unstable();
        for &(a, b) in &q_edges_sorted {
            quotient.add_edge(NodeId(dense[&a]), NodeId(dense[&b]));
        }
        let kept = transitive_reduction(&quotient)
            .expect("the quotient of the reachability equivalence relation is a DAG");
        let mut reduced = LabeledGraph::with_capacity(members.len());
        for _ in 0..members.len() {
            reduced.add_node_with_label("σ");
        }
        for (a, b) in kept {
            reduced.add_edge(a, b);
        }

        ReachCompression {
            graph: reduced,
            partition,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::compress_r;
    use qpgc_graph::traversal::bfs_reachable;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn graph(n: usize, edges: &[(u32, u32)]) -> LabeledGraph {
        let mut g = LabeledGraph::new();
        for _ in 0..n {
            g.add_node_with_label("X");
        }
        for &(u, v) in edges {
            g.add_edge(NodeId(u), NodeId(v));
        }
        g
    }

    /// The incremental result must be identical (as a partition and as a
    /// reachability oracle) to recompressing the updated graph from scratch.
    fn assert_matches_batch(mut g: LabeledGraph, batch: UpdateBatch) {
        let mut inc = IncrementalReach::new(&g);
        inc.apply(&mut g, &batch);

        let batch_compressed = compress_r(&g);
        let inc_compressed = inc.to_compression();
        assert_eq!(
            inc_compressed.partition.canonical(),
            batch_compressed.partition.canonical(),
            "incremental partition diverged from batch recompression"
        );
        for v in g.nodes() {
            for w in g.nodes() {
                let expected = bfs_reachable(&g, v, w);
                assert_eq!(inc.query(v, w), expected, "inc query ({v},{w})");
                assert_eq!(
                    inc_compressed.query(v, w),
                    expected,
                    "materialized query ({v},{w})"
                );
            }
        }
    }

    #[test]
    fn single_insertion_splitting_a_class() {
        // Diamond: 1 and 2 equivalent; adding 1 -> 4 splits them.
        let g = graph(5, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let mut batch = UpdateBatch::new();
        batch.insert(NodeId(1), NodeId(4));
        assert_matches_batch(g, batch);
    }

    #[test]
    fn single_insertion_merging_classes() {
        // 0 -> 1, 0 -> 2, 1 -> 3; adding 2 -> 3 makes 1 and 2 equivalent.
        let g = graph(4, &[(0, 1), (0, 2), (1, 3)]);
        let mut batch = UpdateBatch::new();
        batch.insert(NodeId(2), NodeId(3));
        assert_matches_batch(g, batch);
    }

    #[test]
    fn single_deletion_splitting() {
        let g = graph(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let mut batch = UpdateBatch::new();
        batch.delete(NodeId(2), NodeId(3));
        assert_matches_batch(g, batch);
    }

    #[test]
    fn insertion_creating_a_cycle() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut batch = UpdateBatch::new();
        batch.insert(NodeId(3), NodeId(1));
        assert_matches_batch(g, batch);
    }

    #[test]
    fn deletion_breaking_a_cycle() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        let mut batch = UpdateBatch::new();
        batch.delete(NodeId(2), NodeId(1));
        assert_matches_batch(g, batch);
    }

    #[test]
    fn redundant_insertion_is_detected() {
        let g = graph(3, &[(0, 1), (1, 2)]);
        let mut g2 = g.clone();
        let mut inc = IncrementalReach::new(&g2);
        let before = inc.to_compression().partition.canonical();
        let mut batch = UpdateBatch::new();
        batch.insert(NodeId(0), NodeId(2)); // implied by 0 -> 1 -> 2
        let stats = inc.apply(&mut g2, &batch);
        assert_eq!(stats.redundant_dropped, 1);
        assert_eq!(stats.effective_updates, 0);
        assert_eq!(inc.to_compression().partition.canonical(), before);
        // And it still matches the batch result.
        assert_eq!(
            inc.to_compression().partition.canonical(),
            compress_r(&g2).partition.canonical()
        );
    }

    #[test]
    fn noop_batch() {
        let g = graph(3, &[(0, 1)]);
        let mut g2 = g.clone();
        let mut inc = IncrementalReach::new(&g2);
        let stats = inc.apply(&mut g2, &UpdateBatch::new());
        assert_eq!(stats, IncStats::default());
    }

    #[test]
    fn mixed_batch() {
        let g = graph(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5), (2, 5)]);
        let mut batch = UpdateBatch::new();
        batch.insert(NodeId(5), NodeId(0)); // creates a big cycle
        batch.delete(NodeId(0), NodeId(2));
        batch.insert(NodeId(1), NodeId(5));
        assert_matches_batch(g, batch);
    }

    #[test]
    fn repeated_batches_stay_consistent() {
        let mut g = graph(7, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (5, 4), (5, 6)]);
        let mut inc = IncrementalReach::new(&g);
        let batches: Vec<Vec<(u32, u32, bool)>> = vec![
            vec![(6, 0, true)],
            vec![(3, 5, true), (0, 1, false)],
            vec![(4, 6, true), (6, 0, false)],
            vec![(2, 3, false), (1, 3, false)],
        ];
        for b in batches {
            let mut batch = UpdateBatch::new();
            for (u, v, ins) in b {
                if ins {
                    batch.insert(NodeId(u), NodeId(v));
                } else {
                    batch.delete(NodeId(u), NodeId(v));
                }
            }
            inc.apply(&mut g, &batch);
            let batch_c = compress_r(&g);
            assert_eq!(
                inc.to_compression().partition.canonical(),
                batch_c.partition.canonical()
            );
        }
    }

    #[test]
    fn randomized_incremental_equals_batch() {
        let mut rng = StdRng::seed_from_u64(42);
        for case in 0..30 {
            let n = rng.gen_range(3..14);
            let m = rng.gen_range(0..n * 2);
            let mut g = LabeledGraph::new();
            for _ in 0..n {
                g.add_node_with_label("X");
            }
            for _ in 0..m {
                let u = rng.gen_range(0..n) as u32;
                let v = rng.gen_range(0..n) as u32;
                g.add_edge(NodeId(u), NodeId(v));
            }
            let mut batch = UpdateBatch::new();
            for _ in 0..rng.gen_range(1..6) {
                let u = NodeId(rng.gen_range(0..n) as u32);
                let v = NodeId(rng.gen_range(0..n) as u32);
                if rng.gen_bool(0.5) {
                    batch.insert(u, v);
                } else {
                    batch.delete(u, v);
                }
            }
            let mut g2 = g.clone();
            let mut inc = IncrementalReach::new(&g2);
            inc.apply(&mut g2, &batch);
            let expect = compress_r(&g2);
            assert_eq!(
                inc.to_compression().partition.canonical(),
                expect.partition.canonical(),
                "case {case} diverged"
            );
        }
    }

    #[test]
    fn partition_export_matches_materialized_compression() {
        let mut g = graph(5, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let mut inc = IncrementalReach::new(&g);
        let mut batch = UpdateBatch::new();
        batch.insert(NodeId(3), NodeId(4));
        batch.delete(NodeId(2), NodeId(3));
        inc.apply(&mut g, &batch);
        let part = inc.partition();
        let comp = inc.to_compression();
        assert_eq!(part.class_of, comp.partition.class_of);
        assert_eq!(part.members, comp.partition.members);
        assert_eq!(part.cyclic, comp.partition.cyclic);
    }

    /// Replays a delta on top of a pre-batch `StableQuotient` and checks it
    /// reproduces the post-batch one (the contract the serving layer's
    /// snapshot patching relies on).
    fn assert_delta_replays(
        before: &StableQuotient,
        delta: &PartitionDelta,
        after: &StableQuotient,
    ) {
        assert_eq!(delta.id_space, after.id_space());
        let mut class_of = before.class_of.clone();
        let mut cyclic = before.cyclic.clone();
        let mut active = before.active.clone();
        cyclic.resize(delta.id_space, false);
        active.resize(delta.id_space, false);
        for &r in &delta.removed {
            active[r as usize] = false;
        }
        for birth in &delta.added {
            for &v in &birth.members {
                class_of[v.index()] = birth.id;
            }
            cyclic[birth.id as usize] = birth.cyclic;
            active[birth.id as usize] = true;
            // Origins reference classes retired by the same delta.
            for o in &birth.origins {
                assert!(delta.removed.contains(o), "origin {o} not retired");
            }
        }
        assert_eq!(class_of, after.class_of);
        assert_eq!(active, after.active);
        for (id, &a) in after.active.iter().enumerate() {
            if a {
                assert_eq!(cyclic[id], after.cyclic[id], "cyclic flag of class {id}");
            }
        }
    }

    #[test]
    fn delta_replays_onto_stable_quotient() {
        let mut rng = StdRng::seed_from_u64(77);
        for case in 0..40 {
            let n = rng.gen_range(3..16);
            let m = rng.gen_range(0..n * 2);
            let mut g = LabeledGraph::new();
            for _ in 0..n {
                g.add_node_with_label("X");
            }
            for _ in 0..m {
                let u = rng.gen_range(0..n) as u32;
                let v = rng.gen_range(0..n) as u32;
                g.add_edge(NodeId(u), NodeId(v));
            }
            let mut inc = IncrementalReach::new(&g);
            for step in 0..3 {
                let before = inc.stable_quotient();
                let mut batch = UpdateBatch::new();
                for _ in 0..rng.gen_range(1..5) {
                    let u = NodeId(rng.gen_range(0..n) as u32);
                    let v = NodeId(rng.gen_range(0..n) as u32);
                    if rng.gen_bool(0.5) {
                        batch.insert(u, v);
                    } else {
                        batch.delete(u, v);
                    }
                }
                let (stats, delta) = inc.apply_with_delta(&mut g, &batch);
                assert_eq!(stats.changed_classes, delta.added.len());
                let after = inc.stable_quotient();
                assert_delta_replays(&before, &delta, &after);
                // Members of retired classes are exactly covered by births.
                let born: usize = delta.added.iter().map(|b| b.members.len()).sum();
                let died: usize = delta
                    .removed
                    .iter()
                    .map(|&c| before.class_of.iter().filter(|&&x| x == c).count())
                    .sum();
                assert_eq!(born, died, "case {case} step {step}: member count drifted");
            }
        }
    }

    #[test]
    fn stable_quotient_matches_dense_partition() {
        let mut g = graph(5, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let mut inc = IncrementalReach::new(&g);
        let mut batch = UpdateBatch::new();
        batch.insert(NodeId(3), NodeId(4));
        batch.delete(NodeId(2), NodeId(3));
        inc.apply(&mut g, &batch);
        let sq = inc.stable_quotient();
        assert_eq!(sq.class_count(), inc.class_count());
        assert_eq!(sq.edges.len(), inc.quotient_edge_count());
        // Stable and dense exports describe the same partition.
        let dense = inc.partition();
        for v in g.nodes() {
            for w in g.nodes() {
                assert_eq!(
                    sq.class_of[v.index()] == sq.class_of[w.index()],
                    dense.class_of(v) == dense.class_of(w),
                    "grouping differs for ({v},{w})"
                );
            }
        }
        for v in g.nodes() {
            assert_eq!(
                sq.cyclic[sq.class_of[v.index()] as usize],
                dense.cyclic[dense.class_of(v) as usize]
            );
        }
    }

    #[test]
    fn quotient_edges_stay_in_sync() {
        let mut g = graph(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut inc = IncrementalReach::new(&g);
        let mut batch = UpdateBatch::new();
        batch.delete(NodeId(1), NodeId(2));
        batch.insert(NodeId(0), NodeId(4));
        inc.apply(&mut g, &batch);
        // Rebuild from scratch and compare the full reachability oracle.
        for v in g.nodes() {
            for w in g.nodes() {
                assert_eq!(inc.query(v, w), bfs_reachable(&g, v, w));
            }
        }
        assert_eq!(inc.class_count(), compress_r(&g).class_count());
    }
}
