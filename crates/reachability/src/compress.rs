//! `compressR` — reachability preserving compression (Section 3.2, Fig. 5).
//!
//! The compression function `R` maps a graph `G` to the quotient graph of
//! its reachability equivalence relation:
//!
//! * one node per equivalence class (all nodes get one fixed label, since
//!   labels are irrelevant for reachability queries);
//! * an edge between two classes iff some original edge connects their
//!   members **and** the edge is not already implied by other quotient edges
//!   (lines 6–8 of Fig. 5) — i.e. the edge set is the unique transitive
//!   reduction of the quotient DAG.
//!
//! The query rewriting function `F` maps `QR(v, w)` to `QR(R(v), R(w))` via
//! the node → class index in constant time; no post-processing is needed
//! (Theorem 2). One corner case is resolved by the same index: when `R(v) =
//! R(w)` but `v ≠ w`, the answer is `true` iff the class is a cyclic SCC
//! (equivalent nodes in different SCCs provably do not reach each other —
//! see the module docs of [`crate::equivalence`]).

use qpgc_graph::reach_sets::DagReach;
use qpgc_graph::transitive::transitive_reduction_dag;
use qpgc_graph::traversal;
use qpgc_graph::{CsrGraph, GraphView, LabeledGraph, NodeId};

use crate::equivalence::{reachability_partition_with_chunk, ReachPartition};

/// The output of `compressR`: the compressed graph plus the node → class
/// index that implements the query rewriting function `F`.
#[derive(Clone, Debug)]
pub struct ReachCompression {
    /// The compressed graph `Gr`. Node `i` of this graph is equivalence
    /// class `i` of [`ReachCompression::partition`]. All nodes carry the
    /// fixed label `"σ"`.
    pub graph: LabeledGraph,
    /// The underlying partition: node → class map, members, and the cyclic
    /// flag per class.
    pub partition: ReachPartition,
}

impl ReachCompression {
    /// The query rewriting function `F`: maps the endpoints of a
    /// reachability query on `G` to nodes of `Gr`, in constant time.
    pub fn rewrite(&self, v: NodeId, w: NodeId) -> (NodeId, NodeId) {
        (
            NodeId(self.partition.class_of(v)),
            NodeId(self.partition.class_of(w)),
        )
    }

    /// Answers the reachability query `QR(v, w)` posed against the original
    /// graph by evaluating its rewriting on the compressed graph with BFS.
    pub fn query(&self, v: NodeId, w: NodeId) -> bool {
        self.query_with(v, w, traversal::bfs_reachable)
    }

    /// Like [`ReachCompression::query`] but lets the caller supply the
    /// reachability algorithm run on `Gr` (BFS, bidirectional BFS, a 2-hop
    /// index lookup, …) — this is the paper's "any algorithm can be applied
    /// to `Gr` as is" property.
    pub fn query_with<F>(&self, v: NodeId, w: NodeId, algo: F) -> bool
    where
        F: FnOnce(&LabeledGraph, NodeId, NodeId) -> bool,
    {
        if v == w {
            return true;
        }
        let (cv, cw) = self.rewrite(v, w);
        if cv == cw {
            // Same class, different nodes: reachable iff the class is a
            // cyclic SCC.
            return self.partition.cyclic[cv.index()];
        }
        algo(&self.graph, cv, cw)
    }

    /// Number of equivalence classes (`|Vr|`).
    pub fn class_count(&self) -> usize {
        self.partition.class_count()
    }

    /// The members of the class that node `v` belongs to (the inverse node
    /// mapping of `R`).
    pub fn members_of(&self, v: NodeId) -> &[NodeId] {
        &self.partition.members[self.partition.class_of(v) as usize]
    }

    /// The compression ratio `|Gr| / |G|` (the paper's `RCr`).
    pub fn ratio(&self, original: &LabeledGraph) -> f64 {
        qpgc_graph::stats::compression_ratio(original, &self.graph)
    }
}

/// Runs `compressR` on `g` with the default signature chunk width.
pub fn compress_r(g: &LabeledGraph) -> ReachCompression {
    compress_r_with_chunk(g, qpgc_graph::reach_sets::DEFAULT_CHUNK)
}

/// Runs `compressR` over a frozen CSR snapshot.
pub fn compress_r_csr(g: &CsrGraph) -> ReachCompression {
    compress_r_with_chunk(g, qpgc_graph::reach_sets::DEFAULT_CHUNK)
}

/// [`compress_r`] with an explicit chunk width. Generic over [`GraphView`]:
/// accepts the mutable graph or a CSR snapshot.
pub fn compress_r_with_chunk<G: GraphView>(g: &G, chunk: usize) -> ReachCompression {
    let partition = reachability_partition_with_chunk(g, chunk);
    let graph = build_quotient_graph(g, &partition, true);
    ReachCompression { graph, partition }
}

/// Variant of `compressR` that skips the transitive-reduction of the
/// quotient edges (keeps every class-to-class edge). Exposed for the
/// ablation benchmark that measures how much the reduction contributes to
/// the compression ratio.
pub fn compress_r_without_reduction(g: &LabeledGraph) -> ReachCompression {
    let partition = reachability_partition_with_chunk(g, qpgc_graph::reach_sets::DEFAULT_CHUNK);
    let graph = build_quotient_graph(g, &partition, false);
    ReachCompression { graph, partition }
}

/// Builds the quotient graph of `partition` over `g`. With `reduce` set the
/// edge set is transitively reduced (the paper's Fig. 5 lines 6–8);
/// intra-class edges never appear (a class trivially "reaches itself").
///
/// The class edge list is collected once, sorted and deduplicated, reduced
/// directly on a [`DagReach`] built from that list, and bulk-inserted into
/// the output — no intermediate `LabeledGraph` is materialized between the
/// partition and the final quotient.
pub(crate) fn build_quotient_graph<G: GraphView>(
    g: &G,
    partition: &ReachPartition,
    reduce: bool,
) -> LabeledGraph {
    let classes = partition.class_count();
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(g.edge_count());
    for u in g.nodes() {
        let cu = partition.class_of(u);
        for &v in g.out_neighbors(u) {
            let cv = partition.class_of(v);
            if cu != cv {
                edges.push((cu, cv));
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();

    let kept: Vec<(NodeId, NodeId)> = if reduce {
        // The quotient of the reachability equivalence relation is a DAG, so
        // the transitive reduction is unique.
        let dag = DagReach::from_edges(classes, edges)
            .expect("the quotient of the reachability equivalence relation is a DAG");
        transitive_reduction_dag(&dag, qpgc_graph::reach_sets::DEFAULT_CHUNK)
    } else {
        edges
            .into_iter()
            .map(|(a, b)| (NodeId(a), NodeId(b)))
            .collect()
    };

    let mut quotient = LabeledGraph::with_capacity(classes);
    for _ in 0..classes {
        quotient.add_node_with_label("σ");
    }
    quotient.extend_edges(kept);
    quotient
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpgc_graph::traversal::{bfs_reachable, bidirectional_reachable};

    fn graph(n: usize, edges: &[(u32, u32)]) -> LabeledGraph {
        let mut g = LabeledGraph::new();
        for _ in 0..n {
            g.add_node_with_label("X");
        }
        for &(u, v) in edges {
            g.add_edge(NodeId(u), NodeId(v));
        }
        g
    }

    /// Exhaustively checks query preservation: for all pairs (v, w),
    /// `QR(v,w)` on G equals the rewritten query on Gr.
    fn assert_preserves_all_queries(g: &LabeledGraph) {
        let c = compress_r(g);
        for v in g.nodes() {
            for w in g.nodes() {
                let expected = bfs_reachable(g, v, w);
                assert_eq!(c.query(v, w), expected, "query ({v}, {w}) not preserved");
                assert_eq!(
                    c.query_with(v, w, bidirectional_reachable),
                    expected,
                    "bibfs query ({v}, {w}) not preserved"
                );
            }
        }
    }

    #[test]
    fn preserves_queries_on_diamond() {
        assert_preserves_all_queries(&graph(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]));
    }

    #[test]
    fn preserves_queries_with_cycles() {
        assert_preserves_all_queries(&graph(
            6,
            &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3), (5, 0)],
        ));
    }

    #[test]
    fn preserves_queries_with_self_loops_and_isolated_nodes() {
        assert_preserves_all_queries(&graph(5, &[(0, 0), (0, 1), (3, 1)]));
    }

    #[test]
    fn preserves_queries_on_dense_bipartite() {
        // Complete bipartite 3x3: all sources equivalent, all sinks equivalent.
        let mut edges = Vec::new();
        for u in 0..3 {
            for v in 3..6 {
                edges.push((u, v));
            }
        }
        let g = graph(6, &edges);
        let c = compress_r(&g);
        assert_eq!(c.graph.node_count(), 2);
        assert_eq!(c.graph.edge_count(), 1);
        assert_preserves_all_queries(&g);
    }

    #[test]
    fn compressed_graph_is_smaller() {
        let mut edges = Vec::new();
        for u in 0..10 {
            for v in 10..20 {
                edges.push((u, v));
            }
        }
        let g = graph(20, &edges);
        let c = compress_r(&g);
        assert!(c.graph.size() < g.size());
        assert!(c.ratio(&g) < 0.1);
    }

    #[test]
    fn quotient_has_no_self_loops_or_intra_class_edges() {
        let g = graph(4, &[(0, 1), (1, 0), (1, 2), (0, 2), (2, 3)]);
        let c = compress_r(&g);
        for (u, v) in c.graph.edges() {
            assert_ne!(u, v, "quotient must not contain self loops");
        }
    }

    #[test]
    fn transitive_reduction_removes_redundant_edges() {
        // 0 -> 1 -> 2 plus shortcut 0 -> 2, all singleton classes.
        let g = graph(3, &[(0, 1), (1, 2), (0, 2)]);
        let with = compress_r(&g);
        let without = compress_r_without_reduction(&g);
        assert_eq!(with.graph.edge_count(), 2);
        assert_eq!(without.graph.edge_count(), 3);
        // Both preserve queries.
        for v in g.nodes() {
            for w in g.nodes() {
                assert_eq!(with.query(v, w), without.query(v, w));
            }
        }
    }

    #[test]
    fn rewrite_is_consistent_with_partition() {
        let g = graph(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let c = compress_r(&g);
        let (a, b) = c.rewrite(NodeId(1), NodeId(2));
        assert_eq!(a, b);
        assert_eq!(c.members_of(NodeId(1)).len(), 2);
    }

    #[test]
    fn same_class_queries_respect_cyclicity() {
        // Cyclic class: nodes reach each other.
        let g = graph(2, &[(0, 1), (1, 0)]);
        let c = compress_r(&g);
        assert!(c.query(NodeId(0), NodeId(1)));
        // Acyclic equivalent siblings: they do not reach each other.
        let g = graph(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let c = compress_r(&g);
        assert!(!c.query(NodeId(1), NodeId(2)));
        assert!(c.query(NodeId(1), NodeId(1)));
    }

    #[test]
    fn labels_do_not_affect_reachability_compression() {
        let mut g1 = graph(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let z = g1.intern_label("Z");
        g1.set_label(NodeId(1), z);
        let c = compress_r(&g1);
        // Still merged despite different labels.
        assert_eq!(c.class_count(), 3);
    }

    #[test]
    fn empty_graph() {
        let g = LabeledGraph::new();
        let c = compress_r(&g);
        assert_eq!(c.graph.node_count(), 0);
        assert_eq!(c.class_count(), 0);
    }

    #[test]
    fn chain_compresses_to_chain() {
        let g = graph(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let c = compress_r(&g);
        // Every node has a distinct closure: no compression possible.
        assert_eq!(c.graph.node_count(), 5);
        assert_eq!(c.graph.edge_count(), 4);
        assert_preserves_all_queries(&g);
    }
}
