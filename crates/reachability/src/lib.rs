//! # qpgc-reach
//!
//! Reachability-preserving graph compression (Section 3 of *Query Preserving
//! Graph Compression*, Fan et al., SIGMOD 2012), plus the baselines and
//! index structures the paper evaluates against, and the incremental
//! maintenance algorithm of Section 5.1.
//!
//! The pieces:
//!
//! * [`equivalence`] — the reachability equivalence relation `Re`: two nodes
//!   are equivalent iff they have the same proper ancestors and the same
//!   proper descendants. Computed through the SCC condensation with chunked
//!   bit-set signatures.
//! * [`compress`] — `compressR` (Fig. 5): the compression function `R`
//!   producing the quotient graph `Gr` with transitively-reduced edges, the
//!   constant-time query rewriting `F`, and query evaluation on `Gr` with
//!   any standard reachability algorithm.
//! * [`aho`] — the `AHO` baseline (minimum equivalent graph via SCC
//!   collapse + transitive reduction) and the `RCscc` measurement.
//! * [`two_hop`] — a pruned-landmark 2-hop reachability labelling, used for
//!   the index memory comparison of Fig. 12(d).
//! * [`incremental`] — `incRCM` (Fig. 8): incremental maintenance of the
//!   compression under batch edge updates, touching only the compressed
//!   graph, the update batch, and the adjacency of affected nodes.
//!
//! ## Example
//!
//! ```
//! use qpgc_graph::LabeledGraph;
//! use qpgc_reach::compress::compress_r;
//!
//! // A diamond: the two middle nodes are reachability equivalent.
//! let mut g = LabeledGraph::new();
//! let a = g.add_node_with_label("A");
//! let b1 = g.add_node_with_label("B");
//! let b2 = g.add_node_with_label("B");
//! let c = g.add_node_with_label("C");
//! g.add_edge(a, b1);
//! g.add_edge(a, b2);
//! g.add_edge(b1, c);
//! g.add_edge(b2, c);
//!
//! let compressed = compress_r(&g);
//! assert_eq!(compressed.graph.node_count(), 3); // {a}, {b1,b2}, {c}
//! // Every reachability query is preserved.
//! assert!(compressed.query(a, c));
//! assert!(!compressed.query(c, a));
//! assert!(!compressed.query(b1, b2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aho;
pub mod compress;
pub mod equivalence;
pub mod incremental;
pub mod two_hop;

pub use compress::{compress_r, compress_r_csr, ReachCompression};
pub use equivalence::{
    reachability_partition, reachability_partition_csr, reachability_partition_threads,
    ReachPartition,
};
pub use incremental::{IncStats, IncrementalReach};
pub use two_hop::{CoverageEstimate, TwoHopConfig, TwoHopIndex};
