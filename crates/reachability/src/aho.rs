//! The `AHO` baseline and the SCC-graph measurement.
//!
//! Table 1 of the paper compares `compressR` against
//!
//! * `AHO` — the minimum-equivalent-graph construction of Aho, Garey &
//!   Ullman (1972): collapse every strongly connected component into a
//!   simple cycle and transitively reduce the condensation. The result is a
//!   subgraph-shaped graph with the same transitive closure as `G`
//!   (`RCaho = |Gaho| / |G|`).
//! * the SCC graph `Gscc` itself (each component becomes one node), used to
//!   report how much `compressR` gains *beyond* SCC collapsing
//!   (`RCscc = |Gr| / |Gscc|`).

use qpgc_graph::scc::Condensation;
use qpgc_graph::transitive::transitive_reduction;
use qpgc_graph::LabeledGraph;

/// The result of the AHO minimum-equivalent-graph construction.
#[derive(Clone, Debug)]
pub struct AhoReduction {
    /// The reduced graph: same node set as `G` (so it stays a subgraph-style
    /// reduction, as in the original paper), with each SCC replaced by a
    /// simple cycle and the cross-SCC edges transitively reduced.
    pub graph: LabeledGraph,
}

impl AhoReduction {
    /// The compression ratio `RCaho = |Gaho| / |G|`.
    pub fn ratio(&self, original: &LabeledGraph) -> f64 {
        qpgc_graph::stats::compression_ratio(original, &self.graph)
    }
}

/// Computes the AHO reduction of `g`.
pub fn aho_reduction(g: &LabeledGraph) -> AhoReduction {
    let cond = Condensation::of(g);

    // Build the reduced graph over the same node set.
    let mut reduced = LabeledGraph::with_capacity(g.node_count());
    for v in g.nodes() {
        reduced.add_node(g.label(v));
    }

    // 1. Each SCC with more than one node becomes a simple cycle through its
    //    members; singleton SCCs contribute a self loop only if they had one.
    for c in 0..cond.component_count() as u32 {
        let members = cond.members(c);
        if members.len() > 1 {
            for i in 0..members.len() {
                reduced.add_edge(members[i], members[(i + 1) % members.len()]);
            }
        } else if g.has_edge(members[0], members[0]) {
            reduced.add_edge(members[0], members[0]);
        }
    }

    // 2. Cross-SCC edges: transitively reduce the condensation and keep one
    //    representative original edge per retained condensation edge.
    let scc_graph = cond.to_graph();
    let kept =
        transitive_reduction(&scc_graph).expect("a condensation graph is acyclic by construction");
    use std::collections::HashSet;
    let keep_set: HashSet<(u32, u32)> = kept.iter().map(|&(a, b)| (a.0, b.0)).collect();
    let mut done: HashSet<(u32, u32)> = HashSet::new();
    for (u, v) in g.edges() {
        let cu = cond.component_of(u);
        let cv = cond.component_of(v);
        if cu != cv && keep_set.contains(&(cu, cv)) && done.insert((cu, cv)) {
            reduced.add_edge(u, v);
        }
    }

    AhoReduction { graph: reduced }
}

/// Builds the SCC graph `Gscc` of `g` (one node per component, deduplicated
/// cross-component edges) and returns it together with the node → component
/// map. `RCscc` in Table 1 is `|Gr| / |Gscc|`.
pub fn scc_graph(g: &LabeledGraph) -> (LabeledGraph, Vec<u32>) {
    let cond = Condensation::of(g);
    let gscc = cond.to_graph();
    let map = g.nodes().map(|v| cond.component_of(v)).collect();
    (gscc, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpgc_graph::traversal::bfs_reachable;
    use qpgc_graph::NodeId;

    fn graph(n: usize, edges: &[(u32, u32)]) -> LabeledGraph {
        let mut g = LabeledGraph::new();
        for _ in 0..n {
            g.add_node_with_label("X");
        }
        for &(u, v) in edges {
            g.add_edge(NodeId(u), NodeId(v));
        }
        g
    }

    fn assert_same_reachability(g: &LabeledGraph, r: &LabeledGraph) {
        for v in g.nodes() {
            for w in g.nodes() {
                assert_eq!(
                    bfs_reachable(g, v, w),
                    bfs_reachable(r, v, w),
                    "reachability differs for ({v}, {w})"
                );
            }
        }
    }

    #[test]
    fn preserves_reachability_on_dense_scc() {
        // A complete digraph on 4 nodes collapses to a 4-cycle.
        let mut edges = Vec::new();
        for u in 0..4 {
            for v in 0..4 {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        let g = graph(4, &edges);
        let a = aho_reduction(&g);
        assert_eq!(a.graph.edge_count(), 4);
        assert_same_reachability(&g, &a.graph);
        assert!(a.ratio(&g) < 1.0);
    }

    #[test]
    fn preserves_reachability_with_shortcuts() {
        let g = graph(4, &[(0, 1), (1, 2), (0, 2), (2, 3), (1, 3)]);
        let a = aho_reduction(&g);
        assert!(a.graph.edge_count() < g.edge_count());
        assert_same_reachability(&g, &a.graph);
    }

    #[test]
    fn keeps_self_loops() {
        let g = graph(2, &[(0, 0), (0, 1)]);
        let a = aho_reduction(&g);
        assert!(a.graph.has_edge(NodeId(0), NodeId(0)));
        assert_same_reachability(&g, &a.graph);
    }

    #[test]
    fn mixed_cycles_and_dag() {
        let g = graph(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (3, 5),
                (5, 6),
                (1, 3),
            ],
        );
        let a = aho_reduction(&g);
        assert_same_reachability(&g, &a.graph);
        assert!(a.graph.edge_count() <= g.edge_count());
    }

    #[test]
    fn scc_graph_shape() {
        let g = graph(5, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (3, 4)]);
        let (gscc, map) = scc_graph(&g);
        assert_eq!(gscc.node_count(), 3);
        assert_eq!(gscc.edge_count(), 2);
        assert_eq!(map.len(), 5);
        assert_eq!(map[0], map[1]);
        assert_eq!(map[2], map[3]);
        assert_ne!(map[0], map[2]);
    }

    #[test]
    fn empty_graph() {
        let g = LabeledGraph::new();
        let a = aho_reduction(&g);
        assert_eq!(a.graph.node_count(), 0);
        let (gscc, map) = scc_graph(&g);
        assert_eq!(gscc.node_count(), 0);
        assert!(map.is_empty());
    }
}
