//! A 2-hop reachability labelling (pruned landmark labelling).
//!
//! The paper's Fig. 12(d) compares the memory cost of 2-hop indexes built on
//! the original graph `G` and on the compressed graph `Gr`, to make the
//! point that (a) the index dwarfs both graphs and (b) building it on `Gr`
//! is much cheaper. We implement the index as a pruned landmark labelling
//! (pruned BFS from landmarks in descending coverage order, see
//! [`TwoHopIndex::build`]), which produces a valid 2-hop cover for
//! reachability: `u` reaches `w` iff `L_out(u) ∩ L_in(w) ≠ ∅`.
//!
//! Because the compressed graph is "just a graph", the very same index can
//! be built over `Gr` — this is the paper's claim that existing indexing
//! techniques apply to compressed graphs unchanged.

use std::collections::VecDeque;

use qpgc_graph::reach_sets::{DagReach, DEFAULT_CHUNK};
use qpgc_graph::scc::Condensation;
use qpgc_graph::{LabeledGraph, NodeId};

/// A 2-hop reachability labelling of a graph.
#[derive(Clone, Debug)]
pub struct TwoHopIndex {
    /// `out_labels[v]`: landmarks reachable *from* `v` (sorted).
    out_labels: Vec<Vec<u32>>,
    /// `in_labels[v]`: landmarks that reach `v` (sorted).
    in_labels: Vec<Vec<u32>>,
}

impl TwoHopIndex {
    /// Builds the index over `g` with landmarks processed in descending
    /// coverage order: a landmark `v` can cover at most
    /// `(|anc(v)| + 1) · (|desc(v)| + 1)` reachable pairs, so processing
    /// high-coverage nodes first (the greedy heuristic behind Cohen et
    /// al.'s 2-hop covers) lets the pruned BFS skip most of the graph for
    /// later landmarks. Unlike plain degree ordering this is stable under
    /// transitive reduction — reachability-preserving compression keeps
    /// ancestor/descendant sets intact while flattening degrees, and Fig.
    /// 12(d) relies on the index over `Gr` not regressing past the index
    /// over `G`.
    pub fn build(g: &LabeledGraph) -> Self {
        let n = g.node_count();
        let scores = coverage_scores(g);
        let mut order: Vec<NodeId> = g.nodes().collect();
        order.sort_by_key(|&v| {
            std::cmp::Reverse((scores[v.index()], g.out_degree(v) + g.in_degree(v)))
        });

        let mut index = TwoHopIndex {
            out_labels: vec![Vec::new(); n],
            in_labels: vec![Vec::new(); n],
        };

        let mut visited = vec![false; n];
        let mut touched: Vec<usize> = Vec::new();
        for &landmark in &order {
            // Forward pruned BFS: landmark reaches u  ⇒  landmark ∈ in_labels[u].
            let mut queue = VecDeque::new();
            queue.push_back(landmark);
            visited[landmark.index()] = true;
            touched.push(landmark.index());
            while let Some(u) = queue.pop_front() {
                // Prune: if the labels built so far already prove that
                // `landmark` reaches `u`, the landmark adds nothing here.
                if u != landmark && index.covered(landmark, u) {
                    continue;
                }
                if u != landmark {
                    index.in_labels[u.index()].push(landmark.0);
                }
                for &w in g.out_neighbors(u) {
                    if !visited[w.index()] {
                        visited[w.index()] = true;
                        touched.push(w.index());
                        queue.push_back(w);
                    }
                }
            }
            for &t in &touched {
                visited[t] = false;
            }
            touched.clear();

            // Backward pruned BFS: u reaches landmark ⇒ landmark ∈ out_labels[u].
            let mut queue = VecDeque::new();
            queue.push_back(landmark);
            visited[landmark.index()] = true;
            touched.push(landmark.index());
            while let Some(u) = queue.pop_front() {
                if u != landmark && index.covered(u, landmark) {
                    continue;
                }
                if u != landmark {
                    index.out_labels[u.index()].push(landmark.0);
                }
                for &w in g.in_neighbors(u) {
                    if !visited[w.index()] {
                        visited[w.index()] = true;
                        touched.push(w.index());
                        queue.push_back(w);
                    }
                }
            }
            for &t in &touched {
                visited[t] = false;
            }
            touched.clear();

            // The landmark trivially covers itself in both directions.
            index.out_labels[landmark.index()].push(landmark.0);
            index.in_labels[landmark.index()].push(landmark.0);
            index.out_labels[landmark.index()].sort_unstable();
            index.in_labels[landmark.index()].sort_unstable();
        }

        // Keep all label lists sorted for the merge-style intersection.
        for v in 0..n {
            index.out_labels[v].sort_unstable();
            index.in_labels[v].sort_unstable();
        }
        index
    }

    /// `true` iff the labels prove that `u` reaches `w` (possibly trivially,
    /// when `u == w`).
    pub fn query(&self, u: NodeId, w: NodeId) -> bool {
        if u == w {
            return true;
        }
        self.covered(u, w)
    }

    fn covered(&self, u: NodeId, w: NodeId) -> bool {
        let a = &self.out_labels[u.index()];
        let b = &self.in_labels[w.index()];
        // Sorted-merge intersection test.
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Total number of label entries (a proxy for index size).
    pub fn label_entries(&self) -> usize {
        self.out_labels.iter().map(Vec::len).sum::<usize>()
            + self.in_labels.iter().map(Vec::len).sum::<usize>()
    }

    /// Approximate heap footprint of the index in bytes — the quantity
    /// plotted in Fig. 12(d).
    pub fn heap_bytes(&self) -> usize {
        let per_entry = std::mem::size_of::<u32>();
        let per_vec = std::mem::size_of::<Vec<u32>>();
        self.out_labels
            .iter()
            .chain(self.in_labels.iter())
            .map(|v| v.capacity() * per_entry + per_vec)
            .sum()
    }
}

/// `(|anc(v)| + 1) · (|desc(v)| + 1)` for every node, computed through the
/// SCC condensation with chunked bit-set sweeps so memory stays bounded on
/// large graphs.
fn coverage_scores(g: &LabeledGraph) -> Vec<u64> {
    let cond = Condensation::of(g);
    let dag = DagReach::from_condensation(&cond);
    let nc = cond.component_count();
    let mut desc = vec![0u64; nc];
    let mut anc = vec![0u64; nc];
    for cols in dag.chunks(DEFAULT_CHUNK) {
        let weight = |j: usize| cond.members((cols.start + j) as u32).len() as u64;
        let d = dag.descendants_chunk(cols.clone());
        let a = dag.ancestors_chunk(cols.clone());
        for c in 0..nc {
            desc[c] += d[c].ones().map(weight).sum::<u64>();
            anc[c] += a[c].ones().map(weight).sum::<u64>();
        }
    }
    g.nodes()
        .map(|v| {
            let c = cond.component_of(v);
            // Members of a cyclic SCC are their own ancestors and descendants.
            let own = if cond.is_cyclic(c, g) {
                cond.members(c).len() as u64
            } else {
                0
            };
            (anc[c as usize] + own + 1) * (desc[c as usize] + own + 1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpgc_graph::traversal::bfs_reachable;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn graph(n: usize, edges: &[(u32, u32)]) -> LabeledGraph {
        let mut g = LabeledGraph::new();
        for _ in 0..n {
            g.add_node_with_label("X");
        }
        for &(u, v) in edges {
            g.add_edge(NodeId(u), NodeId(v));
        }
        g
    }

    fn assert_matches_bfs(g: &LabeledGraph) {
        let idx = TwoHopIndex::build(g);
        for u in g.nodes() {
            for w in g.nodes() {
                assert_eq!(
                    idx.query(u, w),
                    bfs_reachable(g, u, w),
                    "2-hop answer differs for ({u}, {w})"
                );
            }
        }
    }

    #[test]
    fn exact_on_small_dag() {
        assert_matches_bfs(&graph(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]));
    }

    #[test]
    fn exact_with_cycles() {
        assert_matches_bfs(&graph(
            6,
            &[(0, 1), (1, 2), (2, 0), (2, 3), (4, 3), (3, 4), (5, 5)],
        ));
    }

    #[test]
    fn exact_on_disconnected_graph() {
        assert_matches_bfs(&graph(6, &[(0, 1), (2, 3)]));
    }

    #[test]
    fn exact_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let n = rng.gen_range(2..30);
            let m = rng.gen_range(0..n * 3);
            let mut g = LabeledGraph::new();
            for _ in 0..n {
                g.add_node_with_label("X");
            }
            for _ in 0..m {
                let u = rng.gen_range(0..n) as u32;
                let v = rng.gen_range(0..n) as u32;
                g.add_edge(NodeId(u), NodeId(v));
            }
            assert_matches_bfs(&g);
        }
    }

    #[test]
    fn size_accounting() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let idx = TwoHopIndex::build(&g);
        assert!(idx.label_entries() > 0);
        assert!(idx.heap_bytes() > 0);
    }

    #[test]
    fn empty_graph() {
        let g = LabeledGraph::new();
        let idx = TwoHopIndex::build(&g);
        assert_eq!(idx.label_entries(), 0);
    }
}
