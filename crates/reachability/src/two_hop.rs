//! A 2-hop reachability labelling (pruned landmark labelling).
//!
//! The paper's Fig. 12(d) compares the memory cost of 2-hop indexes built on
//! the original graph `G` and on the compressed graph `Gr`, to make the
//! point that (a) the index dwarfs both graphs and (b) building it on `Gr`
//! is much cheaper. We implement the index as a pruned landmark labelling
//! (pruned BFS from landmarks in descending coverage order, see
//! [`TwoHopIndex::build`]), which produces a valid 2-hop cover for
//! reachability: `u` reaches `w` iff `L_out(u) ∩ L_in(w) ≠ ∅`.
//!
//! ## Labels are landmark *ranks*, not node ids
//!
//! Label lists store the landmark's **processing rank** (its position in the
//! coverage order), not its node id. The pruning test inside the build — "do
//! the labels written so far already prove this pair?" — is a sorted-merge
//! intersection, and ranks are pushed in strictly ascending order by
//! construction, so every list is sorted at all times *during* the build.
//! Storing raw node ids (as an earlier revision did) silently broke the
//! pruning whenever id order diverged from coverage order: the mid-build
//! lists were unsorted, the merge intersection missed matches, and the
//! pruning rule kept almost nothing out. Queries stayed correct (failed
//! pruning only *adds* labels) but the index bloated. The legacy
//! construction is kept as [`TwoHopIndex::build_with_node_id_labels`] so the
//! size win of the rank fix stays measurable (`BENCH_3.json`, bench tests).
//! [`TwoHopIndex::landmark`] maps a rank back to its node for debugging.
//!
//! Because the compressed graph is "just a graph", the very same index can
//! be built over `Gr` — this is the paper's claim that existing indexing
//! techniques apply to compressed graphs unchanged.

use std::collections::VecDeque;

use qpgc_graph::reach_sets::{DagReach, DEFAULT_CHUNK};
use qpgc_graph::scc::Condensation;
use qpgc_graph::{GraphView, NodeId};

/// Landmark-coverage estimation strategy used to order landmarks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoverageEstimate {
    /// Exact `(|anc| + 1) · (|desc| + 1)` scores via chunked reach-set
    /// sweeps over the condensation. Cost grows with `|Vscc|²/w`; fine up to
    /// bench scales, expensive toward millions of nodes.
    Exact,
    /// Sampled sweep: only `samples` condensation columns are swept (one
    /// forward, one backward pass reusing [`DagReach::from_condensation`]),
    /// and per-node ancestor/descendant weights are Horvitz–Thompson scaled
    /// by `|Vscc| / samples`. Ordering quality degrades gracefully; query
    /// *correctness* never depends on the ordering, only index size does.
    Sampled {
        /// Number of condensation columns to sweep (clamped to `|Vscc|`).
        samples: usize,
        /// Seed of the deterministic column sampler.
        seed: u64,
    },
    /// Sampled sweep with an **adaptive** sample size: starting from a small
    /// sample, the sample is doubled (with a fresh column draw each round)
    /// until the top-`16` landmark order produced by two consecutive rounds
    /// agrees, at which point the last round's scores are used; if the
    /// sample would reach `|Vscc|` first, the sweep falls back to
    /// [`CoverageEstimate::Exact`]. This removes the caller-chosen sample
    /// knob of [`CoverageEstimate::Sampled`]: the head of the order is what
    /// drives pruning quality, so "the head stopped moving" is the natural
    /// convergence criterion.
    Adaptive {
        /// Seed of the deterministic column sampler (each round derives its
        /// own stream from it).
        seed: u64,
    },
}

/// Build-time options for [`TwoHopIndex::build_with`].
#[derive(Clone, Copy, Debug)]
pub struct TwoHopConfig {
    /// How landmark coverage scores are computed.
    pub coverage: CoverageEstimate,
    /// Run the forward and backward pruned BFS of each landmark on two
    /// threads (one long-lived worker for the forward direction, the caller
    /// for the backward one, exchanging per-landmark label snapshots over
    /// channels). The two passes read disjoint state, so the result is
    /// bit-identical to the sequential build.
    pub parallel: bool,
}

impl Default for TwoHopConfig {
    fn default() -> Self {
        TwoHopConfig {
            coverage: CoverageEstimate::Exact,
            parallel: false,
        }
    }
}

/// Tombstone in the rank → node map for landmarks retired by
/// [`TwoHopIndex::patch`].
pub const RETIRED_LANDMARK: NodeId = NodeId(u32::MAX);

/// A 2-hop reachability labelling of a graph.
#[derive(Clone, Debug)]
pub struct TwoHopIndex {
    /// `out_labels[v]`: ranks of landmarks reachable *from* `v` (ascending).
    out_labels: Vec<Vec<u32>>,
    /// `in_labels[v]`: ranks of landmarks that reach `v` (ascending).
    in_labels: Vec<Vec<u32>>,
    /// `landmark_of_rank[r]`: the node processed as the `r`-th landmark.
    landmark_of_rank: Vec<NodeId>,
}

/// The prefix of an ascending list holding entries strictly below `bound`.
fn prefix_below(list: &[u32], bound: u32) -> &[u32] {
    &list[..list.partition_point(|&x| x < bound)]
}

/// Inserts `rank` into an ascending list at its sorted position (the rank
/// must not be present — patch passes strip it first).
fn sorted_insert(list: &mut Vec<u32>, rank: u32) {
    let pos = list.partition_point(|&x| x < rank);
    debug_assert!(list.get(pos) != Some(&rank));
    list.insert(pos, rank);
}

/// `true` iff the two ascending `u32` slices share an element.
fn sorted_intersects(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Reusable per-pass BFS state (`visited` is all-`false` between passes).
struct Scratch {
    visited: Vec<bool>,
    touched: Vec<usize>,
}

impl Scratch {
    fn new(n: usize) -> Self {
        Scratch {
            visited: vec![false; n],
            touched: Vec::new(),
        }
    }
}

/// One pruned BFS from `landmark`, pushing `rank` into `labels` (the `in`
/// lists when walking forward, the `out` lists when walking backward).
/// `landmark_opposite` is the landmark's *other-direction* label list as of
/// the start of this landmark's processing; together with `labels[u]` it
/// decides the pruning test ("is this pair already covered?").
fn pruned_pass<G: GraphView>(
    g: &G,
    landmark: NodeId,
    rank: u32,
    forward: bool,
    labels: &mut [Vec<u32>],
    landmark_opposite: &[u32],
    scratch: &mut Scratch,
) {
    let Scratch { visited, touched } = scratch;
    let mut queue = VecDeque::new();
    queue.push_back(landmark);
    visited[landmark.index()] = true;
    touched.push(landmark.index());
    while let Some(u) = queue.pop_front() {
        // Prune: if the labels built so far already prove the pair
        // (landmark, u) — resp. (u, landmark) — this landmark adds nothing
        // here or beyond.
        if u != landmark && sorted_intersects(landmark_opposite, &labels[u.index()]) {
            continue;
        }
        if u != landmark {
            labels[u.index()].push(rank);
        }
        let neighbors = if forward {
            g.out_neighbors(u)
        } else {
            g.in_neighbors(u)
        };
        for &w in neighbors {
            if !visited[w.index()] {
                visited[w.index()] = true;
                touched.push(w.index());
                queue.push_back(w);
            }
        }
    }
    for &t in touched.iter() {
        visited[t] = false;
    }
    touched.clear();
}

/// [`pruned_pass`] for [`TwoHopIndex::patch`] re-runs, against a **frozen**
/// label base. Three differences from the full-build pass: the pruning
/// intersection only considers label entries with rank **below** the
/// current one (retained entries of higher-rank clean landmarks must not
/// influence an earlier pass — during a full build no such entries exist
/// yet); pruning reads `base` — the post-strip labels holding only
/// clean-landmark entries — never the insertions of other re-run passes,
/// so every scheduled pass is a pure function of `(g, base)` and passes can
/// execute concurrently in any order; and the pass *collects* the nodes to
/// label into `inserts` instead of writing them — the caller commits the
/// collected ranks at their sorted positions in schedule order.
#[allow(clippy::too_many_arguments)]
fn frozen_pass<G: GraphView>(
    g: &G,
    landmark: NodeId,
    rank: u32,
    forward: bool,
    base: &[Vec<u32>],
    landmark_opposite: &[u32],
    scratch: &mut Scratch,
    inserts: &mut Vec<u32>,
) {
    let Scratch { visited, touched } = scratch;
    let mut queue = VecDeque::new();
    queue.push_back(landmark);
    visited[landmark.index()] = true;
    touched.push(landmark.index());
    while let Some(u) = queue.pop_front() {
        if u != landmark
            && sorted_intersects(landmark_opposite, prefix_below(&base[u.index()], rank))
        {
            continue;
        }
        if u != landmark {
            inserts.push(u.0);
        }
        let neighbors = if forward {
            g.out_neighbors(u)
        } else {
            g.in_neighbors(u)
        };
        for &w in neighbors {
            if !visited[w.index()] {
                visited[w.index()] = true;
                touched.push(w.index());
                queue.push_back(w);
            }
        }
    }
    for &t in touched.iter() {
        visited[t] = false;
    }
    touched.clear();
}

impl TwoHopIndex {
    /// Builds the index over `g` with landmarks processed in descending
    /// coverage order: a landmark `v` can cover at most
    /// `(|anc(v)| + 1) · (|desc(v)| + 1)` reachable pairs, so processing
    /// high-coverage nodes first (the greedy heuristic behind Cohen et
    /// al.'s 2-hop covers) lets the pruned BFS skip most of the graph for
    /// later landmarks. Unlike plain degree ordering this is stable under
    /// transitive reduction — reachability-preserving compression keeps
    /// ancestor/descendant sets intact while flattening degrees, and Fig.
    /// 12(d) relies on the index over `Gr` not regressing past the index
    /// over `G`.
    pub fn build<G: GraphView + Sync>(g: &G) -> Self {
        Self::build_with(g, &TwoHopConfig::default())
    }

    /// [`TwoHopIndex::build`] with explicit coverage-estimation and
    /// parallelism options.
    pub fn build_with<G: GraphView + Sync>(g: &G, config: &TwoHopConfig) -> Self {
        let n = g.node_count();
        let order = landmark_order(g, config.coverage);

        let mut index = TwoHopIndex {
            out_labels: vec![Vec::new(); n],
            in_labels: vec![Vec::new(); n],
            landmark_of_rank: order.clone(),
        };

        if config.parallel && n > 0 {
            index.in_labels = parallel_passes(g, &order, &mut index.out_labels);
        } else {
            let mut scratch_fwd = Scratch::new(n);
            let mut scratch_bwd = Scratch::new(n);
            for (rank, &landmark) in order.iter().enumerate() {
                let rank = rank as u32;
                let TwoHopIndex {
                    out_labels,
                    in_labels,
                    ..
                } = &mut index;
                // Forward: landmark reaches u  ⇒  rank ∈ in_labels[u].
                pruned_pass(
                    g,
                    landmark,
                    rank,
                    true,
                    in_labels,
                    &out_labels[landmark.index()],
                    &mut scratch_fwd,
                );
                // Backward: u reaches landmark  ⇒  rank ∈ out_labels[u].
                pruned_pass(
                    g,
                    landmark,
                    rank,
                    false,
                    out_labels,
                    &in_labels[landmark.index()],
                    &mut scratch_bwd,
                );

                // The landmark trivially covers itself in both directions.
                index.out_labels[landmark.index()].push(rank);
                index.in_labels[landmark.index()].push(rank);
            }
        }

        // Ranks are pushed in ascending processing order, so every list is
        // already sorted — the invariant the mid-build pruning relies on.
        debug_assert!(index
            .out_labels
            .iter()
            .chain(index.in_labels.iter())
            .all(|l| l.windows(2).all(|w| w[0] < w[1])));
        index
    }

    /// The pre-rank-fix construction: label lists hold raw node ids pushed
    /// in landmark processing order and are only sorted *after* the build,
    /// so the mid-build pruning intersection runs on unsorted lists and
    /// silently misses most covered pairs. Queries are still exact (failed
    /// pruning only adds labels); the index is just needlessly large. Kept
    /// so tests and `BENCH_3.json` can quantify the rank fix — do not use
    /// for anything else.
    pub fn build_with_node_id_labels<G: GraphView + Sync>(g: &G) -> Self {
        let n = g.node_count();
        let order = landmark_order(g, CoverageEstimate::Exact);

        let mut index = TwoHopIndex {
            out_labels: vec![Vec::new(); n],
            in_labels: vec![Vec::new(); n],
            landmark_of_rank: order.clone(),
        };

        let mut visited = vec![false; n];
        let mut touched: Vec<usize> = Vec::new();
        for &landmark in &order {
            let mut queue = VecDeque::new();
            queue.push_back(landmark);
            visited[landmark.index()] = true;
            touched.push(landmark.index());
            while let Some(u) = queue.pop_front() {
                // The buggy pruning test: a merge intersection over lists
                // that are NOT sorted mid-build.
                if u != landmark
                    && sorted_intersects(
                        &index.out_labels[landmark.index()],
                        &index.in_labels[u.index()],
                    )
                {
                    continue;
                }
                if u != landmark {
                    index.in_labels[u.index()].push(landmark.0);
                }
                for &w in g.out_neighbors(u) {
                    if !visited[w.index()] {
                        visited[w.index()] = true;
                        touched.push(w.index());
                        queue.push_back(w);
                    }
                }
            }
            for &t in &touched {
                visited[t] = false;
            }
            touched.clear();

            let mut queue = VecDeque::new();
            queue.push_back(landmark);
            visited[landmark.index()] = true;
            touched.push(landmark.index());
            while let Some(u) = queue.pop_front() {
                if u != landmark
                    && sorted_intersects(
                        &index.out_labels[u.index()],
                        &index.in_labels[landmark.index()],
                    )
                {
                    continue;
                }
                if u != landmark {
                    index.out_labels[u.index()].push(landmark.0);
                }
                for &w in g.in_neighbors(u) {
                    if !visited[w.index()] {
                        visited[w.index()] = true;
                        touched.push(w.index());
                        queue.push_back(w);
                    }
                }
            }
            for &t in &touched {
                visited[t] = false;
            }
            touched.clear();

            index.out_labels[landmark.index()].push(landmark.0);
            index.in_labels[landmark.index()].push(landmark.0);
            index.out_labels[landmark.index()].sort_unstable();
            index.in_labels[landmark.index()].sort_unstable();
        }

        // The late sort that made *queries* work despite the broken
        // mid-build pruning.
        for v in 0..n {
            index.out_labels[v].sort_unstable();
            index.in_labels[v].sort_unstable();
        }
        index
    }

    /// Scoped re-labeling: derives the index of a *patched* graph from the
    /// index of its predecessor, re-running the pruned passes only for the
    /// landmarks whose reachability cones touch the change.
    ///
    /// The caller partitions the node ids into four groups:
    ///
    /// * **dead** — rows retired by the patch (isolated in `new_graph`).
    ///   Their ranks are tombstoned and every label entry carrying them is
    ///   stripped.
    /// * **born** — rows created by the patch (possibly recycling dead ids).
    ///   They are appended to the landmark order with fresh ranks and their
    ///   label lists start empty.
    /// * **dirty** — surviving rows whose forward or backward cone (in the
    ///   old or the new graph, themselves included) intersects a dead or
    ///   born row. Their old entries are stripped and their passes re-run.
    /// * everyone else (**clean**) keeps their labels untouched.
    ///
    /// ## Why the mixed label set stays a valid 2-hop cover
    ///
    /// The contract (guaranteed by the serving layer, emulated by the
    /// differential tests): a clean landmark's cones are identical in both
    /// graphs and avoid every dead/born row, and reachability between
    /// surviving rows is the same in both graphs. Under that contract the
    /// standard pruned-landmark-labelling induction goes through for the
    /// mixed label set: for any pair `(a, b)` reachable in the new graph,
    /// take the minimum-rank landmark `h` on any new `a → b` path. If `h`
    /// is clean, its retained pass either labelled both endpoints, or it
    /// pruned at some `x` on the path because an earlier landmark `q`
    /// covered the pair — but then `q` lies inside `h`'s (unchanged) cone,
    /// so `a → q → b` also holds in the new graph, contradicting `h`'s
    /// minimality. If `h` is dirty or born, its pass re-ran on the new
    /// graph directly, and the same argument applies to its prune points.
    /// The one extra care: re-run passes prune against *rank-prefix-bounded*
    /// intersections (entries `< h` only) over the **frozen post-strip
    /// base** — the retained clean-landmark entries, never the insertions
    /// of other re-run passes. A failed prune only *adds* labels, so the
    /// result is still a valid (if slightly larger) cover, and freezing the
    /// base makes every scheduled pass a pure function of the new graph —
    /// which is what lets [`TwoHopIndex::patch_with`] run the per-landmark
    /// passes concurrently while the collected inserts commit at their
    /// sorted positions in rank order, bit-identical at every thread count.
    /// Labels of `patch` and of a from-scratch rebuild may differ (both are
    /// valid covers); queries agree.
    ///
    /// Ranks of dead landmarks remain as tombstones ([`TwoHopIndex::landmark`]
    /// returns `NodeId(u32::MAX)` for them), so repeated patching grows the
    /// rank space; [`TwoHopIndex::retired_rank_count`] lets callers decide
    /// when a compacting full rebuild is worth it.
    ///
    /// # Panics
    ///
    /// Panics when a dead or dirty id has no live rank in this index, or
    /// when a born id still has one (the groups must describe a consistent
    /// lifecycle step).
    pub fn patch<G: GraphView + Sync>(
        &self,
        new_graph: &G,
        dead: &[u32],
        dirty: &[u32],
        born: &[u32],
    ) -> TwoHopIndex {
        self.patch_with(new_graph, dead, dirty, born, 1)
    }

    /// [`TwoHopIndex::patch`] with an explicit worker count for the re-run
    /// passes. `threads == 0` means "use the machine's available
    /// parallelism"; any value is clamped to the schedule length. Every
    /// scheduled pass prunes against the frozen post-strip base (see the
    /// cover argument above), so the passes are independent and run
    /// concurrently under `std::thread::scope`; their collected inserts
    /// commit at sorted positions in schedule (rank) order on one thread,
    /// making the patched index **bit-identical** at every thread count.
    pub fn patch_with<G: GraphView + Sync>(
        &self,
        new_graph: &G,
        dead: &[u32],
        dirty: &[u32],
        born: &[u32],
        threads: usize,
    ) -> TwoHopIndex {
        let n_new = new_graph.node_count();
        assert!(
            n_new >= self.out_labels.len(),
            "patched graph shrank below the indexed id space"
        );

        let mut out_labels = self.out_labels.clone();
        let mut in_labels = self.in_labels.clone();
        out_labels.resize_with(n_new, Vec::new);
        in_labels.resize_with(n_new, Vec::new);
        let mut landmark_of_rank = self.landmark_of_rank.clone();

        // rank_of: inverse of the live part of the rank → node map.
        let mut rank_of = vec![u32::MAX; n_new];
        for (r, lm) in landmark_of_rank.iter().enumerate() {
            if *lm != RETIRED_LANDMARK {
                rank_of[lm.index()] = r as u32;
            }
        }

        // Ranks whose entries must be stripped: dead (gone for good) and
        // dirty (about to be recomputed). Dead first, so an id retired and
        // recycled by the same step (`dead` ∩ `born`) hands its old rank
        // back before the born check below.
        let mut strip = vec![false; landmark_of_rank.len()];
        for &d in dead {
            let r = rank_of[d as usize];
            assert!(r != u32::MAX, "dead id {d} has no live rank");
            strip[r as usize] = true;
            landmark_of_rank[r as usize] = RETIRED_LANDMARK;
            rank_of[d as usize] = u32::MAX;
        }
        // Born ids normally get fresh ranks. An id can however be *reborn
        // with a live rank*: a full (compacting) index rebuild over the
        // patched quotient hands every row — retired holes included — a
        // rank, and a later step may recycle such a hole. Its old labels
        // describe an isolated row (nobody's cone contained it), so
        // re-running it at its existing rank like a dirty landmark is
        // sound; only ids with no live rank are appended.
        let mut fresh_born: Vec<u32> = Vec::new();
        let mut dirty_ranks: Vec<u32> = Vec::with_capacity(dirty.len());
        for &b in born {
            match rank_of[b as usize] {
                u32::MAX => fresh_born.push(b),
                r => {
                    strip[r as usize] = true;
                    dirty_ranks.push(r);
                }
            }
        }
        for &d in dirty {
            let r = rank_of[d as usize];
            assert!(r != u32::MAX, "dirty id {d} has no live rank");
            strip[r as usize] = true;
            dirty_ranks.push(r);
        }
        dirty_ranks.sort_unstable();

        // Rows reset wholesale: dead rows (unreferenced from now on) and
        // born rows (recycled ids may carry a previous life's labels).
        let mut reset = vec![false; n_new];
        for &d in dead {
            reset[d as usize] = true;
        }
        for &b in born {
            reset[b as usize] = true;
        }
        for labels in [&mut out_labels, &mut in_labels] {
            for (v, list) in labels.iter_mut().enumerate() {
                if reset[v] {
                    list.clear();
                } else if !list.is_empty() {
                    list.retain(|&r| !strip[r as usize]);
                }
            }
        }

        // Re-run schedule: surviving dirty landmarks at their old ranks
        // (ascending), then born landmarks at fresh appended ranks.
        let mut schedule: Vec<(u32, NodeId)> = dirty_ranks
            .iter()
            .map(|&r| (r, landmark_of_rank[r as usize]))
            .collect();
        let mut born_sorted: Vec<u32> = fresh_born;
        born_sorted.sort_unstable();
        for &b in &born_sorted {
            let rank = landmark_of_rank.len() as u32;
            landmark_of_rank.push(NodeId(b));
            schedule.push((rank, NodeId(b)));
        }

        // The post-strip labels are the frozen base: both passes of every
        // scheduled landmark prune against it and only it, so each schedule
        // entry is an independent unit of work. Run the passes (possibly
        // across workers), then commit the collected inserts in schedule
        // order — the committed lists are identical no matter how the
        // passes were distributed.
        let workers = {
            let requested = if threads == 0 {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            } else {
                threads
            };
            requested.clamp(1, schedule.len().max(1))
        };
        let run_entry = |&(rank, landmark): &(u32, NodeId),
                         scratch_fwd: &mut Scratch,
                         scratch_bwd: &mut Scratch| {
            // Forward: landmark reaches u  ⇒  rank ∈ in_labels[u].
            let mut fwd = Vec::new();
            let opposite = prefix_below(&out_labels[landmark.index()], rank);
            frozen_pass(
                new_graph,
                landmark,
                rank,
                true,
                &in_labels,
                opposite,
                scratch_fwd,
                &mut fwd,
            );
            // Backward: u reaches landmark  ⇒  rank ∈ out_labels[u].
            let mut bwd = Vec::new();
            let opposite = prefix_below(&in_labels[landmark.index()], rank);
            frozen_pass(
                new_graph,
                landmark,
                rank,
                false,
                &out_labels,
                opposite,
                scratch_bwd,
                &mut bwd,
            );
            (fwd, bwd)
        };
        let results: Vec<(Vec<u32>, Vec<u32>)> = if workers <= 1 || schedule.len() <= 1 {
            let mut scratch_fwd = Scratch::new(n_new);
            let mut scratch_bwd = Scratch::new(n_new);
            schedule
                .iter()
                .map(|entry| run_entry(entry, &mut scratch_fwd, &mut scratch_bwd))
                .collect()
        } else {
            let chunk = schedule.len().div_ceil(workers);
            let per_chunk: Vec<Vec<(Vec<u32>, Vec<u32>)>> = std::thread::scope(|s| {
                let handles: Vec<_> = schedule
                    .chunks(chunk)
                    .map(|entries| {
                        let run_entry = &run_entry;
                        s.spawn(move || {
                            let mut scratch_fwd = Scratch::new(n_new);
                            let mut scratch_bwd = Scratch::new(n_new);
                            entries
                                .iter()
                                .map(|entry| run_entry(entry, &mut scratch_fwd, &mut scratch_bwd))
                                .collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("relabel worker panicked"))
                    .collect()
            });
            per_chunk.into_iter().flatten().collect()
        };
        for (&(rank, landmark), (fwd, bwd)) in schedule.iter().zip(results) {
            for u in fwd {
                sorted_insert(&mut in_labels[u as usize], rank);
            }
            for u in bwd {
                sorted_insert(&mut out_labels[u as usize], rank);
            }
            sorted_insert(&mut out_labels[landmark.index()], rank);
            sorted_insert(&mut in_labels[landmark.index()], rank);
        }

        let index = TwoHopIndex {
            out_labels,
            in_labels,
            landmark_of_rank,
        };
        debug_assert!(index
            .out_labels
            .iter()
            .chain(index.in_labels.iter())
            .all(|l| l.windows(2).all(|w| w[0] < w[1])));
        index
    }

    /// Number of rank slots tombstoned by past [`TwoHopIndex::patch`] calls.
    /// When this rivals [`TwoHopIndex::live_rank_count`], a compacting full
    /// rebuild reclaims the slack.
    pub fn retired_rank_count(&self) -> usize {
        self.landmark_of_rank
            .iter()
            .filter(|&&lm| lm == RETIRED_LANDMARK)
            .count()
    }

    /// Number of live landmarks (rank slots not tombstoned).
    pub fn live_rank_count(&self) -> usize {
        self.landmark_of_rank.len() - self.retired_rank_count()
    }

    /// `true` iff the labels prove that `u` reaches `w` (possibly trivially,
    /// when `u == w`).
    pub fn query(&self, u: NodeId, w: NodeId) -> bool {
        if u == w {
            return true;
        }
        self.covered(u, w)
    }

    fn covered(&self, u: NodeId, w: NodeId) -> bool {
        sorted_intersects(&self.out_labels[u.index()], &self.in_labels[w.index()])
    }

    /// The node processed as the `rank`-th landmark (the debugging map from
    /// label values back to nodes). Ranks retired by [`TwoHopIndex::patch`]
    /// return [`RETIRED_LANDMARK`].
    pub fn landmark(&self, rank: u32) -> NodeId {
        self.landmark_of_rank[rank as usize]
    }

    /// The full landmark processing order, indexable by rank.
    pub fn landmark_order(&self) -> &[NodeId] {
        &self.landmark_of_rank
    }

    /// Total number of label entries (a proxy for index size).
    pub fn label_entries(&self) -> usize {
        self.out_labels.iter().map(Vec::len).sum::<usize>()
            + self.in_labels.iter().map(Vec::len).sum::<usize>()
    }

    /// Approximate heap footprint of the index in bytes — the quantity
    /// plotted in Fig. 12(d). Counts the label entries, the two outer
    /// `Vec<Vec<u32>>` spines (whose inner `Vec` headers live inside the
    /// outer allocation), and the rank → node map, following the
    /// capacity-based convention of `LabeledGraph::heap_bytes` /
    /// `CsrGraph::heap_bytes`. An earlier revision charged the inner-header
    /// cost per *populated* list instead of per spine slot, understating the
    /// footprint whenever the spines were longer than their filled prefix.
    pub fn heap_bytes(&self) -> usize {
        let per_entry = std::mem::size_of::<u32>();
        let per_vec = std::mem::size_of::<Vec<u32>>();
        let entries: usize = self
            .out_labels
            .iter()
            .chain(self.in_labels.iter())
            .map(|v| v.capacity() * per_entry)
            .sum();
        entries
            + (self.out_labels.capacity() + self.in_labels.capacity()) * per_vec
            + self.landmark_of_rank.capacity() * std::mem::size_of::<NodeId>()
    }
}

/// The parallel build loop: one long-lived worker thread owns the `in`
/// labels and runs every forward pass; the calling thread keeps the `out`
/// labels and runs every backward pass. Per landmark the two sides exchange
/// snapshots of the landmark's own (short) label lists over channels — the
/// only state either pass reads from the other side — so the two passes of
/// each landmark overlap while the result stays bit-identical to the
/// sequential build. One thread spawn total, not one per landmark.
///
/// Ordering argument: the worker handles landmarks strictly in rank order,
/// so when it snapshots `in_labels[landmark]` for rank `r` it has already
/// finished the forward pass and self-push of every rank `< r` — exactly
/// the state the sequential backward pass would read. Symmetrically the
/// caller finishes backward pass and self-push of rank `r - 1` before
/// snapshotting `out_labels[landmark]` for rank `r`. Within one landmark
/// the forward pass writes only `in` labels (never the landmark's own) and
/// the backward pass writes only `out` labels, so they share nothing.
fn parallel_passes<G: GraphView + Sync>(
    g: &G,
    order: &[NodeId],
    out_labels: &mut [Vec<u32>],
) -> Vec<Vec<u32>> {
    use std::sync::mpsc;

    let n = g.node_count();
    let (to_worker, work_rx) = mpsc::channel::<(NodeId, u32, Vec<u32>)>();
    let (to_caller, snap_rx) = mpsc::channel::<Vec<u32>>();
    std::thread::scope(|s| {
        let forward_worker = s.spawn(move || {
            let mut in_labels: Vec<Vec<u32>> = vec![Vec::new(); n];
            let mut scratch = Scratch::new(n);
            while let Ok((landmark, rank, landmark_out)) = work_rx.recv() {
                if to_caller.send(in_labels[landmark.index()].clone()).is_err() {
                    break; // caller gone (panic unwinding); stop quietly
                }
                pruned_pass(
                    g,
                    landmark,
                    rank,
                    true,
                    &mut in_labels,
                    &landmark_out,
                    &mut scratch,
                );
                in_labels[landmark.index()].push(rank);
            }
            in_labels
        });

        let mut scratch = Scratch::new(n);
        for (rank, &landmark) in order.iter().enumerate() {
            let rank = rank as u32;
            to_worker
                .send((landmark, rank, out_labels[landmark.index()].clone()))
                .expect("forward worker hung up");
            let landmark_in = snap_rx.recv().expect("forward worker hung up");
            pruned_pass(
                g,
                landmark,
                rank,
                false,
                out_labels,
                &landmark_in,
                &mut scratch,
            );
            out_labels[landmark.index()].push(rank);
        }
        drop(to_worker); // closes the channel; the worker drains and returns
        forward_worker.join().expect("forward worker panicked")
    })
}

/// Landmarks in descending estimated-coverage order (ties broken by total
/// degree, then ascending node id — the sort is stable).
fn landmark_order<G: GraphView>(g: &G, estimate: CoverageEstimate) -> Vec<NodeId> {
    let cond = Condensation::of(g);
    let dag = DagReach::from_condensation(&cond);
    let scores = match estimate {
        CoverageEstimate::Adaptive { seed } => adaptive_scores(g, &cond, &dag, seed),
        other => coverage_scores(g, &cond, &dag, other),
    };
    order_by_scores(g, &scores)
}

/// Sorts all nodes by descending score, breaking ties by total degree then
/// ascending node id (the sort is stable).
fn order_by_scores<G: GraphView>(g: &G, scores: &[u64]) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = g.nodes().collect();
    order
        .sort_by_key(|&v| std::cmp::Reverse((scores[v.index()], g.out_degree(v) + g.in_degree(v))));
    order
}

/// The adaptive sample-growth loop behind [`CoverageEstimate::Adaptive`]:
/// double the sample until the top-16 of the induced landmark order agrees
/// across two consecutive rounds, falling back to the exact sweep when the
/// sample would stop being a proper subset of the columns.
fn adaptive_scores<G: GraphView>(
    g: &G,
    cond: &Condensation,
    dag: &DagReach,
    seed: u64,
) -> Vec<u64> {
    const TOP_K: usize = 16;
    let nc = cond.component_count();
    let mut samples = 32usize;
    let mut prev_top: Option<Vec<NodeId>> = None;
    let mut round = 0u64;
    loop {
        if samples >= nc {
            return coverage_scores(g, cond, dag, CoverageEstimate::Exact);
        }
        let estimate = CoverageEstimate::Sampled {
            samples,
            seed: seed.wrapping_add(round.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        };
        let scores = coverage_scores(g, cond, dag, estimate);
        let order = order_by_scores(g, &scores);
        let top: Vec<NodeId> = order.iter().take(TOP_K.min(order.len())).copied().collect();
        if prev_top.as_ref() == Some(&top) {
            return scores;
        }
        prev_top = Some(top);
        samples *= 2;
        round += 1;
    }
}

/// `(|anc(v)| + 1) · (|desc(v)| + 1)` for every node — exactly, or scaled up
/// from a sampled column sweep — computed through the SCC condensation so
/// memory stays bounded on large graphs. `Adaptive` must be resolved by the
/// caller ([`adaptive_scores`]) before reaching here.
fn coverage_scores<G: GraphView>(
    g: &G,
    cond: &Condensation,
    dag: &DagReach,
    estimate: CoverageEstimate,
) -> Vec<u64> {
    let nc = cond.component_count();
    let weight = |c: u32| cond.members(c).len() as u64;

    let mut desc = vec![0u64; nc];
    let mut anc = vec![0u64; nc];
    match estimate {
        CoverageEstimate::Sampled { samples, seed } if samples > 0 && samples < nc => {
            // Sweep only the sampled columns and Horvitz–Thompson scale the
            // hit weights: every column is included with probability
            // `samples / nc`, so dividing by it makes the estimate unbiased.
            let cols = sample_columns(nc, samples, seed);
            let d = dag.descendants_for_columns(&cols);
            let a = dag.ancestors_for_columns(&cols);
            for c in 0..nc {
                let dw: u64 = d[c].ones().map(|j| weight(cols[j])).sum();
                let aw: u64 = a[c].ones().map(|j| weight(cols[j])).sum();
                desc[c] = dw * nc as u64 / samples as u64;
                anc[c] = aw * nc as u64 / samples as u64;
            }
        }
        _ => {
            for cols in dag.chunks(DEFAULT_CHUNK) {
                let w = |j: usize| weight((cols.start + j) as u32);
                let d = dag.descendants_chunk(cols.clone());
                let a = dag.ancestors_chunk(cols.clone());
                for c in 0..nc {
                    desc[c] += d[c].ones().map(w).sum::<u64>();
                    anc[c] += a[c].ones().map(w).sum::<u64>();
                }
            }
        }
    }

    g.nodes()
        .map(|v| {
            let c = cond.component_of(v);
            // Members of a cyclic SCC are their own ancestors and descendants.
            let own = if cond.is_cyclic(c, g) {
                cond.members(c).len() as u64
            } else {
                0
            };
            (anc[c as usize] + own + 1) * (desc[c as usize] + own + 1)
        })
        .collect()
}

/// `k` distinct column ids out of `0..nc`, chosen by a seeded partial
/// Fisher–Yates shuffle (xorshift64* stream), returned sorted.
fn sample_columns(nc: usize, k: usize, seed: u64) -> Vec<u32> {
    let mut ids: Vec<u32> = (0..nc as u32).collect();
    let mut state = seed.wrapping_mul(2) | 1; // never zero
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    for i in 0..k {
        let j = i + (next() as usize % (nc - i));
        ids.swap(i, j);
    }
    ids.truncate(k);
    ids.sort_unstable();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpgc_graph::traversal::bfs_reachable;
    use qpgc_graph::LabeledGraph;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn graph(n: usize, edges: &[(u32, u32)]) -> LabeledGraph {
        let mut g = LabeledGraph::new();
        for _ in 0..n {
            g.add_node_with_label("X");
        }
        for &(u, v) in edges {
            g.add_edge(NodeId(u), NodeId(v));
        }
        g
    }

    fn random_graph(rng: &mut StdRng) -> LabeledGraph {
        let n = rng.gen_range(2..30);
        let m = rng.gen_range(0..n * 3);
        let mut g = LabeledGraph::new();
        for _ in 0..n {
            g.add_node_with_label("X");
        }
        for _ in 0..m {
            let u = rng.gen_range(0..n) as u32;
            let v = rng.gen_range(0..n) as u32;
            g.add_edge(NodeId(u), NodeId(v));
        }
        g
    }

    fn assert_matches_bfs(g: &LabeledGraph) {
        let idx = TwoHopIndex::build(g);
        for u in g.nodes() {
            for w in g.nodes() {
                assert_eq!(
                    idx.query(u, w),
                    bfs_reachable(g, u, w),
                    "2-hop answer differs for ({u}, {w})"
                );
            }
        }
    }

    #[test]
    fn exact_on_small_dag() {
        assert_matches_bfs(&graph(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]));
    }

    #[test]
    fn exact_with_cycles() {
        assert_matches_bfs(&graph(
            6,
            &[(0, 1), (1, 2), (2, 0), (2, 3), (4, 3), (3, 4), (5, 5)],
        ));
    }

    #[test]
    fn exact_on_disconnected_graph() {
        assert_matches_bfs(&graph(6, &[(0, 1), (2, 3)]));
    }

    #[test]
    fn exact_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            assert_matches_bfs(&random_graph(&mut rng));
        }
    }

    #[test]
    fn parallel_build_is_identical_to_sequential() {
        let mut rng = StdRng::seed_from_u64(11);
        let par = TwoHopConfig {
            parallel: true,
            ..TwoHopConfig::default()
        };
        for _ in 0..15 {
            let g = random_graph(&mut rng);
            let seq_idx = TwoHopIndex::build(&g);
            let par_idx = TwoHopIndex::build_with(&g, &par);
            assert_eq!(seq_idx.out_labels, par_idx.out_labels);
            assert_eq!(seq_idx.in_labels, par_idx.in_labels);
            assert_eq!(seq_idx.landmark_of_rank, par_idx.landmark_of_rank);
        }
    }

    #[test]
    fn sampled_coverage_stays_exact_on_queries() {
        let mut rng = StdRng::seed_from_u64(23);
        let cfg = TwoHopConfig {
            coverage: CoverageEstimate::Sampled {
                samples: 4,
                seed: 99,
            },
            parallel: false,
        };
        for _ in 0..15 {
            let g = random_graph(&mut rng);
            let idx = TwoHopIndex::build_with(&g, &cfg);
            for u in g.nodes() {
                for w in g.nodes() {
                    assert_eq!(
                        idx.query(u, w),
                        bfs_reachable(&g, u, w),
                        "sampled index differs for ({u}, {w})"
                    );
                }
            }
        }
    }

    #[test]
    fn adaptive_coverage_stays_exact_on_queries() {
        let mut rng = StdRng::seed_from_u64(53);
        let cfg = TwoHopConfig {
            coverage: CoverageEstimate::Adaptive { seed: 4 },
            parallel: false,
        };
        for _ in 0..15 {
            let g = random_graph(&mut rng);
            let idx = TwoHopIndex::build_with(&g, &cfg);
            for u in g.nodes() {
                for w in g.nodes() {
                    assert_eq!(
                        idx.query(u, w),
                        bfs_reachable(&g, u, w),
                        "adaptive index differs for ({u}, {w})"
                    );
                }
            }
        }
    }

    #[test]
    fn adaptive_matches_exact_on_small_graphs() {
        // Below the initial sample size the adaptive loop must collapse to
        // the exact sweep, so the orders (and hence the labels) coincide.
        let g = graph(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let adaptive = TwoHopIndex::build_with(
            &g,
            &TwoHopConfig {
                coverage: CoverageEstimate::Adaptive { seed: 1 },
                parallel: false,
            },
        );
        let exact = TwoHopIndex::build(&g);
        assert_eq!(adaptive.landmark_order(), exact.landmark_order());
        assert_eq!(adaptive.label_entries(), exact.label_entries());
    }

    /// A randomized class-lifecycle step for patch tests: `g2` is `g1` with
    /// some rows retired (isolated), some born (appended or recycled), and
    /// some edges rewired among rows adjacent to the change.
    struct LifecycleCase {
        g1: LabeledGraph,
        g2: LabeledGraph,
        dead: Vec<u32>,
        dirty: Vec<u32>,
        born: Vec<u32>,
        still_dead: Vec<u32>,
    }

    /// Emulates the serving layer's class lifecycle on plain DAGs. The
    /// dirty set is derived exactly as the contract requires — any
    /// surviving row whose cone (in either graph) touches a changed row.
    fn random_lifecycle(rng: &mut StdRng) -> LifecycleCase {
        // Random DAG (edges point id-upward).
        let n1 = rng.gen_range(4..18usize);
        let mut edges1: Vec<(u32, u32)> = Vec::new();
        for u in 0..n1 as u32 {
            for v in (u + 1)..n1 as u32 {
                if rng.gen_bool(0.25) {
                    edges1.push((u, v));
                }
            }
        }
        let g1 = graph(n1, &edges1);

        // Retire some rows, append some, rewire a few edges.
        let dead: Vec<u32> = (0..n1 as u32).filter(|_| rng.gen_bool(0.2)).collect();
        let born_new = rng.gen_range(0..3usize);
        let n2 = n1 + born_new;
        let mut born: Vec<u32> = (n1 as u32..n2 as u32).collect();
        // Recycle about half of the dead ids.
        let mut still_dead: Vec<u32> = Vec::new();
        for &d in &dead {
            if rng.gen_bool(0.5) {
                born.push(d);
            } else {
                still_dead.push(d);
            }
        }
        let is_dead = |v: u32| still_dead.contains(&v);
        let mut edges2: Vec<(u32, u32)> = edges1
            .iter()
            .copied()
            .filter(|&(u, v)| {
                !dead.contains(&u) && !dead.contains(&v) // born-recycled rows restart empty
            })
            .collect();
        let mut rewired: Vec<u32> = Vec::new();
        for _ in 0..rng.gen_range(0..6) {
            let u = rng.gen_range(0..n2 as u32);
            let v = rng.gen_range(0..n2 as u32);
            let (u, v) = (u.min(v), u.max(v));
            if u == v || is_dead(u) || is_dead(v) {
                continue;
            }
            if let Some(pos) = edges2.iter().position(|&e| e == (u, v)) {
                edges2.swap_remove(pos);
            } else {
                edges2.push((u, v));
            }
            rewired.push(u);
            rewired.push(v);
        }
        let g2 = graph(n2, &edges2);

        // Changed rows: every dead/born id plus rewired endpoints.
        let mut changed: Vec<u32> = dead.iter().chain(born.iter()).copied().collect();
        changed.extend(rewired);
        changed.sort_unstable();
        changed.dedup();

        // Dirty: surviving rows whose cone touches a changed row in
        // either graph (brute force via BFS closures).
        let cone_touches = |g: &LabeledGraph, x: u32| -> bool {
            use qpgc_graph::traversal::{ancestors, descendants};
            if changed.contains(&x) {
                return true;
            }
            if x as usize >= g.node_count() {
                return false;
            }
            descendants(g, NodeId(x))
                .into_iter()
                .chain(ancestors(g, NodeId(x)))
                .any(|y| changed.contains(&y.0))
        };
        let dirty: Vec<u32> = (0..n2 as u32)
            .filter(|&x| !dead.contains(&x) && !born.contains(&x))
            .filter(|&x| cone_touches(&g1, x) || cone_touches(&g2, x))
            .collect();

        LifecycleCase {
            g1,
            g2,
            dead,
            dirty,
            born,
            still_dead,
        }
    }

    /// The patched index must answer like BFS on `g2` for all pairs.
    #[test]
    fn patched_index_is_query_equivalent_to_rebuild() {
        let mut rng = StdRng::seed_from_u64(97);
        for case in 0..60 {
            let c = random_lifecycle(&mut rng);
            let n2 = c.g2.node_count();
            let idx1 = TwoHopIndex::build(&c.g1);
            let patched = idx1.patch(&c.g2, &c.dead, &c.dirty, &c.born);
            assert_eq!(
                patched.retired_rank_count(),
                c.dead.len(),
                "case {case}: tombstone count"
            );
            assert_eq!(
                patched.live_rank_count(),
                n2 - c.still_dead.len(),
                "case {case}: live rank count"
            );
            for u in c.g2.nodes() {
                for w in c.g2.nodes() {
                    assert_eq!(
                        patched.query(u, w),
                        bfs_reachable(&c.g2, u, w),
                        "case {case}: patched answer differs for ({u}, {w})"
                    );
                }
            }
        }
    }

    /// Concurrent re-labeling must produce the exact same label lists as
    /// the sequential path — not just query-equivalent ones. The frozen
    /// base plus rank-order commit makes this hold by construction; this
    /// pins it over seeded lifecycle streams at 1/2/4 workers.
    #[test]
    fn parallel_patch_is_bit_identical_to_sequential() {
        let mut rng = StdRng::seed_from_u64(4242);
        for case in 0..40 {
            let c = random_lifecycle(&mut rng);
            let idx1 = TwoHopIndex::build(&c.g1);
            let sequential = idx1.patch_with(&c.g2, &c.dead, &c.dirty, &c.born, 1);
            for threads in [2, 4] {
                let parallel = idx1.patch_with(&c.g2, &c.dead, &c.dirty, &c.born, threads);
                assert_eq!(
                    sequential.out_labels, parallel.out_labels,
                    "case {case}, threads {threads}: out labels"
                );
                assert_eq!(
                    sequential.in_labels, parallel.in_labels,
                    "case {case}, threads {threads}: in labels"
                );
                assert_eq!(
                    sequential.landmark_of_rank, parallel.landmark_of_rank,
                    "case {case}, threads {threads}: rank map"
                );
            }
        }
    }

    #[test]
    fn patch_with_no_changes_is_identity() {
        let g = graph(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let idx = TwoHopIndex::build(&g);
        let patched = idx.patch(&g, &[], &[], &[]);
        assert_eq!(patched.out_labels, idx.out_labels);
        assert_eq!(patched.in_labels, idx.in_labels);
        assert_eq!(patched.landmark_of_rank, idx.landmark_of_rank);
        assert_eq!(patched.retired_rank_count(), 0);
    }

    #[test]
    fn repeated_patches_accumulate_tombstones() {
        // Chain 0 -> 1 -> 2; retire 2, then retire 1: two tombstones, and
        // queries keep tracking the shrinking graph.
        let g0 = graph(3, &[(0, 1), (1, 2)]);
        let g1 = graph(3, &[(0, 1)]);
        let g2 = graph(3, &[]);
        let idx0 = TwoHopIndex::build(&g0);
        let idx1 = idx0.patch(&g1, &[2], &[0, 1], &[]);
        assert!(idx1.query(NodeId(0), NodeId(1)));
        assert!(!idx1.query(NodeId(1), NodeId(2)));
        let idx2 = idx1.patch(&g2, &[1], &[0], &[]);
        assert!(!idx2.query(NodeId(0), NodeId(1)));
        assert_eq!(idx2.retired_rank_count(), 2);
        assert_eq!(idx2.live_rank_count(), 1);
    }

    #[test]
    fn rank_labels_never_exceed_legacy_node_id_labels() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut strictly_smaller_somewhere = false;
        for _ in 0..25 {
            let g = random_graph(&mut rng);
            let ranked = TwoHopIndex::build(&g);
            let legacy = TwoHopIndex::build_with_node_id_labels(&g);
            assert!(
                ranked.label_entries() <= legacy.label_entries(),
                "rank fix grew the index: {} > {}",
                ranked.label_entries(),
                legacy.label_entries()
            );
            strictly_smaller_somewhere |= ranked.label_entries() < legacy.label_entries();
            // Both are exact — the fix changes size, never answers.
            for u in g.nodes() {
                for w in g.nodes() {
                    assert_eq!(ranked.query(u, w), legacy.query(u, w));
                }
            }
        }
        assert!(
            strictly_smaller_somewhere,
            "pruning fix never pruned anything across 25 random graphs"
        );
    }

    #[test]
    fn rank_mapping_roundtrips() {
        let g = graph(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let idx = TwoHopIndex::build(&g);
        assert_eq!(idx.landmark_order().len(), 5);
        let mut seen: Vec<u32> = idx.landmark_order().iter().map(|n| n.0).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        for rank in 0..5u32 {
            assert_eq!(idx.landmark(rank), idx.landmark_order()[rank as usize]);
        }
    }

    #[test]
    fn size_accounting() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let idx = TwoHopIndex::build(&g);
        assert!(idx.label_entries() > 0);
        // The outer spines alone account for 2 · n inner-Vec headers plus
        // the rank map; entries come on top.
        let spine_floor =
            2 * 4 * std::mem::size_of::<Vec<u32>>() + 4 * std::mem::size_of::<NodeId>();
        assert!(
            idx.heap_bytes() >= spine_floor + idx.label_entries() * std::mem::size_of::<u32>(),
            "heap_bytes {} below spine floor {spine_floor} + entries",
            idx.heap_bytes()
        );
    }

    #[test]
    fn empty_graph() {
        let g = LabeledGraph::new();
        let idx = TwoHopIndex::build(&g);
        assert_eq!(idx.label_entries(), 0);
    }

    #[test]
    fn works_on_csr_snapshots() {
        let g = graph(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let csr = g.freeze();
        let idx = TwoHopIndex::build(&csr);
        for u in g.nodes() {
            for w in g.nodes() {
                assert_eq!(idx.query(u, w), bfs_reachable(&g, u, w));
            }
        }
    }
}
