//! The reachability equivalence relation `Re` (Section 3.1).
//!
//! Two nodes `u`, `v` are reachability equivalent iff they have the same set
//! of *proper* ancestors and the same set of *proper* descendants, where
//! "proper" means via non-empty paths (the paper's Example 2: two sibling
//! `BSA` nodes with identical ancestors and descendants are equivalent even
//! though neither reaches the other).
//!
//! ## How it is computed
//!
//! Descendant and ancestor sets are constant across a strongly connected
//! component, so the relation is computed entirely on the SCC condensation:
//!
//! 1. compute the condensation `Gscc` (Tarjan);
//! 2. for every SCC `C`, its members' proper descendant set is
//!    `members(desc_scc(C)) ∪ members(C if C is cyclic)` — likewise for
//!    ancestors;
//! 3. group SCCs with identical `(descendant, ancestor)` signatures.
//!
//! Step 3 compares bit sets over SCC ids. To keep memory bounded on large
//! graphs the signature comparison is chunked: the partition is refined one
//! block of `chunk` columns at a time, which yields exactly the same final
//! partition as comparing full signatures.
//!
//! ## Structural facts used elsewhere
//!
//! * The quotient of `Re` is a DAG (mutually reachable classes would have
//!   merged), so `compressR` can transitively reduce it.
//! * Every equivalence class is either exactly one *cyclic* SCC, or a set of
//!   acyclic singleton SCCs. The per-class [`ReachPartition::cyclic`] flag
//!   records which, and is what answers the "same class, different node"
//!   corner case of query evaluation.

use std::collections::HashMap;
use std::ops::Range;

use qpgc_graph::reach_sets::{DagReach, DEFAULT_CHUNK};
use qpgc_graph::scc::Condensation;
use qpgc_graph::{CsrGraph, FixedBitSet, GraphView, LabeledGraph, NodeId};

/// One refinement step of the chunked signature comparison: splits the
/// current SCC blocks (`group`) by the `(block, descendants, ancestors)`
/// signature restricted to this chunk's columns. Purely sequential and
/// deterministic — the parallelism lives in producing `desc`/`anc`, never
/// here.
fn refine_chunk(
    cols: &Range<usize>,
    desc: &[FixedBitSet],
    anc: &[FixedBitSet],
    cyclic_scc: &[bool],
    group: &mut Vec<u32>,
) {
    let c = group.len();
    let mut key_to_group: HashMap<(u32, Vec<u64>, Vec<u64>), u32> = HashMap::new();
    let mut next = 0u32;
    let mut new_group = vec![0u32; c];
    for scc in 0..c {
        let mut d = desc[scc].clone();
        let mut a = anc[scc].clone();
        // A cyclic SCC reaches (and is reached by) its own members via
        // non-empty paths: include the self column when it falls in this
        // chunk. (Acyclic SCCs must *not* include it — that is exactly
        // what distinguishes a cyclic singleton from an acyclic one.)
        if cyclic_scc[scc] && scc >= cols.start && scc < cols.end {
            d.insert(scc - cols.start);
            a.insert(scc - cols.start);
        }
        let key = (group[scc], d.as_blocks().to_vec(), a.as_blocks().to_vec());
        let id = *key_to_group.entry(key).or_insert_with(|| {
            let id = next;
            next += 1;
            id
        });
        new_group[scc] = id;
    }
    *group = new_group;
}

/// The partition of `V` induced by the reachability equivalence relation.
#[derive(Clone, Debug)]
pub struct ReachPartition {
    /// `class_of[v]` is the class id of node `v`. Class ids are dense,
    /// `0..class_count()`.
    pub class_of: Vec<u32>,
    /// `members[c]` lists the nodes of class `c` (in ascending node order).
    pub members: Vec<Vec<NodeId>>,
    /// `cyclic[c]` is `true` iff class `c` is a cyclic SCC, i.e. iff its
    /// members reach themselves via non-empty paths.
    pub cyclic: Vec<bool>,
}

impl ReachPartition {
    /// Number of equivalence classes.
    pub fn class_count(&self) -> usize {
        self.members.len()
    }

    /// The class id of node `v`.
    pub fn class_of(&self, v: NodeId) -> u32 {
        self.class_of[v.index()]
    }

    /// `true` iff `u` and `v` are reachability equivalent.
    pub fn equivalent(&self, u: NodeId, v: NodeId) -> bool {
        self.class_of(u) == self.class_of(v)
    }

    /// A canonical representation of the partition (sorted member lists,
    /// sorted by smallest member), used to compare partitions produced by
    /// different algorithms (batch vs incremental) in tests.
    pub fn canonical(&self) -> Vec<Vec<u32>> {
        let mut classes: Vec<Vec<u32>> = self
            .members
            .iter()
            .map(|m| {
                let mut v: Vec<u32> = m.iter().map(|n| n.0).collect();
                v.sort_unstable();
                v
            })
            .collect();
        classes.sort();
        classes
    }
}

/// Computes the reachability equivalence partition of `g` with the default
/// signature chunk width.
pub fn reachability_partition(g: &LabeledGraph) -> ReachPartition {
    reachability_partition_with_chunk(g, DEFAULT_CHUNK)
}

/// [`reachability_partition`] over a frozen CSR snapshot — the condensation
/// and the chunked closure sweeps all run over contiguous CSR slices.
pub fn reachability_partition_csr(g: &CsrGraph) -> ReachPartition {
    reachability_partition_with_chunk(g, DEFAULT_CHUNK)
}

/// [`reachability_partition`] with an explicit worker count: when
/// `threads > 1` the two closure sweeps of every signature chunk
/// (descendants and ancestors — independent of each other and of the
/// running refinement) execute on two scoped threads, the same
/// forward/backward split the 2-hop builder uses. Both sweeps produce
/// exactly the sequential bit sets and the refinement itself is unchanged,
/// so the partition is **bit-identical** at every thread count.
pub fn reachability_partition_threads(g: &LabeledGraph, threads: usize) -> ReachPartition {
    reachability_partition_with_chunk_threads(g, DEFAULT_CHUNK, threads)
}

/// [`reachability_partition`] with an explicit chunk width (exposed for
/// tests and the ablation benchmarks). Generic over [`GraphView`]: accepts
/// the mutable graph or a CSR snapshot.
pub fn reachability_partition_with_chunk<G: GraphView>(g: &G, chunk: usize) -> ReachPartition {
    reachability_partition_with_chunk_threads(g, chunk, 1)
}

/// [`reachability_partition_with_chunk`] with the fwd/bwd sweep split of
/// [`reachability_partition_threads`].
pub fn reachability_partition_with_chunk_threads<G: GraphView>(
    g: &G,
    chunk: usize,
    threads: usize,
) -> ReachPartition {
    let cond = Condensation::of(g);
    let dag = DagReach::from_condensation(&cond);
    let c = cond.component_count();

    let cyclic_scc: Vec<bool> = cond.cyclic_flags(g);

    // Refine a partition of SCCs chunk by chunk. `group[scc]` is the current
    // block id; after all chunks the blocks are exactly the groups of SCCs
    // with identical (descendant, ancestor) signatures.
    let mut group: Vec<u32> = vec![0; c];
    // Cyclic SCCs include themselves in their own closure; fold that into
    // the initial grouping so the chunk sweep only has to compare
    // condensation-level closures.
    for (i, &cyc) in cyclic_scc.iter().enumerate() {
        if cyc {
            group[i] = 1;
        }
    }

    // The chunk sweeps are independent of each other and of the running
    // refinement, so with `threads > 1` up to `threads` chunks sweep
    // concurrently on scoped workers (each worker runs both directions of
    // its chunk); a lone chunk in a window falls back to the PR 8
    // forward/backward split so two workers still apply. The refinement
    // below always consumes the sweeps in chunk order, and every sweep
    // produces exactly the sequential bit sets, so the partition is
    // bit-identical at every thread count.
    let all_chunks = dag.chunks(chunk);
    for window in all_chunks.chunks(threads.max(1)) {
        let sweeps: Vec<(Vec<FixedBitSet>, Vec<FixedBitSet>)> = if window.len() > 1 {
            let dag = &dag;
            std::thread::scope(|s| {
                let handles: Vec<_> = window
                    .iter()
                    .map(|cols| {
                        let cols = cols.clone();
                        s.spawn(move || {
                            (
                                dag.descendants_chunk(cols.clone()),
                                dag.ancestors_chunk(cols),
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("chunk sweep panicked"))
                    .collect()
            })
        } else if threads > 1 {
            window
                .iter()
                .map(|cols| {
                    std::thread::scope(|s| {
                        let d = s.spawn(|| dag.descendants_chunk(cols.clone()));
                        let a = s.spawn(|| dag.ancestors_chunk(cols.clone()));
                        (
                            d.join().expect("descendants sweep panicked"),
                            a.join().expect("ancestors sweep panicked"),
                        )
                    })
                })
                .collect()
        } else {
            window
                .iter()
                .map(|cols| {
                    (
                        dag.descendants_chunk(cols.clone()),
                        dag.ancestors_chunk(cols.clone()),
                    )
                })
                .collect()
        };
        for (cols, (desc, anc)) in window.iter().zip(sweeps) {
            refine_chunk(cols, &desc, &anc, &cyclic_scc, &mut group);
        }
    }

    // Renumber groups densely in first-seen order and expand to node level.
    let mut remap: HashMap<u32, u32> = HashMap::new();
    let mut class_of = vec![0u32; g.node_count()];
    let mut members: Vec<Vec<NodeId>> = Vec::new();
    let mut cyclic: Vec<bool> = Vec::new();
    for v in g.nodes() {
        let scc = cond.component_of(v) as usize;
        let gid = group[scc];
        let class = *remap.entry(gid).or_insert_with(|| {
            members.push(Vec::new());
            cyclic.push(false);
            (members.len() - 1) as u32
        });
        class_of[v.index()] = class;
        members[class as usize].push(v);
        if cyclic_scc[scc] {
            cyclic[class as usize] = true;
        }
    }

    ReachPartition {
        class_of,
        members,
        cyclic,
    }
}

/// A slow but obviously-correct reference implementation used by tests and
/// property tests: computes full node-level proper ancestor/descendant sets
/// and groups nodes by them.
pub fn reference_partition<G: GraphView>(g: &G) -> ReachPartition {
    let (desc, anc) = qpgc_graph::reach_sets::node_closures(g);
    let mut key_to_class: HashMap<(Vec<u64>, Vec<u64>), u32> = HashMap::new();
    let mut class_of = vec![0u32; g.node_count()];
    let mut members: Vec<Vec<NodeId>> = Vec::new();
    let mut cyclic: Vec<bool> = Vec::new();
    for v in g.nodes() {
        let key = (
            desc[v.index()].as_blocks().to_vec(),
            anc[v.index()].as_blocks().to_vec(),
        );
        let class = *key_to_class.entry(key).or_insert_with(|| {
            members.push(Vec::new());
            cyclic.push(false);
            (members.len() - 1) as u32
        });
        class_of[v.index()] = class;
        members[class as usize].push(v);
        if desc[v.index()].contains(v.index()) {
            cyclic[class as usize] = true;
        }
    }
    ReachPartition {
        class_of,
        members,
        cyclic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(u32, u32)]) -> LabeledGraph {
        let mut g = LabeledGraph::new();
        for _ in 0..n {
            g.add_node_with_label("X");
        }
        for &(u, v) in edges {
            g.add_edge(NodeId(u), NodeId(v));
        }
        g
    }

    #[test]
    fn diamond_merges_middle_nodes() {
        // 0 -> {1,2} -> 3 : nodes 1 and 2 are equivalent.
        let g = graph(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let p = reachability_partition(&g);
        assert_eq!(p.class_count(), 3);
        assert!(p.equivalent(NodeId(1), NodeId(2)));
        assert!(!p.equivalent(NodeId(0), NodeId(1)));
        assert!(!p.cyclic[p.class_of(NodeId(1)) as usize]);
    }

    #[test]
    fn scc_members_are_equivalent_and_cyclic() {
        let g = graph(4, &[(0, 1), (1, 0), (1, 2), (2, 3)]);
        let p = reachability_partition(&g);
        assert!(p.equivalent(NodeId(0), NodeId(1)));
        assert!(p.cyclic[p.class_of(NodeId(0)) as usize]);
        assert!(!p.cyclic[p.class_of(NodeId(3)) as usize]);
    }

    #[test]
    fn different_descendants_not_equivalent() {
        // The paper's FA3/FA4 example: 0 -> 2, 1 -> 2, but 0 -> 3 as well.
        let g = graph(4, &[(0, 2), (1, 2), (0, 3)]);
        let p = reachability_partition(&g);
        assert!(!p.equivalent(NodeId(0), NodeId(1)));
    }

    #[test]
    fn siblings_with_same_closure_are_equivalent_without_edge_between_them() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3: nodes 1, 2 equivalent though
        // neither reaches the other (the BSA1/BSA2 situation of Example 2).
        let g = graph(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let p = reachability_partition(&g);
        assert!(p.equivalent(NodeId(1), NodeId(2)));
    }

    #[test]
    fn cyclic_singleton_differs_from_acyclic_singleton() {
        // 0 -> 1 (plain), 0 -> 2 where 2 has a self loop; 1 and 2 both have
        // ancestor {0} and no other descendants, but 2 is its own descendant.
        let g = graph(3, &[(0, 1), (0, 2), (2, 2)]);
        let p = reachability_partition(&g);
        assert!(!p.equivalent(NodeId(1), NodeId(2)));
        assert!(p.cyclic[p.class_of(NodeId(2)) as usize]);
    }

    #[test]
    fn isolated_nodes_are_equivalent() {
        let g = graph(3, &[(0, 1)]);
        // node 2 is isolated; nodes 0,1,2 all have distinct closures except…
        let p = reachability_partition(&g);
        assert_eq!(p.class_count(), 3);
        let g2 = graph(4, &[(0, 1)]);
        // two isolated nodes share (∅, ∅) closures.
        let p2 = reachability_partition(&g2);
        assert!(p2.equivalent(NodeId(2), NodeId(3)));
    }

    #[test]
    fn chunked_matches_unchunked() {
        let edges = [
            (0, 1),
            (0, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (4, 3),
            (5, 0),
            (5, 6),
            (6, 1),
            (7, 7),
            (8, 3),
        ];
        let g = graph(9, &edges);
        let full = reachability_partition_with_chunk(&g, 1024);
        let tiny = reachability_partition_with_chunk(&g, 1);
        assert_eq!(full.canonical(), tiny.canonical());
    }

    #[test]
    fn matches_reference_on_examples() {
        let cases: Vec<(usize, Vec<(u32, u32)>)> = vec![
            (4, vec![(0, 1), (0, 2), (1, 3), (2, 3)]),
            (5, vec![(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]),
            (6, vec![(0, 1), (0, 2), (3, 1), (3, 2), (1, 4), (2, 5)]),
            (3, vec![]),
            (4, vec![(0, 0), (1, 1), (2, 3)]),
        ];
        for (n, edges) in cases {
            let g = graph(n, &edges);
            let fast = reachability_partition(&g);
            let slow = reference_partition(&g);
            assert_eq!(fast.canonical(), slow.canonical(), "edges {edges:?}");
        }
    }

    #[test]
    fn paper_example_recommendation_network() {
        // A simplified version of Fig. 2: BSA1/BSA2 both point at MSA and FA;
        // they are reachability equivalent.
        let mut g = LabeledGraph::new();
        let bsa1 = g.add_node_with_label("BSA");
        let bsa2 = g.add_node_with_label("BSA");
        let msa = g.add_node_with_label("MSA");
        let fa = g.add_node_with_label("FA");
        let c = g.add_node_with_label("C");
        g.add_edge(bsa1, msa);
        g.add_edge(bsa1, fa);
        g.add_edge(bsa2, msa);
        g.add_edge(bsa2, fa);
        g.add_edge(fa, c);
        let p = reachability_partition(&g);
        assert!(p.equivalent(bsa1, bsa2));
        // Labels are irrelevant for reachability equivalence.
        assert!(!p.equivalent(msa, fa));
    }

    #[test]
    fn empty_graph() {
        let g = LabeledGraph::new();
        let p = reachability_partition(&g);
        assert_eq!(p.class_count(), 0);
        assert!(p.canonical().is_empty());
    }

    #[test]
    fn csr_path_matches_labeled_path() {
        let edges = [
            (0, 1),
            (0, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (4, 3),
            (5, 0),
            (7, 7),
            (8, 3),
        ];
        let g = graph(9, &edges);
        let on_labeled = reachability_partition(&g);
        let on_csr = reachability_partition_csr(&g.freeze());
        assert_eq!(on_labeled.canonical(), on_csr.canonical());
        assert_eq!(on_labeled.cyclic.len(), on_csr.cyclic.len());
    }
}
