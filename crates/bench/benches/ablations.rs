//! Ablation benchmarks for the design choices called out in DESIGN.md §6:
//!
//! * transitive reduction of the quotient edges in `compressR` (on vs off);
//! * rank-stratified seeding of the bisimulation refinement (on vs off);
//! * chunk width of the reachability-signature sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpgc_generators::datasets::{dataset, pattern_dataset};
use qpgc_pattern::bisim::{bisimulation_partition, reference_bisimulation};
use qpgc_reach::compress::{compress_r, compress_r_with_chunk, compress_r_without_reduction};

fn ablation_transitive_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_transitive_reduction");
    group.sample_size(10);
    let g = dataset("socEpinions", 300, 0).expect("dataset");
    group.bench_function("with_reduction", |b| b.iter(|| compress_r(&g)));
    group.bench_function("without_reduction", |b| {
        b.iter(|| compress_r_without_reduction(&g))
    });
    group.finish();
}

fn ablation_rank_stratification(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_rank_stratification");
    group.sample_size(10);
    let g = pattern_dataset("Youtube", 300, 0).expect("dataset");
    group.bench_function("rank_seeded", |b| b.iter(|| bisimulation_partition(&g)));
    group.bench_function("label_seeded_only", |b| {
        b.iter(|| reference_bisimulation(&g))
    });
    group.finish();
}

fn ablation_chunk_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_signature_chunk_width");
    group.sample_size(10);
    let g = dataset("wikiVote", 100, 0).expect("dataset");
    for chunk in [256usize, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(chunk), &chunk, |b, &chunk| {
            b.iter(|| compress_r_with_chunk(&g, chunk))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_transitive_reduction,
    ablation_rank_stratification,
    ablation_chunk_width
);
criterion_main!(benches);
