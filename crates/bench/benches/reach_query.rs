//! Criterion counterpart of Fig. 12(a): BFS and bidirectional BFS
//! reachability queries evaluated on the original graph vs the compressed
//! graph, with identical, unmodified algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpgc_bench::harness::random_pairs;
use qpgc_generators::datasets::dataset;
use qpgc_graph::traversal::{bfs_reachable, bidirectional_reachable};
use qpgc_reach::compress::compress_r;

fn bench_reachability_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12a_reachability");
    group.sample_size(10);
    for name in ["P2P", "socEpinions"] {
        let g = dataset(name, 200, 0).expect("dataset");
        let rc = compress_r(&g);
        let pairs = random_pairs(&g, 100, 7);

        group.bench_with_input(BenchmarkId::new("BFS_on_G", name), &g, |b, g| {
            b.iter(|| {
                pairs
                    .iter()
                    .filter(|&&(u, v)| bfs_reachable(g, u, v))
                    .count()
            })
        });
        group.bench_with_input(BenchmarkId::new("BFS_on_Gr", name), &rc, |b, rc| {
            b.iter(|| {
                pairs
                    .iter()
                    .filter(|&&(u, v)| rc.query_with(u, v, bfs_reachable))
                    .count()
            })
        });
        group.bench_with_input(BenchmarkId::new("BIBFS_on_G", name), &g, |b, g| {
            b.iter(|| {
                pairs
                    .iter()
                    .filter(|&&(u, v)| bidirectional_reachable(g, u, v))
                    .count()
            })
        });
        group.bench_with_input(BenchmarkId::new("BIBFS_on_Gr", name), &rc, |b, rc| {
            b.iter(|| {
                pairs
                    .iter()
                    .filter(|&&(u, v)| rc.query_with(u, v, bidirectional_reachable))
                    .count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reachability_queries);
criterion_main!(benches);
