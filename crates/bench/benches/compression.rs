//! Criterion micro-benchmarks for the batch compression functions
//! (`compressR`, `compressB`, the `AHO` baseline) — the cost side of Exp-1
//! (Tables 1 and 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpgc_generators::datasets::{dataset, pattern_dataset};
use qpgc_pattern::compress::compress_b;
use qpgc_reach::aho::aho_reduction;
use qpgc_reach::compress::compress_r;

fn bench_compress_r(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_compressR");
    group.sample_size(10);
    for name in ["P2P", "wikiVote", "socEpinions"] {
        let g = dataset(name, 200, 0).expect("dataset");
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| compress_r(g))
        });
    }
    group.finish();
}

fn bench_aho(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_AHO_baseline");
    group.sample_size(10);
    for name in ["P2P", "wikiVote"] {
        let g = dataset(name, 200, 0).expect("dataset");
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| aho_reduction(g))
        });
    }
    group.finish();
}

fn bench_compress_b(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_compressB");
    group.sample_size(10);
    for name in ["California", "P2P", "Youtube"] {
        let g = pattern_dataset(name, 200, 0).expect("dataset");
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| compress_b(g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compress_r, bench_aho, bench_compress_b);
criterion_main!(benches);
