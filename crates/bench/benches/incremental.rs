//! Criterion counterpart of Figures 12(e)–12(h): incremental maintenance
//! versus recompression, and incremental matching versus
//! maintain-compression-then-match.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpgc_generators::datasets::{dataset, pattern_dataset};
use qpgc_generators::pattern_gen::{random_pattern, PatternGenConfig};
use qpgc_generators::updates::{insert_batch, mixed_batch};
use qpgc_pattern::bounded::bounded_match;
use qpgc_pattern::compress::compress_b;
use qpgc_pattern::inc_match::IncrementalMatch;
use qpgc_pattern::incremental::IncrementalPattern;
use qpgc_reach::compress::compress_r;
use qpgc_reach::incremental::IncrementalReach;

fn bench_inc_rcm(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12ef_incRCM");
    group.sample_size(10);
    let g0 = dataset("socEpinions", 300, 0).expect("dataset");
    for frac in [1usize, 5] {
        let size = g0.edge_count() * frac / 100;
        let batch = insert_batch(&g0, size, frac as u64);
        group.bench_with_input(
            BenchmarkId::new("incRCM", format!("{frac}%_insertions")),
            &batch,
            |b, batch| {
                b.iter_batched(
                    || (g0.clone(), IncrementalReach::new(&g0)),
                    |(mut g, mut inc)| inc.apply(&mut g, batch),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("compressR_from_scratch", format!("{frac}%_insertions")),
            &batch,
            |b, batch| {
                b.iter_batched(
                    || {
                        let mut g = g0.clone();
                        batch.apply_to(&mut g);
                        g
                    },
                    |g| compress_r(&g),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_inc_pcm(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12g_incPCM");
    group.sample_size(10);
    let g0 = pattern_dataset("Youtube", 300, 0).expect("dataset");
    let batch = mixed_batch(&g0, g0.edge_count() / 50, 3);

    group.bench_function("incPCM", |b| {
        b.iter_batched(
            || (g0.clone(), IncrementalPattern::new(&g0)),
            |(mut g, mut inc)| inc.apply(&mut g, &batch),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("IncBsim_one_by_one", |b| {
        b.iter_batched(
            || (g0.clone(), IncrementalPattern::new(&g0)),
            |(mut g, mut inc)| inc.apply_one_by_one(&mut g, &batch),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("compressB_from_scratch", |b| {
        b.iter_batched(
            || {
                let mut g = g0.clone();
                batch.apply_to(&mut g);
                g
            },
            |g| compress_b(&g),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_incremental_querying(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12h_incremental_querying");
    group.sample_size(10);
    let g0 = pattern_dataset("Citation", 300, 0).expect("dataset");
    let pattern = random_pattern(&g0, &PatternGenConfig::new(4, 4, 3, 11));
    let batch = mixed_batch(&g0, g0.edge_count() / 50, 9);

    group.bench_function("IncBMatch_on_G", |b| {
        b.iter_batched(
            || (g0.clone(), IncrementalMatch::new(&g0, pattern.clone())),
            |(mut g, mut inc)| {
                inc.apply(&mut g, &batch);
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("incPCM_plus_Match_on_Gr", |b| {
        b.iter_batched(
            || (g0.clone(), IncrementalPattern::new(&g0)),
            |(mut g, mut inc)| {
                inc.apply(&mut g, &batch);
                let compression = inc.to_compression();
                bounded_match(&compression.graph, &pattern).map(|m| compression.post_process(&m))
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_inc_rcm,
    bench_inc_pcm,
    bench_incremental_querying
);
criterion_main!(benches);
