//! Criterion counterpart of Figures 12(b)/12(c): bounded-simulation `Match`
//! on original vs compressed graphs, across pattern sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpgc_generators::pattern_gen::{random_pattern, PatternGenConfig};
use qpgc_generators::synthetic::{random_graph, SyntheticConfig};
use qpgc_pattern::bounded::bounded_match;
use qpgc_pattern::compress::compress_b;

fn bench_match(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12bc_match");
    group.sample_size(10);
    let g = random_graph(&SyntheticConfig::new(2_000, 17_000, 10, 5));
    let pc = compress_b(&g);

    for size in [3usize, 5, 8] {
        let pattern = random_pattern(&g, &PatternGenConfig::new(size, size, 3, size as u64));
        group.bench_with_input(
            BenchmarkId::new("Match_on_G", format!("({size},{size},3)")),
            &pattern,
            |b, p| b.iter(|| bounded_match(&g, p)),
        );
        group.bench_with_input(
            BenchmarkId::new("Match_on_Gr", format!("({size},{size},3)")),
            &pattern,
            |b, p| b.iter(|| bounded_match(&pc.graph, p).map(|m| pc.post_process(&m))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_match);
criterion_main!(benches);
