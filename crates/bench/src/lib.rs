//! # qpgc-bench
//!
//! The reproduction harness for the paper's evaluation (Section 6): one
//! experiment function per table and figure, shared by the `reproduce`
//! binary (which prints paper-style tables) and the Criterion
//! micro-benchmarks.
//!
//! Every experiment runs on the *emulated* datasets of `qpgc-generators`
//! (scaled-down stand-ins for the SNAP/CAIDA/ArnetMiner downloads the paper
//! used — see DESIGN.md §2), so absolute numbers differ from the paper; the
//! quantities compared in EXPERIMENTS.md are the relative ones the paper
//! reports (compression ratios, query-time reductions, crossover points).
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p qpgc-bench --bin reproduce -- all
//! ```
//!
//! or a single experiment, e.g. `… -- table1` or `… -- fig12e`. The
//! `QPGC_SCALE` environment variable controls the down-scaling factor of
//! the dataset emulations (default 100; smaller = bigger graphs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod perf;

pub use harness::{scale_from_env, ExperimentResult, Row};
pub use perf::{perf_snapshot, PerfSnapshot};
