//! Machine-readable perf snapshots (`BENCH_2.json`).
//!
//! From this PR onward the perf trajectory of the hot analysis paths is
//! recorded as JSON, one file per milestone (`BENCH_<n>.json` at the repo
//! root), so regressions and wins are diffable without re-reading PR
//! descriptions. The snapshot times every phase of the compression pipeline
//! on the citHepTh-scale emulated citation graph:
//!
//! * `build` — dataset generation (bulk sorted-dedup edge loading),
//! * `freeze` — [`LabeledGraph::freeze`] into the CSR snapshot,
//! * `bisim_baseline` — the pre-CSR per-round hash-table bisimulation,
//! * `bisim_csr` — the allocation-free worklist refinement over CSR,
//! * `compress_r` / `compress_b` — the two compression schemes over CSR,
//! * `query_eval` — 300 rewritten reachability queries answered on `Gr`.
//!
//! It also records, for every Table-1 dataset emulation, the heap footprint
//! of the mutable graph versus its CSR snapshot — the CSR number must be
//! strictly smaller on every dataset.
//!
//! Produce a snapshot with:
//!
//! ```text
//! cargo run --release -p qpgc_bench --bin bench_json -- --out BENCH_2.json
//! QPGC_SCALE=500 cargo run --release -p qpgc_bench --bin bench_json   # CI smoke
//! ```
//!
//! [`LabeledGraph::freeze`]: qpgc_graph::LabeledGraph::freeze

use std::time::Instant;

use qpgc_generators::datasets::{dataset, REACHABILITY_DATASETS};
use qpgc_graph::traversal::bfs_reachable;
use qpgc_pattern::bisim::{bisimulation_partition_baseline, bisimulation_partition_csr};
use qpgc_pattern::compress::compress_b_csr;
use qpgc_reach::compress::compress_r_csr;

use crate::harness::random_pairs;

/// Heap footprint of one dataset emulation in both representations.
#[derive(Clone, Debug)]
pub struct HeapRow {
    /// Dataset name (Table 1).
    pub name: String,
    /// Node count of the emulation.
    pub nodes: usize,
    /// Edge count of the emulation.
    pub edges: usize,
    /// `LabeledGraph::heap_bytes()`.
    pub labeled_bytes: usize,
    /// `CsrGraph::heap_bytes()` of the frozen snapshot.
    pub csr_bytes: usize,
}

/// One perf snapshot: per-phase wall-clock on the citHepTh-scale graph plus
/// the per-dataset heap comparison.
#[derive(Clone, Debug)]
pub struct PerfSnapshot {
    /// Dataset scale divisor (1 = original citHepTh size, ≈28k nodes).
    pub scale: usize,
    /// Phase-timing dataset name.
    pub dataset: String,
    /// Node count of the timed graph.
    pub nodes: usize,
    /// Edge count of the timed graph.
    pub edges: usize,
    /// `(phase name, milliseconds)` in pipeline order.
    pub phases_ms: Vec<(String, f64)>,
    /// `bisim_baseline / bisim_csr` wall-clock ratio (the ≥2× criterion).
    pub bisim_speedup: f64,
    /// Scale divisor the heap rows were generated at (`scale.max(10)` — the
    /// multi-million-node emulations stay affordable at full scale).
    pub heap_scale: usize,
    /// Heap comparison rows, one per Table-1 dataset.
    pub heap: Vec<HeapRow>,
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// Runs the snapshot at the given dataset scale (`1` = full citHepTh-scale,
/// the configuration recorded in the committed `BENCH_2.json`; CI smoke
/// runs use a large divisor). The heap sweep uses `scale.max(10)` so the
/// multi-million-node emulations stay affordable at full scale.
pub fn perf_snapshot(scale: usize) -> PerfSnapshot {
    let mut phases: Vec<(String, f64)> = Vec::new();

    let t = Instant::now();
    let g = dataset("citHepTh", scale, 0).expect("known dataset");
    phases.push(("build".into(), ms(t)));

    let t = Instant::now();
    let csr = g.freeze();
    phases.push(("freeze".into(), ms(t)));

    // Interleaved best-of-5 for the two bisimulation variants: the speedup
    // ratio is the acceptance-tracked number, single runs are noisy on
    // shared boxes, and interleaving keeps a load spike from penalizing
    // only one side.
    let mut bisim_baseline_ms = f64::INFINITY;
    let mut bisim_csr_ms = f64::INFINITY;
    let mut baseline = bisimulation_partition_baseline(&g);
    let mut fast = bisimulation_partition_csr(&csr);
    for _ in 0..5 {
        let t = Instant::now();
        baseline = bisimulation_partition_baseline(&g);
        bisim_baseline_ms = bisim_baseline_ms.min(ms(t));
        let t = Instant::now();
        fast = bisimulation_partition_csr(&csr);
        bisim_csr_ms = bisim_csr_ms.min(ms(t));
    }
    phases.push(("bisim_baseline".into(), bisim_baseline_ms));
    phases.push(("bisim_csr".into(), bisim_csr_ms));
    assert_eq!(
        baseline.class_count(),
        fast.class_count(),
        "CSR and baseline bisimulation disagree"
    );

    let t = Instant::now();
    let rc = compress_r_csr(&csr);
    phases.push(("compress_r".into(), ms(t)));

    let t = Instant::now();
    let _pc = compress_b_csr(&csr);
    phases.push(("compress_b".into(), ms(t)));

    let pairs = random_pairs(&g, 300, 42);
    let t = Instant::now();
    let mut hits = 0usize;
    for &(a, b) in &pairs {
        if rc.query_with(a, b, bfs_reachable) {
            hits += 1;
        }
    }
    let _ = hits;
    phases.push(("query_eval".into(), ms(t)));

    let heap_scale = scale.max(10);
    let heap = REACHABILITY_DATASETS
        .iter()
        .map(|spec| {
            let g = spec.generate(heap_scale, 0);
            let csr = g.freeze();
            HeapRow {
                name: spec.name.to_string(),
                nodes: g.node_count(),
                edges: g.edge_count(),
                labeled_bytes: g.heap_bytes(),
                csr_bytes: csr.heap_bytes(),
            }
        })
        .collect();

    PerfSnapshot {
        scale,
        dataset: "citHepTh".into(),
        nodes: g.node_count(),
        edges: g.edge_count(),
        phases_ms: phases,
        bisim_speedup: bisim_baseline_ms / bisim_csr_ms.max(1e-9),
        heap_scale,
        heap,
    }
}

impl PerfSnapshot {
    /// Serializes the snapshot as pretty-printed JSON (hand-rolled — the
    /// container has no serde; all strings involved are plain ASCII
    /// identifiers).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"qpgc-perf-snapshot-v1\",\n");
        out.push_str(&format!("  \"scale\": {},\n", self.scale));
        out.push_str(&format!("  \"dataset\": \"{}\",\n", self.dataset));
        out.push_str(&format!("  \"nodes\": {},\n", self.nodes));
        out.push_str(&format!("  \"edges\": {},\n", self.edges));
        out.push_str("  \"phases_ms\": {\n");
        for (i, (name, v)) in self.phases_ms.iter().enumerate() {
            let comma = if i + 1 == self.phases_ms.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!("    \"{name}\": {v:.3}{comma}\n"));
        }
        out.push_str("  },\n");
        out.push_str(&format!(
            "  \"bisim_speedup\": {:.3},\n",
            self.bisim_speedup
        ));
        out.push_str(&format!("  \"heap_scale\": {},\n", self.heap_scale));
        out.push_str("  \"heap_bytes\": [\n");
        for (i, row) in self.heap.iter().enumerate() {
            let comma = if i + 1 == self.heap.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"dataset\": \"{}\", \"nodes\": {}, \"edges\": {}, \"labeled\": {}, \"csr\": {}}}{comma}\n",
                row.name, row.nodes, row.edges, row.labeled_bytes, row.csr_bytes
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One shared tiny-scale snapshot run covers the phase list, the JSON
    // shape, and the heap invariant — the pipeline is the expensive part.
    #[test]
    fn snapshot_runs_serializes_and_csr_heap_is_strictly_smaller() {
        let snap = perf_snapshot(400);
        assert_eq!(snap.dataset, "citHepTh");
        assert!(snap.nodes >= 50);
        let names: Vec<&str> = snap.phases_ms.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "build",
                "freeze",
                "bisim_baseline",
                "bisim_csr",
                "compress_r",
                "compress_b",
                "query_eval"
            ]
        );
        assert!(snap.phases_ms.iter().all(|&(_, v)| v >= 0.0));
        assert!(snap.bisim_speedup > 0.0);
        assert_eq!(snap.heap_scale, 400);
        let json = snap.to_json();
        for key in [
            "\"schema\"",
            "\"phases_ms\"",
            "\"bisim_csr\"",
            "\"bisim_speedup\"",
            "\"heap_scale\"",
            "\"heap_bytes\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // The acceptance-tracked heap invariant: CSR strictly smaller than
        // the mutable representation on every Table-1 dataset.
        assert_eq!(snap.heap.len(), REACHABILITY_DATASETS.len());
        for row in &snap.heap {
            assert!(
                row.csr_bytes < row.labeled_bytes,
                "{}: csr {} >= labeled {}",
                row.name,
                row.csr_bytes,
                row.labeled_bytes
            );
        }
    }
}
