//! Machine-readable perf snapshots (`BENCH_<n>.json`).
//!
//! From PR 2 onward the perf trajectory of the hot analysis paths is
//! recorded as JSON, one file per milestone (`BENCH_<n>.json` at the repo
//! root), so regressions and wins are diffable without re-reading PR
//! descriptions. The snapshot times every phase of the compression pipeline
//! on the citHepTh-scale emulated citation graph:
//!
//! * `build` — dataset generation (bulk sorted-dedup edge loading),
//! * `freeze` — [`LabeledGraph::freeze`] into the CSR snapshot,
//! * `bisim_baseline` — the pre-CSR per-round hash-table bisimulation,
//! * `bisim_csr` — the allocation-free worklist refinement over CSR,
//! * `compress_r` / `compress_b` — the two compression schemes over CSR,
//! * `query_eval` — 300 rewritten reachability queries answered on `Gr`.
//!
//! It also records, for every Table-1 dataset emulation, the heap footprint
//! of the mutable graph versus its CSR snapshot — the CSR number must be
//! strictly smaller on every dataset.
//!
//! Since PR 3 (`BENCH_3.json`, schema v2) two more sections track the
//! serving layer:
//!
//! * `serve` — bulk reachability-query throughput through a
//!   [`qpgc_serve::CompressedStore`] snapshot of the largest emulated
//!   dataset (wikiTalk), single- vs multi-threaded;
//! * `two_hop_label_entries` — 2-hop index size (label entries) with the
//!   legacy node-id labels versus the rank labels, per Fig. 12(d) dataset,
//!   over both `G` and `Gr` — the before/after record of the rank-label
//!   pruning fix.
//!
//! Since PR 4 (`BENCH_4.json`, schema v3 — a superset of v2) a further
//! section tracks incremental snapshot construction:
//!
//! * `snapshot_incremental` — seeded **cone-local** update streams (mixed
//!   insertions and deletions between small-reachability-cone endpoints,
//!   each batch 0.1 % of the dataset's edges — the localized regime the
//!   paper's incremental-maintenance results target) driven through two
//!   stores: one with `damage_threshold = 0` (every batch rebuilds the
//!   snapshot from scratch) and one with patching enabled. Per dataset the
//!   row records both **publication** wall-clocks
//!   (`ApplyReport::publish_ms` — the incremental maintenance of the
//!   compressions costs the same on both sides and is excluded), the
//!   speedup, how many batches actually took the patched path, and the
//!   final snapshot heap on both sides; the two stores' final snapshots
//!   are differentially checked against each other before the row is
//!   emitted.
//!
//! Since PR 5 (`BENCH_5.json`, **schema v4** — a superset of v3) the
//! `snapshot_incremental` section also carries rows with
//! `serve_patterns: true`: both stores additionally maintain and serve the
//! pattern preserving compression over labeled Table 2 emulations, so the
//! publication wall-clocks compare re-materializing the pattern quotient
//! every batch against the delta path (`Arc`-shared when the bisimulation
//! partition is untouched, row-patched `PatternView` below the damage
//! gate). Each row records `serve_patterns` and how many publications
//! row-patched the pattern view (`pattern_patched_batches`), and the two
//! stores' final pattern answers are differentially checked alongside the
//! reachability sample.
//!
//! Since PR 6 (`BENCH_6.json`, **schema v5** — a superset of v4) a
//! `store_sharding` section tracks the multi-writer router:
//!
//! * `throughput` rows apply the same pre-generated cone-local update
//!   stream through [`qpgc_serve::ShardedStore`]s of 1, 2, and 4 shards,
//!   recording per `shard_count` the initial `cross_edges` under that
//!   partition, the final cut's boundary-vertex count, total apply
//!   wall-clock, `updates_per_sec`, and the summed
//!   `ApplyReport::publish_ms` (slowest concurrent shard publication plus
//!   the watermark bump). Every final cut is differentially checked
//!   against a single [`CompressedStore`] that replayed the same stream.
//! * `latency` rows split a query sample on the 4-shard store by whether
//!   the endpoints share a shard (`cross_shard`): intra-shard queries are
//!   answered by one shard snapshot, cross-shard queries compose through
//!   the boundary summary — the overhead of composition is the recorded
//!   number.
//!
//! Since PR 7 (`BENCH_7.json`, **schema v6** — a superset of v5) a
//! `robustness` section prices the fault-tolerant apply pipeline:
//!
//! * per dataset (citHepTh and wikiTalk emulations), the wall-clock of the
//!   **guard work** the pipeline added to the no-fault path — per-batch
//!   validation plus the rollback-inverse normalization — measured in
//!   isolation and reported as `overhead_pct` of the full apply stream
//!   (target: < 3 %);
//! * the same stream with the write-behind [`qpgc_serve::UpdateLog`]
//!   attached (`logged_ms`), and crash-recovery **replay throughput**
//!   (`replay_batches_per_sec`) — `recover_from_log` rebuilding the store
//!   from the log, differentially spot-checked against the live store.
//!
//! Since PR 8 (`BENCH_8.json`, **schema v7** — a superset of v6) two
//! sections track the self-tuning publication gate and the parallel
//! maintenance paths:
//!
//! * `adaptive_gate` — the same cone-local streams driven through three
//!   stores differing only in [`qpgc_serve::GateMode`]: `AlwaysPatch` and
//!   `AlwaysRebuild` give the per-batch cost of both paths (the offline
//!   optimum is their per-batch minimum), and the `Adaptive` store's
//!   recorded [`qpgc_serve::GateDecision`]s are scored against that
//!   optimum. Per row: total publication under all three modes, the
//!   offline-optimal total, warmup batch count, post-warmup agreement
//!   percentage, and the per-side patch/rebuild routing counts — no
//!   hand-set threshold anywhere.
//! * `parallel_maintenance` — wall-clock of the two rebuild kernels the
//!   publication path routes to, at 1, 2, and 4 threads: `refine`
//!   (worklist-partitioned bisimulation refinement over a labeled Table 2
//!   emulation) and `relabel` (frozen-base scoped 2-hop re-labeling with
//!   every landmark dirty over the citHepTh quotient). Both are
//!   bit-identical to sequential by construction; the speedup column is
//!   the point, and its assertion is `QPGC_TIMING_TESTS`-gated like every
//!   other wall-clock claim.
//!
//! Since PR 9 (`BENCH_9.json`, **schema v8** — a superset of v7) two
//! sections track the succinct snapshot backend:
//!
//! * `succinct_snapshot` — every Table-1 quotient packed both ways
//!   ([`qpgc_serve::SnapshotFormat::Plain`] vs `Succinct`): heap bytes and
//!   ratio (the ≤ 0.5× criterion), packed bits per quotient edge, and
//!   point-query wall-clock through `Snapshot::reachable` on both stores
//!   (the ≤ 3× criterion), answers asserted identical pair-by-pair.
//! * `succinct_boot` — a logged update stream with a snapshot file saved
//!   mid-stream: on-disk size, `save_snapshot` / `load_snapshot`
//!   wall-clock (load is the time-to-first-answer a booting replica
//!   pays), `boot_from_snapshot` end-to-end (load + one recompress +
//!   log-tail replay) vs `recover_from_log` full-history replay, the
//!   booted store differentially checked against the live one.
//!
//! Produce a snapshot with:
//!
//! ```text
//! cargo run --release -p qpgc_bench --bin bench_json -- --out BENCH_9.json
//! QPGC_SCALE=500 cargo run --release -p qpgc_bench --bin bench_json   # CI smoke
//! cargo run --release -p qpgc_bench --bin bench_json -- --compare BENCH_8.json
//! ```
//!
//! `--compare` prints a per-phase regression table against a previously
//! committed snapshot (the ROADMAP's compare-against-previous convention).
//!
//! [`LabeledGraph::freeze`]: qpgc_graph::LabeledGraph::freeze

use std::fmt::Write as _;
use std::time::Instant;

use qpgc_generators::datasets::{dataset, pattern_dataset, FIG12D_DATASETS, REACHABILITY_DATASETS};
use qpgc_generators::updates::local_batch;
use qpgc_graph::partition::boundary_edges;
use qpgc_graph::traversal::bfs_reachable;
use qpgc_graph::{NodePartition, UpdateBatch};
use qpgc_pattern::bisim::{
    bisimulation_partition_baseline, bisimulation_partition_csr, bisimulation_partition_threads,
};
use qpgc_pattern::compress::compress_b_csr;
use qpgc_pattern::pattern::Pattern;
use qpgc_reach::compress::{compress_r, compress_r_csr};
use qpgc_reach::two_hop::{CoverageEstimate, TwoHopConfig, TwoHopIndex};
use qpgc_serve::{
    bulk_reachable, ApplyPath, ApplyReport, CompressedStore, GateMode, ShardedStore,
    SnapshotFormat, StoreConfig,
};

use crate::harness::random_pairs;

/// Heap footprint of one dataset emulation in both representations.
#[derive(Clone, Debug)]
pub struct HeapRow {
    /// Dataset name (Table 1).
    pub name: String,
    /// Node count of the emulation.
    pub nodes: usize,
    /// Edge count of the emulation.
    pub edges: usize,
    /// `LabeledGraph::heap_bytes()`.
    pub labeled_bytes: usize,
    /// `CsrGraph::heap_bytes()` of the frozen snapshot.
    pub csr_bytes: usize,
}

/// One bulk-query throughput measurement through the serving layer.
#[derive(Clone, Debug)]
pub struct BulkQueryRow {
    /// Worker threads used by [`bulk_reachable`].
    pub threads: usize,
    /// Best-of-3 wall-clock for the whole batch.
    pub elapsed_ms: f64,
    /// Queries per second at that wall-clock.
    pub qps: f64,
}

/// 2-hop index size before/after the rank-label fix, for one graph.
#[derive(Clone, Debug)]
pub struct TwoHopEntriesRow {
    /// Fig. 12(d) dataset name.
    pub dataset: String,
    /// `"G"` (original) or `"Gr"` (reachability-compressed).
    pub graph: String,
    /// `label_entries()` of the legacy node-id-labelled build.
    pub legacy: usize,
    /// `label_entries()` of the rank-labelled build.
    pub ranked: usize,
}

/// Full-rebuild vs. delta-patched snapshot publication for one dataset
/// emulation (the `snapshot_incremental` experiment).
#[derive(Clone, Debug)]
pub struct SnapshotIncRow {
    /// Dataset emulation name.
    pub dataset: String,
    /// Scale divisor the emulation was generated at.
    pub scale: usize,
    /// Node / edge counts of the data graph.
    pub nodes: usize,
    /// Edge count of the data graph.
    pub edges: usize,
    /// Live hypernode count of the final snapshot.
    pub classes: usize,
    /// Number of update batches in the stream.
    pub batches: usize,
    /// Updates per batch (0.1 % of the edges).
    pub batch_size: usize,
    /// Whether the stores carried a 2-hop index (scoped re-labeling path).
    pub two_hop: bool,
    /// Whether the stores also maintained and served the pattern
    /// preserving compression (schema v4).
    pub serve_patterns: bool,
    /// Total snapshot-publication wall-clock (`ApplyReport::publish_ms` —
    /// excludes the path-independent incremental maintenance) with
    /// `damage_threshold = 0`: every batch rebuilds from scratch.
    pub full_ms: f64,
    /// Total snapshot-publication wall-clock with delta patching enabled.
    pub delta_ms: f64,
    /// `full_ms / delta_ms`.
    pub speedup: f64,
    /// Batches whose **reachability** side actually took the patched path
    /// on the delta store (reachability-quiet publications that only
    /// touched the pattern view are not counted).
    pub patched_batches: usize,
    /// Publications that row-patched the pattern view on the delta store
    /// (always 0 when `serve_patterns` is off; quiet batches that shared
    /// the view pointer-wise are not counted).
    pub pattern_patched_batches: usize,
    /// Final snapshot heap on the full-rebuild store.
    pub full_heap: usize,
    /// Final snapshot heap on the delta store.
    pub delta_heap: usize,
}

/// Multi-writer apply throughput for one shard count (the `store_sharding`
/// experiment).
#[derive(Clone, Debug)]
pub struct ShardingThroughputRow {
    /// Number of hash-partitioned shards the router ran.
    pub shard_count: usize,
    /// Boundary edges of the initial graph under that partition.
    pub cross_edges: usize,
    /// Boundary vertices (distinct cross-edge endpoints) of the final cut.
    pub boundary_vertices: usize,
    /// Total `ShardedStore::apply` wall-clock over the stream (slicing,
    /// concurrent shard maintenance, boundary rebuild, cut swap).
    pub apply_ms: f64,
    /// Updates applied per second at that wall-clock.
    pub updates_per_sec: f64,
    /// Summed `ApplyReport::publish_ms` — slowest concurrent shard
    /// publication plus the watermark bump, per batch.
    pub publish_ms: f64,
}

/// Query latency on the 4-shard store, split by whether the endpoints
/// share a shard (the `store_sharding` experiment's `latency` rows).
#[derive(Clone, Debug)]
pub struct ShardingLatencyRow {
    /// Number of shards the answering store ran.
    pub shard_count: usize,
    /// `true`: endpoints in different shards, so every positive answer
    /// composed through the boundary summary.
    pub cross_shard: bool,
    /// Queries in this row's batch.
    pub queries: usize,
    /// Best-of-3 single-threaded wall-clock for the whole batch.
    pub elapsed_ms: f64,
    /// Queries per second at that wall-clock.
    pub qps: f64,
}

/// The `store_sharding` section: one update stream, three shard counts,
/// plus the intra/cross latency split (schema v5).
#[derive(Clone, Debug, Default)]
pub struct StoreShardingSection {
    /// Dataset emulation the stream ran over.
    pub dataset: String,
    /// Scale divisor of the emulation.
    pub scale: usize,
    /// Node count of the data graph.
    pub nodes: usize,
    /// Edge count of the data graph.
    pub edges: usize,
    /// Number of update batches in the stream.
    pub batches: usize,
    /// Updates per batch.
    pub batch_size: usize,
    /// Apply-throughput rows, ascending shard count (1, 2, 4).
    pub throughput: Vec<ShardingThroughputRow>,
    /// Latency rows on the largest shard count: intra-shard then
    /// cross-shard.
    pub latency: Vec<ShardingLatencyRow>,
}

/// Applies the same cone-local stream through sharded stores of 1, 2, and
/// 4 shards, differentially checking every final cut against a single
/// store that replayed the identical stream, and measures the intra- vs
/// cross-shard query latency split on the 4-shard cut.
fn store_sharding_section(scale: usize) -> StoreShardingSection {
    let name = "citHepTh";
    let ds_scale = scale.max(40);
    let g = dataset(name, ds_scale, 0).expect("known dataset");
    let nodes = g.node_count();
    let edges = g.edge_count();
    let batches = 6usize;
    let batch_size = (edges / 500).max(4);

    // One pre-generated stream, replayed identically by every store.
    let mut stream: Vec<UpdateBatch> = Vec::with_capacity(batches);
    {
        let mut evolving = g.clone();
        for i in 0..batches {
            let batch = local_batch(&evolving, batch_size, 8, 0xB0B + i as u64);
            batch.apply_to(&mut evolving);
            stream.push(batch);
        }
    }

    // The single-store oracle for the differential checks.
    let single = CompressedStore::new(g.clone(), StoreConfig::default());
    for batch in &stream {
        single.apply(batch);
    }
    let single_cut = single.load();
    let sample = random_pairs(&g, 2_000, 17);

    let mut throughput: Vec<ShardingThroughputRow> = Vec::new();
    let mut latency: Vec<ShardingLatencyRow> = Vec::new();
    for shards in [1usize, 2, 4] {
        let part = NodePartition::new(shards);
        let cross_edges = boundary_edges(&g, &part).len();
        let store = ShardedStore::new(g.clone(), StoreConfig::builder().shards(shards).build())
            .expect("valid sharded config");
        let mut publish_ms = 0.0;
        let mut updates = 0usize;
        let t = Instant::now();
        for batch in &stream {
            let report = store.apply(batch);
            publish_ms += report.publish_ms;
            updates += batch.len();
        }
        let apply_ms = ms(t);
        let cut = store.load();
        for &(u, w) in &sample {
            assert_eq!(
                cut.reachable(u, w),
                single_cut.reachable(u, w),
                "{name}: {shards}-shard cut disagrees with the single store on ({u}, {w})"
            );
        }
        throughput.push(ShardingThroughputRow {
            shard_count: shards,
            cross_edges,
            boundary_vertices: cut.boundary().vertex_count(),
            apply_ms,
            updates_per_sec: updates as f64 / (apply_ms / 1e3).max(1e-9),
            publish_ms,
        });

        if shards == 4 {
            let (cross, intra): (Vec<_>, Vec<_>) = sample
                .iter()
                .copied()
                .partition(|&(u, w)| part.is_boundary(u, w));
            for (cross_shard, queries) in [(false, intra), (true, cross)] {
                let mut best = f64::INFINITY;
                for _ in 0..3 {
                    let t = Instant::now();
                    let _ = bulk_reachable(&*cut, &queries, 1);
                    best = best.min(ms(t));
                }
                latency.push(ShardingLatencyRow {
                    shard_count: shards,
                    cross_shard,
                    queries: queries.len(),
                    elapsed_ms: best,
                    qps: queries.len() as f64 / (best / 1e3).max(1e-9),
                });
            }
        }
    }

    StoreShardingSection {
        dataset: name.to_string(),
        scale: ds_scale,
        nodes,
        edges,
        batches,
        batch_size,
        throughput,
        latency,
    }
}

/// One dataset's fault-tolerance pricing row (the `robustness` section,
/// schema v6).
#[derive(Clone, Debug)]
pub struct RobustnessRow {
    /// Dataset emulation the stream ran over.
    pub dataset: String,
    /// Scale divisor of the emulation.
    pub scale: usize,
    /// Node count of the data graph.
    pub nodes: usize,
    /// Edge count of the data graph.
    pub edges: usize,
    /// Number of update batches in the stream.
    pub batches: usize,
    /// Updates per batch.
    pub batch_size: usize,
    /// Total `try_apply` wall-clock for the stream — the production
    /// no-fault path, validation and staged publication included.
    pub apply_ms: f64,
    /// Wall-clock of the work the fault-tolerant pipeline *added* to that
    /// path: per-batch validation plus the rollback-inverse normalization,
    /// measured in isolation against the same evolving graph.
    pub guard_ms: f64,
    /// `100 · guard_ms / apply_ms` — the no-fault-path overhead (%).
    pub overhead_pct: f64,
    /// Stream wall-clock with the write-behind update log attached.
    pub logged_ms: f64,
    /// Crash-recovery throughput: `recover_from_log` replaying the whole
    /// log (base graph load + every batch through the normal apply
    /// pipeline), in batches per second.
    pub replay_batches_per_sec: f64,
}

/// Prices the fault-tolerant apply pipeline on one dataset emulation: the
/// guard work added to the no-fault path, the write-behind log's cost, and
/// crash-recovery replay throughput. The recovered store is differentially
/// spot-checked against the live one before the row is emitted.
fn robustness_row(name: &str, scale: usize, batches: usize) -> RobustnessRow {
    let g = dataset(name, scale, 0).expect("known dataset");
    let nodes = g.node_count();
    let edges = g.edge_count();
    let batch_size = (edges / 500).max(4);

    // One pre-generated cone-local stream, replayed by every measurement.
    let mut stream: Vec<UpdateBatch> = Vec::with_capacity(batches);
    {
        let mut evolving = g.clone();
        for i in 0..batches {
            let batch = local_batch(&evolving, batch_size, 8, 0x0DD + i as u64);
            batch.apply_to(&mut evolving);
            stream.push(batch);
        }
    }

    // The guard work the pipeline added to every no-fault apply:
    // validation plus the rollback-inverse normalization, measured against
    // the same evolving graph the store's writer sees.
    let mut guard_ms = 0.0;
    {
        let mut evolving = g.clone();
        for batch in &stream {
            let t = Instant::now();
            batch.validate(evolving.node_count()).expect("clean stream");
            std::hint::black_box(batch.normalized(&evolving));
            guard_ms += ms(t);
            batch.apply_to(&mut evolving);
        }
    }

    let store = CompressedStore::new(g.clone(), StoreConfig::default());
    let t = Instant::now();
    for batch in &stream {
        store.try_apply(batch).expect("clean stream applies");
    }
    let apply_ms = ms(t);

    let log_path = std::env::temp_dir().join(format!(
        "qpgc_bench_robustness_{}_{name}.log",
        std::process::id()
    ));
    let logged = CompressedStore::new_with_log(g.clone(), StoreConfig::default(), &log_path)
        .expect("log creation succeeds");
    let t = Instant::now();
    for batch in &stream {
        logged.try_apply(batch).expect("clean stream applies");
    }
    let logged_ms = ms(t);

    let t = Instant::now();
    let recovered = CompressedStore::recover_from_log(&log_path, StoreConfig::default())
        .expect("replay succeeds");
    let replay_ms = ms(t);
    assert_eq!(recovered.version(), batches as u64);
    let live = store.load();
    let replayed = recovered.load();
    for &(u, w) in &random_pairs(&g, 500, 23) {
        assert_eq!(
            live.reachable(u, w),
            replayed.reachable(u, w),
            "{name}: recovered store disagrees with the live one on ({u}, {w})"
        );
    }
    let _ = std::fs::remove_file(&log_path);

    RobustnessRow {
        dataset: name.to_string(),
        scale,
        nodes,
        edges,
        batches,
        batch_size,
        apply_ms,
        guard_ms,
        overhead_pct: 100.0 * guard_ms / apply_ms.max(1e-9),
        logged_ms,
        replay_batches_per_sec: batches as f64 / (replay_ms / 1e3).max(1e-9),
    }
}

/// Scores the self-tuning gate on one dataset emulation: the same
/// cone-local stream through three stores differing only in
/// [`GateMode`], with the `Adaptive` store's recorded decisions judged
/// against the per-batch offline optimum (schema v7).
#[derive(Clone, Debug)]
pub struct AdaptiveGateRow {
    /// Dataset emulation the stream ran over.
    pub dataset: String,
    /// Scale divisor of the emulation.
    pub scale: usize,
    /// Whether the stores also maintained and served the pattern
    /// compression (labeled Table 2 emulations).
    pub serve_patterns: bool,
    /// Number of update batches in the stream.
    pub batches: usize,
    /// Total publication wall-clock under [`GateMode::Adaptive`].
    pub adaptive_ms: f64,
    /// Total publication wall-clock under [`GateMode::AlwaysPatch`].
    pub always_patch_ms: f64,
    /// Total publication wall-clock under [`GateMode::AlwaysRebuild`].
    pub always_rebuild_ms: f64,
    /// Sum over batches of the cheaper forced path — what a clairvoyant
    /// gate would have paid.
    pub offline_optimal_ms: f64,
    /// Reach-side decisions flagged warmup (cost model not yet populated
    /// on both paths; the controller routes to whichever path it still
    /// needs a sample from).
    pub reach_warmup: usize,
    /// Percentage of post-warmup reach-side decisions matching the
    /// per-batch offline optimum (100 when no batch was judged).
    pub reach_agreement_pct: f64,
    /// Reach-side batches the controller routed to the patch path.
    pub reach_patched: usize,
    /// Reach-side batches the controller routed to a rebuild.
    pub reach_rebuilt: usize,
    /// Pattern-side batches routed to the row-patch path (0 without
    /// pattern serving).
    pub pattern_patched: usize,
    /// Pattern-side batches routed to a view rebuild (0 without pattern
    /// serving).
    pub pattern_rebuilt: usize,
}

/// Drives one cone-local stream through `AlwaysPatch`, `AlwaysRebuild`,
/// and `Adaptive` stores and scores the controller. The adaptive store's
/// final snapshot is differentially checked against the always-rebuild
/// one before the row is returned.
fn adaptive_gate_row(
    name: &str,
    ds_scale: usize,
    two_hop: bool,
    serve_patterns: bool,
    batches: usize,
) -> AdaptiveGateRow {
    let g = dataset(name, ds_scale, 0)
        .or_else(|| pattern_dataset(name, ds_scale, 0))
        .expect("known dataset");
    let batch_size = (g.edge_count() / 1000).max(1);
    let mut stream: Vec<UpdateBatch> = Vec::with_capacity(batches);
    {
        let mut evolving = g.clone();
        for i in 0..batches {
            let batch = local_batch(&evolving, batch_size, 8, 0xADA7 + i as u64);
            batch.apply_to(&mut evolving);
            stream.push(batch);
        }
    }
    let config = |gate: GateMode| {
        let mut builder = StoreConfig::builder().patterns(serve_patterns).gate(gate);
        if two_hop {
            builder = builder.two_hop(TwoHopConfig {
                coverage: CoverageEstimate::Adaptive { seed: 7 },
                parallel: false,
            });
        }
        builder.build()
    };

    // Both forced paths, per batch — their minimum is the offline optimum.
    let patch_store = CompressedStore::new(g.clone(), config(GateMode::AlwaysPatch));
    let patch_ms: Vec<f64> = stream
        .iter()
        .map(|b| patch_store.apply(b).publish_ms)
        .collect();
    let rebuild_store = CompressedStore::new(g.clone(), config(GateMode::AlwaysRebuild));
    let rebuild_ms: Vec<f64> = stream
        .iter()
        .map(|b| rebuild_store.apply(b).publish_ms)
        .collect();

    let adaptive_store = CompressedStore::new(g.clone(), config(GateMode::Adaptive));
    let reports: Vec<ApplyReport> = stream.iter().map(|b| adaptive_store.apply(b)).collect();

    // Differential: the adaptive store must answer like the rebuild store
    // whatever it routed where.
    let adaptive_snap = adaptive_store.load();
    let rebuild_snap = rebuild_store.load();
    assert_eq!(adaptive_snap.class_count(), rebuild_snap.class_count());
    for (u, w) in random_pairs(&g, 2_000, 17) {
        assert_eq!(
            adaptive_snap.reachable(u, w),
            rebuild_snap.reachable(u, w),
            "{name}: adaptive and rebuild snapshots disagree on ({u}, {w})"
        );
    }

    let mut reach_warmup = 0usize;
    let mut judged = 0usize;
    let mut agreed = 0usize;
    let (mut reach_patched, mut reach_rebuilt) = (0usize, 0usize);
    let (mut pattern_patched, mut pattern_rebuilt) = (0usize, 0usize);
    for (i, report) in reports.iter().enumerate() {
        if let Some(d) = report.reach_gate {
            if d.patch {
                reach_patched += 1;
            } else {
                reach_rebuilt += 1;
            }
            if d.warmup {
                reach_warmup += 1;
            } else {
                judged += 1;
                if d.patch == (patch_ms[i] <= rebuild_ms[i]) {
                    agreed += 1;
                }
            }
        }
        if let Some(d) = report.pattern_gate {
            if d.patch {
                pattern_patched += 1;
            } else {
                pattern_rebuilt += 1;
            }
        }
    }

    AdaptiveGateRow {
        dataset: name.to_string(),
        scale: ds_scale,
        serve_patterns,
        batches,
        adaptive_ms: reports.iter().map(|r| r.publish_ms).sum(),
        always_patch_ms: patch_ms.iter().sum(),
        always_rebuild_ms: rebuild_ms.iter().sum(),
        offline_optimal_ms: patch_ms
            .iter()
            .zip(&rebuild_ms)
            .map(|(p, r)| p.min(*r))
            .sum(),
        reach_warmup,
        reach_agreement_pct: if judged == 0 {
            100.0
        } else {
            100.0 * agreed as f64 / judged as f64
        },
        reach_patched,
        reach_rebuilt,
        pattern_patched,
        pattern_rebuilt,
    }
}

/// Wall-clock of one parallel maintenance kernel at one thread count
/// (schema v7).
#[derive(Clone, Debug)]
pub struct ParallelMaintenanceRow {
    /// Dataset emulation the kernel ran over.
    pub dataset: String,
    /// Scale divisor of the emulation.
    pub scale: usize,
    /// `"refine"` (worklist-partitioned bisimulation refinement) or
    /// `"relabel"` (frozen-base scoped 2-hop re-labeling, every landmark
    /// dirty).
    pub task: String,
    /// Worker threads.
    pub threads: usize,
    /// Best-of-3 wall-clock.
    pub elapsed_ms: f64,
    /// One-thread wall-clock over this row's — 1.0 for the baseline row.
    pub speedup: f64,
}

/// Times both parallel maintenance kernels at 1, 2, and 4 threads. The
/// outputs are bit-identical to sequential at every thread count (the
/// determinism suites pin that); these rows record what the parallelism
/// buys in wall-clock.
fn parallel_maintenance_rows(scale: usize) -> Vec<ParallelMaintenanceRow> {
    let mut rows = Vec::new();

    // Refinement over the largest labeled Table 2 emulation.
    let refine_scale = scale.max(2);
    let labeled = pattern_dataset("California", refine_scale, 0).expect("known dataset");
    let mut base = 0.0;
    for threads in [1usize, 2, 4] {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            std::hint::black_box(bisimulation_partition_threads(&labeled, threads));
            best = best.min(ms(t));
        }
        if threads == 1 {
            base = best;
        }
        rows.push(ParallelMaintenanceRow {
            dataset: "California".into(),
            scale: refine_scale,
            task: "refine".into(),
            threads,
            elapsed_ms: best,
            speedup: base / best.max(1e-9),
        });
    }

    // Scoped 2-hop re-labeling over the citHepTh quotient with every
    // landmark dirty — the heaviest patch the production path can route.
    let relabel_scale = scale.max(10);
    let g = dataset("citHepTh", relabel_scale, 0).expect("known dataset");
    let gr = compress_r(&g).graph;
    let idx = TwoHopIndex::build(&gr);
    let dirty: Vec<u32> = (0..gr.node_count() as u32).collect();
    let mut base = 0.0;
    for threads in [1usize, 2, 4] {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            std::hint::black_box(idx.patch_with(&gr, &[], &dirty, &[], threads));
            best = best.min(ms(t));
        }
        if threads == 1 {
            base = best;
        }
        rows.push(ParallelMaintenanceRow {
            dataset: "citHepTh".into(),
            scale: relabel_scale,
            task: "relabel".into(),
            threads,
            elapsed_ms: best,
            speedup: base / best.max(1e-9),
        });
    }
    rows
}

/// Succinct-vs-plain snapshot backend comparison on one Table-1 quotient
/// (schema v8): heap footprint of the served quotient CSR in both formats
/// and point-query latency through [`qpgc_serve::Snapshot::reachable`].
#[derive(Clone, Debug)]
pub struct SuccinctSnapshotRow {
    /// Dataset emulation (Table 1).
    pub dataset: String,
    /// Scale divisor of the emulation.
    pub scale: usize,
    /// Node count of the data graph.
    pub nodes: usize,
    /// Edge count of the data graph.
    pub edges: usize,
    /// Hypernode count of the served quotient.
    pub classes: usize,
    /// Edge count of the served quotient.
    pub quotient_edges: usize,
    /// Heap bytes of the plain `CsrGraph` quotient backend.
    pub plain_bytes: usize,
    /// Heap bytes of the packed `CompressedCsr` backend (same quotient).
    pub succinct_bytes: usize,
    /// `succinct_bytes / plain_bytes` — the ≤ 0.5 criterion.
    pub heap_ratio: f64,
    /// Packed size over quotient edges, in bits per edge.
    pub bits_per_edge: f64,
    /// Best-of-3 wall-clock of the point-query batch on the plain store.
    pub plain_query_ms: f64,
    /// Same batch on the succinct store (identical answers asserted).
    pub succinct_query_ms: f64,
    /// `succinct_query_ms / plain_query_ms` — the ≤ 3 criterion.
    pub query_ratio: f64,
}

/// Packs every Table-1 quotient both ways and races point queries through
/// the two stores. Answers are asserted identical pair-by-pair before a
/// row is emitted.
///
/// Each dataset runs at a per-dataset divisor targeting ≈65k original
/// nodes (never below the caller's `scale`): the heap criterion is about
/// the *asymptotic* encoding, and below a few hundred quotient classes
/// the succinct backend's fixed costs (Elias–Fano samples, `Vec`
/// headers) dominate and the ratio measures overhead, not encoding.
fn succinct_snapshot_rows(scale: usize) -> Vec<SuccinctSnapshotRow> {
    REACHABILITY_DATASETS
        .iter()
        .map(|spec| {
            let s = spec.original_nodes.div_ceil(65_000).max(scale);
            let g = spec.generate(s, 0);
            let store = |format| {
                CompressedStore::new(
                    g.clone(),
                    StoreConfig::builder().snapshot_format(format).build(),
                )
            };
            let plain = store(SnapshotFormat::Plain).load();
            let succ = store(SnapshotFormat::Succinct).load();
            let plain_gr = plain
                .quotient()
                .as_plain()
                .expect("plain store serves a plain backend");
            let succ_gr = succ
                .quotient()
                .as_succinct()
                .expect("succinct store serves a packed backend");
            let plain_bytes = plain_gr.heap_bytes();
            let succinct_bytes = succ_gr.heap_bytes();
            let pairs = random_pairs(&g, 400, 29);
            let time_store = |snap: &qpgc_serve::Snapshot| {
                let mut best = f64::INFINITY;
                let mut hits = 0usize;
                for _ in 0..3 {
                    let t = Instant::now();
                    hits = pairs.iter().filter(|&&(u, w)| snap.reachable(u, w)).count();
                    best = best.min(ms(t));
                }
                (best, hits)
            };
            let (plain_query_ms, plain_hits) = time_store(&plain);
            let (succinct_query_ms, succ_hits) = time_store(&succ);
            assert_eq!(
                plain_hits, succ_hits,
                "{}: succinct answers diverged from plain",
                spec.name
            );
            SuccinctSnapshotRow {
                dataset: spec.name.to_string(),
                scale: s,
                nodes: g.node_count(),
                edges: g.edge_count(),
                classes: plain.class_count(),
                quotient_edges: succ_gr.edge_count(),
                plain_bytes,
                succinct_bytes,
                heap_ratio: succinct_bytes as f64 / plain_bytes.max(1) as f64,
                bits_per_edge: succinct_bytes as f64 * 8.0 / succ_gr.edge_count().max(1) as f64,
                plain_query_ms,
                succinct_query_ms,
                query_ratio: succinct_query_ms / plain_query_ms.max(1e-9),
            }
        })
        .collect()
}

/// Boot-from-snapshot vs full-history replay on one dataset emulation
/// (schema v8). The booted store is differentially spot-checked against
/// the live one before the row is emitted.
#[derive(Clone, Debug)]
pub struct SuccinctBootRow {
    /// Dataset emulation the stream ran over.
    pub dataset: String,
    /// Scale divisor of the emulation.
    pub scale: usize,
    /// Batches in the logged stream (snapshot saved after the first half).
    pub batches: usize,
    /// Updates per batch.
    pub batch_size: usize,
    /// On-disk size of the packed snapshot file.
    pub snapshot_file_bytes: usize,
    /// `save_snapshot` wall-clock (pack + CRC-framed write).
    pub save_ms: f64,
    /// `load_snapshot` wall-clock — file to a servable, BFS-exact cut.
    /// This is the time-to-first-answer a booting replica pays.
    pub load_ms: f64,
    /// `boot_from_snapshot` end-to-end: load, one recompress to rebuild
    /// maintainer state, and log-tail replay.
    pub boot_ms: f64,
    /// `recover_from_log` end-to-end: full-history replay from batch 0.
    pub replay_ms: f64,
}

fn succinct_boot_row(name: &str, scale: usize, batches: usize) -> SuccinctBootRow {
    let g = dataset(name, scale, 0).expect("known dataset");
    let batch_size = (g.edge_count() / 500).max(4);
    let pid = std::process::id();
    let log_path = std::env::temp_dir().join(format!("qpgc_bench_boot_{pid}_{name}.log"));
    let snap_path = std::env::temp_dir().join(format!("qpgc_bench_boot_{pid}_{name}.snap"));
    let config = StoreConfig::builder()
        .snapshot_format(SnapshotFormat::Auto)
        .build();
    let live =
        CompressedStore::new_with_log(g.clone(), config, &log_path).expect("log creation succeeds");
    let mut evolving = g.clone();
    let mut save_ms = 0.0;
    for i in 0..batches {
        if i == batches / 2 {
            let t = Instant::now();
            live.save_snapshot(&snap_path).expect("snapshot saves");
            save_ms = ms(t);
        }
        let batch = local_batch(&evolving, batch_size, 8, 0xB00 + i as u64);
        live.try_apply(&batch).expect("clean stream applies");
        batch.apply_to(&mut evolving);
    }
    let snapshot_file_bytes = std::fs::metadata(&snap_path)
        .expect("snapshot file exists")
        .len() as usize;

    let t = Instant::now();
    let loaded = qpgc_serve::load_snapshot(&snap_path).expect("snapshot loads");
    let load_ms = ms(t);
    assert_eq!(loaded.version(), (batches / 2) as u64);

    let t = Instant::now();
    let booted =
        CompressedStore::boot_from_snapshot(&snap_path, &log_path, config).expect("boot succeeds");
    let boot_ms = ms(t);

    let t = Instant::now();
    let replayed = CompressedStore::recover_from_log(&log_path, config).expect("replay succeeds");
    let replay_ms = ms(t);

    assert_eq!(booted.version(), batches as u64);
    assert_eq!(replayed.version(), batches as u64);
    let live_snap = live.load();
    let boot_snap = booted.load();
    for &(u, w) in &random_pairs(&g, 300, 31) {
        assert_eq!(
            live_snap.reachable(u, w),
            boot_snap.reachable(u, w),
            "{name}: booted store disagrees with the live one on ({u}, {w})"
        );
    }
    let _ = std::fs::remove_file(&log_path);
    let _ = std::fs::remove_file(&snap_path);

    SuccinctBootRow {
        dataset: name.to_string(),
        scale,
        batches,
        batch_size,
        snapshot_file_bytes,
        save_ms,
        load_ms,
        boot_ms,
        replay_ms,
    }
}

/// One perf snapshot: per-phase wall-clock on the citHepTh-scale graph plus
/// the per-dataset heap comparison.
#[derive(Clone, Debug)]
pub struct PerfSnapshot {
    /// Dataset scale divisor (1 = original citHepTh size, ≈28k nodes).
    pub scale: usize,
    /// Phase-timing dataset name.
    pub dataset: String,
    /// Node count of the timed graph.
    pub nodes: usize,
    /// Edge count of the timed graph.
    pub edges: usize,
    /// `(phase name, milliseconds)` in pipeline order.
    pub phases_ms: Vec<(String, f64)>,
    /// `bisim_baseline / bisim_csr` wall-clock ratio (the ≥2× criterion).
    pub bisim_speedup: f64,
    /// Scale divisor the heap rows were generated at (`scale.max(10)` — the
    /// multi-million-node emulations stay affordable at full scale).
    pub heap_scale: usize,
    /// Heap comparison rows, one per Table-1 dataset.
    pub heap: Vec<HeapRow>,
    /// Dataset served in the bulk-query experiment (the largest emulation,
    /// wikiTalk, at `heap_scale`).
    pub serve_dataset: String,
    /// Node / edge counts of the served data graph.
    pub serve_nodes: usize,
    /// Edge count of the served data graph.
    pub serve_edges: usize,
    /// Hypernode count of the served snapshot's `Gr`.
    pub serve_classes: usize,
    /// Number of reachability queries in the bulk batch.
    pub serve_queries: usize,
    /// Throughput rows, ascending thread count (first row is 1 thread).
    pub bulk: Vec<BulkQueryRow>,
    /// Scale divisor of the 2-hop entry rows (`scale.max(300)` — the legacy
    /// build is deliberately unpruned-ish and blows up past that).
    pub two_hop_scale: usize,
    /// Rank-fix before/after rows, two per Fig. 12(d) dataset (`G`, `Gr`).
    pub two_hop_entries: Vec<TwoHopEntriesRow>,
    /// Full-rebuild vs. delta-patch publication rows (schema v3).
    pub snapshot_incremental: Vec<SnapshotIncRow>,
    /// Sharded-store throughput and latency rows (schema v5).
    pub store_sharding: StoreShardingSection,
    /// Fault-tolerance pricing rows (schema v6).
    pub robustness: Vec<RobustnessRow>,
    /// Self-tuning gate scoring rows (schema v7).
    pub adaptive_gate: Vec<AdaptiveGateRow>,
    /// Parallel maintenance kernel rows (schema v7).
    pub parallel_maintenance: Vec<ParallelMaintenanceRow>,
    /// Succinct-vs-plain backend rows, one per Table-1 dataset (schema v8).
    pub succinct_snapshot: Vec<SuccinctSnapshotRow>,
    /// Boot-from-snapshot vs full-replay rows (schema v8).
    pub succinct_boot: Vec<SuccinctBootRow>,
}

/// Drives a seeded **cone-local** update stream (each batch 0.1 % of the
/// edges, endpoints with single-digit reachability cones — see
/// [`qpgc_generators::updates::local_batch`] for why this is the
/// small-affected-region regime that delta patching targets, and why
/// uniformly random endpoints on these emulations churn the whole quotient
/// and are instead routed to full rebuilds by the damage gate) through a
/// full-rebuild store and a delta-patching store, and records both
/// **publication** wall-clocks ([`qpgc_serve::ApplyReport::publish_ms`] —
/// the incremental maintenance of the compressions costs the same on both
/// sides and is excluded). `delta_gate` is the delta store's publication
/// gate: the reachability rows force patching ([`GateMode::AlwaysPatch`],
/// the explicit spelling of the old `f64::INFINITY` convention), while the
/// `serve_patterns` rows run the production default so the per-side gate
/// is what is measured — on the labeled web emulations cone-local batches
/// churn the *reachability* quotient heavily (correctly routed to
/// rebuilds) while the bisimulation quotient churns under 1 %, which is
/// exactly the regime the pattern-side patch targets. The two final
/// snapshots are differentially checked on a sample of query pairs (and
/// pattern queries, when served) before the row is returned.
fn snapshot_incremental_row(
    name: &str,
    ds_scale: usize,
    two_hop: bool,
    serve_patterns: bool,
    delta_gate: GateMode,
    batches: usize,
) -> SnapshotIncRow {
    let g = dataset(name, ds_scale, 0)
        .or_else(|| pattern_dataset(name, ds_scale, 0))
        .expect("known dataset");
    let nodes = g.node_count();
    let edges = g.edge_count();
    let batch_size = (edges / 1000).max(1);

    // Generate the stream once, against an evolving copy, so both stores
    // replay the identical batches.
    let mut stream: Vec<UpdateBatch> = Vec::with_capacity(batches);
    {
        let mut evolving = g.clone();
        for i in 0..batches {
            let batch = local_batch(&evolving, batch_size, 8, 0x5eed + i as u64);
            batch.apply_to(&mut evolving);
            stream.push(batch);
        }
    }

    let config = |gate: GateMode| {
        let mut builder = StoreConfig::builder().patterns(serve_patterns).gate(gate);
        if two_hop {
            builder = builder.two_hop(TwoHopConfig {
                coverage: CoverageEstimate::Adaptive { seed: 7 },
                parallel: false,
            });
        }
        builder.build()
    };

    let full_store = CompressedStore::new(g.clone(), config(GateMode::AlwaysRebuild));
    let mut full_ms = 0.0;
    for batch in &stream {
        full_ms += full_store.apply(batch).publish_ms;
    }

    let delta_store = CompressedStore::new(g.clone(), config(delta_gate));
    let mut delta_ms = 0.0;
    let mut patched_batches = 0usize;
    let mut pattern_patched_batches = 0usize;
    for batch in &stream {
        let report = delta_store.apply(batch);
        delta_ms += report.publish_ms;
        // `Patched { churn: 0.0 }` names a reachability-quiet publication
        // whose *pattern* view was row-patched; only positive reach churn
        // means the reachability structures themselves took the delta path.
        if matches!(report.path, ApplyPath::Patched { churn, .. } if churn > 0.0) {
            patched_batches += 1;
        }
        if report.path.pattern_patched() {
            pattern_patched_batches += 1;
        }
    }

    // Differential: both final snapshots must agree on a query sample.
    let full_snap = full_store.load();
    let delta_snap = delta_store.load();
    assert_eq!(full_snap.class_count(), delta_snap.class_count());
    for (u, w) in random_pairs(&g, 5_000, 13) {
        assert_eq!(
            full_snap.reachable(u, w),
            delta_snap.reachable(u, w),
            "{name}: full and delta snapshots disagree on ({u}, {w})"
        );
    }
    if serve_patterns {
        // One-edge queries over label names actually present in the data
        // graph, answered by both final snapshots.
        let queries: Vec<Pattern> = g
            .edges()
            .take(3)
            .filter_map(|(u, v)| {
                let mut q = Pattern::new();
                let a = q.add_node(g.label_name(u)?);
                let b = q.add_node(g.label_name(v)?);
                q.add_edge(a, b, 2);
                Some(q)
            })
            .collect();
        for (qi, q) in queries.iter().enumerate() {
            qpgc_pattern::pattern::assert_same_answer(
                &full_snap.match_pattern(q),
                &delta_snap.match_pattern(q),
                &format!("{name}: full vs delta pattern answer, query {qi}"),
            );
        }
    }

    SnapshotIncRow {
        dataset: name.to_string(),
        scale: ds_scale,
        nodes,
        edges,
        classes: delta_snap.class_count(),
        batches,
        batch_size,
        two_hop,
        serve_patterns,
        full_ms,
        delta_ms,
        speedup: full_ms / delta_ms.max(1e-9),
        patched_batches,
        pattern_patched_batches,
        full_heap: full_snap.heap_bytes(),
        delta_heap: delta_snap.heap_bytes(),
    }
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// Runs the snapshot at the given dataset scale (`1` = full citHepTh-scale,
/// the configuration recorded in the committed `BENCH_2.json`; CI smoke
/// runs use a large divisor). The heap sweep uses `scale.max(10)` so the
/// multi-million-node emulations stay affordable at full scale.
pub fn perf_snapshot(scale: usize) -> PerfSnapshot {
    let mut phases: Vec<(String, f64)> = Vec::new();

    let t = Instant::now();
    let g = dataset("citHepTh", scale, 0).expect("known dataset");
    phases.push(("build".into(), ms(t)));

    let t = Instant::now();
    let csr = g.freeze();
    phases.push(("freeze".into(), ms(t)));

    // Interleaved best-of-5 for the two bisimulation variants: the speedup
    // ratio is the acceptance-tracked number, single runs are noisy on
    // shared boxes, and interleaving keeps a load spike from penalizing
    // only one side.
    let mut bisim_baseline_ms = f64::INFINITY;
    let mut bisim_csr_ms = f64::INFINITY;
    let mut baseline = bisimulation_partition_baseline(&g);
    let mut fast = bisimulation_partition_csr(&csr);
    for _ in 0..5 {
        let t = Instant::now();
        baseline = bisimulation_partition_baseline(&g);
        bisim_baseline_ms = bisim_baseline_ms.min(ms(t));
        let t = Instant::now();
        fast = bisimulation_partition_csr(&csr);
        bisim_csr_ms = bisim_csr_ms.min(ms(t));
    }
    phases.push(("bisim_baseline".into(), bisim_baseline_ms));
    phases.push(("bisim_csr".into(), bisim_csr_ms));
    assert_eq!(
        baseline.class_count(),
        fast.class_count(),
        "CSR and baseline bisimulation disagree"
    );

    let t = Instant::now();
    let rc = compress_r_csr(&csr);
    phases.push(("compress_r".into(), ms(t)));

    let t = Instant::now();
    let _pc = compress_b_csr(&csr);
    phases.push(("compress_b".into(), ms(t)));

    let pairs = random_pairs(&g, 300, 42);
    let t = Instant::now();
    let mut hits = 0usize;
    for &(a, b) in &pairs {
        if rc.query_with(a, b, bfs_reachable) {
            hits += 1;
        }
    }
    let _ = hits;
    phases.push(("query_eval".into(), ms(t)));

    let heap_scale = scale.max(10);
    let heap = REACHABILITY_DATASETS
        .iter()
        .map(|spec| {
            let g = spec.generate(heap_scale, 0);
            let csr = g.freeze();
            HeapRow {
                name: spec.name.to_string(),
                nodes: g.node_count(),
                edges: g.edge_count(),
                labeled_bytes: g.heap_bytes(),
                csr_bytes: csr.heap_bytes(),
            }
        })
        .collect();

    // Serving layer: bulk reachability throughput on the largest emulation
    // (wikiTalk), through a store snapshot with a 2-hop index over Gr (the
    // sampled coverage estimator keeps the index buildable as the graph
    // grows — exactly the production configuration).
    let serve_g = dataset("wikiTalk", heap_scale, 0).expect("known dataset");
    let serve_nodes = serve_g.node_count();
    let serve_edges = serve_g.edge_count();
    let serve_queries = (200_000 / scale).max(10_000);
    let pairs = random_pairs(&serve_g, serve_queries, 11);
    let store = CompressedStore::new(
        serve_g,
        StoreConfig::builder()
            .two_hop(TwoHopConfig {
                coverage: CoverageEstimate::Sampled {
                    samples: 2048,
                    seed: 7,
                },
                parallel: false,
            })
            .build(),
    );
    let snap = store.load();
    // All four thread counts are always measured (spawning works on any
    // box); whether the multi-threaded rows actually beat the 1-thread row
    // depends on the cores the measuring machine exposes — a 1-CPU
    // container can only show parity minus spawn overhead, which is why
    // the speedup assertion is gated behind QPGC_TIMING_TESTS.
    let mut bulk: Vec<BulkQueryRow> = Vec::new();
    let mut expected: Option<Vec<bool>> = None;
    for threads in [1usize, 2, 4, 8] {
        let mut best = f64::INFINITY;
        let mut answers = Vec::new();
        for _ in 0..3 {
            let t = Instant::now();
            answers = bulk_reachable(&snap, &pairs, threads);
            best = best.min(ms(t));
        }
        match &expected {
            Some(e) => assert_eq!(e, &answers, "sharded answers diverged"),
            None => expected = Some(answers),
        }
        bulk.push(BulkQueryRow {
            threads,
            elapsed_ms: best,
            qps: pairs.len() as f64 / (best / 1e3).max(1e-9),
        });
    }

    // Rank-label fix, before/after: 2-hop label entries with the legacy
    // node-id labels vs the rank labels, on G and Gr of every Fig. 12(d)
    // dataset. The legacy build's pruning barely works, so its cost grows
    // with the full reachable-pair count — hence the gentler scale.
    let two_hop_scale = scale.max(300);
    let mut two_hop_entries: Vec<TwoHopEntriesRow> = Vec::new();
    for &name in FIG12D_DATASETS {
        let g = dataset(name, two_hop_scale, 0).expect("known dataset");
        let gr = compress_r(&g).graph;
        for (tag, graph) in [("G", &g), ("Gr", &gr)] {
            two_hop_entries.push(TwoHopEntriesRow {
                dataset: name.to_string(),
                graph: tag.to_string(),
                legacy: TwoHopIndex::build_with_node_id_labels(graph).label_entries(),
                ranked: TwoHopIndex::build(graph).label_entries(),
            });
        }
    }

    // Incremental snapshot construction: full rebuild vs. delta patch on
    // seeded fringe update streams (the small-affected-region regime that
    // delta patching targets — uniformly random endpoints on these
    // emulations have quotient-spanning reachability cones, churn every
    // class, and are correctly routed to full rebuilds by the damage
    // gate). The reachability rows carry the 2-hop index with patching
    // forced, so the comparison covers the scoped re-labeling as well as
    // the CSR/transitive-reduction patching; the `serve_patterns` rows
    // (schema v4, labeled Table 2 emulations) run the production damage
    // gate and compare pattern-side publication — re-materializing the
    // pattern quotient every batch vs. Arc-sharing/row-patching the
    // `PatternView` while the heavily-churned reachability side correctly
    // falls back to rebuilds (per-side gating is the thing measured).
    let pattern_gate = GateMode::default();
    let snapshot_incremental = vec![
        snapshot_incremental_row(
            "citHepTh",
            scale.max(10),
            true,
            false,
            GateMode::AlwaysPatch,
            6,
        ),
        snapshot_incremental_row(
            "wikiTalk",
            scale.max(25),
            true,
            false,
            GateMode::AlwaysPatch,
            6,
        ),
        snapshot_incremental_row("California", scale.max(2), true, true, pattern_gate, 6),
        snapshot_incremental_row("Internet", scale.max(8), true, true, pattern_gate, 6),
    ];

    // Self-tuning gate: controller routing vs the offline optimum computed
    // from both forced paths, plus per-side routing counts (schema v7).
    let adaptive_gate = vec![
        adaptive_gate_row("citHepTh", scale.max(10), true, false, 8),
        adaptive_gate_row("wikiTalk", scale.max(25), true, false, 8),
        adaptive_gate_row("California", scale.max(2), true, true, 8),
    ];

    // Parallel maintenance: the rebuild kernels at 1/2/4 threads, results
    // bit-identical to sequential by construction (schema v7).
    let parallel_maintenance = parallel_maintenance_rows(scale);

    // Succinct snapshot backend: per-dataset pack ratios and point-query
    // latency, plus boot-from-snapshot vs full replay (schema v8).
    let succinct_snapshot = succinct_snapshot_rows(scale);
    let succinct_boot = vec![
        succinct_boot_row("citHepTh", scale.max(10), 6),
        succinct_boot_row("wikiTalk", scale.max(25), 6),
    ];

    // Multi-writer scaling of the sharded router (schema v5).
    let store_sharding = store_sharding_section(scale);

    // Fault-tolerance pricing: guard overhead on the no-fault path and
    // crash-recovery replay throughput (schema v6).
    let robustness = vec![
        robustness_row("citHepTh", scale.max(10), 6),
        robustness_row("wikiTalk", scale.max(25), 6),
    ];

    PerfSnapshot {
        scale,
        dataset: "citHepTh".into(),
        nodes: g.node_count(),
        edges: g.edge_count(),
        phases_ms: phases,
        bisim_speedup: bisim_baseline_ms / bisim_csr_ms.max(1e-9),
        heap_scale,
        heap,
        serve_dataset: "wikiTalk".into(),
        serve_nodes,
        serve_edges,
        serve_classes: snap.class_count(),
        serve_queries: pairs.len(),
        bulk,
        two_hop_scale,
        two_hop_entries,
        snapshot_incremental,
        store_sharding,
        robustness,
        adaptive_gate,
        parallel_maintenance,
        succinct_snapshot,
        succinct_boot,
    }
}

impl PerfSnapshot {
    /// Serializes the snapshot as pretty-printed JSON (hand-rolled — the
    /// container has no serde; all strings involved are plain ASCII
    /// identifiers).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"qpgc-perf-snapshot-v8\",\n");
        out.push_str(&format!("  \"scale\": {},\n", self.scale));
        out.push_str(&format!("  \"dataset\": \"{}\",\n", self.dataset));
        out.push_str(&format!("  \"nodes\": {},\n", self.nodes));
        out.push_str(&format!("  \"edges\": {},\n", self.edges));
        out.push_str("  \"phases_ms\": {\n");
        for (i, (name, v)) in self.phases_ms.iter().enumerate() {
            let comma = if i + 1 == self.phases_ms.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!("    \"{name}\": {v:.3}{comma}\n"));
        }
        out.push_str("  },\n");
        out.push_str(&format!(
            "  \"bisim_speedup\": {:.3},\n",
            self.bisim_speedup
        ));
        out.push_str(&format!("  \"heap_scale\": {},\n", self.heap_scale));
        out.push_str("  \"heap_bytes\": [\n");
        for (i, row) in self.heap.iter().enumerate() {
            let comma = if i + 1 == self.heap.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"dataset\": \"{}\", \"nodes\": {}, \"edges\": {}, \"labeled\": {}, \"csr\": {}}}{comma}\n",
                row.name, row.nodes, row.edges, row.labeled_bytes, row.csr_bytes
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"serve\": {\n");
        out.push_str(&format!("    \"dataset\": \"{}\",\n", self.serve_dataset));
        out.push_str(&format!("    \"nodes\": {},\n", self.serve_nodes));
        out.push_str(&format!("    \"edges\": {},\n", self.serve_edges));
        out.push_str(&format!("    \"classes\": {},\n", self.serve_classes));
        out.push_str(&format!("    \"queries\": {},\n", self.serve_queries));
        out.push_str("    \"bulk\": [\n");
        for (i, row) in self.bulk.iter().enumerate() {
            let comma = if i + 1 == self.bulk.len() { "" } else { "," };
            out.push_str(&format!(
                "      {{\"threads\": {}, \"elapsed_ms\": {:.3}, \"qps\": {:.0}}}{comma}\n",
                row.threads, row.elapsed_ms, row.qps
            ));
        }
        out.push_str("    ]\n");
        out.push_str("  },\n");
        out.push_str(&format!("  \"two_hop_scale\": {},\n", self.two_hop_scale));
        out.push_str("  \"two_hop_label_entries\": [\n");
        for (i, row) in self.two_hop_entries.iter().enumerate() {
            let comma = if i + 1 == self.two_hop_entries.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!(
                "    {{\"dataset\": \"{}\", \"graph\": \"{}\", \"legacy\": {}, \"ranked\": {}}}{comma}\n",
                row.dataset, row.graph, row.legacy, row.ranked
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"snapshot_incremental\": [\n");
        for (i, row) in self.snapshot_incremental.iter().enumerate() {
            let comma = if i + 1 == self.snapshot_incremental.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!(
                "    {{\"dataset\": \"{}\", \"scale\": {}, \"nodes\": {}, \"edges\": {}, \"classes\": {}, \"batches\": {}, \"batch_size\": {}, \"two_hop\": {}, \"serve_patterns\": {}, \"full_ms\": {:.3}, \"delta_ms\": {:.3}, \"speedup\": {:.3}, \"patched_batches\": {}, \"pattern_patched_batches\": {}, \"full_heap\": {}, \"delta_heap\": {}}}{comma}\n",
                row.dataset,
                row.scale,
                row.nodes,
                row.edges,
                row.classes,
                row.batches,
                row.batch_size,
                row.two_hop,
                row.serve_patterns,
                row.full_ms,
                row.delta_ms,
                row.speedup,
                row.patched_batches,
                row.pattern_patched_batches,
                row.full_heap,
                row.delta_heap,
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"store_sharding\": {\n");
        let s = &self.store_sharding;
        out.push_str(&format!("    \"dataset\": \"{}\",\n", s.dataset));
        out.push_str(&format!("    \"scale\": {},\n", s.scale));
        out.push_str(&format!("    \"nodes\": {},\n", s.nodes));
        out.push_str(&format!("    \"edges\": {},\n", s.edges));
        out.push_str(&format!("    \"batches\": {},\n", s.batches));
        out.push_str(&format!("    \"batch_size\": {},\n", s.batch_size));
        out.push_str("    \"throughput\": [\n");
        for (i, row) in s.throughput.iter().enumerate() {
            let comma = if i + 1 == s.throughput.len() { "" } else { "," };
            out.push_str(&format!(
                "      {{\"shard_count\": {}, \"cross_edges\": {}, \"boundary_vertices\": {}, \"apply_ms\": {:.3}, \"updates_per_sec\": {:.0}, \"publish_ms\": {:.3}}}{comma}\n",
                row.shard_count,
                row.cross_edges,
                row.boundary_vertices,
                row.apply_ms,
                row.updates_per_sec,
                row.publish_ms,
            ));
        }
        out.push_str("    ],\n");
        out.push_str("    \"latency\": [\n");
        for (i, row) in s.latency.iter().enumerate() {
            let comma = if i + 1 == s.latency.len() { "" } else { "," };
            out.push_str(&format!(
                "      {{\"shard_count\": {}, \"cross_shard\": {}, \"queries\": {}, \"elapsed_ms\": {:.3}, \"qps\": {:.0}}}{comma}\n",
                row.shard_count, row.cross_shard, row.queries, row.elapsed_ms, row.qps,
            ));
        }
        out.push_str("    ]\n");
        out.push_str("  },\n");
        out.push_str("  \"robustness\": [\n");
        for (i, row) in self.robustness.iter().enumerate() {
            let comma = if i + 1 == self.robustness.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!(
                "    {{\"dataset\": \"{}\", \"scale\": {}, \"nodes\": {}, \"edges\": {}, \"batches\": {}, \"batch_size\": {}, \"apply_ms\": {:.3}, \"guard_ms\": {:.3}, \"overhead_pct\": {:.3}, \"logged_ms\": {:.3}, \"replay_batches_per_sec\": {:.1}}}{comma}\n",
                row.dataset,
                row.scale,
                row.nodes,
                row.edges,
                row.batches,
                row.batch_size,
                row.apply_ms,
                row.guard_ms,
                row.overhead_pct,
                row.logged_ms,
                row.replay_batches_per_sec,
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"adaptive_gate\": [\n");
        for (i, row) in self.adaptive_gate.iter().enumerate() {
            let comma = if i + 1 == self.adaptive_gate.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!(
                "    {{\"dataset\": \"{}\", \"scale\": {}, \"serve_patterns\": {}, \"batches\": {}, \"adaptive_ms\": {:.3}, \"always_patch_ms\": {:.3}, \"always_rebuild_ms\": {:.3}, \"offline_optimal_ms\": {:.3}, \"reach_warmup\": {}, \"reach_agreement_pct\": {:.1}, \"reach_patched\": {}, \"reach_rebuilt\": {}, \"pattern_patched\": {}, \"pattern_rebuilt\": {}}}{comma}\n",
                row.dataset,
                row.scale,
                row.serve_patterns,
                row.batches,
                row.adaptive_ms,
                row.always_patch_ms,
                row.always_rebuild_ms,
                row.offline_optimal_ms,
                row.reach_warmup,
                row.reach_agreement_pct,
                row.reach_patched,
                row.reach_rebuilt,
                row.pattern_patched,
                row.pattern_rebuilt,
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"parallel_maintenance\": [\n");
        for (i, row) in self.parallel_maintenance.iter().enumerate() {
            let comma = if i + 1 == self.parallel_maintenance.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!(
                "    {{\"dataset\": \"{}\", \"scale\": {}, \"task\": \"{}\", \"threads\": {}, \"elapsed_ms\": {:.3}, \"speedup\": {:.3}}}{comma}\n",
                row.dataset, row.scale, row.task, row.threads, row.elapsed_ms, row.speedup,
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"succinct_snapshot\": [\n");
        for (i, row) in self.succinct_snapshot.iter().enumerate() {
            let comma = if i + 1 == self.succinct_snapshot.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!(
                "    {{\"dataset\": \"{}\", \"scale\": {}, \"nodes\": {}, \"edges\": {}, \"classes\": {}, \"quotient_edges\": {}, \"plain_bytes\": {}, \"succinct_bytes\": {}, \"heap_ratio\": {:.4}, \"bits_per_edge\": {:.2}, \"plain_query_ms\": {:.3}, \"succinct_query_ms\": {:.3}, \"query_ratio\": {:.3}}}{comma}\n",
                row.dataset,
                row.scale,
                row.nodes,
                row.edges,
                row.classes,
                row.quotient_edges,
                row.plain_bytes,
                row.succinct_bytes,
                row.heap_ratio,
                row.bits_per_edge,
                row.plain_query_ms,
                row.succinct_query_ms,
                row.query_ratio,
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"succinct_boot\": [\n");
        for (i, row) in self.succinct_boot.iter().enumerate() {
            let comma = if i + 1 == self.succinct_boot.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!(
                "    {{\"dataset\": \"{}\", \"scale\": {}, \"batches\": {}, \"batch_size\": {}, \"snapshot_file_bytes\": {}, \"save_ms\": {:.3}, \"load_ms\": {:.3}, \"boot_ms\": {:.3}, \"replay_ms\": {:.3}}}{comma}\n",
                row.dataset,
                row.scale,
                row.batches,
                row.batch_size,
                row.snapshot_file_bytes,
                row.save_ms,
                row.load_ms,
                row.boot_ms,
                row.replay_ms,
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

/// Extracts the `"phases_ms"` object of a previously committed
/// `BENCH_<n>.json` (schema v2, v3, or v4 — the object's shape is
/// identical across schemas, and sections a given schema does not know are
/// skipped rather than mis-parsed, so `--compare` works across schema
/// generations in both directions). Hand-rolled like the writer: the
/// container has no serde, and the format is the stable output of
/// [`PerfSnapshot::to_json`].
pub fn parse_phases(json: &str) -> Vec<(String, f64)> {
    let Some(start) = json.find("\"phases_ms\"") else {
        return Vec::new();
    };
    let rest = &json[start..];
    let (Some(open), Some(close)) = (rest.find('{'), rest.find('}')) else {
        return Vec::new();
    };
    rest[open + 1..close]
        .lines()
        .filter_map(|line| {
            let line = line.trim().trim_end_matches(',');
            let (name, value) = line.split_once(':')?;
            let name = name.trim().trim_matches('"');
            let value: f64 = value.trim().parse().ok()?;
            (!name.is_empty()).then(|| (name.to_string(), value))
        })
        .collect()
}

/// Renders the per-phase regression table of `snap` against a previously
/// committed snapshot's JSON — the output of `bench_json --compare`.
pub fn compare_report(prev_json: &str, snap: &PerfSnapshot) -> String {
    let prev = parse_phases(prev_json);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>16} {:>12} {:>12} {:>9}",
        "phase", "prev ms", "cur ms", "delta"
    );
    for (name, cur) in &snap.phases_ms {
        match prev.iter().find(|(n, _)| n == name) {
            Some((_, p)) => {
                let pct = (cur - p) / p.max(1e-9) * 100.0;
                let _ = writeln!(out, "{name:>16} {p:>12.3} {cur:>12.3} {pct:>+8.1}%");
            }
            None => {
                let _ = writeln!(out, "{name:>16} {:>12} {cur:>12.3} {:>9}", "-", "new");
            }
        }
    }
    for (name, p) in &prev {
        if !snap.phases_ms.iter().any(|(n, _)| n == name) {
            let _ = writeln!(out, "{name:>16} {p:>12.3} {:>12} {:>9}", "-", "gone");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_parser_roundtrips_the_writer() {
        let json = "{\n  \"phases_ms\": {\n    \"build\": 45.208,\n    \"freeze\": 3.540\n  },\n  \"x\": 1\n}\n";
        assert_eq!(
            parse_phases(json),
            vec![("build".to_string(), 45.208), ("freeze".to_string(), 3.54)]
        );
        assert!(parse_phases("{}").is_empty());
    }

    /// Cross-schema tolerance: a snapshot carrying sections this parser has
    /// never heard of — before *and* after the phase object, scalar and
    /// array-of-object shaped, as a schema v4 file looks to a v3-era parser
    /// (and vice versa) — must still yield exactly the phase list, not a
    /// silent mis-parse of the unknown keys.
    #[test]
    fn phase_parser_tolerates_unknown_sections() {
        let json = concat!(
            "{\n",
            "  \"schema\": \"qpgc-perf-snapshot-v9\",\n",
            "  \"experimental_totally_unknown\": 7,\n",
            "  \"future_section\": [\n",
            "    {\"dataset\": \"x\", \"serve_patterns\": true, \"pattern_patched_batches\": 6}\n",
            "  ],\n",
            "  \"phases_ms\": {\n",
            "    \"build\": 45.208,\n",
            "    \"freeze\": 3.540,\n",
            "    \"novel_phase\": 0.125\n",
            "  },\n",
            "  \"snapshot_incremental\": [\n",
            "    {\"dataset\": \"y\", \"full_ms\": 1.0, \"delta_ms\": 0.5}\n",
            "  ]\n",
            "}\n"
        );
        assert_eq!(
            parse_phases(json),
            vec![
                ("build".to_string(), 45.208),
                ("freeze".to_string(), 3.54),
                ("novel_phase".to_string(), 0.125)
            ]
        );
        // A file with no phase object at all parses to empty, not garbage.
        assert!(parse_phases("{\n  \"only_unknown\": [1, 2]\n}\n").is_empty());
    }

    #[test]
    fn compare_report_lines_up_phases() {
        let snap = PerfSnapshot {
            scale: 1,
            dataset: "d".into(),
            nodes: 1,
            edges: 1,
            phases_ms: vec![("build".into(), 50.0), ("new_phase".into(), 1.0)],
            bisim_speedup: 1.0,
            heap_scale: 1,
            heap: Vec::new(),
            serve_dataset: "d".into(),
            serve_nodes: 0,
            serve_edges: 0,
            serve_classes: 0,
            serve_queries: 0,
            bulk: Vec::new(),
            two_hop_scale: 1,
            two_hop_entries: Vec::new(),
            snapshot_incremental: Vec::new(),
            store_sharding: StoreShardingSection::default(),
            robustness: Vec::new(),
            adaptive_gate: Vec::new(),
            parallel_maintenance: Vec::new(),
            succinct_snapshot: Vec::new(),
            succinct_boot: Vec::new(),
        };
        let prev = "\"phases_ms\": {\n  \"build\": 40.0,\n  \"old_phase\": 2.0\n}";
        let report = compare_report(prev, &snap);
        assert!(report.contains("build"), "{report}");
        assert!(report.contains("+25.0%"), "{report}");
        assert!(report.contains("new"), "{report}");
        assert!(report.contains("gone"), "{report}");
    }

    // One shared tiny-scale snapshot run covers the phase list, the JSON
    // shape, and the heap invariant — the pipeline is the expensive part.
    // Slow (runs the full pipeline): kept out of the default `cargo test`
    // wall-clock, CI runs it explicitly via `cargo test -- --ignored`.
    #[test]
    #[ignore = "slow perf pipeline; CI runs it via `cargo test -- --ignored`"]
    fn snapshot_runs_serializes_and_csr_heap_is_strictly_smaller() {
        let snap = perf_snapshot(400);
        assert_eq!(snap.dataset, "citHepTh");
        assert!(snap.nodes >= 50);
        let names: Vec<&str> = snap.phases_ms.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "build",
                "freeze",
                "bisim_baseline",
                "bisim_csr",
                "compress_r",
                "compress_b",
                "query_eval"
            ]
        );
        assert!(snap.phases_ms.iter().all(|&(_, v)| v >= 0.0));
        assert!(snap.bisim_speedup > 0.0);
        assert_eq!(snap.heap_scale, 400);
        let json = snap.to_json();
        for key in [
            "\"schema\": \"qpgc-perf-snapshot-v8\"",
            "\"phases_ms\"",
            "\"bisim_csr\"",
            "\"bisim_speedup\"",
            "\"heap_scale\"",
            "\"heap_bytes\"",
            "\"serve\"",
            "\"bulk\"",
            "\"two_hop_label_entries\"",
            "\"snapshot_incremental\"",
            "\"patched_batches\"",
            "\"serve_patterns\"",
            "\"pattern_patched_batches\"",
            "\"store_sharding\"",
            "\"shard_count\"",
            "\"cross_shard\"",
            "\"robustness\"",
            "\"overhead_pct\"",
            "\"replay_batches_per_sec\"",
            "\"adaptive_gate\"",
            "\"reach_agreement_pct\"",
            "\"parallel_maintenance\"",
            "\"task\": \"refine\"",
            "\"task\": \"relabel\"",
            "\"succinct_snapshot\"",
            "\"heap_ratio\"",
            "\"bits_per_edge\"",
            "\"query_ratio\"",
            "\"succinct_boot\"",
            "\"boot_ms\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // The acceptance-tracked heap invariant: CSR strictly smaller than
        // the mutable representation on every Table-1 dataset.
        assert_eq!(snap.heap.len(), REACHABILITY_DATASETS.len());
        for row in &snap.heap {
            assert!(
                row.csr_bytes < row.labeled_bytes,
                "{}: csr {} >= labeled {}",
                row.name,
                row.csr_bytes,
                row.labeled_bytes
            );
        }

        // Serving layer: a single-threaded row always exists, every row has
        // positive throughput, and query counts line up.
        assert_eq!(snap.serve_dataset, "wikiTalk");
        assert!(snap.serve_classes > 0);
        assert!(!snap.bulk.is_empty());
        assert_eq!(snap.bulk[0].threads, 1);
        for row in &snap.bulk {
            assert!(row.qps > 0.0, "threads={}: qps {}", row.threads, row.qps);
        }
        // Wall-clock comparisons flake on loaded CI boxes and are
        // meaningless on single-core containers; opt in locally.
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        if std::env::var("QPGC_TIMING_TESTS").is_ok() && cores > 1 && snap.bulk.len() > 1 {
            let single = snap.bulk[0].qps;
            let best_multi = snap.bulk[1..].iter().map(|r| r.qps).fold(0.0, f64::max);
            assert!(
                best_multi > single,
                "multi-threaded bulk eval ({best_multi:.0} qps) not faster than single ({single:.0} qps)"
            );
        }

        // The rank-label fix: never larger than the legacy node-id build,
        // and strictly smaller on the citHepTh emulation (both G and Gr).
        assert_eq!(snap.two_hop_entries.len(), 2 * FIG12D_DATASETS.len());
        for row in &snap.two_hop_entries {
            assert!(
                row.ranked <= row.legacy,
                "{} ({}): ranked {} > legacy {}",
                row.dataset,
                row.graph,
                row.ranked,
                row.legacy
            );
        }
        for row in snap
            .two_hop_entries
            .iter()
            .filter(|r| r.dataset == "citHepTh")
        {
            assert!(
                row.ranked < row.legacy,
                "citHepTh ({}): rank fix did not shrink the index ({} vs {})",
                row.graph,
                row.ranked,
                row.legacy
            );
        }

        // Incremental snapshot construction: all streams ran, the delta
        // store actually took the patched path, and the differential inside
        // the experiment already proved answer equality (reachability and,
        // on the serve_patterns rows, pattern answers). The speedup claim
        // is only asserted on wall-clock-stable machines (it is the
        // acceptance-tracked number of the committed full-scale run).
        assert_eq!(snap.snapshot_incremental.len(), 4);
        let names: Vec<&str> = snap
            .snapshot_incremental
            .iter()
            .map(|r| r.dataset.as_str())
            .collect();
        assert_eq!(names, ["citHepTh", "wikiTalk", "California", "Internet"]);
        for row in &snap.snapshot_incremental {
            assert!(row.batches > 0 && row.batch_size > 0);
            assert!(
                row.batch_size * 100 <= row.edges.max(100),
                "{}: batch > 1%",
                row.dataset
            );
            assert!(row.full_ms > 0.0 && row.delta_ms > 0.0);
            // Pattern rows run the production gate, so their reachability
            // side is free to rebuild every batch; the forced-patch
            // reachability rows must take the delta path, and rows without
            // pattern serving must never report pattern patches.
            if !row.serve_patterns {
                assert!(
                    row.patched_batches > 0,
                    "{}: delta path never taken",
                    row.dataset
                );
                assert_eq!(
                    row.pattern_patched_batches, 0,
                    "{}: pattern patches without pattern serving",
                    row.dataset
                );
            }
        }
        // The pattern-serving rows exist; at real emulation sizes the
        // cone-local streams churn under 1 % of the bisimulation classes
        // per batch, so the pattern side must actually row-patch (tiny
        // smoke-scale graphs can legitimately exceed the gate and are
        // exempted — the differential suite pins the behaviour
        // deterministically).
        let pattern_rows: Vec<_> = snap
            .snapshot_incremental
            .iter()
            .filter(|r| r.serve_patterns)
            .collect();
        assert_eq!(pattern_rows.len(), 2);
        for row in &pattern_rows {
            if row.nodes >= 1000 {
                assert!(
                    row.pattern_patched_batches > 0,
                    "{}: pattern-side delta path never taken",
                    row.dataset
                );
            }
        }
        if std::env::var("QPGC_TIMING_TESTS").is_ok() {
            // The speedup claim is pinned on the forced-patch reachability
            // rows, whose publication is dominated by structures big enough
            // to time. The pattern rows run the production gate on
            // quotients that rebuild in microseconds at emulation scale —
            // their value is the recorded pattern-side patch counts and the
            // in-experiment answer differential, not a wall-clock race.
            for row in snap
                .snapshot_incremental
                .iter()
                .filter(|r| !r.serve_patterns)
            {
                assert!(
                    row.speedup > 1.0,
                    "{}: delta publication ({:.3} ms) not faster than full rebuild ({:.3} ms)",
                    row.dataset,
                    row.delta_ms,
                    row.full_ms
                );
            }
        }

        // Sharded-store experiment: one row per shard count, the one-shard
        // row carries no boundary graph, and the in-experiment differential
        // against the single store already proved answer equality.
        let sharding = &snap.store_sharding;
        assert_eq!(sharding.dataset, "citHepTh");
        assert!(sharding.batches > 0 && sharding.batch_size > 0);
        let counts: Vec<usize> = sharding.throughput.iter().map(|r| r.shard_count).collect();
        assert_eq!(counts, [1, 2, 4]);
        for row in &sharding.throughput {
            assert!(
                row.updates_per_sec > 0.0,
                "shards={}: zero apply throughput",
                row.shard_count
            );
            assert!(row.publish_ms >= 0.0);
            if row.shard_count == 1 {
                assert_eq!(row.cross_edges, 0, "one-shard router grew a boundary");
                assert_eq!(row.boundary_vertices, 0);
            } else {
                assert!(
                    row.cross_edges > 0,
                    "hash partition produced no cross edges"
                );
            }
        }
        // Latency rows: intra- and cross-shard mixes at the widest fan-out.
        assert_eq!(sharding.latency.len(), 2);
        assert!(!sharding.latency[0].cross_shard && sharding.latency[1].cross_shard);
        for row in &sharding.latency {
            assert_eq!(row.shard_count, 4);
            assert!(row.queries > 0);
            assert!(
                row.qps > 0.0,
                "cross_shard={}: zero query throughput",
                row.cross_shard
            );
        }
        if std::env::var("QPGC_TIMING_TESTS").is_ok() && cores > 1 {
            // Multi-writer apply should beat the single writer on real
            // parallel hardware; meaningless on one core, so opt-in only.
            let single = sharding.throughput[0].updates_per_sec;
            let best = sharding.throughput[1..]
                .iter()
                .map(|r| r.updates_per_sec)
                .fold(0.0, f64::max);
            assert!(
                best > single,
                "sharded apply ({best:.0} upd/s) not faster than single writer ({single:.0} upd/s)"
            );
        }

        // Robustness pricing: one row per emulation, every measurement
        // positive; the recovery differential already ran in-experiment.
        assert_eq!(snap.robustness.len(), 2);
        assert_eq!(snap.robustness[0].dataset, "citHepTh");
        assert_eq!(snap.robustness[1].dataset, "wikiTalk");
        for row in &snap.robustness {
            assert!(row.batches > 0 && row.batch_size > 0);
            assert!(row.apply_ms > 0.0 && row.logged_ms > 0.0);
            assert!(row.guard_ms >= 0.0);
            assert!(
                row.replay_batches_per_sec > 0.0,
                "{}: zero replay throughput",
                row.dataset
            );
        }
        if std::env::var("QPGC_TIMING_TESTS").is_ok() {
            // The acceptance target: validation + rollback-inverse staging
            // must stay under 3 % of the no-fault apply path. Wall-clock
            // ratio, so opt-in like the other timing claims.
            for row in &snap.robustness {
                assert!(
                    row.overhead_pct < 3.0,
                    "{}: guard overhead {:.2}% exceeds the 3% target",
                    row.dataset,
                    row.overhead_pct
                );
            }
        }

        // Self-tuning gate: every row ran the full stream through all
        // three modes, routing counts partition the decided batches, and
        // pattern routing only appears on pattern-serving rows.
        assert_eq!(snap.adaptive_gate.len(), 3);
        let gate_names: Vec<&str> = snap
            .adaptive_gate
            .iter()
            .map(|r| r.dataset.as_str())
            .collect();
        assert_eq!(gate_names, ["citHepTh", "wikiTalk", "California"]);
        for row in &snap.adaptive_gate {
            assert!(row.batches > 0);
            assert!(row.adaptive_ms > 0.0);
            assert!(row.always_patch_ms > 0.0 && row.always_rebuild_ms > 0.0);
            assert!(
                row.offline_optimal_ms <= row.always_patch_ms.min(row.always_rebuild_ms) + 1e-9,
                "{}: offline optimum above a forced path",
                row.dataset
            );
            assert!(
                (0.0..=100.0).contains(&row.reach_agreement_pct),
                "{}: agreement out of range",
                row.dataset
            );
            assert!(
                row.reach_warmup <= row.reach_patched + row.reach_rebuilt,
                "{}: more warmup decisions than decisions",
                row.dataset
            );
            if !row.serve_patterns {
                assert_eq!(
                    row.pattern_patched + row.pattern_rebuilt,
                    0,
                    "{}: pattern routing without pattern serving",
                    row.dataset
                );
            }
        }
        if std::env::var("QPGC_TIMING_TESTS").is_ok() {
            // Convergence claim, wall-clock dependent: after warmup the
            // controller must agree with the offline optimum on most
            // batches — no hand-set threshold anywhere in the loop. On the
            // pattern-serving web emulation the per-side routing must come
            // out the documented way: bisimulation churn is tiny (patch),
            // reachability churn is heavy (rebuild wins at real scale).
            for row in &snap.adaptive_gate {
                assert!(
                    row.reach_agreement_pct >= 50.0,
                    "{}: adaptive gate agreed with the offline optimum on only {:.1}% of judged batches",
                    row.dataset,
                    row.reach_agreement_pct
                );
            }
        }

        // Parallel maintenance: both kernels at 1/2/4 threads, the
        // one-thread baseline rows present and positive.
        assert_eq!(snap.parallel_maintenance.len(), 6);
        for task in ["refine", "relabel"] {
            let rows: Vec<_> = snap
                .parallel_maintenance
                .iter()
                .filter(|r| r.task == task)
                .collect();
            let threads: Vec<usize> = rows.iter().map(|r| r.threads).collect();
            assert_eq!(threads, [1, 2, 4], "{task}: thread ladder");
            assert!(rows.iter().all(|r| r.elapsed_ms >= 0.0));
            assert!((rows[0].speedup - 1.0).abs() < 1e-9, "{task}: baseline");
            if std::env::var("QPGC_TIMING_TESTS").is_ok() && cores > 1 {
                let best = rows[1..].iter().map(|r| r.speedup).fold(0.0, f64::max);
                assert!(
                    best > 1.0,
                    "{task}: no thread count beat sequential (best speedup {best:.2})"
                );
            }
        }

        // Succinct backend: one row per Table-1 dataset, sizes positive,
        // the in-experiment differential already pinned answer equality.
        assert_eq!(snap.succinct_snapshot.len(), REACHABILITY_DATASETS.len());
        for row in &snap.succinct_snapshot {
            assert!(row.plain_bytes > 0 && row.succinct_bytes > 0);
            assert!(row.classes > 0);
            assert!(row.plain_query_ms >= 0.0 && row.succinct_query_ms >= 0.0);
        }
        assert_eq!(snap.succinct_boot.len(), 2);
        for row in &snap.succinct_boot {
            assert!(row.snapshot_file_bytes > 0);
            assert!(row.save_ms >= 0.0 && row.load_ms >= 0.0);
            assert!(row.boot_ms > 0.0 && row.replay_ms > 0.0);
        }
        if std::env::var("QPGC_TIMING_TESTS").is_ok() {
            // The acceptance targets, meaningful at emulation scale (tiny
            // smoke quotients are dominated by fixed overheads): the
            // packed quotient at most half the plain backend's heap, and
            // point queries within 3× of plain, each on at least 8 of the
            // 10 Table-1 shapes. Both gates tolerate the two structural
            // outliers: near-trivial quotients (NotreDame collapses to a
            // handful of classes, so fixed costs dominate its heap) and
            // incompressible ones (citHepTh's citation DAG keeps ~1 class
            // per node, so BFS pays the per-row decode open cost on every
            // hop with no size win to amortise it).
            let halved = snap
                .succinct_snapshot
                .iter()
                .filter(|r| r.heap_ratio <= 0.5)
                .count();
            assert!(
                halved >= 8,
                "succinct heap ≤ 0.5× plain on only {halved}/10 datasets"
            );
            let within_3x = snap
                .succinct_snapshot
                .iter()
                .filter(|r| r.query_ratio <= 3.0)
                .count();
            assert!(
                within_3x >= 8,
                "succinct point queries within 3× of plain on only {within_3x}/10 datasets"
            );
        }
    }
}
