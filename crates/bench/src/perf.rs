//! Machine-readable perf snapshots (`BENCH_<n>.json`).
//!
//! From PR 2 onward the perf trajectory of the hot analysis paths is
//! recorded as JSON, one file per milestone (`BENCH_<n>.json` at the repo
//! root), so regressions and wins are diffable without re-reading PR
//! descriptions. The snapshot times every phase of the compression pipeline
//! on the citHepTh-scale emulated citation graph:
//!
//! * `build` — dataset generation (bulk sorted-dedup edge loading),
//! * `freeze` — [`LabeledGraph::freeze`] into the CSR snapshot,
//! * `bisim_baseline` — the pre-CSR per-round hash-table bisimulation,
//! * `bisim_csr` — the allocation-free worklist refinement over CSR,
//! * `compress_r` / `compress_b` — the two compression schemes over CSR,
//! * `query_eval` — 300 rewritten reachability queries answered on `Gr`.
//!
//! It also records, for every Table-1 dataset emulation, the heap footprint
//! of the mutable graph versus its CSR snapshot — the CSR number must be
//! strictly smaller on every dataset.
//!
//! Since PR 3 (`BENCH_3.json`) two more sections track the serving layer:
//!
//! * `serve` — bulk reachability-query throughput through a
//!   [`qpgc_serve::CompressedStore`] snapshot of the largest emulated
//!   dataset (wikiTalk), single- vs multi-threaded;
//! * `two_hop_label_entries` — 2-hop index size (label entries) with the
//!   legacy node-id labels versus the rank labels, per Fig. 12(d) dataset,
//!   over both `G` and `Gr` — the before/after record of the rank-label
//!   pruning fix.
//!
//! Produce a snapshot with:
//!
//! ```text
//! cargo run --release -p qpgc_bench --bin bench_json -- --out BENCH_3.json
//! QPGC_SCALE=500 cargo run --release -p qpgc_bench --bin bench_json   # CI smoke
//! ```
//!
//! [`LabeledGraph::freeze`]: qpgc_graph::LabeledGraph::freeze

use std::time::Instant;

use qpgc_generators::datasets::{dataset, FIG12D_DATASETS, REACHABILITY_DATASETS};
use qpgc_graph::traversal::bfs_reachable;
use qpgc_pattern::bisim::{bisimulation_partition_baseline, bisimulation_partition_csr};
use qpgc_pattern::compress::compress_b_csr;
use qpgc_reach::compress::{compress_r, compress_r_csr};
use qpgc_reach::two_hop::{CoverageEstimate, TwoHopConfig, TwoHopIndex};
use qpgc_serve::{bulk_reachable, CompressedStore, StoreConfig};

use crate::harness::random_pairs;

/// Heap footprint of one dataset emulation in both representations.
#[derive(Clone, Debug)]
pub struct HeapRow {
    /// Dataset name (Table 1).
    pub name: String,
    /// Node count of the emulation.
    pub nodes: usize,
    /// Edge count of the emulation.
    pub edges: usize,
    /// `LabeledGraph::heap_bytes()`.
    pub labeled_bytes: usize,
    /// `CsrGraph::heap_bytes()` of the frozen snapshot.
    pub csr_bytes: usize,
}

/// One bulk-query throughput measurement through the serving layer.
#[derive(Clone, Debug)]
pub struct BulkQueryRow {
    /// Worker threads used by [`bulk_reachable`].
    pub threads: usize,
    /// Best-of-3 wall-clock for the whole batch.
    pub elapsed_ms: f64,
    /// Queries per second at that wall-clock.
    pub qps: f64,
}

/// 2-hop index size before/after the rank-label fix, for one graph.
#[derive(Clone, Debug)]
pub struct TwoHopEntriesRow {
    /// Fig. 12(d) dataset name.
    pub dataset: String,
    /// `"G"` (original) or `"Gr"` (reachability-compressed).
    pub graph: String,
    /// `label_entries()` of the legacy node-id-labelled build.
    pub legacy: usize,
    /// `label_entries()` of the rank-labelled build.
    pub ranked: usize,
}

/// One perf snapshot: per-phase wall-clock on the citHepTh-scale graph plus
/// the per-dataset heap comparison.
#[derive(Clone, Debug)]
pub struct PerfSnapshot {
    /// Dataset scale divisor (1 = original citHepTh size, ≈28k nodes).
    pub scale: usize,
    /// Phase-timing dataset name.
    pub dataset: String,
    /// Node count of the timed graph.
    pub nodes: usize,
    /// Edge count of the timed graph.
    pub edges: usize,
    /// `(phase name, milliseconds)` in pipeline order.
    pub phases_ms: Vec<(String, f64)>,
    /// `bisim_baseline / bisim_csr` wall-clock ratio (the ≥2× criterion).
    pub bisim_speedup: f64,
    /// Scale divisor the heap rows were generated at (`scale.max(10)` — the
    /// multi-million-node emulations stay affordable at full scale).
    pub heap_scale: usize,
    /// Heap comparison rows, one per Table-1 dataset.
    pub heap: Vec<HeapRow>,
    /// Dataset served in the bulk-query experiment (the largest emulation,
    /// wikiTalk, at `heap_scale`).
    pub serve_dataset: String,
    /// Node / edge counts of the served data graph.
    pub serve_nodes: usize,
    /// Edge count of the served data graph.
    pub serve_edges: usize,
    /// Hypernode count of the served snapshot's `Gr`.
    pub serve_classes: usize,
    /// Number of reachability queries in the bulk batch.
    pub serve_queries: usize,
    /// Throughput rows, ascending thread count (first row is 1 thread).
    pub bulk: Vec<BulkQueryRow>,
    /// Scale divisor of the 2-hop entry rows (`scale.max(300)` — the legacy
    /// build is deliberately unpruned-ish and blows up past that).
    pub two_hop_scale: usize,
    /// Rank-fix before/after rows, two per Fig. 12(d) dataset (`G`, `Gr`).
    pub two_hop_entries: Vec<TwoHopEntriesRow>,
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// Runs the snapshot at the given dataset scale (`1` = full citHepTh-scale,
/// the configuration recorded in the committed `BENCH_2.json`; CI smoke
/// runs use a large divisor). The heap sweep uses `scale.max(10)` so the
/// multi-million-node emulations stay affordable at full scale.
pub fn perf_snapshot(scale: usize) -> PerfSnapshot {
    let mut phases: Vec<(String, f64)> = Vec::new();

    let t = Instant::now();
    let g = dataset("citHepTh", scale, 0).expect("known dataset");
    phases.push(("build".into(), ms(t)));

    let t = Instant::now();
    let csr = g.freeze();
    phases.push(("freeze".into(), ms(t)));

    // Interleaved best-of-5 for the two bisimulation variants: the speedup
    // ratio is the acceptance-tracked number, single runs are noisy on
    // shared boxes, and interleaving keeps a load spike from penalizing
    // only one side.
    let mut bisim_baseline_ms = f64::INFINITY;
    let mut bisim_csr_ms = f64::INFINITY;
    let mut baseline = bisimulation_partition_baseline(&g);
    let mut fast = bisimulation_partition_csr(&csr);
    for _ in 0..5 {
        let t = Instant::now();
        baseline = bisimulation_partition_baseline(&g);
        bisim_baseline_ms = bisim_baseline_ms.min(ms(t));
        let t = Instant::now();
        fast = bisimulation_partition_csr(&csr);
        bisim_csr_ms = bisim_csr_ms.min(ms(t));
    }
    phases.push(("bisim_baseline".into(), bisim_baseline_ms));
    phases.push(("bisim_csr".into(), bisim_csr_ms));
    assert_eq!(
        baseline.class_count(),
        fast.class_count(),
        "CSR and baseline bisimulation disagree"
    );

    let t = Instant::now();
    let rc = compress_r_csr(&csr);
    phases.push(("compress_r".into(), ms(t)));

    let t = Instant::now();
    let _pc = compress_b_csr(&csr);
    phases.push(("compress_b".into(), ms(t)));

    let pairs = random_pairs(&g, 300, 42);
    let t = Instant::now();
    let mut hits = 0usize;
    for &(a, b) in &pairs {
        if rc.query_with(a, b, bfs_reachable) {
            hits += 1;
        }
    }
    let _ = hits;
    phases.push(("query_eval".into(), ms(t)));

    let heap_scale = scale.max(10);
    let heap = REACHABILITY_DATASETS
        .iter()
        .map(|spec| {
            let g = spec.generate(heap_scale, 0);
            let csr = g.freeze();
            HeapRow {
                name: spec.name.to_string(),
                nodes: g.node_count(),
                edges: g.edge_count(),
                labeled_bytes: g.heap_bytes(),
                csr_bytes: csr.heap_bytes(),
            }
        })
        .collect();

    // Serving layer: bulk reachability throughput on the largest emulation
    // (wikiTalk), through a store snapshot with a 2-hop index over Gr (the
    // sampled coverage estimator keeps the index buildable as the graph
    // grows — exactly the production configuration).
    let serve_g = dataset("wikiTalk", heap_scale, 0).expect("known dataset");
    let serve_nodes = serve_g.node_count();
    let serve_edges = serve_g.edge_count();
    let serve_queries = (200_000 / scale).max(10_000);
    let pairs = random_pairs(&serve_g, serve_queries, 11);
    let store = CompressedStore::new(
        serve_g,
        StoreConfig {
            two_hop: Some(TwoHopConfig {
                coverage: CoverageEstimate::Sampled {
                    samples: 2048,
                    seed: 7,
                },
                parallel: false,
            }),
            ..StoreConfig::default()
        },
    );
    let snap = store.load();
    // All four thread counts are always measured (spawning works on any
    // box); whether the multi-threaded rows actually beat the 1-thread row
    // depends on the cores the measuring machine exposes — a 1-CPU
    // container can only show parity minus spawn overhead, which is why
    // the speedup assertion is gated behind QPGC_TIMING_TESTS.
    let mut bulk: Vec<BulkQueryRow> = Vec::new();
    let mut expected: Option<Vec<bool>> = None;
    for threads in [1usize, 2, 4, 8] {
        let mut best = f64::INFINITY;
        let mut answers = Vec::new();
        for _ in 0..3 {
            let t = Instant::now();
            answers = bulk_reachable(&snap, &pairs, threads);
            best = best.min(ms(t));
        }
        match &expected {
            Some(e) => assert_eq!(e, &answers, "sharded answers diverged"),
            None => expected = Some(answers),
        }
        bulk.push(BulkQueryRow {
            threads,
            elapsed_ms: best,
            qps: pairs.len() as f64 / (best / 1e3).max(1e-9),
        });
    }

    // Rank-label fix, before/after: 2-hop label entries with the legacy
    // node-id labels vs the rank labels, on G and Gr of every Fig. 12(d)
    // dataset. The legacy build's pruning barely works, so its cost grows
    // with the full reachable-pair count — hence the gentler scale.
    let two_hop_scale = scale.max(300);
    let mut two_hop_entries: Vec<TwoHopEntriesRow> = Vec::new();
    for &name in FIG12D_DATASETS {
        let g = dataset(name, two_hop_scale, 0).expect("known dataset");
        let gr = compress_r(&g).graph;
        for (tag, graph) in [("G", &g), ("Gr", &gr)] {
            two_hop_entries.push(TwoHopEntriesRow {
                dataset: name.to_string(),
                graph: tag.to_string(),
                legacy: TwoHopIndex::build_with_node_id_labels(graph).label_entries(),
                ranked: TwoHopIndex::build(graph).label_entries(),
            });
        }
    }

    PerfSnapshot {
        scale,
        dataset: "citHepTh".into(),
        nodes: g.node_count(),
        edges: g.edge_count(),
        phases_ms: phases,
        bisim_speedup: bisim_baseline_ms / bisim_csr_ms.max(1e-9),
        heap_scale,
        heap,
        serve_dataset: "wikiTalk".into(),
        serve_nodes,
        serve_edges,
        serve_classes: snap.class_count(),
        serve_queries: pairs.len(),
        bulk,
        two_hop_scale,
        two_hop_entries,
    }
}

impl PerfSnapshot {
    /// Serializes the snapshot as pretty-printed JSON (hand-rolled — the
    /// container has no serde; all strings involved are plain ASCII
    /// identifiers).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"qpgc-perf-snapshot-v2\",\n");
        out.push_str(&format!("  \"scale\": {},\n", self.scale));
        out.push_str(&format!("  \"dataset\": \"{}\",\n", self.dataset));
        out.push_str(&format!("  \"nodes\": {},\n", self.nodes));
        out.push_str(&format!("  \"edges\": {},\n", self.edges));
        out.push_str("  \"phases_ms\": {\n");
        for (i, (name, v)) in self.phases_ms.iter().enumerate() {
            let comma = if i + 1 == self.phases_ms.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!("    \"{name}\": {v:.3}{comma}\n"));
        }
        out.push_str("  },\n");
        out.push_str(&format!(
            "  \"bisim_speedup\": {:.3},\n",
            self.bisim_speedup
        ));
        out.push_str(&format!("  \"heap_scale\": {},\n", self.heap_scale));
        out.push_str("  \"heap_bytes\": [\n");
        for (i, row) in self.heap.iter().enumerate() {
            let comma = if i + 1 == self.heap.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"dataset\": \"{}\", \"nodes\": {}, \"edges\": {}, \"labeled\": {}, \"csr\": {}}}{comma}\n",
                row.name, row.nodes, row.edges, row.labeled_bytes, row.csr_bytes
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"serve\": {\n");
        out.push_str(&format!("    \"dataset\": \"{}\",\n", self.serve_dataset));
        out.push_str(&format!("    \"nodes\": {},\n", self.serve_nodes));
        out.push_str(&format!("    \"edges\": {},\n", self.serve_edges));
        out.push_str(&format!("    \"classes\": {},\n", self.serve_classes));
        out.push_str(&format!("    \"queries\": {},\n", self.serve_queries));
        out.push_str("    \"bulk\": [\n");
        for (i, row) in self.bulk.iter().enumerate() {
            let comma = if i + 1 == self.bulk.len() { "" } else { "," };
            out.push_str(&format!(
                "      {{\"threads\": {}, \"elapsed_ms\": {:.3}, \"qps\": {:.0}}}{comma}\n",
                row.threads, row.elapsed_ms, row.qps
            ));
        }
        out.push_str("    ]\n");
        out.push_str("  },\n");
        out.push_str(&format!("  \"two_hop_scale\": {},\n", self.two_hop_scale));
        out.push_str("  \"two_hop_label_entries\": [\n");
        for (i, row) in self.two_hop_entries.iter().enumerate() {
            let comma = if i + 1 == self.two_hop_entries.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!(
                "    {{\"dataset\": \"{}\", \"graph\": \"{}\", \"legacy\": {}, \"ranked\": {}}}{comma}\n",
                row.dataset, row.graph, row.legacy, row.ranked
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One shared tiny-scale snapshot run covers the phase list, the JSON
    // shape, and the heap invariant — the pipeline is the expensive part.
    #[test]
    fn snapshot_runs_serializes_and_csr_heap_is_strictly_smaller() {
        let snap = perf_snapshot(400);
        assert_eq!(snap.dataset, "citHepTh");
        assert!(snap.nodes >= 50);
        let names: Vec<&str> = snap.phases_ms.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "build",
                "freeze",
                "bisim_baseline",
                "bisim_csr",
                "compress_r",
                "compress_b",
                "query_eval"
            ]
        );
        assert!(snap.phases_ms.iter().all(|&(_, v)| v >= 0.0));
        assert!(snap.bisim_speedup > 0.0);
        assert_eq!(snap.heap_scale, 400);
        let json = snap.to_json();
        for key in [
            "\"schema\"",
            "\"phases_ms\"",
            "\"bisim_csr\"",
            "\"bisim_speedup\"",
            "\"heap_scale\"",
            "\"heap_bytes\"",
            "\"serve\"",
            "\"bulk\"",
            "\"two_hop_label_entries\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // The acceptance-tracked heap invariant: CSR strictly smaller than
        // the mutable representation on every Table-1 dataset.
        assert_eq!(snap.heap.len(), REACHABILITY_DATASETS.len());
        for row in &snap.heap {
            assert!(
                row.csr_bytes < row.labeled_bytes,
                "{}: csr {} >= labeled {}",
                row.name,
                row.csr_bytes,
                row.labeled_bytes
            );
        }

        // Serving layer: a single-threaded row always exists, every row has
        // positive throughput, and query counts line up.
        assert_eq!(snap.serve_dataset, "wikiTalk");
        assert!(snap.serve_classes > 0);
        assert!(!snap.bulk.is_empty());
        assert_eq!(snap.bulk[0].threads, 1);
        for row in &snap.bulk {
            assert!(row.qps > 0.0, "threads={}: qps {}", row.threads, row.qps);
        }
        // Wall-clock comparisons flake on loaded CI boxes and are
        // meaningless on single-core containers; opt in locally.
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        if std::env::var("QPGC_TIMING_TESTS").is_ok() && cores > 1 && snap.bulk.len() > 1 {
            let single = snap.bulk[0].qps;
            let best_multi = snap.bulk[1..].iter().map(|r| r.qps).fold(0.0, f64::max);
            assert!(
                best_multi > single,
                "multi-threaded bulk eval ({best_multi:.0} qps) not faster than single ({single:.0} qps)"
            );
        }

        // The rank-label fix: never larger than the legacy node-id build,
        // and strictly smaller on the citHepTh emulation (both G and Gr).
        assert_eq!(snap.two_hop_entries.len(), 2 * FIG12D_DATASETS.len());
        for row in &snap.two_hop_entries {
            assert!(
                row.ranked <= row.legacy,
                "{} ({}): ranked {} > legacy {}",
                row.dataset,
                row.graph,
                row.ranked,
                row.legacy
            );
        }
        for row in snap
            .two_hop_entries
            .iter()
            .filter(|r| r.dataset == "citHepTh")
        {
            assert!(
                row.ranked < row.legacy,
                "citHepTh ({}): rank fix did not shrink the index ({} vs {})",
                row.graph,
                row.ranked,
                row.legacy
            );
        }
    }
}
