//! The reproduction driver: regenerates every table and figure of the
//! paper's evaluation on the emulated datasets.
//!
//! ```text
//! cargo run --release -p qpgc-bench --bin reproduce -- all
//! cargo run --release -p qpgc-bench --bin reproduce -- table1 fig12e
//! QPGC_SCALE=50 cargo run --release -p qpgc-bench --bin reproduce -- table1
//! ```
//!
//! `QPGC_SCALE` divides the original dataset sizes (default 100); lower
//! values give results closer to the paper's scale at the cost of runtime.

use std::time::Instant;

use qpgc_bench::experiments::{run, ALL_EXPERIMENTS};
use qpgc_bench::harness::scale_from_env;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_env();

    let requested: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };

    println!("# Query preserving graph compression — reproduction run");
    println!("# dataset scale factor: 1/{scale} of the original sizes (set QPGC_SCALE to change)");
    println!();

    let mut failed = false;
    for id in requested {
        match run(id, scale) {
            Some(result) => {
                let t = Instant::now();
                // `run` already executed the experiment; timing reported per
                // experiment is dominated by the run above, so re-time the
                // rendering-inclusive path for a stable "total" feel.
                print!("{}", result.render());
                println!(
                    "  [{} rows, rendered in {:?}]",
                    result.rows.len(),
                    t.elapsed()
                );
                println!();
            }
            None => {
                eprintln!("unknown experiment id `{id}`; known ids: {ALL_EXPERIMENTS:?}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(2);
    }
}
