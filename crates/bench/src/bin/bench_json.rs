//! Writes a machine-readable perf snapshot (see `qpgc_bench::perf`).
//!
//! ```text
//! cargo run --release -p qpgc_bench --bin bench_json -- --out BENCH_9.json
//! cargo run --release -p qpgc_bench --bin bench_json -- --compare BENCH_8.json
//! QPGC_SCALE=500 cargo run --release -p qpgc_bench --bin bench_json
//! ```
//!
//! Unlike `reproduce`, the default scale here is **1** (full citHepTh-scale,
//! ≈28k nodes) because the snapshot exists to track the perf trajectory at a
//! meaningful size; set `QPGC_SCALE` to shrink it (CI smoke uses 500).
//! `--compare PREV.json` additionally prints the per-phase regression table
//! against a previously committed snapshot — the ROADMAP's
//! compare-against-previous convention.

use qpgc_bench::perf::{compare_report, perf_snapshot};

fn main() {
    let mut out_path = String::from("BENCH_9.json");
    let mut compare_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args
                    .get(i)
                    .unwrap_or_else(|| {
                        eprintln!("--out requires a path");
                        std::process::exit(2);
                    })
                    .clone();
            }
            "--compare" => {
                i += 1;
                compare_path = Some(
                    args.get(i)
                        .unwrap_or_else(|| {
                            eprintln!("--compare requires a path to a previous BENCH_<n>.json");
                            std::process::exit(2);
                        })
                        .clone(),
                );
            }
            other => {
                eprintln!(
                    "unknown argument `{other}`; usage: bench_json [--out PATH] [--compare PREV.json]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // Read the comparison snapshot up front: a typo'd path must fail before
    // the (potentially minutes-long) benchmark run, not after it.
    let compare = compare_path.map(|prev_path| {
        let prev = std::fs::read_to_string(&prev_path).unwrap_or_else(|e| {
            eprintln!("failed to read {prev_path}: {e}");
            std::process::exit(1);
        });
        (prev_path, prev)
    });

    let scale = std::env::var("QPGC_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(1);

    eprintln!("# perf snapshot at scale 1/{scale} (QPGC_SCALE to change)");
    let snap = perf_snapshot(scale);
    for (name, ms) in &snap.phases_ms {
        eprintln!("  {name:>16}: {ms:>10.3} ms");
    }
    eprintln!("  bisim speedup (baseline/csr): {:.2}x", snap.bisim_speedup);
    for row in &snap.bulk {
        eprintln!(
            "  bulk {} queries on {} @ {} thread(s): {:>10.3} ms ({:.0} qps)",
            snap.serve_queries, snap.serve_dataset, row.threads, row.elapsed_ms, row.qps
        );
    }
    for row in &snap.snapshot_incremental {
        eprintln!(
            "  snapshot_incremental {} (1/{}, two_hop={}, patterns={}): full {:.3} ms vs delta {:.3} ms ({:.2}x, {}/{} patched, {} pattern-patched)",
            row.dataset,
            row.scale,
            row.two_hop,
            row.serve_patterns,
            row.full_ms,
            row.delta_ms,
            row.speedup,
            row.patched_batches,
            row.batches,
            row.pattern_patched_batches
        );
    }
    for row in &snap.store_sharding.throughput {
        eprintln!(
            "  store_sharding {} (1/{}) @ {} shard(s): apply {:.3} ms ({:.0} upd/s), publish {:.3} ms, {} cross edges, {} boundary vertices",
            snap.store_sharding.dataset,
            snap.store_sharding.scale,
            row.shard_count,
            row.apply_ms,
            row.updates_per_sec,
            row.publish_ms,
            row.cross_edges,
            row.boundary_vertices
        );
    }
    for row in &snap.store_sharding.latency {
        eprintln!(
            "  store_sharding latency @ {} shard(s), cross_shard={}: {} queries in {:.3} ms ({:.0} qps)",
            row.shard_count, row.cross_shard, row.queries, row.elapsed_ms, row.qps
        );
    }
    for row in &snap.robustness {
        eprintln!(
            "  robustness {} (1/{}): guard {:.3} ms of {:.3} ms apply ({:.3}% overhead), logged {:.3} ms, replay {:.1} batches/s",
            row.dataset,
            row.scale,
            row.guard_ms,
            row.apply_ms,
            row.overhead_pct,
            row.logged_ms,
            row.replay_batches_per_sec
        );
    }
    for row in &snap.adaptive_gate {
        eprintln!(
            "  adaptive_gate {} (1/{}, patterns={}): adaptive {:.3} ms vs patch {:.3} / rebuild {:.3} / optimal {:.3} ms; {} warmup, {:.1}% agreement, reach {}p/{}r, pattern {}p/{}r",
            row.dataset,
            row.scale,
            row.serve_patterns,
            row.adaptive_ms,
            row.always_patch_ms,
            row.always_rebuild_ms,
            row.offline_optimal_ms,
            row.reach_warmup,
            row.reach_agreement_pct,
            row.reach_patched,
            row.reach_rebuilt,
            row.pattern_patched,
            row.pattern_rebuilt
        );
    }
    for row in &snap.parallel_maintenance {
        eprintln!(
            "  parallel_maintenance {} {} @ {} thread(s): {:.3} ms ({:.2}x)",
            row.task, row.dataset, row.threads, row.elapsed_ms, row.speedup
        );
    }

    for row in &snap.succinct_snapshot {
        eprintln!(
            "  succinct_snapshot {} (1/{}): {} -> {} bytes ({:.3}x, {:.2} bits/edge), query {:.3} ms vs {:.3} ms plain ({:.2}x)",
            row.dataset,
            row.scale,
            row.plain_bytes,
            row.succinct_bytes,
            row.heap_ratio,
            row.bits_per_edge,
            row.succinct_query_ms,
            row.plain_query_ms,
            row.query_ratio
        );
    }
    for row in &snap.succinct_boot {
        eprintln!(
            "  succinct_boot {} (1/{}, {} batches of {}): {} bytes on disk, save {:.3} ms, load {:.3} ms, boot {:.3} ms vs full replay {:.3} ms",
            row.dataset,
            row.scale,
            row.batches,
            row.batch_size,
            row.snapshot_file_bytes,
            row.save_ms,
            row.load_ms,
            row.boot_ms,
            row.replay_ms
        );
    }

    if let Some((prev_path, prev)) = compare {
        eprintln!("# regression vs {prev_path}");
        eprint!("{}", compare_report(&prev, &snap));
    }

    std::fs::write(&out_path, snap.to_json()).unwrap_or_else(|e| {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");
}
