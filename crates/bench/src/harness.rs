//! Small experiment framework: timing, result tables, query sampling.

use std::time::{Duration, Instant};

use qpgc_graph::{LabeledGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One row of an experiment result table: a label plus named numeric cells.
#[derive(Clone, Debug)]
pub struct Row {
    /// Row label (dataset name, parameter value, …).
    pub label: String,
    /// `(column name, value)` pairs, in display order.
    pub cells: Vec<(String, f64)>,
}

impl Row {
    /// Creates a row with no cells yet.
    pub fn new(label: impl Into<String>) -> Self {
        Row {
            label: label.into(),
            cells: Vec::new(),
        }
    }

    /// Adds a named cell.
    pub fn cell(mut self, name: &str, value: f64) -> Self {
        self.cells.push((name.to_string(), value));
        self
    }

    /// Looks a cell up by column name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.cells.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// The result of one experiment: an identifier, a free-form description of
/// what the paper reported, and a table of measured rows.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Experiment id, e.g. `"table1"` or `"fig12e"`.
    pub id: String,
    /// What the corresponding table/figure in the paper shows.
    pub paper_reference: String,
    /// Measured rows.
    pub rows: Vec<Row>,
}

impl ExperimentResult {
    /// Creates an empty result.
    pub fn new(id: &str, paper_reference: &str) -> Self {
        ExperimentResult {
            id: id.to_string(),
            paper_reference: paper_reference.to_string(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Renders the result as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## {} — {}\n", self.id, self.paper_reference));
        if self.rows.is_empty() {
            out.push_str("(no rows)\n");
            return out;
        }
        // Column headers from the first row.
        let headers: Vec<&str> = self.rows[0].cells.iter().map(|(n, _)| n.as_str()).collect();
        let label_width = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .max()
            .unwrap_or(8)
            .max(8);
        out.push_str(&format!("{:<label_width$}", ""));
        for h in &headers {
            out.push_str(&format!(" {h:>14}"));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{:<label_width$}", row.label));
            for (_, v) in &row.cells {
                if v.abs() >= 1000.0 {
                    out.push_str(&format!(" {v:>14.0}"));
                } else {
                    out.push_str(&format!(" {v:>14.4}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Reads the dataset down-scaling factor from `QPGC_SCALE` (default 100).
pub fn scale_from_env() -> usize {
    std::env::var("QPGC_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(100)
}

/// Times a closure, returning its result and the elapsed wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed())
}

/// Samples `count` random node pairs of `g` for reachability queries.
pub fn random_pairs(g: &LabeledGraph, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.node_count().max(1);
    (0..count)
        .map(|_| {
            (
                NodeId(rng.gen_range(0..n) as u32),
                NodeId(rng.gen_range(0..n) as u32),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_and_rendering() {
        let mut res = ExperimentResult::new("table1", "compression ratios");
        res.push(Row::new("P2P").cell("RCr", 0.0597).cell("RCaho", 0.73));
        res.push(Row::new("wikiVote").cell("RCr", 0.019).cell("RCaho", 0.65));
        let text = res.render();
        assert!(text.contains("table1"));
        assert!(text.contains("P2P"));
        assert!(text.contains("RCaho"));
        assert_eq!(res.rows[0].get("RCr"), Some(0.0597));
        assert_eq!(res.rows[0].get("missing"), None);
    }

    #[test]
    fn empty_result_renders() {
        let res = ExperimentResult::new("x", "y");
        assert!(res.render().contains("no rows"));
    }

    #[test]
    fn timed_returns_value() {
        let (v, d) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn random_pairs_in_range() {
        let mut g = LabeledGraph::new();
        for _ in 0..10 {
            g.add_node_with_label("X");
        }
        let pairs = random_pairs(&g, 50, 1);
        assert_eq!(pairs.len(), 50);
        assert!(pairs.iter().all(|(a, b)| a.index() < 10 && b.index() < 10));
        assert_eq!(random_pairs(&g, 50, 1), pairs);
    }

    #[test]
    fn scale_default() {
        // Do not set the env var here (tests run in parallel); just check
        // the default path parses.
        let s = scale_from_env();
        assert!(s >= 1);
    }
}
