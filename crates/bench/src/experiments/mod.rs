//! One function per table / figure of the paper's evaluation.
//!
//! | function | paper artefact |
//! |---|---|
//! | [`compression_ratio::fig1`] | Fig. 1 — P2P network size & query-time reduction |
//! | [`compression_ratio::table1`] | Table 1 — reachability compression ratios |
//! | [`compression_ratio::table2`] | Table 2 — pattern compression ratios |
//! | [`query_time::fig12a`] | Fig. 12(a) — BFS/BIBFS on `G` vs `Gr` |
//! | [`query_time::fig12b`] | Fig. 12(b) — `Match` on real-life graphs vs compressed |
//! | [`query_time::fig12c`] | Fig. 12(c) — `Match` on synthetic graphs vs compressed |
//! | [`query_time::fig12d`] | Fig. 12(d) — memory cost of `G`, `Gr` and 2-hop indexes |
//! | [`incremental::fig12e`] | Fig. 12(e) — `incRCM` vs `compressR`, insertions |
//! | [`incremental::fig12f`] | Fig. 12(f) — `incRCM` vs `compressR`, deletions |
//! | [`incremental::fig12g`] | Fig. 12(g) — `incPCM` vs `IncBsim` vs `compressB` |
//! | [`incremental::fig12h`] | Fig. 12(h) — `IncBMatch` on `G` vs `incPCM`+`Match` on `Gr` |
//! | [`evolution::fig12i`] | Fig. 12(i) — `RCr` under densification growth |
//! | [`evolution::fig12j`] | Fig. 12(j) — `RCr` under power-law growth of real graphs |
//! | [`evolution::fig12k`] | Fig. 12(k) — `PCr` under densification growth |
//! | [`evolution::fig12l`] | Fig. 12(l) — `PCr` under power-law growth of real graphs |

pub mod compression_ratio;
pub mod evolution;
pub mod incremental;
pub mod query_time;

use crate::harness::ExperimentResult;

/// Every experiment id accepted by the `reproduce` binary.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "fig1", "table1", "table2", "fig12a", "fig12b", "fig12c", "fig12d", "fig12e", "fig12f",
    "fig12g", "fig12h", "fig12i", "fig12j", "fig12k", "fig12l",
];

/// Runs one experiment by id at the given dataset scale.
pub fn run(id: &str, scale: usize) -> Option<ExperimentResult> {
    match id {
        "fig1" => Some(compression_ratio::fig1(scale)),
        "table1" => Some(compression_ratio::table1(scale)),
        "table2" => Some(compression_ratio::table2(scale)),
        "fig12a" => Some(query_time::fig12a(scale)),
        "fig12b" => Some(query_time::fig12b(scale)),
        "fig12c" => Some(query_time::fig12c(scale)),
        "fig12d" => Some(query_time::fig12d(scale)),
        "fig12e" => Some(incremental::fig12e(scale)),
        "fig12f" => Some(incremental::fig12f(scale)),
        "fig12g" => Some(incremental::fig12g(scale)),
        "fig12h" => Some(incremental::fig12h(scale)),
        "fig12i" => Some(evolution::fig12i()),
        "fig12j" => Some(evolution::fig12j(scale)),
        "fig12k" => Some(evolution::fig12k()),
        "fig12l" => Some(evolution::fig12l(scale)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run("nope", 100).is_none());
    }

    // Slow (runs every experiment end to end, ~10 s even at tiny scale):
    // kept out of the default `cargo test` wall-clock per the ROADMAP;
    // CI runs it explicitly via `cargo test -- --ignored`.
    #[test]
    #[ignore = "slow experiment sweep; CI runs it via `cargo test -- --ignored`"]
    fn every_listed_experiment_runs_at_tiny_scale() {
        // A very coarse smoke test: every experiment must at least produce
        // rows when run on heavily scaled-down data.
        for id in ALL_EXPERIMENTS {
            let res = run(id, 400).unwrap_or_else(|| panic!("{id} missing"));
            assert!(!res.rows.is_empty(), "{id} produced no rows");
        }
    }
}
