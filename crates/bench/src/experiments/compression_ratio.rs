//! Exp-1: effectiveness of the compressions, measured by compression ratio
//! (Table 1, Table 2) plus the headline Fig. 1 summary.

use qpgc_generators::datasets::{PATTERN_DATASETS, REACHABILITY_DATASETS};
use qpgc_generators::pattern_gen::{random_pattern, PatternGenConfig};
use qpgc_pattern::bounded::bounded_match;
use qpgc_pattern::compress::compress_b;
use qpgc_reach::aho::{aho_reduction, scc_graph};
use qpgc_reach::compress::compress_r;

use crate::harness::{random_pairs, timed, ExperimentResult, Row};

/// Table 1: `RCaho`, `RCscc` and `RCr` for the ten reachability datasets.
pub fn table1(scale: usize) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "table1",
        "reachability preserving compression ratios (paper: RCr ≈ 5% average)",
    );
    for spec in REACHABILITY_DATASETS {
        let g = spec.generate(scale, 0);
        let aho = aho_reduction(&g);
        let (gscc, _) = scc_graph(&g);
        let compressed = compress_r(&g);
        let rc_aho = aho.ratio(&g);
        let rc_scc = if gscc.size() == 0 {
            0.0
        } else {
            compressed.graph.size() as f64 / gscc.size() as f64
        };
        let rc_r = compressed.ratio(&g);
        res.push(
            Row::new(spec.name)
                .cell("|V|", g.node_count() as f64)
                .cell("|E|", g.edge_count() as f64)
                .cell("RCaho", rc_aho)
                .cell("RCscc", rc_scc)
                .cell("RCr", rc_r),
        );
    }
    res
}

/// Table 2: `PCr` for the five labeled pattern datasets.
pub fn table2(scale: usize) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "table2",
        "pattern preserving compression ratios (paper: PCr ≈ 43% average)",
    );
    for spec in PATTERN_DATASETS {
        let g = spec.generate(scale, 0);
        let compressed = compress_b(&g);
        res.push(
            Row::new(spec.name)
                .cell("|V|", g.node_count() as f64)
                .cell("|E|", g.edge_count() as f64)
                .cell("|L|", g.label_alphabet_size() as f64)
                .cell("PCr", compressed.ratio(&g)),
        );
    }
    res
}

/// Fig. 1: the P2P network headline — size reduction and query evaluation
/// time reduction for both query classes.
pub fn fig1(scale: usize) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "fig1",
        "P2P network: paper reports −94%/−51% size and −93%/−77% query time",
    );
    let spec = REACHABILITY_DATASETS
        .iter()
        .find(|s| s.name == "P2P")
        .expect("P2P spec");
    // Use a finer scale for this small dataset so it is not degenerate.
    let g = spec.generate(scale.min(4), 0);

    // Reachability side.
    let rc = compress_r(&g);
    let pairs = random_pairs(&g, 400, 1);
    let (_, t_g) = timed(|| {
        pairs
            .iter()
            .filter(|&&(a, b)| qpgc_graph::traversal::bfs_reachable(&g, a, b))
            .count()
    });
    let (_, t_gr) = timed(|| pairs.iter().filter(|&&(a, b)| rc.query(a, b)).count());

    // Pattern side: the P2P data is unlabeled, so PCr reflects structure only.
    let pc = compress_b(&g);
    let pattern = random_pattern(&g, &PatternGenConfig::new(4, 4, 3, 7));
    let (_, t_match_g) = timed(|| bounded_match(&g, &pattern));
    let (_, t_match_gr) = timed(|| bounded_match(&pc.graph, &pattern));

    res.push(
        Row::new("size reduction")
            .cell("reach (1-RCr)", 1.0 - rc.ratio(&g))
            .cell("pattern (1-PCr)", 1.0 - pc.ratio(&g)),
    );
    res.push(
        Row::new("query time reduction")
            .cell(
                "reach (1-t_Gr/t_G)",
                1.0 - t_gr.as_secs_f64() / t_g.as_secs_f64().max(1e-9),
            )
            .cell(
                "pattern (1-t_Gr/t_G)",
                1.0 - t_match_gr.as_secs_f64() / t_match_g.as_secs_f64().max(1e-9),
            ),
    );
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reports_all_datasets_and_sane_ratios() {
        let res = table1(400);
        assert_eq!(res.rows.len(), REACHABILITY_DATASETS.len());
        for row in &res.rows {
            let rcr = row.get("RCr").unwrap();
            let rcaho = row.get("RCaho").unwrap();
            assert!(rcr > 0.0 && rcr <= 1.0, "{}: RCr = {rcr}", row.label);
            assert!(
                rcaho > 0.0 && rcaho <= 1.01,
                "{}: RCaho = {rcaho}",
                row.label
            );
            // compressR must never be worse than the AHO baseline (paper's
            // claim "performs significantly better than AHO").
            assert!(
                rcr <= rcaho + 1e-9,
                "{}: RCr {rcr} worse than AHO {rcaho}",
                row.label
            );
        }
    }

    #[test]
    fn table1_social_networks_compress_best() {
        let res = table1(400);
        let get = |name: &str| {
            res.rows
                .iter()
                .find(|r| r.label == name)
                .and_then(|r| r.get("RCr"))
                .unwrap()
        };
        // The paper's qualitative ordering: social networks compress (much)
        // better than citation networks for reachability.
        assert!(get("wikiVote") < get("citHepTh"));
        assert!(get("socEpinions") < get("citHepTh"));
    }

    #[test]
    fn table2_ratios_are_valid() {
        let res = table2(200);
        assert_eq!(res.rows.len(), PATTERN_DATASETS.len());
        for row in &res.rows {
            let pcr = row.get("PCr").unwrap();
            assert!(pcr > 0.0 && pcr <= 1.0, "{}: PCr = {pcr}", row.label);
        }
    }

    #[test]
    fn fig1_reductions_are_positive() {
        let res = fig1(8);
        let size = &res.rows[0];
        assert!(size.get("reach (1-RCr)").unwrap() > 0.3);
        assert!(size.get("pattern (1-PCr)").unwrap() > 0.0);
    }
}
