//! Exp-2: query processing on original vs compressed graphs
//! (Figures 12(a)–12(d)).

use qpgc_generators::datasets::{dataset, pattern_dataset, FIG12D_DATASETS};
use qpgc_generators::pattern_gen::{random_pattern, PatternGenConfig};
use qpgc_generators::synthetic::{random_graph, SyntheticConfig};
use qpgc_graph::traversal::{bfs_reachable, bidirectional_reachable};
use qpgc_graph::LabeledGraph;
use qpgc_pattern::bounded::bounded_match;
use qpgc_pattern::compress::compress_b;
use qpgc_reach::compress::compress_r;
use qpgc_reach::two_hop::TwoHopIndex;

use crate::harness::{random_pairs, timed, ExperimentResult, Row};

const REACH_QUERY_COUNT: usize = 300;

fn reach_times(g: &LabeledGraph, seed: u64) -> (f64, f64, f64, f64) {
    let rc = compress_r(g);
    let pairs = random_pairs(g, REACH_QUERY_COUNT, seed);
    let (_, bfs_g) = timed(|| {
        pairs
            .iter()
            .filter(|&&(a, b)| bfs_reachable(g, a, b))
            .count()
    });
    let (_, bibfs_g) = timed(|| {
        pairs
            .iter()
            .filter(|&&(a, b)| bidirectional_reachable(g, a, b))
            .count()
    });
    let (_, bfs_gr) = timed(|| {
        pairs
            .iter()
            .filter(|&&(a, b)| rc.query_with(a, b, bfs_reachable))
            .count()
    });
    let (_, bibfs_gr) = timed(|| {
        pairs
            .iter()
            .filter(|&&(a, b)| rc.query_with(a, b, bidirectional_reachable))
            .count()
    });
    (
        bfs_g.as_secs_f64(),
        bibfs_g.as_secs_f64(),
        bfs_gr.as_secs_f64(),
        bibfs_gr.as_secs_f64(),
    )
}

/// Fig. 12(a): BFS / BIBFS evaluation time on `G` and `Gr` for five
/// real-life datasets, reported as a percentage of the BFS-on-G time (the
/// paper normalizes the same way).
pub fn fig12a(scale: usize) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "fig12a",
        "reachability query time on G vs Gr (paper: Gr ≈ 2–10% of G)",
    );
    for name in ["P2P", "wikiVote", "citHepTh", "socEpinions", "NotreDame"] {
        let g = dataset(name, scale, 0).expect("known dataset");
        let (bfs_g, bibfs_g, bfs_gr, bibfs_gr) = reach_times(&g, 42);
        let base = bfs_g.max(1e-9);
        res.push(
            Row::new(name)
                .cell("BFS on G %", 100.0)
                .cell("BIBFS on G %", 100.0 * bibfs_g / base)
                .cell("BFS on Gr %", 100.0 * bfs_gr / base)
                .cell("BIBFS on Gr %", 100.0 * bibfs_gr / base),
        );
    }
    res
}

fn pattern_sweep(g: &LabeledGraph, label: &str, res: &mut ExperimentResult) {
    let pc = compress_b(g);
    for size in 3..=8usize {
        let cfg = PatternGenConfig::new(size, size, 3, size as u64);
        let pattern = random_pattern(g, &cfg);
        let (_, t_g) = timed(|| bounded_match(g, &pattern));
        let (on_gr, t_gr) = timed(|| bounded_match(&pc.graph, &pattern));
        // Post-processing is part of the cost of answering on Gr.
        let (_, t_post) = timed(|| on_gr.as_ref().map(|m| pc.post_process(m)));
        res.push(
            Row::new(format!("{label} ({size},{size},3)"))
                .cell("Match on G (ms)", t_g.as_secs_f64() * 1e3)
                .cell(
                    "Match on Gr (ms)",
                    (t_gr.as_secs_f64() + t_post.as_secs_f64()) * 1e3,
                ),
        );
    }
}

/// Fig. 12(b): `Match` on the Youtube and Citation emulations and on their
/// compressed graphs, for pattern sizes (3,3,3) … (8,8,3).
pub fn fig12b(scale: usize) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "fig12b",
        "Match time on real-life graphs vs compressed (paper: ≈30% of original)",
    );
    for name in ["Youtube", "Citation"] {
        let g = pattern_dataset(name, scale, 0).expect("known dataset");
        pattern_sweep(&g, name, &mut res);
    }
    res
}

/// Fig. 12(c): `Match` on synthetic graphs (`|V|`=50K scaled, `|E|`≈8.7·|V|)
/// with `|L|` = 10 and 20, original vs compressed.
pub fn fig12c(scale: usize) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "fig12c",
        "Match time on synthetic graphs vs compressed, |L| ∈ {10, 20}",
    );
    let nodes = (50_000 / scale).max(500);
    let edges = (435_000 / scale).max(nodes * 4);
    for labels in [10usize, 20] {
        let g = random_graph(&SyntheticConfig::new(nodes, edges, labels, 5));
        pattern_sweep(&g, &format!("|L|={labels}"), &mut res);
    }
    res
}

/// Fig. 12(d): memory cost of `G`, `Gr`, and 2-hop indexes built over each.
pub fn fig12d(scale: usize) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "fig12d",
        "memory cost (KiB) of G, Gr, 2-hop(G), 2-hop(Gr) (paper: Gr ≤ 8% of G)",
    );
    for &name in FIG12D_DATASETS {
        let g = dataset(name, scale, 0).expect("known dataset");
        let rc = compress_r(&g);
        let two_hop_g = TwoHopIndex::build(&g);
        let two_hop_gr = TwoHopIndex::build(&rc.graph);
        let kib = |b: usize| b as f64 / 1024.0;
        res.push(
            Row::new(name)
                .cell("G", kib(g.heap_bytes()))
                .cell("Gr", kib(rc.graph.heap_bytes()))
                .cell("2-hop on G", kib(two_hop_g.heap_bytes()))
                .cell("2-hop on Gr", kib(two_hop_gr.heap_bytes())),
        );
    }
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12a_compressed_is_not_slower_overall() {
        let res = fig12a(300);
        // Structure always holds: every dataset row with every cell.
        assert_eq!(res.rows.len(), 5);
        for row in &res.rows {
            for cell in ["BFS on G %", "BIBFS on G %", "BFS on Gr %", "BIBFS on Gr %"] {
                assert!(row.get(cell).is_some(), "{}: missing {cell}", row.label);
            }
        }
        // The wall-clock claim (querying Gr beats G on average) is exact on
        // an idle machine but can flake on loaded CI runners — opt in with
        // QPGC_TIMING_TESTS=1 locally.
        if std::env::var("QPGC_TIMING_TESTS").is_ok() {
            let avg_gr: f64 = res
                .rows
                .iter()
                .map(|r| r.get("BFS on Gr %").unwrap())
                .sum::<f64>()
                / res.rows.len() as f64;
            assert!(avg_gr < 100.0, "average BFS-on-Gr = {avg_gr}% of G");
        }
    }

    #[test]
    fn fig12d_rank_labels_shrink_the_two_hop_index() {
        // The rank-label pruning fix: on every Fig. 12(d) dataset the fixed
        // build is never larger than the legacy node-id-labelled build, the
        // total strictly shrinks, and the citHepTh emulation (the paper's
        // citation workload) strictly shrinks on its own.
        let mut total_legacy = 0usize;
        let mut total_ranked = 0usize;
        for &name in FIG12D_DATASETS {
            let g = dataset(name, 300, 0).expect("known dataset");
            let legacy = TwoHopIndex::build_with_node_id_labels(&g).label_entries();
            let ranked = TwoHopIndex::build(&g).label_entries();
            assert!(
                ranked <= legacy,
                "{name}: ranked {ranked} > legacy {legacy}"
            );
            if name == "citHepTh" {
                assert!(
                    ranked < legacy,
                    "citHepTh: rank fix did not shrink the index ({ranked} vs {legacy})"
                );
            }
            total_legacy += legacy;
            total_ranked += ranked;
        }
        assert!(
            total_ranked < total_legacy,
            "rank fix shrank nothing across the Fig. 12(d) datasets"
        );
    }

    #[test]
    fn fig12b_and_c_have_all_pattern_sizes() {
        let res = fig12b(600);
        assert_eq!(res.rows.len(), 12);
        let res = fig12c(600);
        assert_eq!(res.rows.len(), 12);
        for row in &res.rows {
            assert!(row.get("Match on G (ms)").unwrap() >= 0.0);
        }
    }

    #[test]
    fn fig12d_gr_is_smaller_than_g() {
        let res = fig12d(300);
        for row in &res.rows {
            assert!(
                row.get("Gr").unwrap() <= row.get("G").unwrap(),
                "{}: Gr bigger than G",
                row.label
            );
            // 2-hop over Gr never exceeds 2-hop over G.
            assert!(row.get("2-hop on Gr").unwrap() <= row.get("2-hop on G").unwrap() * 1.05);
        }
    }
}
