//! Exp-3: efficiency of incremental compression (Figures 12(e)–12(h)).

use qpgc_generators::datasets::{dataset, pattern_dataset};
use qpgc_generators::pattern_gen::{random_pattern, PatternGenConfig};
use qpgc_generators::updates::{delete_batch, insert_batch, mixed_batch};
use qpgc_pattern::bounded::bounded_match;
use qpgc_pattern::compress::compress_b;
use qpgc_pattern::inc_match::IncrementalMatch;
use qpgc_pattern::incremental::IncrementalPattern;
use qpgc_reach::compress::compress_r;
use qpgc_reach::incremental::IncrementalReach;

use crate::harness::{timed, ExperimentResult, Row};

/// Fig. 12(e): `incRCM` vs `compressR` on the socEpinions emulation under
/// growing insertion batches (the paper sweeps up to ~21 % of `|E|`).
pub fn fig12e(scale: usize) -> ExperimentResult {
    inc_rcm_sweep(scale, true)
}

/// Fig. 12(f): the same sweep with deletions (paper: up to ~26 % of `|E|`).
pub fn fig12f(scale: usize) -> ExperimentResult {
    inc_rcm_sweep(scale, false)
}

fn inc_rcm_sweep(scale: usize, insertions: bool) -> ExperimentResult {
    let (id, what, reference) = if insertions {
        (
            "fig12e",
            "insertions",
            "incRCM vs compressR under insertions (paper: crossover ≈ 20% of |E|)",
        )
    } else {
        (
            "fig12f",
            "deletions",
            "incRCM vs compressR under deletions (paper: crossover ≈ 22% of |E|)",
        )
    };
    let mut res = ExperimentResult::new(id, reference);
    // This sweep needs a graph large enough that recompression is not
    // essentially free, otherwise the crossover the paper reports cannot be
    // observed; cap the scale factor at 25 (≈ 3 000 nodes).
    let fine_scale = if scale > 100 { scale } else { scale.min(25) };
    let g0 = dataset("socEpinions", fine_scale, 0).expect("known dataset");
    let steps = 5usize;
    for step in 1..=steps {
        // Batch size: step × ~4% of |E|.
        let frac = 0.04 * step as f64;
        let size = ((g0.edge_count() as f64) * frac) as usize;
        let batch = if insertions {
            insert_batch(&g0, size, step as u64)
        } else {
            delete_batch(&g0, size, step as u64)
        };

        // Incremental: start from the compression of g0, apply the batch.
        let mut g_inc = g0.clone();
        let mut inc = IncrementalReach::new(&g_inc);
        let (stats, t_inc) = timed(|| inc.apply(&mut g_inc, &batch));

        // Batch: recompress the updated graph from scratch.
        let mut g_batch = g0.clone();
        batch.apply_to(&mut g_batch);
        let (_, t_batch) = timed(|| compress_r(&g_batch));

        res.push(
            Row::new(format!("{what} {:.0}% of |E|", frac * 100.0))
                .cell("|ΔG|", batch.len() as f64)
                .cell("incRCM (ms)", t_inc.as_secs_f64() * 1e3)
                .cell("compressR (ms)", t_batch.as_secs_f64() * 1e3)
                .cell("affected classes", stats.affected_classes as f64),
        );
    }
    res
}

/// Fig. 12(g): `incPCM` vs `IncBsim` vs `compressB` on the Youtube emulation
/// under growing mixed update batches.
pub fn fig12g(scale: usize) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "fig12g",
        "incPCM vs IncBsim vs compressB under mixed updates (paper: incPCM wins below ~5K updates)",
    );
    let fine_scale = if scale > 100 { scale } else { scale.min(50) };
    let g0 = pattern_dataset("Youtube", fine_scale, 0).expect("known dataset");
    for step in 1..=5usize {
        let size = (g0.edge_count() / 100) * step; // 1%..5% of |E|
        let batch = mixed_batch(&g0, size, step as u64);

        let mut g_inc = g0.clone();
        let mut inc = IncrementalPattern::new(&g_inc);
        let (_, t_inc) = timed(|| inc.apply(&mut g_inc, &batch));

        let mut g_one = g0.clone();
        let mut one = IncrementalPattern::new(&g_one);
        let (_, t_one_by_one) = timed(|| one.apply_one_by_one(&mut g_one, &batch));

        let mut g_batch = g0.clone();
        batch.apply_to(&mut g_batch);
        let (_, t_batch) = timed(|| compress_b(&g_batch));

        res.push(
            Row::new(format!("|ΔE| = {}", batch.len()))
                .cell("incPCM (ms)", t_inc.as_secs_f64() * 1e3)
                .cell("IncBsim (ms)", t_one_by_one.as_secs_f64() * 1e3)
                .cell("compressB (ms)", t_batch.as_secs_f64() * 1e3),
        );
    }
    res
}

/// Fig. 12(h): maintaining query answers over the Citation emulation —
/// `IncBMatch` directly on `G` versus `incPCM` + `Match` on the maintained
/// compressed graph.
pub fn fig12h(scale: usize) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "fig12h",
        "IncBMatch on G vs incPCM+Match on Gr (paper: compressed wins beyond ~8K updates)",
    );
    let g0 = pattern_dataset("Citation", scale, 0).expect("known dataset");
    let pattern = random_pattern(&g0, &PatternGenConfig::new(4, 4, 3, 11));

    for step in 1..=5usize {
        let size = (g0.edge_count() / 100) * step;
        let batch = mixed_batch(&g0, size, 50 + step as u64);

        // Strategy 1: incrementally maintain the match relation on G.
        let mut g1 = g0.clone();
        let mut inc_match = IncrementalMatch::new(&g1, pattern.clone());
        let (_, t_inc_match) = timed(|| {
            inc_match.apply(&mut g1, &batch);
        });

        // Strategy 2: maintain the compressed graph, then run Match on it.
        let mut g2 = g0.clone();
        let mut inc_pcm = IncrementalPattern::new(&g2);
        let (_, t_strategy2) = timed(|| {
            inc_pcm.apply(&mut g2, &batch);
            let compression = inc_pcm.to_compression();
            let on_gr = bounded_match(&compression.graph, &pattern);
            on_gr.map(|m| compression.post_process(&m))
        });

        res.push(
            Row::new(format!("|ΔE| = {}", batch.len()))
                .cell("IncBMatch on G (ms)", t_inc_match.as_secs_f64() * 1e3)
                .cell("incPCM+Match on Gr (ms)", t_strategy2.as_secs_f64() * 1e3),
        );
    }
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12e_rows_have_timings() {
        let res = fig12e(400);
        assert_eq!(res.rows.len(), 5);
        for row in &res.rows {
            assert!(row.get("incRCM (ms)").unwrap() >= 0.0);
            assert!(row.get("compressR (ms)").unwrap() > 0.0);
            assert!(row.get("|ΔG|").unwrap() > 0.0);
        }
    }

    // Slow (~2 s): runs three full incremental experiments; CI covers it
    // via `cargo test -- --ignored`.
    #[test]
    #[ignore = "slow experiment run; CI runs it via `cargo test -- --ignored`"]
    fn fig12f_and_g_and_h_produce_rows() {
        assert_eq!(fig12f(400).rows.len(), 5);
        assert_eq!(fig12g(400).rows.len(), 5);
        assert_eq!(fig12h(400).rows.len(), 5);
    }

    // Slow (~3 s): wall-clock comparison over the full fig12g pipeline; CI
    // covers it via `cargo test -- --ignored`.
    #[test]
    #[ignore = "slow experiment run; CI runs it via `cargo test -- --ignored`"]
    fn fig12g_incpcm_not_slower_than_one_by_one() {
        // Batch incremental processing should not lose to re-running the
        // single-update algorithm per update (the paper's IncBsim
        // comparison); allow generous slack for timer noise at tiny scale.
        let res = fig12g(300);
        let total_inc: f64 = res.rows.iter().map(|r| r.get("incPCM (ms)").unwrap()).sum();
        let total_one: f64 = res
            .rows
            .iter()
            .map(|r| r.get("IncBsim (ms)").unwrap())
            .sum();
        assert!(
            total_inc <= total_one * 1.5,
            "incPCM {total_inc}ms vs IncBsim {total_one}ms"
        );
    }
}
