//! Exp-4: effectiveness of incremental compression as graphs evolve
//! (Figures 12(i)–12(l)): how the compression ratios change under the
//! densification law (synthetic) and power-law edge growth (real-life
//! emulations).

use qpgc_generators::datasets::{dataset, pattern_dataset};
use qpgc_generators::evolution::{
    densification_step, power_law_growth_step, DensificationConfig, PowerLawGrowthConfig,
};
use qpgc_graph::LabeledGraph;
use qpgc_pattern::compress::compress_b;
use qpgc_reach::compress::compress_r;

use crate::harness::{ExperimentResult, Row};

const EVOLUTION_ITERATIONS: usize = 5;
const GROWTH_STEPS: usize = 5;

fn densification_series(alpha: f64, start_nodes: usize) -> Vec<(usize, LabeledGraph)> {
    let mut g = LabeledGraph::new();
    for i in 0..start_nodes {
        g.add_node_with_label(&format!("L{}", i % 10));
    }
    let cfg = DensificationConfig {
        alpha,
        beta: 1.2,
        labels: 10,
        seed: 17,
    };
    let mut out = Vec::new();
    for i in 0..EVOLUTION_ITERATIONS {
        densification_step(&mut g, &cfg, i as u64);
        out.push((i, g.clone()));
    }
    out
}

/// Fig. 12(i): `RCr` over densification-law iterations for α ∈ {1.05, 1.10}.
pub fn fig12i() -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "fig12i",
        "RCr under densification growth (paper: denser ⇒ better reachability compression)",
    );
    for &alpha in &[1.05f64, 1.10] {
        for (i, g) in densification_series(alpha, 2000) {
            let ratio = compress_r(&g).ratio(&g);
            res.push(
                Row::new(format!("α={alpha} iter {i}"))
                    .cell("|V|", g.node_count() as f64)
                    .cell("|E|", g.edge_count() as f64)
                    .cell("RCr", ratio),
            );
        }
    }
    res
}

/// Fig. 12(k): `PCr` over densification-law iterations (`|L| = 10`).
pub fn fig12k() -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "fig12k",
        "PCr under densification growth (paper: PCr largely insensitive to size)",
    );
    for &alpha in &[1.05f64, 1.10] {
        for (i, g) in densification_series(alpha, 1500) {
            let ratio = compress_b(&g).ratio(&g);
            res.push(
                Row::new(format!("α={alpha} iter {i}"))
                    .cell("|V|", g.node_count() as f64)
                    .cell("PCr", ratio),
            );
        }
    }
    res
}

/// Fig. 12(j): `RCr` of real-life emulations as edges grow by 5 % per step
/// with preferential attachment.
pub fn fig12j(scale: usize) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "fig12j",
        "RCr under power-law edge growth of real-life graphs (paper: ratio falls as edges grow)",
    );
    for name in ["P2P", "wikiVote", "citHepTh"] {
        let mut g = dataset(name, scale, 0).expect("known dataset");
        let base_edges = g.edge_count() as f64;
        let cfg = PowerLawGrowthConfig::default();
        for step in 0..=GROWTH_STEPS {
            if step > 0 {
                power_law_growth_step(&mut g, &cfg, step as u64);
            }
            let grown = 100.0 * (g.edge_count() as f64 - base_edges) / base_edges;
            let ratio = compress_r(&g).ratio(&g);
            res.push(
                Row::new(format!("{name} +{grown:.0}%E"))
                    .cell("|E|", g.edge_count() as f64)
                    .cell("RCr", ratio),
            );
        }
    }
    res
}

/// Fig. 12(l): `PCr` of real-life emulations as edges grow by 5 % per step.
pub fn fig12l(scale: usize) -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "fig12l",
        "PCr under power-law edge growth of real-life graphs (paper: ratio creeps up as edges grow)",
    );
    for name in ["California", "Internet", "Youtube"] {
        let mut g = pattern_dataset(name, scale, 0).expect("known dataset");
        let base_edges = g.edge_count() as f64;
        let cfg = PowerLawGrowthConfig::default();
        for step in 0..=GROWTH_STEPS {
            if step > 0 {
                power_law_growth_step(&mut g, &cfg, step as u64);
            }
            let grown = 100.0 * (g.edge_count() as f64 - base_edges) / base_edges;
            let ratio = compress_b(&g).ratio(&g);
            res.push(
                Row::new(format!("{name} +{grown:.0}%E"))
                    .cell("|E|", g.edge_count() as f64)
                    .cell("PCr", ratio),
            );
        }
    }
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12i_denser_graphs_compress_better() {
        let res = fig12i();
        // Within each α series the ratio at the last iteration should not be
        // worse than at the first (the paper's "more edges ⇒ more
        // reachability-equivalent nodes").
        for alpha in ["α=1.05", "α=1.1"] {
            let series: Vec<f64> = res
                .rows
                .iter()
                .filter(|r| r.label.starts_with(alpha))
                .map(|r| r.get("RCr").unwrap())
                .collect();
            assert!(!series.is_empty());
            assert!(
                series.last().unwrap() <= series.first().unwrap(),
                "{alpha}: {series:?}"
            );
        }
    }

    #[test]
    fn fig12j_ratio_not_increasing_under_growth() {
        let res = fig12j(200);
        // For each dataset the final RCr should not exceed the initial one
        // by much (edge growth improves or maintains compressibility).
        for name in ["P2P", "wikiVote", "citHepTh"] {
            let series: Vec<f64> = res
                .rows
                .iter()
                .filter(|r| r.label.starts_with(name))
                .map(|r| r.get("RCr").unwrap())
                .collect();
            assert!(series.len() == GROWTH_STEPS + 1);
            assert!(*series.last().unwrap() <= series.first().unwrap() * 1.1);
        }
    }

    #[test]
    fn fig12k_and_l_produce_full_series() {
        assert_eq!(fig12k().rows.len(), 2 * EVOLUTION_ITERATIONS);
        assert_eq!(fig12l(300).rows.len(), 3 * (GROWTH_STEPS + 1));
    }
}
